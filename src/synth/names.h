#ifndef WEBTAB_SYNTH_NAMES_H_
#define WEBTAB_SYNTH_NAMES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace webtab {

/// Deterministic generator of human-plausible names with *controlled
/// ambiguity*: token pools are intentionally small so that surnames,
/// place stems and title words collide across entities — reproducing the
/// lemma ambiguity the paper measures (7-8 candidate entities per cell).
class NameFactory {
 public:
  explicit NameFactory(uint64_t seed);

  /// "Rolan Vestik" — given name + surname from shared pools.
  std::string PersonName();

  /// "Kelvprogram" / "North Varsil" — city/region names.
  std::string PlaceName();

  /// "The Shadow of Varsil", "Return to Kelvag" — work titles built from
  /// shared content words, so titles overlap across works.
  std::string WorkTitle();

  /// "Kelvag United" — club name derived from a place stem.
  std::string ClubName();

  /// "Varsilian" — language name.
  std::string LanguageName();

  /// One random content word (lowercase).
  std::string ContentWord();

  /// Lemma variants for a person name: full name, surname alone,
  /// initialed form ("R. Vestik").
  static std::vector<std::string> PersonLemmas(const std::string& name);

  /// Lemma variants for a work title: full title and the title without a
  /// leading article.
  static std::vector<std::string> TitleLemmas(const std::string& title);

  /// Applies a deterministic typo: swap, drop or duplicate one character.
  static std::string ApplyTypo(std::string_view text, Rng* rng);

 private:
  Rng rng_;
};

}  // namespace webtab

#endif  // WEBTAB_SYNTH_NAMES_H_
