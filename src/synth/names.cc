#include "synth/names.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace webtab {

namespace {

// Intentionally compact pools: collisions are the point.
constexpr std::array<const char*, 28> kGivenNames = {
    "Rolan",  "Mira",   "Teodor", "Ana",    "Viktor", "Lena",  "Stefan",
    "Ira",    "Marko",  "Dana",   "Pavel",  "Nora",   "Janek", "Vera",
    "Tomas",  "Eliza",  "Andrei", "Sofia",  "Bogdan", "Ruta",  "Emil",
    "Clara",  "Luka",   "Petra",  "Oskar",  "Greta",  "Milan", "Ida"};

constexpr std::array<const char*, 24> kSurnames = {
    "Vestik",  "Kelvar",  "Dorman",  "Silic",   "Armand", "Petrov",
    "Kovac",   "Brandt",  "Lindt",   "Moravec", "Sorel",  "Varga",
    "Dunai",   "Ferro",   "Galan",   "Holm",    "Ivanek", "Juric",
    "Klee",    "Luther",  "Marez",   "Novak",   "Orlov",  "Prohaska"};

constexpr std::array<const char*, 20> kPlaceStems = {
    "Kelvag",  "Varsil",  "Dorna",   "Mirenz",  "Talov", "Ostrag",
    "Bruneck", "Savria",  "Lodez",   "Quvir",   "Resko", "Tarnow",
    "Umbra",   "Velden",  "Wissel",  "Yarvik",  "Zell",  "Arkena",
    "Borsk",   "Cresta"};

constexpr std::array<const char*, 8> kPlacePrefixes = {
    "North", "South", "East", "West", "New", "Old", "Upper", "Lower"};

constexpr std::array<const char*, 26> kTitleWords = {
    "shadow", "river",  "crown",  "winter", "garden", "silent", "golden",
    "last",   "first",  "hidden", "broken", "storm",  "night",  "summer",
    "iron",   "glass",  "secret", "lost",   "king",   "queen",  "tower",
    "bridge", "forest", "stone",  "fire",   "moon"};

constexpr std::array<const char*, 6> kTitlePatterns = {
    "The %s of %s", "Return to %s", "%s and the %s", "A %s of %s",
    "The %s %s",    "%s"};

constexpr std::array<const char*, 6> kClubSuffixes = {
    "United", "City", "Athletic", "Rovers", "FC", "Wanderers"};

std::string Capitalize(std::string s) {
  if (!s.empty()) {
    s[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(s[0])));
  }
  return s;
}

}  // namespace

NameFactory::NameFactory(uint64_t seed) : rng_(seed) {}

std::string NameFactory::PersonName() {
  std::string given = kGivenNames[rng_.Uniform(kGivenNames.size())];
  std::string surname = kSurnames[rng_.Uniform(kSurnames.size())];
  return given + " " + surname;
}

std::string NameFactory::PlaceName() {
  std::string stem = kPlaceStems[rng_.Uniform(kPlaceStems.size())];
  if (rng_.Bernoulli(0.4)) {
    return std::string(kPlacePrefixes[rng_.Uniform(kPlacePrefixes.size())]) +
           " " + stem;
  }
  return stem;
}

std::string NameFactory::WorkTitle() {
  const char* pattern = kTitlePatterns[rng_.Uniform(kTitlePatterns.size())];
  std::string a = Capitalize(kTitleWords[rng_.Uniform(kTitleWords.size())]);
  std::string b = Capitalize(kTitleWords[rng_.Uniform(kTitleWords.size())]);
  // Occasionally anchor a title on a place or person surname so titles
  // collide with other entity kinds (the "Albert" pitfall of Figure 1).
  if (rng_.Bernoulli(0.25)) {
    b = kPlaceStems[rng_.Uniform(kPlaceStems.size())];
  } else if (rng_.Bernoulli(0.15)) {
    b = kSurnames[rng_.Uniform(kSurnames.size())];
  }
  // kTitlePatterns entries consume at most two %s; pattern "%s" ignores b.
  if (std::string_view(pattern) == "%s") return a;
  if (std::string_view(pattern) == "Return to %s") {
    return StrFormat(pattern, b.c_str());
  }
  return StrFormat(pattern, a.c_str(), b.c_str());
}

std::string NameFactory::ClubName() {
  std::string stem = kPlaceStems[rng_.Uniform(kPlaceStems.size())];
  return stem + " " + kClubSuffixes[rng_.Uniform(kClubSuffixes.size())];
}

std::string NameFactory::LanguageName() {
  std::string stem = kPlaceStems[rng_.Uniform(kPlaceStems.size())];
  return stem + (rng_.Bernoulli(0.5) ? "ian" : "ese");
}

std::string NameFactory::ContentWord() {
  return kTitleWords[rng_.Uniform(kTitleWords.size())];
}

std::vector<std::string> NameFactory::PersonLemmas(const std::string& name) {
  std::vector<std::string> lemmas{name};
  std::vector<std::string> parts = SplitWhitespace(name);
  if (parts.size() == 2) {
    lemmas.push_back(parts[1]);  // Surname alone — highly ambiguous.
    lemmas.push_back(std::string(1, parts[0][0]) + ". " + parts[1]);
  }
  return lemmas;
}

std::vector<std::string> NameFactory::TitleLemmas(const std::string& title) {
  std::vector<std::string> lemmas{title};
  if (title.rfind("The ", 0) == 0) {
    lemmas.push_back(title.substr(4));
  } else if (title.rfind("A ", 0) == 0) {
    lemmas.push_back(title.substr(2));
  }
  return lemmas;
}

std::string NameFactory::ApplyTypo(std::string_view text, Rng* rng) {
  std::string s(text);
  if (s.size() < 3) return s;
  size_t pos = 1 + rng->Uniform(s.size() - 2);
  switch (rng->Uniform(3)) {
    case 0:  // Swap adjacent characters.
      std::swap(s[pos], s[pos - 1]);
      break;
    case 1:  // Drop a character.
      s.erase(pos, 1);
      break;
    default:  // Duplicate a character.
      s.insert(pos, 1, s[pos]);
      break;
  }
  return s;
}

}  // namespace webtab
