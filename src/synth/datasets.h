#ifndef WEBTAB_SYNTH_DATASETS_H_
#define WEBTAB_SYNTH_DATASETS_H_

#include <string>
#include <vector>

#include "synth/corpus_generator.h"
#include "synth/world_generator.h"
#include "table/annotation.h"

namespace webtab {

/// The four labeled table sets of Figure 5. `scale` in (0,1] shrinks the
/// table counts proportionally (Wiki Link at full scale is 6085 tables;
/// tests use scale ~0.05).
struct Datasets {
  std::vector<LabeledTable> wiki_manual;    // 36 tables, clean.
  std::vector<LabeledTable> web_manual;     // 371 tables, noisy.
  std::vector<LabeledTable> web_relations;  // 30 tables, relations-only.
  std::vector<LabeledTable> wiki_link;      // 6085 tables, entities-only.
};

/// Dataset presets mirroring Figure 5's sizes and noise contrast.
Datasets MakeDatasets(const World& world, double scale = 1.0,
                      uint64_t seed = 1234);

/// Figure 5 row: name, #tables, avg rows, entity/type/relation counts.
struct DatasetSummaryRow {
  std::string name;
  int64_t num_tables = 0;
  double avg_rows = 0.0;
  int64_t entity_annotations = 0;
  int64_t type_annotations = 0;
  int64_t relation_annotations = 0;
};

DatasetSummaryRow Summarize(const std::string& name,
                            const std::vector<LabeledTable>& tables);

}  // namespace webtab

#endif  // WEBTAB_SYNTH_DATASETS_H_
