#include "synth/datasets.h"

#include <algorithm>
#include <cmath>

namespace webtab {

namespace {

int ScaledCount(int full, double scale) {
  return std::max(2, static_cast<int>(std::lround(full * scale)));
}

/// Blanks the parts of the gold annotation a dataset does not label.
void RestrictGold(std::vector<LabeledTable>* tables, bool relations_only,
                  bool entities_only) {
  for (LabeledTable& lt : *tables) {
    lt.relations_only = relations_only;
    lt.entities_only = entities_only;
    if (relations_only) {
      for (auto& t : lt.gold.column_types) t = kNa;
      for (auto& row : lt.gold.cell_entities) {
        for (auto& e : row) e = kNa;
      }
    }
    if (entities_only) {
      for (auto& t : lt.gold.column_types) t = kNa;
      lt.gold.relations.clear();
    }
  }
}

}  // namespace

Datasets MakeDatasets(const World& world, double scale, uint64_t seed) {
  Datasets out;

  // Wiki Manual: 36 tables, avg 37 rows, clean text, headers mostly kept.
  CorpusSpec wiki_manual;
  wiki_manual.seed = seed + 1;
  wiki_manual.num_tables = ScaledCount(36, scale);
  wiki_manual.min_rows = 15;
  wiki_manual.max_rows = 60;
  wiki_manual.header_drop_prob = 0.05;
  wiki_manual.cell_typo_prob = 0.02;
  wiki_manual.cell_alt_lemma_prob = 0.25;
  wiki_manual.na_cell_prob = 0.03;
  out.wiki_manual = GenerateCorpus(world, wiki_manual);

  // Web Manual: 371 tables, avg 35 rows, noisy cells/headers/context.
  CorpusSpec web_manual;
  web_manual.seed = seed + 2;
  web_manual.num_tables = ScaledCount(371, scale);
  web_manual.min_rows = 10;
  web_manual.max_rows = 60;
  web_manual.header_drop_prob = 0.4;
  web_manual.header_synonym_prob = 0.75;
  web_manual.header_typo_prob = 0.15;
  web_manual.cell_typo_prob = 0.12;
  web_manual.cell_garnish_prob = 0.12;
  web_manual.cell_alt_lemma_prob = 0.5;
  web_manual.na_cell_prob = 0.1;
  out.web_manual = GenerateCorpus(world, web_manual);

  // Web Relations: 30 tables, avg 51 rows, only relations labeled.
  CorpusSpec web_relations;
  web_relations.seed = seed + 3;
  web_relations.num_tables = ScaledCount(30, scale);
  web_relations.min_rows = 35;
  web_relations.max_rows = 70;
  web_relations.header_drop_prob = 0.4;
  web_relations.header_synonym_prob = 0.75;
  web_relations.header_typo_prob = 0.15;
  web_relations.cell_typo_prob = 0.12;
  web_relations.cell_garnish_prob = 0.12;
  web_relations.cell_alt_lemma_prob = 0.5;
  web_relations.join_table_prob = 0.5;
  out.web_relations = GenerateCorpus(world, web_relations);
  RestrictGold(&out.web_relations, /*relations_only=*/true,
               /*entities_only=*/false);

  // Wiki Link: 6085 tables, avg 20 rows, only entities labeled.
  CorpusSpec wiki_link;
  wiki_link.seed = seed + 4;
  wiki_link.num_tables = ScaledCount(6085, scale);
  wiki_link.min_rows = 8;
  wiki_link.max_rows = 32;
  wiki_link.header_drop_prob = 0.05;
  wiki_link.cell_typo_prob = 0.02;
  wiki_link.cell_alt_lemma_prob = 0.3;
  wiki_link.na_cell_prob = 0.05;
  out.wiki_link = GenerateCorpus(world, wiki_link);
  RestrictGold(&out.wiki_link, /*relations_only=*/false,
               /*entities_only=*/true);

  return out;
}

DatasetSummaryRow Summarize(const std::string& name,
                            const std::vector<LabeledTable>& tables) {
  DatasetSummaryRow row;
  row.name = name;
  row.num_tables = static_cast<int64_t>(tables.size());
  int64_t rows = 0;
  for (const LabeledTable& lt : tables) {
    rows += lt.table.rows();
    row.entity_annotations += lt.gold.CountEntityLabels();
    row.type_annotations += lt.gold.CountTypeLabels();
    row.relation_annotations += lt.gold.CountRelationLabels();
  }
  row.avg_rows = row.num_tables > 0
                     ? static_cast<double>(rows) /
                           static_cast<double>(row.num_tables)
                     : 0.0;
  return row;
}

}  // namespace webtab
