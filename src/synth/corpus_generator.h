#ifndef WEBTAB_SYNTH_CORPUS_GENERATOR_H_
#define WEBTAB_SYNTH_CORPUS_GENERATOR_H_

#include <vector>

#include "synth/world_generator.h"
#include "table/annotation.h"

namespace webtab {

/// Noise model for generated tables. Wiki-style presets use low noise;
/// Web-style presets use higher noise (the paper: "cell, header, and
/// context texts in [Web Manual] are more noisy", §6.1).
struct CorpusSpec {
  uint64_t seed = 7;
  int num_tables = 100;
  int min_rows = 5;
  int max_rows = 60;

  double header_drop_prob = 0.15;     // Whole header row omitted.
  double header_synonym_prob = 0.5;   // Use an off-lemma header word.
  double header_typo_prob = 0.0;      // Corrupt the header string.
  double cell_typo_prob = 0.05;       // Corrupt cell text.
  double cell_garnish_prob = 0.0;     // Append web junk like " (1987)".
  double cell_alt_lemma_prob = 0.35;  // Use a non-primary lemma
                                      // ("Einstein" vs "Albert Einstein").
  double na_cell_prob = 0.04;         // Out-of-catalog string, gold = na.
  double numeric_col_prob = 0.35;     // Append a year/number column.
  double swap_cols_prob = 0.3;        // Object column before subject.
  double join_table_prob = 0.3;       // 3-column two-relation tables.
  double context_prob = 0.7;          // Emit textual context.
  /// Probability that a table is *themed*: all subject rows share one
  /// specific primary type (e.g. "List of mystery novels"), which then
  /// becomes the gold column type. Missing ∈ links make exactly these
  /// columns the LCA-over-generalization cases of Appendix F.
  double themed_table_prob = 0.5;
};

/// Header strings seen on the open Web for each role; some deliberately
/// have zero lemma overlap with the catalog type ("written by" vs
/// "novelist" — the Figure 1 pitfall).
struct HeaderPools;

/// Generates labeled tables by sampling rows from the world's *hidden
/// truth* (so tables also contain facts the catalog lacks). Gold labels:
/// the sampled entity per cell (kNa for distractor cells), the schema
/// types of the relation roles per column, and the relation per pair.
std::vector<LabeledTable> GenerateCorpus(const World& world,
                                         const CorpusSpec& spec);

}  // namespace webtab

#endif  // WEBTAB_SYNTH_CORPUS_GENERATOR_H_
