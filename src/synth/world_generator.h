#ifndef WEBTAB_SYNTH_WORLD_GENERATOR_H_
#define WEBTAB_SYNTH_WORLD_GENERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"

namespace webtab {

/// Size/noise knobs for the synthetic world (YAGO stand-in). Defaults are
/// laptop-scale but keep the paper's ambiguity regime: shared surname /
/// title-word pools give ~7-8 entity candidates per cell, and each entity
/// has 2+ direct types so the ancestor union per column reaches hundreds
/// of types.
struct WorldSpec {
  uint64_t seed = 42;

  int people_per_profession = 250;  // actors, directors, producers,
                                    // novelists, footballers, physicists.
  int num_movies = 700;
  int num_novels = 350;
  int num_clubs = 60;
  int num_countries = 30;
  int num_cities = 150;
  int num_languages = 40;

  /// Probability that one of an entity's direct ∈ links is dropped from
  /// the catalog (kept in the hidden truth) — §4.2.3 "missing links".
  double missing_elink_prob = 0.10;
  /// Probability that a leaf type's ⊆ link is dropped (Appendix F's
  /// "Universities in Toronto ⊆ Universities in Ontario" case).
  double missing_subtype_prob = 0.03;
  /// Fraction of true relation tuples withheld from the catalog. These
  /// appear in generated tables and serve as search ground truth (the
  /// DBPedia substitute).
  double hidden_tuple_fraction = 0.35;
  /// Relative size of each confuser relation vs. its primary.
  double confuser_fraction = 0.4;
};

/// One relation's complete extension (including tuples hidden from the
/// catalog) for generation and search evaluation.
struct TrueRelation {
  RelationId id = kNa;
  std::vector<std::pair<EntityId, EntityId>> tuples;  // Full truth.
};

/// The generated world: a deliberately *incomplete* public catalog plus
/// the hidden truth behind it.
struct World {
  Catalog catalog;

  // Hidden truth.
  std::vector<TrueRelation> true_relations;           // Indexed by relation.
  std::vector<std::vector<TypeId>> true_direct_types;  // Per entity.

  // Handles to the schema for corpus generation and benches.
  TypeId person = kNa, actor = kNa, director = kNa, producer = kNa,
         novelist = kNa, footballer = kNa, physicist = kNa;
  TypeId work = kNa, movie = kNa, novel = kNa;
  TypeId organization = kNa, football_club = kNa;
  TypeId place = kNa, country = kNa, city = kNa;
  TypeId language = kNa;
  RelationId acted_in = kNa, directed = kNa, produced = kNa,
             official_language = kNa, wrote = kNa, plays_for = kNa,
             born_in = kNa, located_in = kNa, died_in = kNa;
  /// Same-schema "confuser" relations (cameo_in vs acted_in, translated
  /// vs wrote, ...). Column types alone cannot tell them from their
  /// primaries — only relation annotations can (the Figure 9 mechanism,
  /// and the intro's "directed by vs. featuring George Clooney").
  RelationId cameo_in = kNa, second_unit_directed = kNa,
             executive_produced = kNa, spoken_language = kNa,
             translated = kNa;

  /// True primary type per entity (the most specific intended type) —
  /// used as gold column types.
  std::vector<TypeId> primary_type;

  /// Does the *hidden truth* contain tuple rel(e1, e2)?
  bool TrueTupleExists(RelationId rel, EntityId e1, EntityId e2) const;

  /// All true objects for (rel, subject) from the hidden truth.
  std::vector<EntityId> TrueObjectsOf(RelationId rel, EntityId e1) const;

  /// All true subjects for (rel, object) from the hidden truth.
  std::vector<EntityId> TrueSubjectsOf(RelationId rel, EntityId e2) const;
};

/// Builds the world deterministically from the spec.
World GenerateWorld(const WorldSpec& spec);

}  // namespace webtab

#endif  // WEBTAB_SYNTH_WORLD_GENERATOR_H_
