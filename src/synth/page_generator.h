#ifndef WEBTAB_SYNTH_PAGE_GENERATOR_H_
#define WEBTAB_SYNTH_PAGE_GENERATOR_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace webtab {

/// Renders tables into HTML pages sprinkled with the layout clutter that
/// the extraction filter must reject: navigation link-farms, form tables,
/// single-cell spacer tables. Exercises the §3.2 preprocessing pipeline
/// end to end (crawl substitute).
struct PageSpec {
  uint64_t seed = 99;
  int nav_tables_per_page = 1;
  int spacer_tables_per_page = 1;
  bool include_form_table = true;
};

/// Renders one page containing the given relational tables.
std::string RenderPage(const std::vector<Table>& tables,
                       const PageSpec& spec);

/// Renders a single table element (with <th> headers when present).
std::string RenderTableHtml(const Table& table);

}  // namespace webtab

#endif  // WEBTAB_SYNTH_PAGE_GENERATOR_H_
