#include "synth/page_generator.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace webtab {

namespace {

std::string Escape(const std::string& s) {
  std::string out = ReplaceAll(s, "&", "&amp;");
  out = ReplaceAll(out, "<", "&lt;");
  out = ReplaceAll(out, ">", "&gt;");
  return out;
}

std::string NavTable(Rng* rng) {
  std::string out = "<table class=\"nav\"><tr>";
  int n = 3 + static_cast<int>(rng->Uniform(4));
  for (int i = 0; i < n; ++i) {
    out += StrFormat(
        "<td><a href=\"/p%d\">Link %d</a> <a href=\"/q%d\">More</a> "
        "<a href=\"/r%d\">Extra</a></td>",
        i, i, i, i);
  }
  out += "</tr></table>";
  return out;
}

std::string SpacerTable() {
  return "<table><tr><td>&nbsp;</td></tr></table>";
}

std::string FormTable() {
  return "<table><tr><td><form action=\"/s\"><input name=\"q\"/></form>"
         "</td><td>Search</td></tr>"
         "<tr><td>Go</td><td><input type=\"submit\"/></td></tr></table>";
}

}  // namespace

std::string RenderTableHtml(const Table& table) {
  std::string out = "<table>";
  if (table.has_headers()) {
    out += "<tr>";
    for (int c = 0; c < table.cols(); ++c) {
      out += "<th>" + Escape(table.header(c)) + "</th>";
    }
    out += "</tr>";
  }
  for (int r = 0; r < table.rows(); ++r) {
    out += "<tr>";
    for (int c = 0; c < table.cols(); ++c) {
      out += "<td>" + Escape(table.cell(r, c)) + "</td>";
    }
    out += "</tr>";
  }
  out += "</table>";
  return out;
}

std::string RenderPage(const std::vector<Table>& tables,
                       const PageSpec& spec) {
  Rng rng(spec.seed);
  std::string out = "<html><head><title>Generated page</title></head><body>";
  for (int i = 0; i < spec.nav_tables_per_page; ++i) {
    out += NavTable(&rng);
  }
  for (const Table& table : tables) {
    if (!table.context().empty()) {
      out += "<p>" + Escape(table.context()) + "</p>";
    }
    out += RenderTableHtml(table);
    for (int i = 0; i < spec.spacer_tables_per_page; ++i) {
      out += SpacerTable();
    }
  }
  if (spec.include_form_table) out += FormTable();
  out += "</body></html>";
  return out;
}

}  // namespace webtab
