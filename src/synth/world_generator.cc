#include "synth/world_generator.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_set>

#include "catalog/catalog_builder.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "synth/names.h"

namespace webtab {

namespace {

/// Per-kind bookkeeping while generating.
struct EntityPool {
  std::vector<EntityId> ids;
};

/// Adds `count` person entities of the given profession type, each with a
/// nationality-flavoured secondary type (giving every entity >= 2 direct
/// types so missing-link removal leaves it reachable).
EntityPool MakePeople(CatalogBuilder* builder, NameFactory* names, Rng* rng,
                      TypeId profession, TypeId person_root,
                      const std::vector<TypeId>& nationality_types,
                      int count, std::vector<TypeId>* primary,
                      std::vector<std::vector<TypeId>>* true_types,
                      std::set<std::string>* used_names) {
  EntityPool pool;
  (void)person_root;
  for (int i = 0; i < count; ++i) {
    std::string name = names->PersonName();
    // Uniquify catalog names while keeping lemmas ambiguous.
    while (used_names->count(name)) {
      name += StrFormat(" %c", static_cast<char>('I' + rng->Uniform(4)));
    }
    used_names->insert(name);
    EntityId e = builder->AddEntity(name);
    for (const std::string& lemma : NameFactory::PersonLemmas(name)) {
      WEBTAB_CHECK_OK(builder->AddEntityLemma(e, lemma));
    }
    TypeId nat = nationality_types[rng->Uniform(nationality_types.size())];
    WEBTAB_CHECK_OK(builder->AddEntityType(e, profession));
    WEBTAB_CHECK_OK(builder->AddEntityType(e, nat));
    primary->push_back(profession);
    true_types->push_back({profession, nat});
    pool.ids.push_back(e);
  }
  return pool;
}

/// Adds `count` creative works under a genre chosen per work, plus a
/// decade type.
EntityPool MakeWorks(CatalogBuilder* builder, NameFactory* names, Rng* rng,
                     TypeId base_type, const std::vector<TypeId>& genres,
                     const std::vector<TypeId>& decades, int count,
                     std::vector<TypeId>* primary,
                     std::vector<std::vector<TypeId>>* true_types,
                     std::set<std::string>* used_names) {
  EntityPool pool;
  (void)base_type;
  for (int i = 0; i < count; ++i) {
    std::string title = names->WorkTitle();
    while (used_names->count(title)) {
      title += " " + std::string(1, static_cast<char>('2' + rng->Uniform(7)));
    }
    used_names->insert(title);
    EntityId e = builder->AddEntity(title);
    for (const std::string& lemma : NameFactory::TitleLemmas(title)) {
      WEBTAB_CHECK_OK(builder->AddEntityLemma(e, lemma));
    }
    TypeId genre = genres[rng->Uniform(genres.size())];
    TypeId decade = decades[rng->Uniform(decades.size())];
    WEBTAB_CHECK_OK(builder->AddEntityType(e, genre));
    WEBTAB_CHECK_OK(builder->AddEntityType(e, decade));
    primary->push_back(genre);
    true_types->push_back({genre, decade});
    pool.ids.push_back(e);
  }
  return pool;
}

EntityPool MakeSimpleEntities(
    CatalogBuilder* builder, Rng* rng, TypeId type, int count,
    const std::vector<std::string>& name_pool,
    std::vector<TypeId>* primary,
    std::vector<std::vector<TypeId>>* true_types,
    std::set<std::string>* used_names) {
  EntityPool pool;
  (void)rng;
  for (int i = 0; i < count; ++i) {
    std::string name = name_pool[i];
    while (used_names->count(name)) name += " *";
    used_names->insert(name);
    EntityId e = builder->AddEntity(name);
    std::string clean = ReplaceAll(name, " *", "");
    WEBTAB_CHECK_OK(builder->AddEntityLemma(e, clean));
    WEBTAB_CHECK_OK(builder->AddEntityType(e, type));
    primary->push_back(type);
    true_types->push_back({type});
    pool.ids.push_back(e);
  }
  return pool;
}

/// Samples `count` many-to-one style tuples: each subject gets exactly one
/// object.
void SampleFunctionalTuples(Rng* rng, const std::vector<EntityId>& subjects,
                            const std::vector<EntityId>& objects,
                            std::vector<std::pair<EntityId, EntityId>>* out) {
  for (EntityId s : subjects) {
    out->emplace_back(s, objects[rng->Uniform(objects.size())]);
  }
}

/// Samples many-to-many tuples: each subject gets 1..max_per_subject
/// distinct objects.
void SampleManyTuples(Rng* rng, const std::vector<EntityId>& subjects,
                      const std::vector<EntityId>& objects,
                      int max_per_subject,
                      std::vector<std::pair<EntityId, EntityId>>* out) {
  for (EntityId s : subjects) {
    int k = 1 + static_cast<int>(rng->Uniform(max_per_subject));
    std::unordered_set<EntityId> chosen;
    for (int i = 0; i < k; ++i) {
      chosen.insert(objects[rng->Uniform(objects.size())]);
    }
    for (EntityId o : chosen) out->emplace_back(s, o);
  }
}

}  // namespace

bool World::TrueTupleExists(RelationId rel, EntityId e1, EntityId e2) const {
  if (rel < 0 || rel >= static_cast<RelationId>(true_relations.size())) {
    return false;
  }
  const auto& tuples = true_relations[rel].tuples;
  return std::binary_search(tuples.begin(), tuples.end(),
                            std::make_pair(e1, e2));
}

std::vector<EntityId> World::TrueObjectsOf(RelationId rel,
                                           EntityId e1) const {
  std::vector<EntityId> out;
  if (rel < 0 || rel >= static_cast<RelationId>(true_relations.size())) {
    return out;
  }
  const auto& tuples = true_relations[rel].tuples;
  auto it = std::lower_bound(tuples.begin(), tuples.end(),
                             std::make_pair(e1, std::numeric_limits<
                                                    EntityId>::min()));
  for (; it != tuples.end() && it->first == e1; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<EntityId> World::TrueSubjectsOf(RelationId rel,
                                            EntityId e2) const {
  std::vector<EntityId> out;
  if (rel < 0 || rel >= static_cast<RelationId>(true_relations.size())) {
    return out;
  }
  for (const auto& [s, o] : true_relations[rel].tuples) {
    if (o == e2) out.push_back(s);
  }
  return out;
}

World GenerateWorld(const WorldSpec& spec) {
  Rng rng(spec.seed);
  NameFactory names(spec.seed ^ 0x9E3779B97F4A7C15ULL);
  CatalogBuilder builder;
  World world;

  // ---- Type hierarchy. ----
  auto add_type = [&](std::string_view name,
                      std::initializer_list<std::string_view> lemmas,
                      TypeId parent) {
    TypeId t = builder.AddType(name);
    for (std::string_view l : lemmas) {
      WEBTAB_CHECK_OK(builder.AddTypeLemma(t, l));
    }
    if (parent != kNa) WEBTAB_CHECK_OK(builder.AddSubtype(t, parent));
    return t;
  };

  world.person = add_type("person", {"person", "people", "name"}, kNa);
  world.actor = add_type("actor", {"actor", "actress", "cast", "starring"},
                         world.person);
  world.director = add_type("director", {"director", "directed by",
                                         "filmmaker"},
                            world.person);
  world.producer = add_type("producer", {"producer", "produced by"},
                            world.person);
  world.novelist = add_type("novelist", {"novelist", "author", "writer"},
                            world.person);
  world.footballer = add_type("footballer",
                              {"footballer", "player", "soccer player"},
                              world.person);
  world.physicist = add_type("physicist", {"physicist", "scientist"},
                             world.person);

  world.work = add_type("creative_work", {"work", "title"}, kNa);
  world.movie = add_type("movie", {"movie", "film", "title", "picture"},
                         world.work);
  world.novel = add_type("novel", {"novel", "book", "title"}, world.work);

  world.organization = add_type("organization", {"organization"}, kNa);
  world.football_club = add_type("football_club",
                                 {"club", "football club", "team"},
                                 world.organization);

  world.place = add_type("place", {"place", "location"}, kNa);
  world.country = add_type("country", {"country", "nation"}, world.place);
  world.city = add_type("city", {"city", "town", "location"}, world.place);

  world.language = add_type("language", {"language", "tongue"}, kNa);

  // Nationality categories (secondary person types) and decade categories
  // (secondary work types) — they deepen and widen the DAG.
  std::vector<TypeId> nationalities;
  for (int i = 0; i < 8; ++i) {
    NameFactory nat_names(spec.seed * 31 + i);
    std::string stem = nat_names.LanguageName();
    nationalities.push_back(
        add_type(StrFormat("%s_people", ToLower(stem).c_str()),
                 {StrFormat("%s people", stem.c_str())}, world.person));
  }
  std::vector<TypeId> movie_genres;
  for (const char* g :
       {"action_film", "drama_film", "comedy_film", "thriller_film",
        "horror_film", "romance_film", "western_film", "noir_film",
        "documentary_film", "animated_film", "fantasy_film", "war_film"}) {
    movie_genres.push_back(
        add_type(g, {ReplaceAll(g, "_", " ")}, world.movie));
  }
  std::vector<TypeId> novel_genres;
  for (const char* g :
       {"mystery_novel", "science_fiction_novel", "historical_novel",
        "romance_novel", "adventure_novel", "gothic_novel",
        "satirical_novel", "childrens_novel", "crime_novel"}) {
    novel_genres.push_back(
        add_type(g, {ReplaceAll(g, "_", " ")}, world.novel));
  }
  std::vector<TypeId> movie_decades;
  std::vector<TypeId> novel_decades;
  for (int d = 1950; d <= 2000; d += 10) {
    movie_decades.push_back(add_type(StrFormat("%ds_films", d),
                                     {StrFormat("%ds films", d)},
                                     world.movie));
    novel_decades.push_back(add_type(StrFormat("%ds_novels", d),
                                     {StrFormat("%ds novels", d)},
                                     world.novel));
  }

  // ---- Entities. ----
  std::set<std::string> used_names;
  std::vector<TypeId>& primary = world.primary_type;
  std::vector<std::vector<TypeId>>& true_types = world.true_direct_types;

  EntityPool actors = MakePeople(&builder, &names, &rng, world.actor,
                                 world.person, nationalities,
                                 spec.people_per_profession, &primary,
                                 &true_types, &used_names);
  EntityPool directors = MakePeople(&builder, &names, &rng, world.director,
                                    world.person, nationalities,
                                    spec.people_per_profession, &primary,
                                    &true_types, &used_names);
  EntityPool producers = MakePeople(&builder, &names, &rng, world.producer,
                                    world.person, nationalities,
                                    spec.people_per_profession, &primary,
                                    &true_types, &used_names);
  EntityPool novelists = MakePeople(&builder, &names, &rng, world.novelist,
                                    world.person, nationalities,
                                    spec.people_per_profession, &primary,
                                    &true_types, &used_names);
  EntityPool footballers = MakePeople(&builder, &names, &rng,
                                      world.footballer, world.person,
                                      nationalities,
                                      spec.people_per_profession, &primary,
                                      &true_types, &used_names);
  EntityPool physicists = MakePeople(&builder, &names, &rng,
                                     world.physicist, world.person,
                                     nationalities,
                                     spec.people_per_profession, &primary,
                                     &true_types, &used_names);
  (void)physicists;

  EntityPool movies = MakeWorks(&builder, &names, &rng, world.movie,
                                movie_genres, movie_decades,
                                spec.num_movies, &primary, &true_types,
                                &used_names);
  EntityPool novels = MakeWorks(&builder, &names, &rng, world.novel,
                                novel_genres, novel_decades,
                                spec.num_novels, &primary, &true_types,
                                &used_names);

  std::vector<std::string> club_names;
  for (int i = 0; i < spec.num_clubs; ++i) {
    club_names.push_back(names.ClubName());
  }
  EntityPool clubs = MakeSimpleEntities(&builder, &rng, world.football_club,
                                        spec.num_clubs, club_names,
                                        &primary, &true_types, &used_names);
  // Clubs get a short lemma (place stem) too — ambiguous with the city.
  for (size_t i = 0; i < clubs.ids.size(); ++i) {
    std::vector<std::string> parts = SplitWhitespace(club_names[i]);
    if (!parts.empty()) {
      WEBTAB_CHECK_OK(builder.AddEntityLemma(clubs.ids[i], parts[0]));
    }
  }

  std::vector<std::string> country_names;
  NameFactory country_factory(spec.seed * 7 + 1);
  for (int i = 0; i < spec.num_countries; ++i) {
    country_names.push_back(country_factory.PlaceName());
  }
  EntityPool countries = MakeSimpleEntities(&builder, &rng, world.country,
                                            spec.num_countries,
                                            country_names, &primary,
                                            &true_types, &used_names);

  std::vector<std::string> city_names;
  NameFactory city_factory(spec.seed * 7 + 2);
  for (int i = 0; i < spec.num_cities; ++i) {
    city_names.push_back(city_factory.PlaceName());
  }
  EntityPool cities = MakeSimpleEntities(&builder, &rng, world.city,
                                         spec.num_cities, city_names,
                                         &primary, &true_types, &used_names);

  std::vector<std::string> language_names;
  NameFactory lang_factory(spec.seed * 7 + 3);
  for (int i = 0; i < spec.num_languages; ++i) {
    language_names.push_back(lang_factory.LanguageName());
  }
  EntityPool languages = MakeSimpleEntities(&builder, &rng, world.language,
                                            spec.num_languages,
                                            language_names, &primary,
                                            &true_types, &used_names);

  // ---- Relations with full-truth tuple sets. ----
  auto declare = [&](std::string_view name, TypeId t1, TypeId t2,
                     RelationCardinality card) {
    return builder.AddRelation(name, t1, t2, card);
  };
  world.acted_in = declare("acted_in", world.movie, world.actor,
                           RelationCardinality::kManyToMany);
  world.directed = declare("directed", world.movie, world.director,
                           RelationCardinality::kManyToOne);
  world.produced = declare("produced", world.movie, world.producer,
                           RelationCardinality::kManyToMany);
  world.official_language = declare("official_language", world.country,
                                    world.language,
                                    RelationCardinality::kManyToOne);
  world.wrote = declare("wrote", world.novel, world.novelist,
                        RelationCardinality::kManyToOne);
  world.plays_for = declare("plays_for", world.footballer,
                            world.football_club,
                            RelationCardinality::kManyToOne);
  world.born_in = declare("born_in", world.person, world.city,
                          RelationCardinality::kManyToOne);
  world.located_in = declare("located_in", world.city, world.country,
                             RelationCardinality::kManyToOne);
  // died_in shares born_in's schema exactly — tables built from either are
  // indistinguishable by column types alone, so the relation annotation
  // carries real information (drives the Type vs Type+Rel gap, Figure 9).
  world.died_in = declare("died_in", world.person, world.city,
                          RelationCardinality::kManyToOne);
  // Same-schema confusers for each Figure 13 relation.
  world.cameo_in = declare("cameo_in", world.movie, world.actor,
                           RelationCardinality::kManyToMany);
  world.second_unit_directed =
      declare("second_unit_directed", world.movie, world.director,
              RelationCardinality::kManyToOne);
  world.executive_produced =
      declare("executive_produced", world.movie, world.producer,
              RelationCardinality::kManyToMany);
  world.spoken_language = declare("spoken_language", world.country,
                                  world.language,
                                  RelationCardinality::kManyToMany);
  world.translated = declare("translated", world.novel, world.novelist,
                             RelationCardinality::kManyToMany);

  std::vector<std::vector<std::pair<EntityId, EntityId>>> truth(14);
  SampleManyTuples(&rng, movies.ids, actors.ids, 4, &truth[0]);
  SampleFunctionalTuples(&rng, movies.ids, directors.ids, &truth[1]);
  SampleManyTuples(&rng, movies.ids, producers.ids, 2, &truth[2]);
  SampleFunctionalTuples(&rng, countries.ids, languages.ids, &truth[3]);
  SampleFunctionalTuples(&rng, novels.ids, novelists.ids, &truth[4]);
  SampleFunctionalTuples(&rng, footballers.ids, clubs.ids, &truth[5]);
  {
    // born_in / died_in over samples of people (same schema, different
    // extensions).
    std::vector<EntityId> born_people;
    std::vector<EntityId> died_people;
    for (const EntityPool* pool :
         {&actors, &directors, &producers, &novelists, &footballers}) {
      for (EntityId e : pool->ids) {
        if (rng.Bernoulli(0.5)) born_people.push_back(e);
        if (rng.Bernoulli(0.3)) died_people.push_back(e);
      }
    }
    SampleFunctionalTuples(&rng, born_people, cities.ids, &truth[6]);
    SampleFunctionalTuples(&rng, died_people, cities.ids, &truth[8]);
  }
  SampleFunctionalTuples(&rng, cities.ids, countries.ids, &truth[7]);

  // Confuser tuples: sampled over subsets of the same pools so the
  // extensions overlap in type but not in fact.
  auto subset = [&](const std::vector<EntityId>& ids) {
    std::vector<EntityId> out;
    for (EntityId e : ids) {
      if (rng.Bernoulli(spec.confuser_fraction)) out.push_back(e);
    }
    if (out.empty() && !ids.empty()) out.push_back(ids[0]);
    return out;
  };
  SampleManyTuples(&rng, subset(movies.ids), actors.ids, 2, &truth[9]);
  SampleFunctionalTuples(&rng, subset(movies.ids), directors.ids,
                         &truth[10]);
  SampleManyTuples(&rng, subset(movies.ids), producers.ids, 1, &truth[11]);
  SampleManyTuples(&rng, subset(countries.ids), languages.ids, 2,
                   &truth[12]);
  SampleManyTuples(&rng, subset(novels.ids), novelists.ids, 1, &truth[13]);

  RelationId rel_ids[14] = {
      world.acted_in,           world.directed,
      world.produced,           world.official_language,
      world.wrote,              world.plays_for,
      world.born_in,            world.located_in,
      world.died_in,            world.cameo_in,
      world.second_unit_directed, world.executive_produced,
      world.spoken_language,    world.translated};
  world.true_relations.assign(14, TrueRelation{});
  for (int i = 0; i < 14; ++i) {
    auto& tuples = truth[i];
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
    world.true_relations[rel_ids[i]].id = rel_ids[i];
    world.true_relations[rel_ids[i]].tuples = tuples;
    for (const auto& [s, o] : tuples) {
      if (!rng.Bernoulli(spec.hidden_tuple_fraction)) {
        WEBTAB_CHECK_OK(builder.AddTuple(rel_ids[i], s, o));
      }
    }
  }

  // ---- Inject catalog incompleteness. ----
  // Drop ∈ links only from entities that keep >= 1 other link.
  for (EntityId e = 0;
       e < static_cast<EntityId>(world.true_direct_types.size()); ++e) {
    const auto& types = world.true_direct_types[e];
    if (types.size() >= 2 && rng.Bernoulli(spec.missing_elink_prob)) {
      // Drop the *primary* link — the damaging case of Appendix F.
      builder.RemoveEntityType(e, types[0]);
    }
  }
  // Drop a few genre/decade ⊆ links (the type re-attaches to the root).
  std::vector<TypeId> leaf_types;
  leaf_types.insert(leaf_types.end(), movie_genres.begin(),
                    movie_genres.end());
  leaf_types.insert(leaf_types.end(), novel_genres.begin(),
                    novel_genres.end());
  leaf_types.insert(leaf_types.end(), movie_decades.begin(),
                    movie_decades.end());
  leaf_types.insert(leaf_types.end(), novel_decades.begin(),
                    novel_decades.end());
  for (TypeId t : leaf_types) {
    if (rng.Bernoulli(spec.missing_subtype_prob)) {
      TypeId parent = (std::find(movie_genres.begin(), movie_genres.end(),
                                 t) != movie_genres.end() ||
                       std::find(movie_decades.begin(), movie_decades.end(),
                                 t) != movie_decades.end())
                          ? world.movie
                          : world.novel;
      builder.RemoveSubtype(t, parent);
    }
  }

  Result<Catalog> catalog = builder.Build();
  WEBTAB_CHECK(catalog.ok()) << catalog.status().ToString();
  world.catalog = std::move(catalog.value());
  return world;
}

}  // namespace webtab
