#include "synth/corpus_generator.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "synth/names.h"

namespace webtab {

namespace {

/// Column-role description while assembling a table.
struct ColumnPlan {
  TypeId gold_type = kNa;    // Gold column type (theme or schema role).
  TypeId header_type = kNa;  // Schema role driving the header wording.
  std::vector<EntityId> entities;    // Per row; kNa for distractors.
  std::vector<std::string> texts;    // Rendered cell text.
  std::string header;
  bool numeric = false;
};

/// Off-catalog header synonyms per schema type: some overlap type lemmas,
/// some do not (the "written by" vs "author" case).
std::vector<std::string> HeaderChoices(const World& world, TypeId t) {
  if (t == world.movie) return {"Title", "Movie", "Film", "Feature"};
  if (t == world.novel) return {"Title", "Book", "Novel", "Work"};
  if (t == world.actor) return {"Actor", "Starring", "Cast", "Lead"};
  if (t == world.director) {
    return {"Director", "Directed by", "Helmed by"};
  }
  if (t == world.producer) return {"Producer", "Produced by"};
  if (t == world.novelist) {
    return {"Author", "Writer", "Written by", "Novelist"};
  }
  if (t == world.footballer) return {"Player", "Name", "Footballer"};
  if (t == world.football_club) return {"Club", "Team", "Plays for"};
  if (t == world.country) return {"Country", "Nation", "State"};
  if (t == world.city) return {"City", "Town", "Birthplace"};
  if (t == world.language) return {"Language", "Official language"};
  if (t == world.person) return {"Name", "Person"};
  return {"Column"};
}

std::string RenderEntityText(const World& world, EntityId e, Rng* rng,
                             const CorpusSpec& spec) {
  const auto& lemmas = world.catalog.entity(e).lemmas;
  size_t pick = 0;
  if (lemmas.size() > 1 && rng->Bernoulli(spec.cell_alt_lemma_prob)) {
    pick = 1 + rng->Uniform(lemmas.size() - 1);
  }
  std::string text = lemmas[pick];
  if (rng->Bernoulli(spec.cell_typo_prob)) {
    text = NameFactory::ApplyTypo(text, rng);
  }
  if (rng->Bernoulli(spec.cell_garnish_prob)) {
    text += StrFormat(" (%d)", static_cast<int>(rng->UniformInt(1950,
                                                                2009)));
  }
  return text;
}

/// A relation usable as a table backbone, with its role types.
struct Backbone {
  RelationId rel;
  TypeId subject_type;
  TypeId object_type;
};

std::vector<Backbone> Backbones(const World& world) {
  std::vector<Backbone> out;
  for (const TrueRelation& tr : world.true_relations) {
    if (tr.id == kNa || tr.tuples.empty()) continue;
    const RelationRecord& rec = world.catalog.relation(tr.id);
    out.push_back(Backbone{tr.id, rec.subject_type, rec.object_type});
  }
  return out;
}

/// Relations sharing the movie subject, for join-shaped tables.
std::vector<RelationId> MovieJoinPartners(const World& world) {
  return {world.acted_in, world.directed, world.produced};
}

}  // namespace

std::vector<LabeledTable> GenerateCorpus(const World& world,
                                         const CorpusSpec& spec) {
  Rng rng(spec.seed);
  NameFactory distractor_names(spec.seed ^ 0xABCDEF12345ULL);
  std::vector<Backbone> backbones = Backbones(world);
  WEBTAB_CHECK(!backbones.empty());
  std::vector<LabeledTable> corpus;
  corpus.reserve(spec.num_tables);

  for (int table_idx = 0; table_idx < spec.num_tables; ++table_idx) {
    int rows = static_cast<int>(
        rng.UniformInt(spec.min_rows, spec.max_rows));

    // --- Choose the backbone and sample subject rows. ---
    bool join = rng.Bernoulli(spec.join_table_prob);
    std::vector<ColumnPlan> plan;
    RelationId rel1 = kNa, rel2 = kNa;

    if (join) {
      // movie | partner1-object | partner2-object.
      std::vector<RelationId> partners = MovieJoinPartners(world);
      rng.Shuffle(&partners);
      rel1 = partners[0];
      rel2 = partners[1];
      const auto& movies = world.true_relations[rel1].tuples;
      ColumnPlan subject, obj1, obj2;
      subject.gold_type = world.movie;
      obj1.gold_type = world.catalog.relation(rel1).object_type;
      obj2.gold_type = world.catalog.relation(rel2).object_type;
      subject.header_type = subject.gold_type;
      obj1.header_type = obj1.gold_type;
      obj2.header_type = obj2.gold_type;
      int made = 0;
      int attempts = 0;
      while (made < rows && attempts < rows * 20) {
        ++attempts;
        EntityId m = movies[rng.Uniform(movies.size())].first;
        std::vector<EntityId> o1 = world.TrueObjectsOf(rel1, m);
        std::vector<EntityId> o2 = world.TrueObjectsOf(rel2, m);
        if (o1.empty() || o2.empty()) continue;
        subject.entities.push_back(m);
        obj1.entities.push_back(o1[rng.Uniform(o1.size())]);
        obj2.entities.push_back(o2[rng.Uniform(o2.size())]);
        ++made;
      }
      rows = made;
      plan = {std::move(subject), std::move(obj1), std::move(obj2)};
    } else {
      const Backbone& bb = backbones[rng.Uniform(backbones.size())];
      rel1 = bb.rel;
      const auto& tuples = world.true_relations[bb.rel].tuples;
      ColumnPlan subject, object;
      subject.gold_type = bb.subject_type;
      object.gold_type = bb.object_type;
      subject.header_type = bb.subject_type;
      object.header_type = bb.object_type;

      // Themed table: restrict subjects to one specific primary type
      // ("List of mystery novels") when the relation's subjects span
      // several; the gold column type becomes that specific type.
      const std::vector<std::pair<EntityId, EntityId>>* pool = &tuples;
      std::vector<std::pair<EntityId, EntityId>> themed_pool;
      if (rng.Bernoulli(spec.themed_table_prob)) {
        TypeId theme =
            world.primary_type[tuples[rng.Uniform(tuples.size())].first];
        if (theme != bb.subject_type) {
          for (const auto& t : tuples) {
            if (world.primary_type[t.first] == theme) {
              themed_pool.push_back(t);
            }
          }
          if (static_cast<int>(themed_pool.size()) >=
              std::max(4, spec.min_rows / 2)) {
            pool = &themed_pool;
            subject.gold_type = theme;
          }
        }
      }
      // Sample rows without replacement when possible: "List of X"
      // tables do not repeat their subject (also what the §4.4.1
      // unique-constraint extension assumes).
      std::vector<int> order(pool->size());
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
      }
      rng.Shuffle(&order);
      for (int r = 0; r < rows; ++r) {
        const auto& [s, o] =
            (*pool)[order[static_cast<size_t>(r) % order.size()]];
        subject.entities.push_back(s);
        object.entities.push_back(o);
      }
      plan = {std::move(subject), std::move(object)};
    }
    if (rows == 0) continue;

    // --- Distractor cells (gold = na). ---
    for (ColumnPlan& col : plan) {
      for (EntityId& e : col.entities) {
        if (rng.Bernoulli(spec.na_cell_prob)) e = kNa;
      }
    }

    // --- Render text. ---
    for (ColumnPlan& col : plan) {
      col.texts.resize(rows);
      for (int r = 0; r < rows; ++r) {
        if (col.entities[r] == kNa) {
          col.texts[r] = distractor_names.PersonName();
        } else {
          col.texts[r] = RenderEntityText(world, col.entities[r], &rng,
                                          spec);
        }
      }
      const auto choices = HeaderChoices(world, col.header_type);
      if (rng.Bernoulli(spec.header_synonym_prob)) {
        col.header = choices[rng.Uniform(choices.size())];
      } else {
        col.header = choices[0];
      }
      if (rng.Bernoulli(spec.header_typo_prob)) {
        col.header = NameFactory::ApplyTypo(col.header, &rng);
      }
    }

    // --- Optional numeric column (years). ---
    if (rng.Bernoulli(spec.numeric_col_prob)) {
      ColumnPlan numeric;
      numeric.numeric = true;
      numeric.header = "Year";
      numeric.gold_type = kNa;
      numeric.entities.assign(rows, kNa);
      numeric.texts.resize(rows);
      for (int r = 0; r < rows; ++r) {
        numeric.texts[r] =
            StrFormat("%d", static_cast<int>(rng.UniformInt(1950, 2009)));
      }
      plan.push_back(std::move(numeric));
    }

    // --- Column permutation. ---
    std::vector<int> perm(plan.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
    if (rng.Bernoulli(spec.swap_cols_prob)) rng.Shuffle(&perm);

    // --- Assemble Table + gold annotation. ---
    int cols = static_cast<int>(plan.size());
    LabeledTable labeled;
    labeled.table = Table(rows, cols);
    labeled.table.set_id(table_idx);
    labeled.gold = TableAnnotation::Empty(rows, cols);
    bool drop_headers = rng.Bernoulli(spec.header_drop_prob);
    std::vector<int> where(plan.size());  // plan index -> column index.
    for (int c = 0; c < cols; ++c) where[perm[c]] = c;

    for (int c = 0; c < cols; ++c) {
      const ColumnPlan& col = plan[perm[c]];
      if (!drop_headers) labeled.table.set_header(c, col.header);
      labeled.gold.column_types[c] = col.gold_type;
      for (int r = 0; r < rows; ++r) {
        labeled.table.set_cell(r, c, col.texts[r]);
        labeled.gold.cell_entities[r][c] = col.entities[r];
      }
    }

    // Gold relations on ordered pairs. Plan index 0 is always the subject
    // column of rel1; in join tables index 1 pairs with rel1 and index 2
    // with rel2 (both with subject at plan index 0).
    auto add_gold_relation = [&](int subj_plan, int obj_plan,
                                 RelationId rel) {
      int cs = where[subj_plan];
      int co = where[obj_plan];
      bool swapped = cs > co;
      int c1 = std::min(cs, co);
      int c2 = std::max(cs, co);
      labeled.gold.relations[{c1, c2}] =
          RelationCandidate{rel, swapped};
    };
    add_gold_relation(0, 1, rel1);
    if (join) add_gold_relation(0, 2, rel2);

    // --- Context. ---
    if (rng.Bernoulli(spec.context_prob)) {
      const RelationRecord& rec = world.catalog.relation(rel1);
      labeled.table.set_context(
          StrFormat("List of %s and %s",
                    ReplaceAll(rec.name, "_", " ").c_str(),
                    plan[0].header.empty() ? "entries"
                                           : ToLower(plan[0].header)
                                                 .c_str()));
    }
    corpus.push_back(std::move(labeled));
  }
  return corpus;
}

}  // namespace webtab
