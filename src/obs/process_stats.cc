#include "obs/process_stats.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

#if defined(__linux__)
#include <dirent.h>
#endif

namespace webtab {
namespace obs {

namespace {

/// Fallback uptime anchor: first call to ReadProcessStats(). On Linux
/// the real process start from /proc wins; elsewhere uptime is "since
/// observability first looked".
std::chrono::steady_clock::time_point ProcessAnchor() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return anchor;
}

#if defined(__linux__)
int64_t ReadRssBytes() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0, resident_pages = 0;
  const int got = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<int64_t>(resident_pages) * sysconf(_SC_PAGESIZE);
}

double ReadUptimeSeconds() {
  // System uptime minus this process's start time (both in seconds;
  // starttime is field 22 of /proc/self/stat, in clock ticks).
  double system_uptime = 0.0;
  {
    FILE* f = std::fopen("/proc/uptime", "r");
    if (f == nullptr) return -1.0;
    const int got = std::fscanf(f, "%lf", &system_uptime);
    std::fclose(f);
    if (got != 1) return -1.0;
  }
  FILE* f = std::fopen("/proc/self/stat", "r");
  if (f == nullptr) return -1.0;
  char buf[1024];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // comm (field 2) may contain spaces; fields 3.. start after "') '".
  const char* p = nullptr;
  for (size_t i = n; i > 0; --i) {
    if (buf[i - 1] == ')') {
      p = buf + i;
      break;
    }
  }
  if (p == nullptr) return -1.0;
  long long starttime_ticks = 0;
  int field = 2;  // fields already consumed: pid, comm
  while (*p != '\0' && field < 22) {
    while (*p == ' ') ++p;
    ++field;
    if (field == 22) {
      if (std::sscanf(p, "%lld", &starttime_ticks) != 1) return -1.0;
      break;
    }
    while (*p != '\0' && *p != ' ') ++p;
  }
  if (field != 22) return -1.0;
  const long ticks_per_s = sysconf(_SC_CLK_TCK);
  if (ticks_per_s <= 0) return -1.0;
  const double start_s =
      static_cast<double>(starttime_ticks) / static_cast<double>(ticks_per_s);
  const double uptime = system_uptime - start_s;
  return uptime >= 0.0 ? uptime : -1.0;
}

int64_t ReadOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  int64_t count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // Minus ".", "..", and the fd opendir itself holds.
  return count >= 3 ? count - 3 : 0;
}
#endif  // __linux__

}  // namespace

ProcessStats ReadProcessStats() {
  ProcessStats stats;
  const auto anchor = ProcessAnchor();
#if defined(__linux__)
  stats.rss_bytes = ReadRssBytes();
  stats.open_fds = ReadOpenFds();
  stats.uptime_s = ReadUptimeSeconds();
  if (stats.uptime_s < 0.0)
#endif
  {
    stats.uptime_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - anchor)
                         .count();
  }
  return stats;
}

void UpdateProcessGauges() {
  static Gauge* rss =
      MetricsRegistry::Get().GetGauge("process.rss_bytes");
  static Gauge* uptime =
      MetricsRegistry::Get().GetGauge("process.uptime_s");
  static Gauge* fds =
      MetricsRegistry::Get().GetGauge("process.open_fds");
  const ProcessStats stats = ReadProcessStats();
  rss->Set(stats.rss_bytes);
  uptime->Set(static_cast<int64_t>(stats.uptime_s));
  fds->Set(stats.open_fds);
}

}  // namespace obs
}  // namespace webtab
