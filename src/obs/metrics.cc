#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>

namespace webtab {
namespace obs {

namespace internal {

std::atomic<bool> g_metrics_enabled{true};

int ThreadShard() {
  // One stripe per thread, assigned round-robin at first use. Threads
  // outliving kMetricShards alias, which only costs occasional cache
  // line sharing — correctness never depends on exclusivity.
  static std::atomic<int> next{0};
  thread_local int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

// --- Histogram geometry ----------------------------------------------------
//
// Finite bucket i (1 <= i <= kBuckets - 2) covers
//   [kMinValue * G^(i-1), kMinValue * G^i)  with G = sqrt(2).
// The index is computed from the IEEE-754 exponent: with G = 2^(1/2),
// two buckets tile each power of two, so
//   i = floor(2 * log2(v / kMinValue)) + 1
// and log2 reduces to frexp plus one mantissa comparison — no libm
// transcendental on the record path.

namespace {

constexpr double kGrowth = 1.4142135623730951;  // sqrt(2)

/// Precomputed upper bounds, so queries and dumps agree bit-for-bit
/// with BucketIndex's arithmetic.
struct BucketTable {
  double upper[Histogram::kBuckets];
  BucketTable() {
    double edge = Histogram::kMinValue;
    upper[0] = Histogram::kMinValue;
    for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
      edge = Histogram::kMinValue * std::pow(kGrowth, i);
      upper[i] = edge;
    }
    // Overflow bucket: report its lower edge (the largest finite bound);
    // anything in it is ">= this".
    upper[Histogram::kBuckets - 1] = upper[Histogram::kBuckets - 2];
  }
};
const BucketTable& Buckets() {
  static const BucketTable table;
  return table;
}

}  // namespace

int Histogram::BucketIndex(double value) {
  if (!(value >= kMinValue)) return 0;  // also catches NaN
  // value = m * 2^e with m in [0.5, 1). Two buckets per octave: the
  // half-octave boundary within [0.5, 1) sits at 1/sqrt(2).
  int exp = 0;
  const double mantissa = std::frexp(value / kMinValue, &exp);
  // value/kMin in [2^(exp-1), 2^exp); index of log2*2:
  //   lower half (m < 1/sqrt2): 2*(exp-1)
  //   upper half              : 2*(exp-1) + 1
  constexpr double kInvSqrt2 = 0.7071067811865476;
  int idx = 2 * (exp - 1) + (mantissa >= kInvSqrt2 ? 1 : 0) + 1;
  if (idx < 1) idx = 1;
  if (idx > kBuckets - 1) idx = kBuckets - 1;
  return idx;
}

double Histogram::BucketUpperBound(int i) {
  if (i < 0) i = 0;
  if (i > kBuckets - 1) i = kBuckets - 1;
  return Buckets().upper[i];
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (const Shard& s : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += static_cast<double>(
                    s.sum_micro.load(std::memory_order_relaxed)) *
                1e-6;
  }
  // A dump racing a record can see the bucket increment before the
  // count increment (or vice versa); reconcile so Percentile's rank
  // arithmetic never walks past the bucket mass.
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  snap.count = bucket_total;
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: the ceil(p * count)'th sample, 1-based (p = 0 -> 1st).
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * count));
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return Histogram::BucketUpperBound(static_cast<int>(i));
    }
  }
  return Histogram::BucketUpperBound(Histogram::kBuckets - 1);
}

// --- Registry --------------------------------------------------------------

struct MetricsRegistry::Impl {
  std::mutex mu;
  // deques: grow without moving existing elements, so handed-out
  // pointers stay valid for the process lifetime.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*, std::less<>> counter_by_name;
  std::map<std::string, Gauge*, std::less<>> gauge_by_name;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name;
};

MetricsRegistry::Impl* MetricsRegistry::impl() const {
  // Leaked singleton: metrics outlive static destruction order, so
  // worker threads may record during shutdown without UB.
  static Impl* impl = new Impl();
  return impl;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counter_by_name.find(name);
  if (it != i->counter_by_name.end()) return it->second;
  i->counters.emplace_back();
  Counter* c = &i->counters.back();
  i->counter_by_name.emplace(std::string(name), c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->gauge_by_name.find(name);
  if (it != i->gauge_by_name.end()) return it->second;
  i->gauges.emplace_back();
  Gauge* g = &i->gauges.back();
  i->gauge_by_name.emplace(std::string(name), g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histogram_by_name.find(name);
  if (it != i->histogram_by_name.end()) return it->second;
  i->histograms.emplace_back();
  Histogram* h = &i->histograms.back();
  i->histogram_by_name.emplace(std::string(name), h);
  return h;
}

std::vector<MetricDump> MetricsRegistry::Dump() const {
  Impl* i = impl();
  // Copy the name maps under the lock, read the metrics outside it
  // (reads are lock-free; registration never invalidates pointers).
  std::vector<std::pair<std::string, Counter*>> counters;
  std::vector<std::pair<std::string, Gauge*>> gauges;
  std::vector<std::pair<std::string, Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    counters.assign(i->counter_by_name.begin(), i->counter_by_name.end());
    gauges.assign(i->gauge_by_name.begin(), i->gauge_by_name.end());
    histograms.assign(i->histogram_by_name.begin(),
                      i->histogram_by_name.end());
  }
  std::vector<MetricDump> out;
  out.reserve(counters.size() + gauges.size() + histograms.size());
  for (auto& [name, c] : counters) {
    MetricDump d;
    d.name = name;
    d.kind = MetricDump::Kind::kCounter;
    d.value = c->Value();
    out.push_back(std::move(d));
  }
  for (auto& [name, g] : gauges) {
    MetricDump d;
    d.name = name;
    d.kind = MetricDump::Kind::kGauge;
    d.value = g->Value();
    out.push_back(std::move(d));
  }
  for (auto& [name, h] : histograms) {
    MetricDump d;
    d.name = name;
    d.kind = MetricDump::Kind::kHistogram;
    d.histogram = h->Snapshot();
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricDump& a, const MetricDump& b) {
              return a.name < b.name;
            });
  return out;
}

size_t MetricsRegistry::MetricCount() const {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  return i->counter_by_name.size() + i->gauge_by_name.size() +
         i->histogram_by_name.size();
}

namespace {

/// Maps a dotted metric name onto the exposition grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*. The "webtab_" prefix guarantees a legal
/// first character even for names starting with a digit; every other
/// out-of-alphabet byte becomes '_'. Sanitization can collide distinct
/// dotted names ("a.b" and "a_b"); RenderPrometheus de-duplicates so
/// the exposition never declares the same family twice.
std::string PromName(const std::string& name) {
  std::string out = "webtab_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Escapes a label value per the text exposition format: backslash,
/// double quote, and line feed.
std::string PromEscapeLabel(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Escapes HELP text: backslash and line feed (quotes are legal there).
std::string PromEscapeHelp(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void AppendNumber(double v, std::string* out) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  // Sanitized family names already emitted; a second dotted name
  // mapping to the same sanitized name gets a _dupN suffix (Dump() is
  // name-sorted, so suffixes are deterministic across renders).
  std::map<std::string, int> used;
  for (const MetricDump& d : Dump()) {
    std::string name = PromName(d.name);
    int& uses = used[name];
    ++uses;
    if (uses > 1) name += "_dup" + std::to_string(uses);
    // One HELP + TYPE block per family. For histograms the family
    // declaration covers the _bucket/_sum/_count series that follow —
    // that is the exposition-format contract, and the conformance test
    // checks all three stay inside the declared block.
    out += "# HELP " + name + " webtab metric " + PromEscapeHelp(d.name) +
           "\n";
    switch (d.kind) {
      case MetricDump::Kind::kCounter:
        out += "# TYPE " + name + " counter\n" + name + " ";
        AppendNumber(static_cast<double>(d.value), &out);
        out += "\n";
        break;
      case MetricDump::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n" + name + " ";
        AppendNumber(static_cast<double>(d.value), &out);
        out += "\n";
        break;
      case MetricDump::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < d.histogram.buckets.size(); ++i) {
          cumulative += d.histogram.buckets[i];
          if (d.histogram.buckets[i] == 0 &&
              i + 1 != d.histogram.buckets.size()) {
            continue;  // sparse exposition: only buckets with mass
          }
          std::string le;
          if (i + 1 == d.histogram.buckets.size()) {
            le = "+Inf";
          } else {
            AppendNumber(Histogram::BucketUpperBound(static_cast<int>(i)),
                         &le);
          }
          out += name + "_bucket{le=\"" + PromEscapeLabel(le) + "\"} ";
          AppendNumber(static_cast<double>(cumulative), &out);
          out += "\n";
        }
        out += name + "_sum ";
        AppendNumber(d.histogram.sum, &out);
        out += "\n" + name + "_count ";
        AppendNumber(static_cast<double>(d.histogram.count), &out);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace webtab
