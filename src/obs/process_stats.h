#ifndef WEBTAB_OBS_PROCESS_STATS_H_
#define WEBTAB_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace webtab {
namespace obs {

/// Point-in-time liveness signals for this process, read from /proc on
/// Linux (fields report 0 on platforms or sandboxes where the source is
/// unavailable — absence of /proc must not break serving).
struct ProcessStats {
  int64_t rss_bytes = 0;  // resident set size
  double uptime_s = 0.0;  // seconds since process start
  int64_t open_fds = 0;   // open file descriptors
};

ProcessStats ReadProcessStats();

/// Reads ProcessStats and publishes them as registry gauges:
/// process.rss_bytes, process.uptime_s (whole seconds),
/// process.open_fds. Called by the stats response and the time-series
/// collector tick; cheap enough for a 1s cadence (three /proc reads).
void UpdateProcessGauges();

}  // namespace obs
}  // namespace webtab

#endif  // WEBTAB_OBS_PROCESS_STATS_H_
