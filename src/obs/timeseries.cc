#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace webtab {
namespace obs {

TimeSeriesStore::TimeSeriesStore(const TimeSeriesOptions& options)
    : options_(options) {
  if (options_.tick_seconds <= 0.0) options_.tick_seconds = 1.0;
  if (options_.capacity < 1) options_.capacity = 1;
  if (options_.max_series < 1) options_.max_series = 1;
}

void TimeSeriesStore::Tick(const std::vector<MetricDump>& dump) {
  std::lock_guard<std::mutex> lock(mu_);
  const int cap = options_.capacity;
  const int64_t tick = ticks_;
  const int slot = static_cast<int>(tick % cap);
  for (const MetricDump& m : dump) {
    auto it = series_.find(m.name);
    if (it == series_.end()) {
      if (series_.size() >= static_cast<size_t>(options_.max_series)) {
        ++dropped_updates_;
        continue;
      }
      Series s;
      s.kind = m.kind;
      s.first_tick = tick;
      if (m.kind == MetricDump::Kind::kHistogram) {
        s.hbuckets.assign(static_cast<size_t>(cap) * Histogram::kBuckets, 0);
        s.hsum.assign(cap, 0.0);
        s.prev_buckets.assign(Histogram::kBuckets, 0);
      } else {
        s.slots.assign(cap, 0);
      }
      it = series_.emplace(m.name, std::move(s)).first;
    }
    Series& s = it->second;
    switch (s.kind) {
      case MetricDump::Kind::kCounter: {
        // Delta vs the previous tick; a drop in the raw value means the
        // counter restarted, so the new raw value is the whole delta.
        int64_t delta = m.value;
        if (s.has_prev && m.value >= s.prev_raw) delta = m.value - s.prev_raw;
        s.slots[slot] = delta;
        s.prev_raw = m.value;
        break;
      }
      case MetricDump::Kind::kGauge: {
        s.slots[slot] = m.value;
        s.prev_raw = m.value;
        break;
      }
      case MetricDump::Kind::kHistogram: {
        uint32_t* out = s.hbuckets.data() +
                        static_cast<size_t>(slot) * Histogram::kBuckets;
        const size_t nb = std::min<size_t>(Histogram::kBuckets,
                                           m.histogram.buckets.size());
        double tick_sum = m.histogram.sum;
        if (s.has_prev && m.histogram.sum >= s.prev_sum) {
          tick_sum = m.histogram.sum - s.prev_sum;
        }
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          const uint64_t cur = b < nb ? m.histogram.buckets[b] : 0;
          uint64_t delta = cur;
          if (s.has_prev && cur >= s.prev_buckets[b]) {
            delta = cur - s.prev_buckets[b];
          }
          out[b] = static_cast<uint32_t>(
              std::min<uint64_t>(delta, std::numeric_limits<uint32_t>::max()));
          s.prev_buckets[b] = cur;
        }
        s.hsum[slot] = tick_sum;
        s.prev_sum = m.histogram.sum;
        break;
      }
    }
    s.has_prev = true;
  }
  ++ticks_;
}

int TimeSeriesStore::WindowSlots(double window_s) const {
  if (ticks_ == 0) return 0;
  int want = static_cast<int>(std::lround(window_s / options_.tick_seconds));
  if (want < 1) want = 1;
  const int64_t retained = std::min<int64_t>(ticks_, options_.capacity);
  return static_cast<int>(std::min<int64_t>(want, retained));
}

void TimeSeriesStore::RollupLocked(const std::string& name, const Series& s,
                                   int slots, SeriesRollup* out) const {
  out->name = name;
  out->kind = s.kind;
  const int cap = options_.capacity;
  // Absolute tick range [begin, ticks_), clipped to the series' life.
  int64_t begin = ticks_ - slots;
  if (begin < s.first_tick) begin = s.first_tick;
  const int n = static_cast<int>(ticks_ - begin);
  out->samples = n;
  out->window_s = n * options_.tick_seconds;
  if (n <= 0) return;

  if (s.kind == MetricDump::Kind::kHistogram) {
    out->hist.buckets.assign(Histogram::kBuckets, 0);
    double sum = 0.0;
    uint64_t count = 0;
    for (int64_t t = begin; t < ticks_; ++t) {
      const size_t slot = static_cast<size_t>(t % cap);
      const uint32_t* row = s.hbuckets.data() + slot * Histogram::kBuckets;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        out->hist.buckets[b] += row[b];
        count += row[b];
      }
      sum += s.hsum[slot];
    }
    out->hist.count = count;
    out->hist.sum = sum;
    out->avg = count > 0 ? sum / static_cast<double>(count) : 0.0;
    return;
  }

  int64_t total = 0;
  int64_t mn = std::numeric_limits<int64_t>::max();
  int64_t mx = std::numeric_limits<int64_t>::min();
  for (int64_t t = begin; t < ticks_; ++t) {
    const int64_t v = s.slots[static_cast<size_t>(t % cap)];
    total += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  out->min = mn;
  out->max = mx;
  out->avg = static_cast<double>(total) / n;
  out->last = s.prev_raw;
  if (s.kind == MetricDump::Kind::kCounter) {
    out->delta = total;
    out->rate_per_s = out->window_s > 0
                          ? static_cast<double>(total) / out->window_s
                          : 0.0;
  }
}

std::vector<SeriesRollup> TimeSeriesStore::Query(double window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesRollup> out;
  const int slots = WindowSlots(window_s);
  if (slots == 0) return out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    out.emplace_back();
    RollupLocked(name, s, slots, &out.back());
  }
  return out;
}

bool TimeSeriesStore::QueryOne(std::string_view name, double window_s,
                               SeriesRollup* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return false;
  const int slots = WindowSlots(window_s);
  if (slots == 0) return false;
  *out = SeriesRollup();
  RollupLocked(it->first, it->second, slots, out);
  return true;
}

int64_t TimeSeriesStore::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

int64_t TimeSeriesStore::dropped_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_updates_;
}

size_t TimeSeriesStore::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, s] : series_) {
    bytes += name.size() + sizeof(Series);
    bytes += s.slots.capacity() * sizeof(int64_t);
    bytes += s.hbuckets.capacity() * sizeof(uint32_t);
    bytes += s.hsum.capacity() * sizeof(double);
    bytes += s.prev_buckets.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace obs
}  // namespace webtab
