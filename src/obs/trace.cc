#include "obs/trace.h"

#include <cstring>

namespace webtab {
namespace obs {

namespace {
thread_local RequestTrace* t_current_trace = nullptr;
}  // namespace

RequestTrace* CurrentTrace() { return t_current_trace; }

ScopedTraceAttach::ScopedTraceAttach(RequestTrace* trace)
    : previous_(t_current_trace) {
  t_current_trace = trace;
}

ScopedTraceAttach::~ScopedTraceAttach() { t_current_trace = previous_; }

void RequestTrace::Clear() {
  num_stages_ = 0;
  num_counters_ = 0;
  depth_ = 0;
  balanced_ = true;
  overflowed_ = false;
}

void RequestTrace::Leave(const char* name, int depth, double ms) {
  if (depth_ != depth + 1) {
    // A span closed at a depth its Enter never established — only
    // possible when spans are destroyed out of construction order
    // (manual misuse; RAII scoping cannot produce it).
    balanced_ = false;
  }
  depth_ = depth;
  // Merge by (name, depth): instrumentation sites use static strings,
  // so pointer equality is the fast path; strcmp catches identical
  // names from distinct translation units.
  for (int i = 0; i < num_stages_; ++i) {
    Stage& s = stages_[i];
    if (s.depth == depth &&
        (s.name == name || std::strcmp(s.name, name) == 0)) {
      s.ms += ms;
      ++s.count;
      return;
    }
  }
  if (num_stages_ >= kMaxStages) {
    overflowed_ = true;
    return;
  }
  stages_[num_stages_++] = Stage{name, depth, ms, 1};
}

void RequestTrace::AddCounter(const char* name, int64_t delta) {
  for (int i = 0; i < num_counters_; ++i) {
    CounterEntry& c = counters_[i];
    if (c.name == name || std::strcmp(c.name, name) == 0) {
      c.value += delta;
      return;
    }
  }
  if (num_counters_ >= kMaxCounters) {
    overflowed_ = true;
    return;
  }
  counters_[num_counters_++] = CounterEntry{name, delta};
}

double RequestTrace::RootStageMillis() const {
  double sum = 0.0;
  for (int i = 0; i < num_stages_; ++i) {
    if (stages_[i].depth == 0) sum += stages_[i].ms;
  }
  return sum;
}

TraceSummary TraceSummary::From(const RequestTrace& trace,
                                double total_ms) {
  TraceSummary summary;
  summary.stages.reserve(trace.num_stages());
  for (int i = 0; i < trace.num_stages(); ++i) {
    summary.stages.push_back(trace.stage(i));
  }
  summary.counters.reserve(trace.num_counters());
  for (int i = 0; i < trace.num_counters(); ++i) {
    summary.counters.push_back(trace.counter(i));
  }
  summary.total_ms = total_ms;
  summary.balanced = trace.balanced();
  summary.overflowed = trace.overflowed();
  return summary;
}

}  // namespace obs
}  // namespace webtab
