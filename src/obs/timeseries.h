#ifndef WEBTAB_OBS_TIMESERIES_H_
#define WEBTAB_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace webtab {
namespace obs {

/// Fixed-memory historical store over MetricsRegistry dumps (see
/// src/obs/README.md for the retention math). A collector calls Tick()
/// at a fixed cadence with the current registry dump; the store rolls
/// each metric into a per-series ring buffer:
///  - counters are stored as per-tick deltas (a raw value lower than
///    the previous tick's is treated as a counter reset, and the new
///    raw value becomes the delta);
///  - gauges are stored as last-observed values;
///  - histograms are stored as per-tick bucket deltas, so any window of
///    ticks can be merged back into an exact HistogramSnapshot of just
///    that window (same sqrt(2) percentile guarantee as live
///    snapshots).
///
/// Memory is fixed after warm-up: every series preallocates its full
/// ring at creation, the ring never grows, and at most max_series
/// series are ever created (later names are dropped and counted).
/// Tick() and Query() take an internal mutex — the store is for the
/// collector thread and wire-protocol readers, never the request hot
/// path.
struct TimeSeriesOptions {
  /// Seconds between collector ticks; only used to convert a queried
  /// window_s into a slot count and deltas into rates. The store does
  /// not read clocks — cadence is the caller's contract.
  double tick_seconds = 1.0;
  /// Ring slots per series. 600 slots at 1s ticks = a 10-minute window.
  int capacity = 600;
  /// Hard cap on distinct series; keeps worst-case memory fixed even if
  /// something registers unbounded metric names.
  int max_series = 256;
};

/// Windowed aggregate of one series, as returned by Query().
struct SeriesRollup {
  std::string name;
  MetricDump::Kind kind = MetricDump::Kind::kCounter;
  /// Ticks that contributed (less than requested when the series is
  /// younger than the window).
  int samples = 0;
  /// The window actually covered, in seconds (samples * tick_seconds).
  double window_s = 0.0;

  // Counters: sum of per-tick deltas over the window and its rate.
  int64_t delta = 0;
  double rate_per_s = 0.0;

  // Gauges: last / min / max / mean of the per-tick observed values.
  // (For counters these describe the per-tick deltas; last is the
  // latest raw counter value.)
  int64_t last = 0;
  int64_t min = 0;
  int64_t max = 0;
  double avg = 0.0;

  // Histograms: bucket-exact merge of the window's per-tick deltas;
  // query percentiles with hist.Percentile(p).
  HistogramSnapshot hist;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(const TimeSeriesOptions& options = {});

  /// Rolls one registry dump into the rings. Call at a fixed cadence
  /// (options().tick_seconds); ticks are the store's only clock.
  void Tick(const std::vector<MetricDump>& dump);

  /// Rollups for every series over the trailing `window_s` seconds
  /// (clamped to the retained window), sorted by name.
  std::vector<SeriesRollup> Query(double window_s) const;

  /// Single-series variant; returns false when the name was never
  /// ticked. Cheaper than Query() for dashboards polling a fixed set.
  bool QueryOne(std::string_view name, double window_s,
                SeriesRollup* out) const;

  /// Total ticks observed since construction.
  int64_t ticks() const;
  /// Distinct series currently retained (bounded by max_series).
  size_t series_count() const;
  /// Dump entries ignored because max_series was already reached.
  int64_t dropped_updates() const;
  /// Actual bytes held by ring storage (fixed once every live metric
  /// has been seen once).
  size_t MemoryBytes() const;

  const TimeSeriesOptions& options() const { return options_; }

 private:
  /// One ring. Slot for absolute tick t lives at t % capacity; a slot
  /// is valid for the trailing min(capacity, ticks_ - first_tick)
  /// ticks. Counter/gauge series use `slots`; histogram series use the
  /// flat `hbuckets` (capacity * Histogram::kBuckets) plus per-tick
  /// `hsum`, and keep the previous raw snapshot for delta computation.
  struct Series {
    MetricDump::Kind kind = MetricDump::Kind::kCounter;
    int64_t first_tick = 0;
    bool has_prev = false;

    std::vector<int64_t> slots;   // counter deltas / gauge values
    int64_t prev_raw = 0;         // counters: last raw value seen

    std::vector<uint32_t> hbuckets;     // per-tick bucket deltas, flat
    std::vector<double> hsum;           // per-tick sum deltas
    std::vector<uint64_t> prev_buckets; // last raw bucket counts
    double prev_sum = 0.0;
  };

  /// Converts window_s into a slot count in [1, retained ticks].
  int WindowSlots(double window_s) const;
  void RollupLocked(const std::string& name, const Series& s, int slots,
                    SeriesRollup* out) const;

  TimeSeriesOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Series, std::less<>> series_;
  int64_t ticks_ = 0;
  int64_t dropped_updates_ = 0;
};

}  // namespace obs
}  // namespace webtab

#endif  // WEBTAB_OBS_TIMESERIES_H_
