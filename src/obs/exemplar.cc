#include "obs/exemplar.h"

#include <algorithm>
#include <chrono>

namespace webtab {
namespace obs {

namespace {
double SteadyNowMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ExemplarBuffer::ExemplarBuffer(int capacity)
    : capacity_(std::max(1, capacity)) {}

void ExemplarBuffer::Record(RequestExemplar exemplar) {
  exemplar.recorded_at_ms = SteadyNowMillis();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < static_cast<size_t>(capacity_)) {
    ring_.push_back(std::move(exemplar));
  } else {
    ring_[static_cast<size_t>(total_ % capacity_)] = std::move(exemplar);
  }
  ++total_;
}

std::vector<RequestExemplar> ExemplarBuffer::Snapshot() const {
  const double now_ms = SteadyNowMillis();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestExemplar> out;
  out.reserve(ring_.size());
  // Newest first: walk back from the last written slot.
  for (int64_t i = total_ - 1; i >= total_ - static_cast<int64_t>(ring_.size());
       --i) {
    out.push_back(ring_[static_cast<size_t>(i % capacity_)]);
    out.back().age_s = (now_ms - out.back().recorded_at_ms) / 1000.0;
  }
  return out;
}

int64_t ExemplarBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace obs
}  // namespace webtab
