#ifndef WEBTAB_OBS_TRACE_H_
#define WEBTAB_OBS_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/timer.h"

namespace webtab {
namespace obs {

/// Per-request trace: a fixed-capacity set of named stages (wall-clock
/// durations, merged by (name, depth)) plus a fixed-capacity set of
/// named integer counters. Everything lives inline — attaching a trace
/// to a request and recording spans through the annotation pipeline or
/// the search kernel performs zero allocations, which is why the
/// search_bench zero-steady-state-allocation CHECK holds with tracing
/// enabled.
///
/// A trace is attached to the current thread with ScopedTraceAttach;
/// TraceSpan and TraceAddCounter find it through a thread-local, so the
/// instrumented layers (annotate/, inference/, search/) need no
/// plumbing changes and cost one thread-local load + branch when no
/// trace is attached.
///
/// Not thread-safe: one trace belongs to the one worker thread
/// executing the request.
class RequestTrace {
 public:
  static constexpr int kMaxStages = 24;
  static constexpr int kMaxCounters = 12;

  struct Stage {
    const char* name = nullptr;  // static string (instrumentation site)
    int depth = 0;               // nesting depth at entry (root = 0)
    double ms = 0.0;             // summed wall time across merged spans
    int64_t count = 0;           // number of spans merged in
  };
  struct CounterEntry {
    const char* name = nullptr;
    int64_t value = 0;
  };

  /// Forgets stages/counters and rearms the balance check. Reuse across
  /// requests (worker-state member) instead of constructing per request.
  void Clear();

  // --- Span bookkeeping (called by TraceSpan). ---
  /// Returns the depth the span runs at.
  int Enter() { return depth_++; }
  void Leave(const char* name, int depth, double ms);

  /// Adds `delta` to the named counter (merged by name pointer, then by
  /// string content for distinct instantiation sites).
  void AddCounter(const char* name, int64_t delta);

  /// True while Enter/Leave calls have balanced and neither table
  /// overflowed. A trace that finished with open spans (depth() != 0)
  /// is reported unbalanced by the serving layer rather than trusted.
  bool balanced() const { return balanced_ && depth_ == 0; }
  int depth() const { return depth_; }
  /// True when a stage or counter was dropped for lack of capacity.
  bool overflowed() const { return overflowed_; }

  int num_stages() const { return num_stages_; }
  const Stage& stage(int i) const { return stages_[i]; }
  int num_counters() const { return num_counters_; }
  const CounterEntry& counter(int i) const { return counters_[i]; }

  /// Sum of root-level (depth 0) stage durations — nested spans are
  /// already contained in their parents, so this is the traced fraction
  /// of the request without double counting.
  double RootStageMillis() const;

 private:
  Stage stages_[kMaxStages];
  CounterEntry counters_[kMaxCounters];
  int num_stages_ = 0;
  int num_counters_ = 0;
  int depth_ = 0;
  bool balanced_ = true;
  bool overflowed_ = false;
};

/// The trace the current thread is recording into; nullptr when none.
RequestTrace* CurrentTrace();

/// Attaches `trace` to the current thread for the scope's lifetime,
/// restoring the previous attachment on destruction (attachments nest).
class ScopedTraceAttach {
 public:
  explicit ScopedTraceAttach(RequestTrace* trace);
  ~ScopedTraceAttach();

  ScopedTraceAttach(const ScopedTraceAttach&) = delete;
  ScopedTraceAttach& operator=(const ScopedTraceAttach&) = delete;

 private:
  RequestTrace* previous_;
};

/// RAII stage span. `name` must be a static string. When no trace is
/// attached, construction is a thread-local load and a branch — no
/// clock read.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : trace_(CurrentTrace()), name_(name) {
    if (trace_ != nullptr) {
      depth_ = trace_->Enter();
      timer_.Restart();
    }
  }
  ~TraceSpan() { End(); }

  /// Closes the span before scope exit (idempotent; the destructor
  /// then no-ops). For stages that end mid-block.
  void End() {
    if (trace_ != nullptr) {
      trace_->Leave(name_, depth_, timer_.ElapsedMillis());
      trace_ = nullptr;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  RequestTrace* trace_;
  const char* name_;
  int depth_ = 0;
  WallTimer timer_;
};

/// Counter convenience mirroring TraceSpan's no-trace fast path.
inline void TraceAddCounter(const char* name, int64_t delta) {
  if (RequestTrace* trace = CurrentTrace()) trace->AddCounter(name, delta);
}

/// Wire/bench-facing copy of a finished trace (responses own their
/// data; the RequestTrace itself is worker-state and gets reused).
struct TraceSummary {
  std::vector<RequestTrace::Stage> stages;
  std::vector<RequestTrace::CounterEntry> counters;
  double total_ms = 0.0;
  bool balanced = true;
  bool overflowed = false;

  static TraceSummary From(const RequestTrace& trace, double total_ms);
};

}  // namespace obs
}  // namespace webtab

#endif  // WEBTAB_OBS_TRACE_H_
