#ifndef WEBTAB_OBS_EXEMPLAR_H_
#define WEBTAB_OBS_EXEMPLAR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace webtab {
namespace obs {

/// One retained slow request: identity, timing, and the full trace
/// breakdown that was recorded while it ran. Stage/counter names inside
/// the TraceSummary are static instrumentation-site strings, so keeping
/// the summary past the request is safe.
struct RequestExemplar {
  uint64_t request_id = 0;
  std::string kind;    // "search:<engine>" / "annotate"
  std::string detail;  // normalized query / table name
  uint64_t snapshot_version = 0;
  double queue_ms = 0.0;
  double work_ms = 0.0;
  /// Steady-clock milliseconds at Record() time; Snapshot() converts it
  /// to an age so callers see "how long ago", immune to wall-clock
  /// jumps.
  double recorded_at_ms = 0.0;
  double age_s = 0.0;  // filled by Snapshot()
  TraceSummary trace;
};

/// Ring of the last `capacity` over-threshold request traces, so a slow
/// p99 event is still inspectable minutes after it happened (the wire
/// {"op":"debug"}). Record() is mutex-guarded and allocates — it runs
/// only on the already-slow path, never on fast requests.
class ExemplarBuffer {
 public:
  explicit ExemplarBuffer(int capacity = 32);

  void Record(RequestExemplar exemplar);

  /// Retained exemplars, newest first, with age_s filled in.
  std::vector<RequestExemplar> Snapshot() const;

  /// Exemplars ever recorded (>= retained size; the difference is how
  /// many the ring has already forgotten).
  int64_t total_recorded() const;
  int capacity() const { return capacity_; }

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::vector<RequestExemplar> ring_;
  int64_t total_ = 0;
};

}  // namespace obs
}  // namespace webtab

#endif  // WEBTAB_OBS_EXEMPLAR_H_
