#ifndef WEBTAB_OBS_METRICS_H_
#define WEBTAB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace webtab {
namespace obs {

/// Process-wide observability primitives (see src/obs/README.md for the
/// naming scheme and the overhead contract). Design constraints, in
/// order:
///  - the record path (Counter::Add, Histogram::Record) never allocates,
///    never locks, and touches only a shard-local cache line — safe in
///    the zero-allocation search kernel and under TSan from any thread;
///  - readers (stats dumps, Prometheus exposition) merge shards on
///    demand; a dump racing a record sees each increment either before
///    or after, never torn (all slots are relaxed atomics);
///  - registration (name -> metric) takes a mutex exactly once per
///    name; hot paths hold the returned pointer, which stays valid for
///    the process lifetime.

/// Number of independent shards per metric. Threads are striped across
/// shards by a cheap thread-local id, so concurrent writers from
/// different threads rarely share a cache line.
inline constexpr int kMetricShards = 16;

namespace internal {
/// Stable per-thread stripe in [0, kMetricShards).
int ThreadShard();

/// Global record-path switch (see MetricsRegistry::SetEnabled). A
/// relaxed load on every Record/Add; disabled means the record path
/// does nothing at all (the overhead-measurement baseline).
extern std::atomic<bool> g_metrics_enabled;
inline bool Enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
}  // namespace internal

/// Monotonic counter. Add is a shard-local relaxed fetch_add.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    if (!internal::Enabled()) return;
    shards_[internal::ThreadShard()].v.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (queue depth, generation, ...).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!internal::Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Mergeable, read-time view of one histogram (or a merge of several):
/// per-bucket counts plus count/sum. Percentile queries answer from the
/// bucket boundaries, so the estimate is conservative: the returned
/// value is the *upper* bound of the bucket holding the requested rank,
/// and the exact sample is guaranteed to lie within one bucket growth
/// factor (sqrt(2)) below it. Buckets are shared by every Histogram:
/// bucket 0 holds values < kMinValue, bucket i covers
/// [kMinValue * G^(i-1), kMinValue * G^i), the last bucket is overflow.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;

  /// Folds `other` in (shard merge / cross-worker aggregation).
  void Merge(const HistogramSnapshot& other);

  /// Nearest-rank percentile over the buckets; p in [0, 1]. Returns the
  /// upper bound of the bucket containing the rank'th sample (0 when
  /// empty). The exact sample s satisfies result / G <= s <= result
  /// except in the underflow/overflow buckets, where the bound is
  /// one-sided.
  double Percentile(double p) const;

  double Mean() const { return count > 0 ? sum / count : 0.0; }
};

/// Log-bucketed latency/size histogram. Record is two shard-local
/// relaxed adds plus a branch-free bucket index (frexp-based — no libm
/// call); no allocation, no locks. Values are unit-agnostic; by
/// convention every *_ms metric records milliseconds.
class Histogram {
 public:
  /// Bucket geometry: 0.001 (1us when recording ms) growing by sqrt(2)
  /// per bucket; 62 finite buckets span ~1us .. ~2.3e6 ms, plus one
  /// underflow (index 0) and one overflow (index kBuckets - 1).
  static constexpr int kBuckets = 64;
  static constexpr double kMinValue = 1e-3;

  /// Index of the bucket covering `value` (clamped into range).
  static int BucketIndex(double value);
  /// Upper bound of bucket `i` (inclusive upper edge used by
  /// Percentile; the overflow bucket reports its lower edge).
  static double BucketUpperBound(int i);

  void Record(double value) {
    if (!internal::Enabled()) return;
    Shard& s = shards_[internal::ThreadShard()];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    // Sum as fixed-point nanos-of-unit to keep the add lock-free and
    // exact enough for a mean (doubles have no atomic fetch_add
    // pre-C++20 on all targets; 1e-6 resolution loses nothing at ms
    // granularity).
    s.sum_micro.fetch_add(static_cast<int64_t>(value * 1e6),
                          std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Convenience single-value queries (merge shards internally).
  uint64_t Count() const { return Snapshot().count; }
  double Percentile(double p) const { return Snapshot().Percentile(p); }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum_micro{0};
  };
  Shard shards_[kMetricShards];
};

/// One named metric in a registry dump.
struct MetricDump {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t value = 0;           // counter / gauge
  HistogramSnapshot histogram; // histogram
};

/// Process-wide name -> metric table. Lookup interns the name under a
/// mutex (first call per name constructs the metric); the returned
/// pointer never moves or dies, so call sites cache it:
///
///   static obs::Counter* hits =
///       obs::MetricsRegistry::Get().GetCounter("serve.cache_hits");
///   hits->Add();
///
/// Metric names are lowercase dot-separated paths ("serve.annotate_ms");
/// the Prometheus exposition maps '.' to '_' and prefixes "webtab_".
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Kills or revives every record path in the process (reads still
  /// work). Used by the benches to measure instrumentation overhead:
  /// enabled-vs-disabled runs differ only by the record-path work.
  static void SetEnabled(bool enabled) {
    internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() { return internal::Enabled(); }

  /// Consistent-enough dump of every registered metric, sorted by name.
  std::vector<MetricDump> Dump() const;

  /// Prometheus text exposition (one `# TYPE` block per metric;
  /// histograms emit cumulative `_bucket{le=...}` series plus _sum and
  /// _count).
  std::string RenderPrometheus() const;

  /// Zeroes nothing but forgets nothing: tests that need isolation
  /// should use unique metric names instead — registered metrics are
  /// process-lifetime by design. (Provided only to reset the enabled
  /// flag and assert registry invariants in tests.)
  size_t MetricCount() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl* impl() const;
};

}  // namespace obs
}  // namespace webtab

#endif  // WEBTAB_OBS_METRICS_H_
