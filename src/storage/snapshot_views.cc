#include "storage/snapshot_views.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "index/lemma_probe.h"
#include "search/posting_cursor.h"

namespace webtab {
namespace storage {

namespace {

struct SectionBytes {
  const uint8_t* base;
  uint64_t size;
};

template <typename T>
Status GetArray(SectionBytes s, BlobRef ref, std::span<const T>* out) {
  if (ref.offset > s.size) {
    return Status::ParseError("blob offset out of bounds");
  }
  if (ref.offset % alignof(T) != 0) {
    return Status::ParseError("misaligned blob");
  }
  if (ref.count > (s.size - ref.offset) / sizeof(T)) {
    return Status::ParseError("blob extends past section end");
  }
  *out = std::span<const T>(reinterpret_cast<const T*>(s.base + ref.offset),
                            ref.count);
  return Status::Ok();
}

Status CheckMonotonic(std::span<const uint64_t> ends, uint64_t limit,
                      const char* what) {
  uint64_t prev = 0;
  for (uint64_t e : ends) {
    if (e < prev || e > limit) {
      return Status::ParseError(std::string("corrupt offsets in ") + what);
    }
    prev = e;
  }
  return Status::Ok();
}

/// Every value in [min, limit) — file-provided ids that index other
/// arrays of the snapshot must be range-checked once at open so
/// accessors never read outside the mapping, even for corrupt files
/// opened with checksum verification off.
Status CheckIdRange(std::span<const int32_t> ids, int32_t limit,
                    const char* what, int32_t min = 0) {
  for (int32_t id : ids) {
    if (id < min || id >= limit) {
      return Status::ParseError(std::string("id out of range in ") + what);
    }
  }
  return Status::Ok();
}

Status GetArena(SectionBytes s, StringArenaRef ref, uint64_t expected_count,
                ArenaView* out, const char* what) {
  WEBTAB_RETURN_IF_ERROR(GetArray(s, ref.ends, &out->ends));
  if (out->ends.size() != expected_count) {
    return Status::ParseError(std::string("arena count mismatch in ") +
                              what);
  }
  if (ref.bytes.offset > s.size ||
      ref.bytes.count > s.size - ref.bytes.offset) {
    return Status::ParseError(std::string("arena bytes out of bounds in ") +
                              what);
  }
  out->bytes = reinterpret_cast<const char*>(s.base + ref.bytes.offset);
  return CheckMonotonic(out->ends, ref.bytes.count, what);
}

template <typename T>
Status GetCsr(SectionBytes s, CsrRef ref, uint64_t expected_rows,
              CsrView<T>* out, const char* what) {
  WEBTAB_RETURN_IF_ERROR(GetArray(s, ref.row_ends, &out->row_ends));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, ref.values, &out->values));
  if (out->row_ends.size() != expected_rows) {
    return Status::ParseError(std::string("csr row count mismatch in ") +
                              what);
  }
  return CheckMonotonic(out->row_ends, out->values.size(), what);
}

/// Row range [begin, end) for row i of a shared ends array.
inline std::pair<uint64_t, uint64_t> RowRange(
    std::span<const uint64_t> ends, uint64_t i) {
  return {i == 0 ? 0 : ends[i - 1], ends[i]};
}

uint64_t PairKey(EntityId e1, EntityId e2) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(e1)) << 32) |
         static_cast<uint32_t>(e2);
}

/// Binary-searches a sorted-by-name id array; returns kNa when absent.
template <typename NameFn>
int32_t FindByName(std::span<const int32_t> ids, std::string_view name,
                   NameFn name_of) {
  auto it = std::lower_bound(
      ids.begin(), ids.end(), name,
      [&](int32_t id, std::string_view n) { return name_of(id) < n; });
  if (it != ids.end() && name_of(*it) == name) return *it;
  return kNa;
}

/// Binary-searches a sorted string arena; returns the index or -1.
int64_t FindToken(const ArenaView& arena, std::string_view token) {
  uint64_t lo = 0, hi = arena.size();
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (arena.Get(mid) < token) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < arena.size() && arena.Get(lo) == token) {
    return static_cast<int64_t>(lo);
  }
  return -1;
}

}  // namespace

// --- SnapshotCatalogView --------------------------------------------------

Status SnapshotCatalogView::Init(const uint8_t* base, uint64_t size) {
  if (size < sizeof(CatalogHeader)) {
    return Status::ParseError("catalog section too small");
  }
  std::memcpy(&header_, base, sizeof(header_));
  if (header_.num_types < 0 || header_.num_entities < 0 ||
      header_.num_relations < 0) {
    return Status::ParseError("negative catalog counts");
  }
  SectionBytes s{base, size};
  const uint64_t nt = header_.num_types;
  const uint64_t ne = header_.num_entities;
  const uint64_t nr = header_.num_relations;

  WEBTAB_RETURN_IF_ERROR(
      GetArena(s, header_.type_names, nt, &type_names_, "type names"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.type_lemma_ends,
                                  &type_lemma_ends_));
  if (type_lemma_ends_.size() != nt) {
    return Status::ParseError("type lemma ends count mismatch");
  }
  WEBTAB_RETURN_IF_ERROR(GetArena(
      s, header_.type_lemmas,
      nt == 0 ? 0 : type_lemma_ends_.back(), &type_lemmas_, "type lemmas"));
  WEBTAB_RETURN_IF_ERROR(CheckMonotonic(type_lemma_ends_,
                                        type_lemmas_.size(),
                                        "type lemma ends"));
  WEBTAB_RETURN_IF_ERROR(
      GetCsr(s, header_.type_parents, nt, &type_parents_, "type parents"));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.type_children, nt,
                                &type_children_, "type children"));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.type_direct_entities, nt,
                                &type_direct_entities_,
                                "type direct entities"));

  WEBTAB_RETURN_IF_ERROR(
      GetArena(s, header_.entity_names, ne, &entity_names_, "entity names"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.entity_lemma_ends,
                                  &entity_lemma_ends_));
  if (entity_lemma_ends_.size() != ne) {
    return Status::ParseError("entity lemma ends count mismatch");
  }
  WEBTAB_RETURN_IF_ERROR(GetArena(s, header_.entity_lemmas,
                                  ne == 0 ? 0 : entity_lemma_ends_.back(),
                                  &entity_lemmas_, "entity lemmas"));
  WEBTAB_RETURN_IF_ERROR(CheckMonotonic(entity_lemma_ends_,
                                        entity_lemmas_.size(),
                                        "entity lemma ends"));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.entity_direct_types, ne,
                                &entity_direct_types_,
                                "entity direct types"));

  WEBTAB_RETURN_IF_ERROR(GetArena(s, header_.relation_names, nr,
                                  &relation_names_, "relation names"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.relation_meta,
                                  &relation_meta_));
  if (relation_meta_.size() != nr) {
    return Status::ParseError("relation meta count mismatch");
  }
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.tuples, nr, &tuples_, "tuples"));

  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.fwd_key_ends, &fwd_key_ends_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.fwd_keys, &fwd_keys_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.fwd_value_ends,
                                  &fwd_value_ends_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.fwd_values, &fwd_values_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.rev_key_ends, &rev_key_ends_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.rev_keys, &rev_keys_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.rev_value_ends,
                                  &rev_value_ends_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.rev_values, &rev_values_));
  if (fwd_key_ends_.size() != nr || rev_key_ends_.size() != nr ||
      fwd_value_ends_.size() != fwd_keys_.size() ||
      rev_value_ends_.size() != rev_keys_.size()) {
    return Status::ParseError("tuple index shape mismatch");
  }
  WEBTAB_RETURN_IF_ERROR(CheckMonotonic(fwd_key_ends_, fwd_keys_.size(),
                                        "fwd key ends"));
  WEBTAB_RETURN_IF_ERROR(CheckMonotonic(fwd_value_ends_,
                                        fwd_values_.size(),
                                        "fwd value ends"));
  WEBTAB_RETURN_IF_ERROR(CheckMonotonic(rev_key_ends_, rev_keys_.size(),
                                        "rev key ends"));
  WEBTAB_RETURN_IF_ERROR(CheckMonotonic(rev_value_ends_,
                                        rev_values_.size(),
                                        "rev value ends"));

  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.pair_keys, &pair_keys_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.pair_rel_ends,
                                  &pair_rel_ends_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.pair_rels, &pair_rels_));
  if (pair_rel_ends_.size() != pair_keys_.size()) {
    return Status::ParseError("pair index shape mismatch");
  }
  WEBTAB_RETURN_IF_ERROR(CheckMonotonic(pair_rel_ends_, pair_rels_.size(),
                                        "pair rel ends"));

  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.types_by_name,
                                  &types_by_name_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.entities_by_name,
                                  &entities_by_name_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.relations_by_name,
                                  &relations_by_name_));
  if (types_by_name_.size() != nt || entities_by_name_.size() != ne ||
      relations_by_name_.size() != nr) {
    return Status::ParseError("name index count mismatch");
  }

  // File-provided ids flow back into this section's arrays (name arenas,
  // CSR rows); range-check them once here so a corrupt file opened with
  // checksum verification off fails cleanly instead of reading outside
  // the mapping.
  const int32_t t_lim = header_.num_types;
  const int32_t e_lim = header_.num_entities;
  const int32_t r_lim = header_.num_relations;
  if (header_.root_type < kNa || header_.root_type >= t_lim) {
    return Status::ParseError("root type out of range");
  }
  WEBTAB_RETURN_IF_ERROR(
      CheckIdRange(type_parents_.values, t_lim, "type parents"));
  WEBTAB_RETURN_IF_ERROR(
      CheckIdRange(type_children_.values, t_lim, "type children"));
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(type_direct_entities_.values, e_lim,
                                      "type direct entities"));
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(entity_direct_types_.values, t_lim,
                                      "entity direct types"));
  for (const RelationMetaDisk& meta : relation_meta_) {
    if (meta.subject_type < 0 || meta.subject_type >= t_lim ||
        meta.object_type < 0 || meta.object_type >= t_lim ||
        meta.cardinality < 0 || meta.cardinality > 3) {
      return Status::ParseError("relation meta out of range");
    }
  }
  const std::span<const int32_t> tuple_ids(
      reinterpret_cast<const int32_t*>(tuples_.values.data()),
      tuples_.values.size() * 2);
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(tuple_ids, e_lim, "tuples"));
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(fwd_keys_, e_lim, "fwd keys"));
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(fwd_values_, e_lim, "fwd values"));
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(rev_keys_, e_lim, "rev keys"));
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(rev_values_, e_lim, "rev values"));
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(pair_rels_, r_lim, "pair rels"));
  WEBTAB_RETURN_IF_ERROR(
      CheckIdRange(types_by_name_, t_lim, "types by name"));
  WEBTAB_RETURN_IF_ERROR(
      CheckIdRange(entities_by_name_, e_lim, "entities by name"));
  WEBTAB_RETURN_IF_ERROR(
      CheckIdRange(relations_by_name_, r_lim, "relations by name"));
  return Status::Ok();
}

namespace {

/// Non-decreasing order under `less` — the precondition of every binary
/// search an accessor runs over file-provided arrays.
template <typename T, typename Less>
Status CheckSorted(std::span<const T> values, const char* what, Less less) {
  for (size_t i = 1; i < values.size(); ++i) {
    if (less(values[i], values[i - 1])) {
      return Status::ParseError(std::string("unsorted array: ") + what);
    }
  }
  return Status::Ok();
}

template <typename T>
Status CheckSorted(std::span<const T> values, const char* what) {
  return CheckSorted(values, what,
                     [](const T& a, const T& b) { return a < b; });
}

Status CheckArenaSorted(const ArenaView& arena, const char* what) {
  for (uint64_t i = 1; i < arena.size(); ++i) {
    if (arena.Get(i) < arena.Get(i - 1)) {
      return Status::ParseError(std::string("unsorted arena: ") + what);
    }
  }
  return Status::Ok();
}

}  // namespace

Status SnapshotCatalogView::DeepValidate() const {
  // Name indexes: binary searched by name.
  WEBTAB_RETURN_IF_ERROR(CheckSorted<TypeId>(
      types_by_name_, "types by name", [&](TypeId a, TypeId b) {
        return type_names_.Get(a) < type_names_.Get(b);
      }));
  WEBTAB_RETURN_IF_ERROR(CheckSorted<EntityId>(
      entities_by_name_, "entities by name", [&](EntityId a, EntityId b) {
        return entity_names_.Get(a) < entity_names_.Get(b);
      }));
  WEBTAB_RETURN_IF_ERROR(CheckSorted<RelationId>(
      relations_by_name_, "relations by name",
      [&](RelationId a, RelationId b) {
        return relation_names_.Get(a) < relation_names_.Get(b);
      }));

  // Tuple rows and forward/reverse key runs: binary searched per
  // relation (HasTuple, ObjectsOf, SubjectsOf).
  for (uint64_t b = 0; b < fwd_key_ends_.size(); ++b) {
    WEBTAB_RETURN_IF_ERROR(CheckSorted(tuples_.Row(b), "relation tuples"));
    auto [fb, fe] = RowRange(fwd_key_ends_, b);
    WEBTAB_RETURN_IF_ERROR(
        CheckSorted(fwd_keys_.subspan(fb, fe - fb), "fwd keys"));
    auto [rb, re] = RowRange(rev_key_ends_, b);
    WEBTAB_RETURN_IF_ERROR(
        CheckSorted(rev_keys_.subspan(rb, re - rb), "rev keys"));
  }
  WEBTAB_RETURN_IF_ERROR(CheckSorted(pair_keys_, "pair keys"));

  // Type graph: closure traversals assume a DAG with mirrored
  // parent/child edges. Kahn's algorithm over parent edges: if peeling
  // zero-out-degree types (toward ancestors) cannot consume every type,
  // the remainder is a cycle.
  const int32_t nt = header_.num_types;
  std::vector<int32_t> remaining_parents(nt);
  std::vector<TypeId> ready;
  uint64_t parent_edges = 0;
  for (TypeId t = 0; t < nt; ++t) {
    auto parents = type_parents_.Row(t);
    remaining_parents[t] = static_cast<int32_t>(parents.size());
    parent_edges += parents.size();
    if (parents.empty()) ready.push_back(t);
  }
  // Child adjacency for the peel, from the mirrored children rows; first
  // verify the mirror itself (every child edge is a parent edge and the
  // edge counts agree).
  uint64_t child_edges = 0;
  for (TypeId p = 0; p < nt; ++p) {
    for (TypeId c : type_children_.Row(p)) {
      ++child_edges;
      auto parents = type_parents_.Row(c);
      if (std::find(parents.begin(), parents.end(), p) == parents.end()) {
        return Status::ParseError(
            "type child edge without mirrored parent edge");
      }
    }
  }
  if (child_edges != parent_edges) {
    return Status::ParseError("type parent/child edge counts disagree");
  }
  int32_t peeled = 0;
  while (!ready.empty()) {
    TypeId p = ready.back();
    ready.pop_back();
    ++peeled;
    for (TypeId c : type_children_.Row(p)) {
      if (--remaining_parents[c] == 0) ready.push_back(c);
    }
  }
  if (peeled != nt) {
    return Status::ParseError("type graph contains a cycle");
  }
  return Status::Ok();
}

std::string_view SnapshotCatalogView::TypeName(TypeId t) const {
  WEBTAB_CHECK(ValidType(t)) << "bad type id " << t;
  return type_names_.Get(t);
}

int32_t SnapshotCatalogView::NumTypeLemmas(TypeId t) const {
  WEBTAB_CHECK(ValidType(t)) << "bad type id " << t;
  auto [begin, end] = RowRange(type_lemma_ends_, t);
  return static_cast<int32_t>(end - begin);
}

std::string_view SnapshotCatalogView::TypeLemma(TypeId t, int32_t i) const {
  WEBTAB_CHECK(ValidType(t)) << "bad type id " << t;
  return type_lemmas_.Get((t == 0 ? 0 : type_lemma_ends_[t - 1]) + i);
}

std::span<const TypeId> SnapshotCatalogView::TypeParents(TypeId t) const {
  WEBTAB_CHECK(ValidType(t)) << "bad type id " << t;
  return type_parents_.Row(t);
}

std::span<const TypeId> SnapshotCatalogView::TypeChildren(TypeId t) const {
  WEBTAB_CHECK(ValidType(t)) << "bad type id " << t;
  return type_children_.Row(t);
}

std::span<const EntityId> SnapshotCatalogView::TypeDirectEntities(
    TypeId t) const {
  WEBTAB_CHECK(ValidType(t)) << "bad type id " << t;
  return type_direct_entities_.Row(t);
}

std::string_view SnapshotCatalogView::EntityName(EntityId e) const {
  WEBTAB_CHECK(ValidEntity(e)) << "bad entity id " << e;
  return entity_names_.Get(e);
}

int32_t SnapshotCatalogView::NumEntityLemmas(EntityId e) const {
  WEBTAB_CHECK(ValidEntity(e)) << "bad entity id " << e;
  auto [begin, end] = RowRange(entity_lemma_ends_, e);
  return static_cast<int32_t>(end - begin);
}

std::string_view SnapshotCatalogView::EntityLemma(EntityId e,
                                                  int32_t i) const {
  WEBTAB_CHECK(ValidEntity(e)) << "bad entity id " << e;
  return entity_lemmas_.Get((e == 0 ? 0 : entity_lemma_ends_[e - 1]) + i);
}

std::span<const TypeId> SnapshotCatalogView::EntityDirectTypes(
    EntityId e) const {
  WEBTAB_CHECK(ValidEntity(e)) << "bad entity id " << e;
  return entity_direct_types_.Row(e);
}

std::string_view SnapshotCatalogView::RelationName(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return relation_names_.Get(b);
}

TypeId SnapshotCatalogView::RelationSubjectType(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return relation_meta_[b].subject_type;
}

TypeId SnapshotCatalogView::RelationObjectType(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return relation_meta_[b].object_type;
}

RelationCardinality SnapshotCatalogView::RelationCardinalityOf(
    RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return static_cast<RelationCardinality>(relation_meta_[b].cardinality);
}

std::span<const EntityPair> SnapshotCatalogView::RelationTuples(
    RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return tuples_.Row(b);
}

int64_t SnapshotCatalogView::DistinctSubjects(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return relation_meta_[b].distinct_subjects;
}

int64_t SnapshotCatalogView::DistinctObjects(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return relation_meta_[b].distinct_objects;
}

TypeId SnapshotCatalogView::FindTypeByName(std::string_view name) const {
  return FindByName(types_by_name_, name,
                    [&](int32_t t) { return type_names_.Get(t); });
}

EntityId SnapshotCatalogView::FindEntityByName(std::string_view name) const {
  return FindByName(entities_by_name_, name,
                    [&](int32_t e) { return entity_names_.Get(e); });
}

RelationId SnapshotCatalogView::FindRelationByName(
    std::string_view name) const {
  return FindByName(relations_by_name_, name,
                    [&](int32_t b) { return relation_names_.Get(b); });
}

bool SnapshotCatalogView::HasTuple(RelationId b, EntityId e1,
                                   EntityId e2) const {
  if (!ValidRelation(b)) return false;
  auto row = tuples_.Row(b);
  return std::binary_search(row.begin(), row.end(), EntityPair{e1, e2});
}

std::span<const EntityId> SnapshotCatalogView::ObjectsOf(
    RelationId b, EntityId e1) const {
  if (!ValidRelation(b)) return {};
  auto [kbegin, kend] = RowRange(fwd_key_ends_, b);
  auto keys = fwd_keys_.subspan(kbegin, kend - kbegin);
  auto it = std::lower_bound(keys.begin(), keys.end(), e1);
  if (it == keys.end() || *it != e1) return {};
  uint64_t k = kbegin + static_cast<uint64_t>(it - keys.begin());
  auto [vbegin, vend] = RowRange(fwd_value_ends_, k);
  return fwd_values_.subspan(vbegin, vend - vbegin);
}

std::span<const EntityId> SnapshotCatalogView::SubjectsOf(
    RelationId b, EntityId e2) const {
  if (!ValidRelation(b)) return {};
  auto [kbegin, kend] = RowRange(rev_key_ends_, b);
  auto keys = rev_keys_.subspan(kbegin, kend - kbegin);
  auto it = std::lower_bound(keys.begin(), keys.end(), e2);
  if (it == keys.end() || *it != e2) return {};
  uint64_t k = kbegin + static_cast<uint64_t>(it - keys.begin());
  auto [vbegin, vend] = RowRange(rev_value_ends_, k);
  return rev_values_.subspan(vbegin, vend - vbegin);
}

std::vector<std::pair<RelationId, bool>>
SnapshotCatalogView::RelationsBetween(EntityId e1, EntityId e2) const {
  std::vector<std::pair<RelationId, bool>> out;
  auto probe = [&](uint64_t key, bool swapped) {
    auto it = std::lower_bound(pair_keys_.begin(), pair_keys_.end(), key);
    if (it == pair_keys_.end() || *it != key) return;
    uint64_t i = static_cast<uint64_t>(it - pair_keys_.begin());
    auto [begin, end] = RowRange(pair_rel_ends_, i);
    for (uint64_t j = begin; j < end; ++j) {
      out.emplace_back(pair_rels_[j], swapped);
    }
  };
  probe(PairKey(e1, e2), false);
  probe(PairKey(e2, e1), true);
  return out;
}

void SnapshotCatalogView::ForEachRelationBetween(
    EntityId e1, EntityId e2,
    const std::function<void(RelationId, bool)>& fn) const {
  auto probe = [&](uint64_t key, bool swapped) {
    auto it = std::lower_bound(pair_keys_.begin(), pair_keys_.end(), key);
    if (it == pair_keys_.end() || *it != key) return;
    uint64_t i = static_cast<uint64_t>(it - pair_keys_.begin());
    auto [begin, end] = RowRange(pair_rel_ends_, i);
    for (uint64_t j = begin; j < end; ++j) fn(pair_rels_[j], swapped);
  };
  probe(PairKey(e1, e2), false);
  probe(PairKey(e2, e1), true);
}

// --- SnapshotLemmaIndexView -----------------------------------------------

Status SnapshotLemmaIndexView::Init(const uint8_t* base, uint64_t size,
                                    const CatalogView* catalog) {
  if (size < sizeof(LemmaIndexHeader)) {
    return Status::ParseError("lemma index section too small");
  }
  std::memcpy(&header_, base, sizeof(header_));
  if (header_.num_tokens < 0) {
    return Status::ParseError("negative token count");
  }
  catalog_ = catalog;
  SectionBytes s{base, size};
  const uint64_t n = header_.num_tokens;
  WEBTAB_RETURN_IF_ERROR(
      GetArena(s, header_.token_texts, n, &token_texts_, "token texts"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.token_doc_freq,
                                  &token_doc_freq_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.tokens_by_text,
                                  &tokens_by_text_));
  if (token_doc_freq_.size() != n || tokens_by_text_.size() != n) {
    return Status::ParseError("token table count mismatch");
  }
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.entity_postings, n,
                                &entity_postings_, "entity postings"));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.type_postings, n,
                                &type_postings_, "type postings"));
  // Token ids index the text arena; posting ids flow into catalog
  // accessors and score math. Range-check once at open.
  WEBTAB_RETURN_IF_ERROR(CheckIdRange(
      tokens_by_text_, static_cast<int32_t>(n), "tokens by text"));
  auto check_postings = [](std::span<const LemmaPosting> postings,
                           int32_t id_limit, const char* what) -> Status {
    for (const LemmaPosting& p : postings) {
      if (p.id < 0 || p.id >= id_limit || p.lemma_ord < 0 ||
          p.lemma_len < 0) {
        return Status::ParseError(std::string("corrupt posting in ") +
                                  what);
      }
    }
    return Status::Ok();
  };
  WEBTAB_RETURN_IF_ERROR(check_postings(
      entity_postings_.values, catalog->num_entities(), "entity postings"));
  WEBTAB_RETURN_IF_ERROR(check_postings(
      type_postings_.values, catalog->num_types(), "type postings"));
  return Status::Ok();
}

Status SnapshotLemmaIndexView::DeepValidate() const {
  WEBTAB_RETURN_IF_ERROR(CheckSorted<TokenId>(
      tokens_by_text_, "tokens by text", [&](TokenId a, TokenId b) {
        return token_texts_.Get(a) < token_texts_.Get(b);
      }));
  for (int64_t df : token_doc_freq_) {
    if (df < 0) return Status::ParseError("negative document frequency");
  }
  for (const LemmaPosting& p : entity_postings_.values) {
    if (p.lemma_ord >= catalog_->NumEntityLemmas(p.id)) {
      return Status::ParseError("entity posting lemma ordinal out of range");
    }
  }
  for (const LemmaPosting& p : type_postings_.values) {
    if (p.lemma_ord >= catalog_->NumTypeLemmas(p.id)) {
      return Status::ParseError("type posting lemma ordinal out of range");
    }
  }
  return Status::Ok();
}

TokenId SnapshotLemmaIndexView::LookupToken(std::string_view token) const {
  auto it = std::lower_bound(
      tokens_by_text_.begin(), tokens_by_text_.end(), token,
      [&](TokenId id, std::string_view t) {
        return token_texts_.Get(id) < t;
      });
  if (it != tokens_by_text_.end() && token_texts_.Get(*it) == token) {
    return *it;
  }
  return kInvalidToken;
}

double SnapshotLemmaIndexView::TokenIdf(TokenId t) const {
  int64_t df =
      (t >= 0 && t < header_.num_tokens) ? token_doc_freq_[t] : 0;
  return Vocabulary::IdfValue(df, header_.num_documents);
}

std::vector<LemmaHit> SnapshotLemmaIndexView::ProbeEntities(
    std::string_view text, int k) const {
  return lemma_probe_internal::ProbePostings(
      text, k, [&](const std::string& token) { return LookupToken(token); },
      [&](TokenId tid) { return TokenIdf(tid); },
      [&](TokenId tid) { return entity_postings_.Row(tid); });
}

ResolvedToken SnapshotLemmaIndexView::ResolveEntityToken(
    std::string_view token) const {
  ResolvedToken resolved;
  TokenId tid = LookupToken(token);
  resolved.idf = TokenIdf(tid);
  if (tid >= 0) resolved.postings = entity_postings_.Row(tid);
  return resolved;
}

std::vector<LemmaHit> SnapshotLemmaIndexView::ProbeTypes(
    std::string_view text, int k) const {
  return lemma_probe_internal::ProbePostings(
      text, k, [&](const std::string& token) { return LookupToken(token); },
      [&](TokenId tid) { return TokenIdf(tid); },
      [&](TokenId tid) { return type_postings_.Row(tid); });
}

Vocabulary SnapshotLemmaIndexView::CopyVocabulary() const {
  std::vector<std::string> texts;
  std::vector<int64_t> doc_freq;
  texts.reserve(header_.num_tokens);
  doc_freq.reserve(header_.num_tokens);
  for (int64_t t = 0; t < header_.num_tokens; ++t) {
    texts.emplace_back(token_texts_.Get(t));
    doc_freq.push_back(token_doc_freq_[t]);
  }
  return Vocabulary::FromParts(std::move(texts), std::move(doc_freq),
                               header_.num_documents);
}

// --- SnapshotCorpusView ---------------------------------------------------

Status SnapshotCorpusView::Init(const uint8_t* base, uint64_t size) {
  if (size < sizeof(CorpusHeader)) {
    return Status::ParseError("corpus section too small");
  }
  std::memcpy(&header_, base, sizeof(header_));
  if (header_.num_tables < 0) {
    return Status::ParseError("negative table count");
  }
  SectionBytes s{base, size};
  const uint64_t n = header_.num_tables;
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.table_meta, &table_meta_));
  if (table_meta_.size() != n) {
    return Status::ParseError("table meta count mismatch");
  }
  uint64_t total_cells = 0, total_cols = 0;
  for (const TableMetaDisk& m : table_meta_) {
    if (m.rows < 0 || m.cols < 0 ||
        m.cell_start != total_cells || m.col_start != total_cols) {
      return Status::ParseError("corrupt table meta");
    }
    total_cells += static_cast<uint64_t>(m.rows) * m.cols;
    total_cols += m.cols;
  }
  WEBTAB_RETURN_IF_ERROR(
      GetArena(s, header_.cells, total_cells, &cells_, "cells"));
  WEBTAB_RETURN_IF_ERROR(
      GetArena(s, header_.headers, total_cols, &headers_, "headers"));
  WEBTAB_RETURN_IF_ERROR(
      GetArena(s, header_.contexts, n, &contexts_, "contexts"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.column_types, &column_types_));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.cell_entities,
                                  &cell_entities_));
  if (column_types_.size() != total_cols ||
      cell_entities_.size() != total_cells) {
    return Status::ParseError("annotation array count mismatch");
  }
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.table_relations, n,
                                &table_relations_, "table relations"));

  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.header_tokens.ends,
                                  &header_tokens_.ends));
  WEBTAB_RETURN_IF_ERROR(GetArena(s, header_.header_tokens,
                                  header_tokens_.ends.size(),
                                  &header_tokens_, "header tokens"));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.header_postings,
                                header_tokens_.size(), &header_postings_,
                                "header postings"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.context_tokens.ends,
                                  &context_tokens_.ends));
  WEBTAB_RETURN_IF_ERROR(GetArena(s, header_.context_tokens,
                                  context_tokens_.ends.size(),
                                  &context_tokens_, "context tokens"));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.context_postings,
                                context_tokens_.size(), &context_postings_,
                                "context postings"));

  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.type_keys, &type_keys_));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.type_postings, type_keys_.size(),
                                &type_postings_, "type postings"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.relation_keys,
                                  &relation_keys_));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.relation_postings,
                                relation_keys_.size(), &relation_postings_,
                                "relation postings"));
  WEBTAB_RETURN_IF_ERROR(GetArray(s, header_.entity_keys, &entity_keys_));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, header_.entity_postings,
                                entity_keys_.size(), &entity_postings_,
                                "entity postings"));

  // Posting refs index table_meta_ / cells; range-check them once at
  // open so corrupt files fail cleanly instead of reading out of bounds.
  const int32_t nt = static_cast<int32_t>(n);
  auto check_column_refs = [&](std::span<const ColumnRef> refs,
                               const char* what) -> Status {
    for (const ColumnRef& r : refs) {
      if (r.table < 0 || r.table >= nt || r.col < 0 ||
          r.col >= table_meta_[r.table].cols) {
        return Status::ParseError(std::string("ref out of range in ") +
                                  what);
      }
    }
    return Status::Ok();
  };
  WEBTAB_RETURN_IF_ERROR(
      check_column_refs(header_postings_.values, "header postings"));
  WEBTAB_RETURN_IF_ERROR(
      check_column_refs(type_postings_.values, "type postings"));
  for (int32_t table : context_postings_.values) {
    if (table < 0 || table >= nt) {
      return Status::ParseError("ref out of range in context postings");
    }
  }
  for (const RelationRef& r : relation_postings_.values) {
    if (r.table < 0 || r.table >= nt || r.c1 < 0 || r.c2 < 0 ||
        r.c1 >= table_meta_[r.table].cols ||
        r.c2 >= table_meta_[r.table].cols) {
      return Status::ParseError("ref out of range in relation postings");
    }
  }
  for (const CellRef& r : entity_postings_.values) {
    if (r.table < 0 || r.table >= nt || r.row < 0 || r.col < 0 ||
        r.row >= table_meta_[r.table].rows ||
        r.col >= table_meta_[r.table].cols) {
      return Status::ParseError("ref out of range in entity postings");
    }
  }
  for (uint64_t t = 0; t < n; ++t) {
    for (const TableRelationDisk& r : table_relations_.Row(t)) {
      if (r.c1 < 0 || r.c2 < 0 || r.c1 >= table_meta_[t].cols ||
          r.c2 >= table_meta_[t].cols) {
        return Status::ParseError("ref out of range in table relations");
      }
    }
  }
  return Status::Ok();
}

Status SnapshotCorpusView::AttachBlockMax(const uint8_t* base,
                                          uint64_t size) {
  if (size < sizeof(BlockMaxHeader)) {
    return Status::ParseError("block-max section too small");
  }
  BlockMaxHeader h;
  std::memcpy(&h, base, sizeof(h));
  if (h.block_size != kPostingBlockSize) {
    return Status::ParseError("unsupported posting block size");
  }
  SectionBytes s{base, size};

  // Every block CSR must mirror its corpus postings twin row for row;
  // checking the partition counts here makes Row() indexing safe and
  // keeps per-block slicing in DeepValidate purely arithmetic.
  auto get_blocks = [&](CsrRef ref, std::span<const uint64_t> posting_ends,
                        CsrView<PostingBlockMax>* out,
                        const char* what) -> Status {
    WEBTAB_RETURN_IF_ERROR(GetCsr(s, ref, posting_ends.size(), out, what));
    uint64_t prev_postings = 0, prev_blocks = 0;
    for (uint64_t row = 0; row < posting_ends.size(); ++row) {
      const uint64_t postings = posting_ends[row] - prev_postings;
      const uint64_t blocks = out->row_ends[row] - prev_blocks;
      const uint64_t expected =
          (postings + kPostingBlockSize - 1) / kPostingBlockSize;
      if (blocks != expected) {
        return Status::ParseError(
            std::string("block count does not partition ") + what);
      }
      prev_postings = posting_ends[row];
      prev_blocks = out->row_ends[row];
    }
    return Status::Ok();
  };
  WEBTAB_RETURN_IF_ERROR(get_blocks(h.header_blocks,
                                    header_postings_.row_ends,
                                    &header_blocks_, "header blocks"));
  WEBTAB_RETURN_IF_ERROR(get_blocks(h.context_blocks,
                                    context_postings_.row_ends,
                                    &context_blocks_, "context blocks"));
  WEBTAB_RETURN_IF_ERROR(get_blocks(h.type_blocks, type_postings_.row_ends,
                                    &type_blocks_, "type blocks"));
  WEBTAB_RETURN_IF_ERROR(get_blocks(h.relation_blocks,
                                    relation_postings_.row_ends,
                                    &relation_blocks_, "relation blocks"));
  WEBTAB_RETURN_IF_ERROR(get_blocks(h.entity_blocks,
                                    entity_postings_.row_ends,
                                    &entity_blocks_, "entity blocks"));

  WEBTAB_RETURN_IF_ERROR(GetArray(s, h.cell_tokens.ends,
                                  &cell_tokens_.ends));
  WEBTAB_RETURN_IF_ERROR(GetArena(s, h.cell_tokens, cell_tokens_.ends.size(),
                                  &cell_tokens_, "cell tokens"));
  WEBTAB_RETURN_IF_ERROR(GetCsr(s, h.cell_token_postings,
                                cell_tokens_.size(), &cell_token_postings_,
                                "cell token postings"));
  for (const CellTokenRef& r : cell_token_postings_.values) {
    if (r.table < 0 ||
        r.table >= static_cast<int32_t>(header_.num_tables) || r.col < 0 ||
        r.col >= table_meta_[r.table].cols) {
      return Status::ParseError(
          "ref out of range in cell token postings");
    }
    if (r.min_tokens < 1) {
      return Status::ParseError(
          "non-positive min_tokens in cell token postings");
    }
  }
  has_block_max_ = true;
  return Status::Ok();
}

PostingBlockSpan SnapshotCorpusView::BlockList(int list) const {
  switch (list) {
    case 0:
      return header_blocks_.values;
    case 1:
      return context_blocks_.values;
    case 2:
      return type_blocks_.values;
    case 3:
      return relation_blocks_.values;
    case 4:
      return entity_blocks_.values;
    default:
      return {};
  }
}

namespace {

/// Every postings row non-decreasing by table — the search kernel's
/// galloping cursors (search/posting_cursor.h) binary-search these
/// spans via the same PostingTable accessor, so an out-of-order row
/// would silently skip or double-count evidence rather than crash.
template <typename T>
Status CheckPostingsTableOrder(const CsrView<T>& csr, const char* what) {
  for (uint64_t row = 0; row < csr.row_ends.size(); ++row) {
    int32_t prev = -1;
    for (const T& ref : csr.Row(row)) {
      int32_t table = search_internal::PostingTable(ref);
      if (table < prev) {
        return Status::ParseError(std::string(what) +
                                  " postings out of table order");
      }
      prev = table;
    }
  }
  return Status::Ok();
}

/// Block-max content checks against the postings the blocks summarize.
/// The cursors *skip* whole blocks on the declared last tables and the
/// engines *skip* whole tables on the declared bounds, so a lying block
/// drops evidence silently — exactly the failure class DeepValidate
/// exists to reject. AttachBlockMax already proved the partition
/// counts, so the per-block slices here are pure arithmetic.
template <typename T, typename RowsFn>
Status CheckBlockMax(const CsrView<PostingBlockMax>& blocks,
                     const CsrView<T>& postings, RowsFn&& rows_of,
                     const char* what) {
  for (uint64_t row = 0; row < blocks.row_ends.size(); ++row) {
    std::span<const T> prow = postings.Row(row);
    std::span<const PostingBlockMax> brow = blocks.Row(row);
    int32_t prev_last = -1;
    for (size_t b = 0; b < brow.size(); ++b) {
      const size_t begin = b * kPostingBlockSize;
      const std::span<const T> slice = prow.subspan(
          begin, std::min<size_t>(kPostingBlockSize, prow.size() - begin));
      const PostingBlockMax& blk = brow[b];
      if (blk.last_table < prev_last) {
        return Status::ParseError(std::string(what) +
                                  " block refs out of table order");
      }
      prev_last = blk.last_table;
      if (blk.last_table !=
          search_internal::PostingTable(slice.back())) {
        return Status::ParseError(std::string(what) +
                                  " block last table mismatch");
      }
      size_t i = 0;
      while (i < slice.size()) {
        const int32_t table = search_internal::PostingTable(slice[i]);
        size_t j = i;
        while (j < slice.size() &&
               search_internal::PostingTable(slice[j]) == table) {
          ++j;
        }
        const int32_t run = static_cast<int32_t>(j - i);
        const int32_t rows = rows_of(table);
        if (blk.max_run < run || blk.max_rows < rows ||
            blk.max_bound < rows * run) {
          return Status::ParseError(std::string(what) +
                                    " block bound below contained postings");
        }
        i = j;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status SnapshotCorpusView::DeepValidate() const {
  WEBTAB_RETURN_IF_ERROR(CheckArenaSorted(header_tokens_, "header tokens"));
  WEBTAB_RETURN_IF_ERROR(
      CheckArenaSorted(context_tokens_, "context tokens"));
  WEBTAB_RETURN_IF_ERROR(CheckSorted(type_keys_, "corpus type keys"));
  WEBTAB_RETURN_IF_ERROR(
      CheckSorted(relation_keys_, "corpus relation keys"));
  WEBTAB_RETURN_IF_ERROR(CheckSorted(entity_keys_, "corpus entity keys"));
  WEBTAB_RETURN_IF_ERROR(
      CheckPostingsTableOrder(header_postings_, "header"));
  WEBTAB_RETURN_IF_ERROR(
      CheckPostingsTableOrder(context_postings_, "context"));
  WEBTAB_RETURN_IF_ERROR(CheckPostingsTableOrder(type_postings_, "type"));
  WEBTAB_RETURN_IF_ERROR(
      CheckPostingsTableOrder(relation_postings_, "relation"));
  WEBTAB_RETURN_IF_ERROR(
      CheckPostingsTableOrder(entity_postings_, "entity"));
  for (int64_t t = 0; t < header_.num_tables; ++t) {
    WEBTAB_RETURN_IF_ERROR(CheckSorted<TableRelationDisk>(
        table_relations_.Row(t), "table relations",
        [](const TableRelationDisk& a, const TableRelationDisk& b) {
          if (a.c1 != b.c1) return a.c1 < b.c1;
          return a.c2 < b.c2;
        }));
  }
  if (has_block_max_) {
    auto rows_of = [this](int32_t t) { return table_meta_[t].rows; };
    WEBTAB_RETURN_IF_ERROR(CheckBlockMax(header_blocks_, header_postings_,
                                         rows_of, "header"));
    WEBTAB_RETURN_IF_ERROR(CheckBlockMax(context_blocks_, context_postings_,
                                         rows_of, "context"));
    WEBTAB_RETURN_IF_ERROR(
        CheckBlockMax(type_blocks_, type_postings_, rows_of, "type"));
    WEBTAB_RETURN_IF_ERROR(CheckBlockMax(relation_blocks_,
                                         relation_postings_, rows_of,
                                         "relation"));
    WEBTAB_RETURN_IF_ERROR(CheckBlockMax(entity_blocks_, entity_postings_,
                                         rows_of, "entity"));
    WEBTAB_RETURN_IF_ERROR(CheckArenaSorted(cell_tokens_, "cell tokens"));
    WEBTAB_RETURN_IF_ERROR(
        CheckPostingsTableOrder(cell_token_postings_, "cell token"));
  }
  return Status::Ok();
}

RelationCandidate SnapshotCorpusView::RelationOf(int t, int c1,
                                                 int c2) const {
  auto row = table_relations_.Row(t);
  auto it = std::lower_bound(
      row.begin(), row.end(), std::make_pair(c1, c2),
      [](const TableRelationDisk& r, const std::pair<int, int>& key) {
        if (r.c1 != key.first) return r.c1 < key.first;
        return r.c2 < key.second;
      });
  if (it != row.end() && it->c1 == c1 && it->c2 == c2) {
    return RelationCandidate{it->relation, it->swapped != 0};
  }
  return RelationCandidate{};
}

std::span<const ColumnRef> SnapshotCorpusView::HeaderPostings(
    std::string_view token) const {
  int64_t i = FindToken(header_tokens_, token);
  return i < 0 ? std::span<const ColumnRef>() : header_postings_.Row(i);
}

std::span<const int32_t> SnapshotCorpusView::ContextPostings(
    std::string_view token) const {
  int64_t i = FindToken(context_tokens_, token);
  return i < 0 ? std::span<const int32_t>() : context_postings_.Row(i);
}

namespace {
template <typename T>
std::span<const T> KeyedRow(std::span<const int32_t> keys,
                            const CsrView<T>& csr, int32_t key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return {};
  return csr.Row(static_cast<uint64_t>(it - keys.begin()));
}
}  // namespace

std::span<const ColumnRef> SnapshotCorpusView::TypePostings(TypeId t) const {
  return KeyedRow(type_keys_, type_postings_, t);
}

std::span<const RelationRef> SnapshotCorpusView::RelationPostings(
    RelationId b) const {
  return KeyedRow(relation_keys_, relation_postings_, b);
}

std::span<const CellRef> SnapshotCorpusView::EntityPostings(
    EntityId e) const {
  return KeyedRow(entity_keys_, entity_postings_, e);
}

std::span<const CellTokenRef> SnapshotCorpusView::CellTokenPostings(
    std::string_view token) const {
  if (!has_block_max_) return {};
  int64_t i = FindToken(cell_tokens_, token);
  return i < 0 ? std::span<const CellTokenRef>()
               : cell_token_postings_.Row(i);
}

PostingBlockSpan SnapshotCorpusView::HeaderPostingBlocks(
    std::string_view token) const {
  if (!has_block_max_) return {};
  int64_t i = FindToken(header_tokens_, token);
  return i < 0 ? PostingBlockSpan() : header_blocks_.Row(i);
}

PostingBlockSpan SnapshotCorpusView::ContextPostingBlocks(
    std::string_view token) const {
  if (!has_block_max_) return {};
  int64_t i = FindToken(context_tokens_, token);
  return i < 0 ? PostingBlockSpan() : context_blocks_.Row(i);
}

namespace {
PostingBlockSpan KeyedBlocks(std::span<const int32_t> keys,
                             const CsrView<PostingBlockMax>& csr,
                             int32_t key, bool present) {
  if (!present) return {};
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return {};
  return csr.Row(static_cast<uint64_t>(it - keys.begin()));
}
}  // namespace

PostingBlockSpan SnapshotCorpusView::TypePostingBlocks(TypeId t) const {
  return KeyedBlocks(type_keys_, type_blocks_, t, has_block_max_);
}

PostingBlockSpan SnapshotCorpusView::RelationPostingBlocks(
    RelationId b) const {
  return KeyedBlocks(relation_keys_, relation_blocks_, b, has_block_max_);
}

PostingBlockSpan SnapshotCorpusView::EntityPostingBlocks(EntityId e) const {
  return KeyedBlocks(entity_keys_, entity_blocks_, e, has_block_max_);
}

}  // namespace storage
}  // namespace webtab
