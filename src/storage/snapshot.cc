#include "storage/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "storage/format.h"

namespace webtab {
namespace storage {

Snapshot::Mapping::~Mapping() {
  if (data != nullptr && size > 0) {
    ::munmap(const_cast<uint8_t*>(data), size);
  }
}

Result<Snapshot> Snapshot::Open(const std::string& path,
                                const OpenOptions& options) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < sizeof(FileHeader)) {
    ::close(fd);
    return Status::ParseError("snapshot smaller than its header: " + path);
  }
  void* mapped =
      ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, /*offset=*/0);
  ::close(fd);  // The mapping holds its own reference.
  if (mapped == MAP_FAILED) {
    return Status::IoError("mmap failed for " + path);
  }

  Snapshot snap;
  snap.mapping_ = std::make_unique<Mapping>();
  snap.mapping_->data = static_cast<const uint8_t*>(mapped);
  snap.mapping_->size = file_size;
  const uint8_t* base = snap.mapping_->data;

  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("bad snapshot magic in " + path);
  }
  if (header.version != kFormatVersion) {
    return Status::ParseError(
        "unsupported snapshot version " + std::to_string(header.version) +
        " (expected " + std::to_string(kFormatVersion) + ")");
  }
  if (header.file_size != file_size) {
    return Status::ParseError("snapshot truncated or padded: header says " +
                              std::to_string(header.file_size) +
                              " bytes, file has " +
                              std::to_string(file_size));
  }
  if (options.verify_checksum) {
    uint64_t got = Checksum64(base + sizeof(FileHeader),
                           file_size - sizeof(FileHeader));
    if (got != header.payload_checksum) {
      return Status::ParseError("snapshot checksum mismatch in " + path);
    }
  }
  if (header.section_table_offset > file_size ||
      header.section_table_offset % 8 != 0 ||
      header.section_count >
          (file_size - header.section_table_offset) / sizeof(SectionEntry)) {
    return Status::ParseError("corrupt section table in " + path);
  }
  snap.size_ = file_size;
  snap.version_ = header.version;
  snap.version_minor_ = header.version_minor;
  snap.checksum_ = header.payload_checksum;

  const SectionEntry* entries = reinterpret_cast<const SectionEntry*>(
      base + header.section_table_offset);
  for (uint32_t i = 0; i < header.section_count; ++i) {
    const SectionEntry& entry = entries[i];
    if (entry.offset % 8 != 0 || entry.offset > file_size ||
        entry.size > file_size - entry.offset) {
      return Status::ParseError("section out of bounds in " + path);
    }
    snap.sections_.push_back(
        SectionInfo{entry.kind, entry.offset, entry.size});
  }

  // Resolve views. The catalog must come first so the lemma index can
  // reference it; the section table preserves write order (catalog,
  // index, corpus) but resolve defensively by kind.
  for (const SectionInfo& info : snap.sections_) {
    if (info.kind != kCatalogSection) continue;
    snap.catalog_ = std::make_unique<SnapshotCatalogView>();
    WEBTAB_RETURN_IF_ERROR(
        snap.catalog_->Init(base + info.offset, info.size));
  }
  for (const SectionInfo& info : snap.sections_) {
    switch (info.kind) {
      case kCatalogSection:
        break;  // Already resolved.
      case kLemmaIndexSection: {
        if (snap.catalog_ == nullptr) {
          return Status::ParseError(
              "lemma index section requires a catalog section");
        }
        snap.lemma_index_ = std::make_unique<SnapshotLemmaIndexView>();
        WEBTAB_RETURN_IF_ERROR(snap.lemma_index_->Init(
            base + info.offset, info.size, snap.catalog_.get()));
        break;
      }
      case kCorpusSection: {
        snap.corpus_ = std::make_unique<SnapshotCorpusView>();
        WEBTAB_RETURN_IF_ERROR(
            snap.corpus_->Init(base + info.offset, info.size));
        break;
      }
      default:
        // Unknown sections are ignored for forward compatibility.
        break;
    }
  }
  // The block-max section augments the corpus view, so attach it only
  // after every corpus section is resolved.
  for (const SectionInfo& info : snap.sections_) {
    if (info.kind != kBlockMaxSection) continue;
    if (snap.corpus_ == nullptr) {
      return Status::ParseError(
          "block-max section requires a corpus section");
    }
    WEBTAB_RETURN_IF_ERROR(
        snap.corpus_->AttachBlockMax(base + info.offset, info.size));
  }
  if (snap.corpus_ != nullptr && !snap.corpus_->has_block_max()) {
    // Pre-minor-1 snapshot: search still works, but top-k pruning
    // cannot fire. Warn once per process, not per open — hot-swap
    // reloads would otherwise spam the log.
    static bool warned = false;
    if (!warned) {
      warned = true;
      WEBTAB_LOG(Warning)
          << "snapshot " << path
          << " predates the block-max index (format minor "
          << snap.version_minor_
          << "); search falls back to unpruned scans";
    }
  }
  if (snap.catalog_ == nullptr) {
    return Status::ParseError("snapshot has no catalog section: " + path);
  }
  if (options.deep_validate) {
    WEBTAB_RETURN_IF_ERROR(snap.catalog_->DeepValidate());
    if (snap.lemma_index_ != nullptr) {
      WEBTAB_RETURN_IF_ERROR(snap.lemma_index_->DeepValidate());
    }
    if (snap.corpus_ != nullptr) {
      WEBTAB_RETURN_IF_ERROR(snap.corpus_->DeepValidate());
    }
  }
  return snap;
}

}  // namespace storage
}  // namespace webtab
