#ifndef WEBTAB_STORAGE_SNAPSHOT_VIEWS_H_
#define WEBTAB_STORAGE_SNAPSHOT_VIEWS_H_

#include <span>
#include <string_view>
#include <vector>

#include "catalog/catalog_view.h"
#include "common/status.h"
#include "index/lemma_index.h"
#include "search/corpus_view.h"
#include "storage/format.h"

namespace webtab {
namespace storage {

/// Resolved read-only accessors over raw mapped section bytes. All
/// Init() methods validate structure (blob bounds, alignment, monotonic
/// offset arrays, and the range of every file-provided id that indexes
/// another array) so accessors can index without per-call checks; they
/// never copy payload data — every span and string_view points into the
/// mapping.

/// A resolved string arena.
struct ArenaView {
  std::span<const uint64_t> ends;
  const char* bytes = nullptr;

  uint64_t size() const { return ends.size(); }
  std::string_view Get(uint64_t i) const {
    uint64_t begin = i == 0 ? 0 : ends[i - 1];
    return std::string_view(bytes + begin, ends[i] - begin);
  }
};

/// A resolved CSR array of T.
template <typename T>
struct CsrView {
  std::span<const uint64_t> row_ends;
  std::span<const T> values;

  std::span<const T> Row(uint64_t i) const {
    uint64_t begin = i == 0 ? 0 : row_ends[i - 1];
    return values.subspan(begin, row_ends[i] - begin);
  }
};

/// Zero-copy CatalogView over the catalog section of a snapshot.
class SnapshotCatalogView : public CatalogView {
 public:
  Status Init(const uint8_t* base, uint64_t size);

  /// Semantic invariants beyond Init's bounds checks, for hostile files
  /// (Snapshot::OpenValidated): name/tuple/pair arrays really sorted
  /// (binary searches would silently misanswer otherwise), and the type
  /// graph a DAG with mirrored parent/child edges (closure traversals
  /// assume it). O(payload) with small constants.
  Status DeepValidate() const;

  int32_t num_types() const override { return header_.num_types; }
  int32_t num_entities() const override { return header_.num_entities; }
  int32_t num_relations() const override { return header_.num_relations; }
  int64_t num_tuples() const override { return header_.num_tuples; }
  TypeId root_type() const override { return header_.root_type; }

  std::string_view TypeName(TypeId t) const override;
  int32_t NumTypeLemmas(TypeId t) const override;
  std::string_view TypeLemma(TypeId t, int32_t i) const override;
  std::span<const TypeId> TypeParents(TypeId t) const override;
  std::span<const TypeId> TypeChildren(TypeId t) const override;
  std::span<const EntityId> TypeDirectEntities(TypeId t) const override;

  std::string_view EntityName(EntityId e) const override;
  int32_t NumEntityLemmas(EntityId e) const override;
  std::string_view EntityLemma(EntityId e, int32_t i) const override;
  std::span<const TypeId> EntityDirectTypes(EntityId e) const override;

  std::string_view RelationName(RelationId b) const override;
  TypeId RelationSubjectType(RelationId b) const override;
  TypeId RelationObjectType(RelationId b) const override;
  RelationCardinality RelationCardinalityOf(RelationId b) const override;
  std::span<const EntityPair> RelationTuples(RelationId b) const override;
  int64_t DistinctSubjects(RelationId b) const override;
  int64_t DistinctObjects(RelationId b) const override;

  TypeId FindTypeByName(std::string_view name) const override;
  EntityId FindEntityByName(std::string_view name) const override;
  RelationId FindRelationByName(std::string_view name) const override;

  bool HasTuple(RelationId b, EntityId e1, EntityId e2) const override;
  std::span<const EntityId> ObjectsOf(RelationId b,
                                      EntityId e1) const override;
  std::span<const EntityId> SubjectsOf(RelationId b,
                                       EntityId e2) const override;
  std::vector<std::pair<RelationId, bool>> RelationsBetween(
      EntityId e1, EntityId e2) const override;
  void ForEachRelationBetween(
      EntityId e1, EntityId e2,
      const std::function<void(RelationId, bool)>& fn) const override;

 private:
  CatalogHeader header_;
  ArenaView type_names_, type_lemmas_;
  std::span<const uint64_t> type_lemma_ends_;
  CsrView<TypeId> type_parents_, type_children_;
  CsrView<EntityId> type_direct_entities_;
  ArenaView entity_names_, entity_lemmas_;
  std::span<const uint64_t> entity_lemma_ends_;
  CsrView<TypeId> entity_direct_types_;
  ArenaView relation_names_;
  std::span<const RelationMetaDisk> relation_meta_;
  CsrView<EntityPair> tuples_;
  std::span<const uint64_t> fwd_key_ends_, fwd_value_ends_;
  std::span<const EntityId> fwd_keys_, fwd_values_;
  std::span<const uint64_t> rev_key_ends_, rev_value_ends_;
  std::span<const EntityId> rev_keys_, rev_values_;
  std::span<const uint64_t> pair_keys_, pair_rel_ends_;
  std::span<const RelationId> pair_rels_;
  std::span<const TypeId> types_by_name_;
  std::span<const EntityId> entities_by_name_;
  std::span<const RelationId> relations_by_name_;
};

/// Zero-copy LemmaIndexView over the lemma-index section. Probes share
/// the exact kernel used by the in-memory index, so rankings and scores
/// are bit-identical.
class SnapshotLemmaIndexView : public LemmaIndexView {
 public:
  /// `catalog` is the snapshot's catalog view (must outlive this view).
  Status Init(const uint8_t* base, uint64_t size,
              const CatalogView* catalog);

  /// Hostile-file invariants: token array sorted (lookups binary search
  /// it) and every posting's lemma_ord inside its object's lemma list —
  /// an out-of-range ordinal would otherwise index past the lemma arena
  /// row when features fetch the matched lemma.
  Status DeepValidate() const;

  std::vector<LemmaHit> ProbeEntities(std::string_view text,
                                      int k) const override;
  std::vector<LemmaHit> ProbeTypes(std::string_view text,
                                   int k) const override;
  ResolvedToken ResolveEntityToken(std::string_view token) const override;
  const CatalogView& catalog() const override { return *catalog_; }
  int64_t num_postings() const override { return header_.num_postings; }

  /// Snapshots are immutable: no shared mutable vocabulary.
  Vocabulary* mutable_vocabulary() const override { return nullptr; }
  Vocabulary CopyVocabulary() const override;

  /// Binary-searched token lookup (same ids as the serialized build).
  TokenId LookupToken(std::string_view token) const;
  double TokenIdf(TokenId t) const;

 private:
  LemmaIndexHeader header_;
  const CatalogView* catalog_ = nullptr;
  ArenaView token_texts_;
  std::span<const int64_t> token_doc_freq_;
  std::span<const TokenId> tokens_by_text_;
  CsrView<LemmaPosting> entity_postings_, type_postings_;
};

/// Zero-copy CorpusView over the corpus section.
class SnapshotCorpusView : public CorpusView {
 public:
  Status Init(const uint8_t* base, uint64_t size);

  /// Attaches the block-max section (format minor 1) to an Init'ed
  /// corpus view. `base/size` are the block-max section's bytes.
  /// Validates shape: every block CSR must be row-aligned with its
  /// corpus postings twin (ceil(len / kPostingBlockSize) blocks per
  /// row) and every cell-token table id in range. Without this call the
  /// view reports HasMatchSupport() == false and engines fall back to
  /// the unpruned ascending scan.
  Status AttachBlockMax(const uint8_t* base, uint64_t size);

  /// Hostile-file invariants: token arenas and postings key arrays
  /// sorted, per-table relation rows sorted by (c1, c2), and every
  /// postings row table-sorted (the CorpusView ordering contract the
  /// search kernel's galloping cursors rely on) — all are binary
  /// searched by the engines. When a block-max section is attached,
  /// additionally: block refs in table order and exactly matching each
  /// block's final posting, declared bounds no smaller than the
  /// contained postings, and the cell-token match-support index sorted
  /// (engines *skip* tables based on it, so a lying index would
  /// silently drop evidence rather than crash).
  Status DeepValidate() const;

  int64_t num_tables() const override { return header_.num_tables; }
  int rows(int t) const override { return table_meta_[t].rows; }
  int cols(int t) const override { return table_meta_[t].cols; }
  int64_t table_id(int t) const override { return table_meta_[t].id; }
  std::string_view cell(int t, int r, int c) const override {
    const TableMetaDisk& m = table_meta_[t];
    return cells_.Get(m.cell_start + static_cast<uint64_t>(r) * m.cols + c);
  }
  std::string_view header(int t, int c) const override {
    const TableMetaDisk& m = table_meta_[t];
    return m.has_headers ? headers_.Get(m.col_start + c)
                         : std::string_view();
  }
  std::string_view context(int t) const override {
    return contexts_.Get(t);
  }

  TypeId ColumnType(int t, int c) const override {
    return column_types_[table_meta_[t].col_start + c];
  }
  EntityId CellEntity(int t, int r, int c) const override {
    const TableMetaDisk& m = table_meta_[t];
    return cell_entities_[m.cell_start + static_cast<uint64_t>(r) * m.cols +
                          c];
  }
  RelationCandidate RelationOf(int t, int c1, int c2) const override;
  /// Strided walk over the mmap'd cell arrays — one meta lookup per
  /// chunk instead of one virtual call + meta lookup per cell.
  void GatherColumn(int t, int c, int row_begin, int n, EntityId* entities,
                    std::string_view* cells) const override {
    const TableMetaDisk& m = table_meta_[t];
    uint64_t idx =
        m.cell_start + static_cast<uint64_t>(row_begin) * m.cols + c;
    if (entities != nullptr) {
      uint64_t i = idx;
      for (int k = 0; k < n; ++k, i += m.cols) {
        entities[k] = cell_entities_[i];
      }
    }
    if (cells != nullptr) {
      uint64_t i = idx;
      for (int k = 0; k < n; ++k, i += m.cols) cells[k] = cells_.Get(i);
    }
  }

  std::span<const ColumnRef> HeaderPostings(
      std::string_view token) const override;
  std::span<const int32_t> ContextPostings(
      std::string_view token) const override;
  std::span<const ColumnRef> TypePostings(TypeId t) const override;
  std::span<const RelationRef> RelationPostings(RelationId b) const override;
  std::span<const CellRef> EntityPostings(EntityId e) const override;

  bool HasMatchSupport() const override { return has_block_max_; }
  std::span<const CellTokenRef> CellTokenPostings(
      std::string_view token) const override;
  PostingBlockSpan HeaderPostingBlocks(
      std::string_view token) const override;
  PostingBlockSpan ContextPostingBlocks(
      std::string_view token) const override;
  PostingBlockSpan TypePostingBlocks(TypeId t) const override;
  PostingBlockSpan RelationPostingBlocks(RelationId b) const override;
  PostingBlockSpan EntityPostingBlocks(EntityId e) const override;

  // --- Introspection (snapshot_tool inspect). ---
  bool has_block_max() const { return has_block_max_; }
  int64_t num_cell_tokens() const { return cell_tokens_.size(); }
  /// All block summaries of one posting family, concatenated across
  /// rows; `list` indexes {header, context, type, relation, entity}.
  static constexpr int kNumBlockLists = 5;
  PostingBlockSpan BlockList(int list) const;

 private:
  CorpusHeader header_;
  std::span<const TableMetaDisk> table_meta_;
  ArenaView cells_, headers_, contexts_;
  std::span<const TypeId> column_types_;
  std::span<const EntityId> cell_entities_;
  CsrView<TableRelationDisk> table_relations_;
  ArenaView header_tokens_, context_tokens_;
  CsrView<ColumnRef> header_postings_;
  CsrView<int32_t> context_postings_;
  std::span<const TypeId> type_keys_;
  CsrView<ColumnRef> type_postings_;
  std::span<const RelationId> relation_keys_;
  CsrView<RelationRef> relation_postings_;
  std::span<const EntityId> entity_keys_;
  CsrView<CellRef> entity_postings_;
  // Block-max section (absent in minor-0 snapshots).
  bool has_block_max_ = false;
  CsrView<PostingBlockMax> header_blocks_, context_blocks_, type_blocks_,
      relation_blocks_, entity_blocks_;
  ArenaView cell_tokens_;
  CsrView<CellTokenRef> cell_token_postings_;
};

}  // namespace storage
}  // namespace webtab

#endif  // WEBTAB_STORAGE_SNAPSHOT_VIEWS_H_
