#ifndef WEBTAB_STORAGE_SNAPSHOT_WRITER_H_
#define WEBTAB_STORAGE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog_view.h"
#include "common/status.h"
#include "index/lemma_index.h"
#include "search/corpus_index.h"

namespace webtab {
namespace storage {

/// Serializes catalog / lemma-index / corpus payloads into the snapshot
/// binary format (see format.h and src/storage/README.md). The builder
/// lays out flat offset-based arrays (string arenas, dense id tables,
/// CSR postings) so the file can be opened with mmap and read in place.
///
/// Typical use:
///   SnapshotBuilder builder;
///   builder.SetCatalog(&catalog).SetLemmaIndex(&index).SetCorpus(&corpus);
///   WEBTAB_CHECK_OK(builder.WriteToFile("world.snap"));
class SnapshotBuilder {
 public:
  /// The catalog payload (required). Any CatalogView works, including a
  /// snapshot view (re-snapshotting round-trips losslessly).
  SnapshotBuilder& SetCatalog(const CatalogView* catalog);

  /// Optional lemma-index payload. Requires the in-memory build (the
  /// writer serializes its postings lists and vocabulary verbatim).
  SnapshotBuilder& SetLemmaIndex(const LemmaIndex* index);

  /// Optional corpus payload (annotated tables + postings).
  SnapshotBuilder& SetCorpus(const CorpusIndex* corpus);

  /// Whether to emit the block-max section alongside the corpus section
  /// (default true). Off produces a format-minor-0 file — the layout of
  /// snapshots written before the block-max index existed — which
  /// readers open fine with the unpruned-scan fallback; tests use it to
  /// cover that path.
  SnapshotBuilder& SetWriteBlockMax(bool write);

  /// Serializes to an in-memory buffer (header + payload + section
  /// table, checksummed) — the exact bytes WriteToFile would emit.
  Status WriteTo(std::vector<uint8_t>* out) const;

  /// Serializes to `path` (atomically overwrites on success).
  Status WriteToFile(const std::string& path) const;

 private:
  const CatalogView* catalog_ = nullptr;
  const LemmaIndex* index_ = nullptr;
  const CorpusIndex* corpus_ = nullptr;
  bool write_block_max_ = true;
};

}  // namespace storage
}  // namespace webtab

#endif  // WEBTAB_STORAGE_SNAPSHOT_WRITER_H_
