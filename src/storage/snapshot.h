#ifndef WEBTAB_STORAGE_SNAPSHOT_H_
#define WEBTAB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/snapshot_views.h"

namespace webtab {
namespace storage {

/// An opened snapshot file: a read-only mmap of the whole file plus
/// resolved zero-copy views for each section present. Opening validates
/// the magic, version, size, checksum (optional but on by default) and
/// the structural integrity of every section; it performs no per-record
/// parsing and materializes nothing on the heap beyond the view objects
/// themselves, so open time and memory are O(validation) regardless of
/// catalog size — the point of the format (ROADMAP: many annotator
/// processes sharing one read-only copy).
///
/// The mapping is shared and read-only: any number of threads (or
/// processes opening the same file) read one physical copy.
class Snapshot {
 public:
  struct OpenOptions {
    /// Verify the payload checksum on open. Costs one streaming
    /// pass over the file; disable for fastest possible opens of
    /// already-trusted files.
    bool verify_checksum = true;
    /// Additionally verify the semantic invariants the accessors rely on
    /// beyond raw bounds: sortedness of every binary-searched array,
    /// acyclicity and parent/child consistency of the type DAG, and
    /// lemma ordinals inside each object's lemma list. A checksum only
    /// proves the file was not corrupted in transit; these checks prove
    /// a *hostile* file cannot make accessors read out of bounds, loop,
    /// or silently misanswer. One extra linear pass over the payload.
    bool deep_validate = false;
  };

  struct SectionInfo {
    uint32_t kind = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
  };

  static Result<Snapshot> Open(const std::string& path,
                               const OpenOptions& options);
  static Result<Snapshot> Open(const std::string& path) {
    return Open(path, OpenOptions());
  }

  /// Hardened open for untrusted files: full checksum plus deep semantic
  /// validation (see OpenOptions::deep_validate). Every failure mode is a
  /// returned Status, never a CHECK-crash, so a serving process can
  /// refuse a bad snapshot and keep running (ROADMAP: serve untrusted
  /// snapshots safely).
  static Result<Snapshot> OpenValidated(const std::string& path) {
    OpenOptions options;
    options.verify_checksum = true;
    options.deep_validate = true;
    return Open(path, options);
  }

  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot() = default;

  /// Views for the sections present; nullptr when the payload was not
  /// written into this snapshot. Valid as long as the Snapshot lives.
  const SnapshotCatalogView* catalog() const { return catalog_.get(); }
  const SnapshotLemmaIndexView* lemma_index() const {
    return lemma_index_.get();
  }
  const SnapshotCorpusView* corpus() const { return corpus_.get(); }

  uint64_t file_size() const { return size_; }
  uint32_t version() const { return version_; }
  uint64_t version_minor() const { return version_minor_; }
  uint64_t checksum() const { return checksum_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }

 private:
  Snapshot() = default;

  /// Owns the mapping (munmap on destruction).
  struct Mapping {
    const uint8_t* data = nullptr;
    uint64_t size = 0;
    ~Mapping();
  };

  std::unique_ptr<Mapping> mapping_;
  uint64_t size_ = 0;
  uint32_t version_ = 0;
  uint64_t version_minor_ = 0;
  uint64_t checksum_ = 0;
  std::vector<SectionInfo> sections_;
  std::unique_ptr<SnapshotCatalogView> catalog_;
  std::unique_ptr<SnapshotLemmaIndexView> lemma_index_;
  std::unique_ptr<SnapshotCorpusView> corpus_;
};

}  // namespace storage
}  // namespace webtab

#endif  // WEBTAB_STORAGE_SNAPSHOT_H_
