#ifndef WEBTAB_STORAGE_FORMAT_H_
#define WEBTAB_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "catalog/catalog_view.h"
#include "index/lemma_index.h"
#include "search/corpus_view.h"

namespace webtab {
namespace storage {

/// On-disk layout of a webtab snapshot (see src/storage/README.md).
///
/// A snapshot is a single file:
///
///   [FileHeader | payload ... | SectionEntry[section_count]]
///
/// Every structure below is a fixed-layout POD written verbatim
/// (little-endian, natural alignment, no pointers). All offsets are
/// 8-byte aligned so every array can be read in place after mmap —
/// opening a snapshot never parses records or materializes heap objects.
/// The payload checksum (Checksum64 hash, format.h) covers every byte after the file
/// header, including the section table.

inline constexpr char kMagic[8] = {'W', 'T', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr uint32_t kFormatVersion = 1;
/// Backward-compatible revision within kFormatVersion. Minor 1 adds the
/// block-max section; readers accept any minor (new sections are
/// skipped by old readers, and new readers fall back when the section
/// is absent).
inline constexpr uint64_t kFormatVersionMinor = 1;

enum SectionKind : uint32_t {
  kCatalogSection = 1,
  kLemmaIndexSection = 2,
  kCorpusSection = 3,
  kBlockMaxSection = 4,
};

struct FileHeader {
  char magic[8];
  uint32_t version = kFormatVersion;
  uint32_t section_count = 0;
  uint64_t file_size = 0;
  /// Checksum64 (format.h) over bytes [sizeof(FileHeader), file_size).
  uint64_t payload_checksum = 0;
  /// Absolute offset of the SectionEntry array.
  uint64_t section_table_offset = 0;
  /// Was reserved[0] (always written 0) before minor versioning, so
  /// minor-0 files decode as minor 0 without a layout change.
  uint64_t version_minor = 0;
  uint64_t reserved[2] = {0, 0};
};
static_assert(sizeof(FileHeader) == 64);

struct SectionEntry {
  uint32_t kind = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  // Absolute, 8-byte aligned.
  uint64_t size = 0;    // Bytes.
};
static_assert(sizeof(SectionEntry) == 24);

/// A typed array inside a section: `count` elements of the array type at
/// `offset` bytes from the section start. Empty arrays have count == 0.
struct BlobRef {
  uint64_t offset = 0;
  uint64_t count = 0;
};

/// A string arena: `ends` holds the exclusive end byte offset of each
/// string inside `bytes`; string i spans [ends[i-1] (or 0), ends[i]).
struct StringArenaRef {
  BlobRef ends;   // uint64_t[num_strings], non-decreasing.
  BlobRef bytes;  // char[total_bytes].
};

/// A CSR ragged array: row i's values are values[row_ends[i-1] (or 0),
/// row_ends[i]). The value type is context-dependent.
struct CsrRef {
  BlobRef row_ends;  // uint64_t[num_rows], non-decreasing.
  BlobRef values;
};

// --- Catalog section ------------------------------------------------------

struct RelationMetaDisk {
  int32_t subject_type = kNa;
  int32_t object_type = kNa;
  int32_t cardinality = 0;
  int32_t distinct_subjects = 0;  // |{e1}| in the relation's extension.
  int32_t distinct_objects = 0;
  int32_t pad = 0;
};
static_assert(sizeof(RelationMetaDisk) == 24);

// RelationTuples() exposes the on-disk tuple array directly as
// std::pair<EntityId, EntityId>; pin down the layout assumptions.
static_assert(std::is_standard_layout_v<EntityPair>);
static_assert(sizeof(EntityPair) == 8);

struct CatalogHeader {
  int32_t num_types = 0;
  int32_t num_entities = 0;
  int32_t num_relations = 0;
  int32_t root_type = kNa;
  int64_t num_tuples = 0;

  StringArenaRef type_names;
  StringArenaRef type_lemmas;  // All type lemmas, grouped by type.
  BlobRef type_lemma_ends;     // uint64_t[num_types] into type_lemmas.
  CsrRef type_parents;         // TypeId values, one row per type.
  CsrRef type_children;        // TypeId values.
  CsrRef type_direct_entities;  // EntityId values.

  StringArenaRef entity_names;
  StringArenaRef entity_lemmas;  // All entity lemmas, grouped by entity.
  BlobRef entity_lemma_ends;     // uint64_t[num_entities].
  CsrRef entity_direct_types;    // TypeId values.

  StringArenaRef relation_names;
  BlobRef relation_meta;  // RelationMetaDisk[num_relations].
  CsrRef tuples;          // EntityPair values, one row per relation,
                          // sorted by (subject, object), unique.

  // Forward index: for each relation a sorted run of distinct subjects in
  // fwd_keys; the objects of global key k are fwd_values[fwd_value_ends
  // [k-1] (or 0), fwd_value_ends[k]). Objects sorted ascending.
  BlobRef fwd_key_ends;    // uint64_t[num_relations] into fwd_keys.
  BlobRef fwd_keys;        // EntityId[].
  BlobRef fwd_value_ends;  // uint64_t[len(fwd_keys)] into fwd_values.
  BlobRef fwd_values;      // EntityId[].
  // Reverse index: distinct objects -> sorted subjects.
  BlobRef rev_key_ends;
  BlobRef rev_keys;
  BlobRef rev_value_ends;
  BlobRef rev_values;

  // Global pair index: pair_keys[i] = (uint64(e1) << 32) | uint32(e2),
  // sorted ascending; the relations containing the pair (ascending id)
  // are pair_rels[pair_rel_ends[i-1] (or 0), pair_rel_ends[i]).
  BlobRef pair_keys;      // uint64_t[].
  BlobRef pair_rel_ends;  // uint64_t[len(pair_keys)].
  BlobRef pair_rels;      // RelationId[].

  // Name lookup: ids sorted by their name (byte order), binary searched.
  BlobRef types_by_name;      // TypeId[num_types].
  BlobRef entities_by_name;   // EntityId[num_entities].
  BlobRef relations_by_name;  // RelationId[num_relations].
};

// --- Lemma index section --------------------------------------------------

static_assert(std::is_trivially_copyable_v<LemmaPosting>);

struct LemmaIndexHeader {
  int64_t num_postings = 0;
  int64_t num_documents = 0;  // Vocabulary document count (IDF source).
  int64_t num_tokens = 0;

  StringArenaRef token_texts;  // By TokenId.
  BlobRef token_doc_freq;      // int64_t[num_tokens].
  BlobRef tokens_by_text;      // TokenId[num_tokens], sorted by text.
  CsrRef entity_postings;      // LemmaPosting values, one row per token.
  CsrRef type_postings;        // LemmaPosting values.
};

// --- Corpus section -------------------------------------------------------

static_assert(std::is_trivially_copyable_v<ColumnRef>);
static_assert(std::is_trivially_copyable_v<RelationRef>);
static_assert(std::is_trivially_copyable_v<CellRef>);

struct TableMetaDisk {
  int64_t id = -1;
  int32_t rows = 0;
  int32_t cols = 0;
  uint64_t cell_start = 0;  // Index into the cells arena (row-major).
  uint64_t col_start = 0;   // Index into headers arena / column_types.
  int32_t has_headers = 0;
  int32_t pad = 0;
};
static_assert(sizeof(TableMetaDisk) == 40);

/// One annotated relation on a table's ordered column pair (c1 < c2).
struct TableRelationDisk {
  int32_t c1 = 0;
  int32_t c2 = 0;
  int32_t relation = kNa;
  int32_t swapped = 0;
};
static_assert(sizeof(TableRelationDisk) == 16);

struct CorpusHeader {
  int64_t num_tables = 0;

  BlobRef table_meta;       // TableMetaDisk[num_tables].
  StringArenaRef cells;     // All cells, tables consecutive, row-major.
  StringArenaRef headers;   // cols strings per table (empty if none).
  StringArenaRef contexts;  // One per table.
  BlobRef column_types;     // TypeId[total_cols], at meta.col_start + c.
  BlobRef cell_entities;    // EntityId[total_cells], at cell_start+r*cols+c.
  CsrRef table_relations;   // TableRelationDisk values, one row per table,
                            // sorted by (c1, c2).

  StringArenaRef header_tokens;   // Distinct tokens, sorted by text.
  CsrRef header_postings;         // ColumnRef values, one row per token.
  StringArenaRef context_tokens;  // Sorted by text.
  CsrRef context_postings;        // int32_t table ids.
  BlobRef type_keys;              // TypeId[], sorted ascending.
  CsrRef type_postings;           // ColumnRef values, one row per key.
  BlobRef relation_keys;          // RelationId[], sorted.
  CsrRef relation_postings;       // RelationRef values.
  BlobRef entity_keys;            // EntityId[], sorted.
  CsrRef entity_postings;         // CellRef values.
};

// --- Block-max section (format minor 1) -----------------------------------

static_assert(std::is_trivially_copyable_v<PostingBlockMax>);

/// Block-max summaries for every search-facing posting list of the
/// corpus section, plus the cell-token match-support index. Each block
/// CSR is row-aligned with the corresponding corpus postings CSR (row i
/// here summarizes row i there, ceil(len / kPostingBlockSize) blocks
/// per row). Written only alongside a corpus section; readers that
/// predate it skip the unknown kind, and new readers fall back to the
/// unpruned scan when it is absent.
struct BlockMaxHeader {
  int64_t block_size = kPostingBlockSize;

  CsrRef header_blocks;    // PostingBlockMax, one row per header token.
  CsrRef context_blocks;   // One row per context token.
  CsrRef type_blocks;      // One row per type key.
  CsrRef relation_blocks;  // One row per relation key.
  CsrRef entity_blocks;    // One row per entity key.

  StringArenaRef cell_tokens;  // Distinct cell tokens, sorted by text.
  CsrRef cell_token_postings;  // CellTokenRef values, one row per
                               // token, sorted by (table, col), unique;
                               // min_tokens >= 1.
};

/// Payload checksum: a word-at-a-time multiply-xor hash (FNV-style
/// constants, murmur-style finalizer). Processes 8 bytes per step so
/// verification runs at memory speed — the open-time budget is "mmap +
/// one streaming pass", and a byte-serial hash would dominate it.
/// Dependency-free and strong enough to catch truncation and bit rot
/// (not cryptographic).
inline uint64_t Checksum64(const uint8_t* data, uint64_t size) {
  auto mix = [](uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return x;
  };
  uint64_t h = 0xcbf29ce484222325ULL ^ (size * 0x100000001b3ULL);
  uint64_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ mix(w)) * 0x9e3779b97f4a7c15ULL;
  }
  uint64_t tail = 0;
  if (i < size) {
    std::memcpy(&tail, data + i, size - i);
    h = (h ^ mix(tail)) * 0x9e3779b97f4a7c15ULL;
  }
  return mix(h);
}

}  // namespace storage
}  // namespace webtab

#endif  // WEBTAB_STORAGE_FORMAT_H_
