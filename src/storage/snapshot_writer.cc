#include "storage/snapshot_writer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <span>
#include <string_view>

#include "search/block_max.h"
#include "storage/format.h"

namespace webtab {
namespace storage {

namespace {

/// Accumulates one section: a fixed header at offset 0 followed by
/// 8-byte-aligned blobs. BlobRef offsets are section-relative.
class SectionBuilder {
 public:
  explicit SectionBuilder(size_t header_size) {
    bytes_.resize(Align(header_size), 0);
  }

  template <typename T>
  BlobRef Add(std::span<const T> data) {
    // std::pair<int32, int32> (relation tuples) is standard-layout but
    // not formally trivially copyable; byte serialization is still exact.
    static_assert(std::is_standard_layout_v<T> &&
                  std::is_trivially_destructible_v<T>);
    BlobRef ref;
    ref.offset = bytes_.size();
    ref.count = data.size();
    const uint8_t* raw = reinterpret_cast<const uint8_t*>(data.data());
    bytes_.insert(bytes_.end(), raw, raw + data.size_bytes());
    Pad();
    return ref;
  }

  template <typename T>
  BlobRef Add(const std::vector<T>& data) {
    return Add(std::span<const T>(data));
  }

  StringArenaRef AddArena(const std::vector<uint64_t>& ends,
                          const std::string& chars) {
    StringArenaRef ref;
    ref.ends = Add(ends);
    ref.bytes.offset = bytes_.size();
    ref.bytes.count = chars.size();
    bytes_.insert(bytes_.end(), chars.begin(), chars.end());
    Pad();
    return ref;
  }

  void FinishHeader(const void* header, size_t size) {
    std::memcpy(bytes_.data(), header, size);
  }

  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  static size_t Align(size_t n) { return (n + 7) & ~size_t{7}; }
  void Pad() { bytes_.resize(Align(bytes_.size()), 0); }

  std::vector<uint8_t> bytes_;
};

/// Incrementally builds a string arena (ends + bytes).
struct ArenaAccum {
  std::vector<uint64_t> ends;
  std::string chars;

  void Add(std::string_view s) {
    chars.append(s);
    ends.push_back(chars.size());
  }
  uint64_t size() const { return ends.size(); }
};

/// Ids 0..n-1 sorted by their name, for binary-searched name lookup.
template <typename NameFn>
std::vector<int32_t> SortIdsByName(int32_t n, NameFn name_of) {
  std::vector<int32_t> ids(n);
  for (int32_t i = 0; i < n; ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [&](int32_t a, int32_t b) {
    std::string_view na = name_of(a), nb = name_of(b);
    if (na != nb) return na < nb;
    return a < b;
  });
  return ids;
}

std::vector<uint8_t> BuildCatalogSection(const CatalogView& cat) {
  SectionBuilder sb(sizeof(CatalogHeader));
  CatalogHeader h;
  h.num_types = cat.num_types();
  h.num_entities = cat.num_entities();
  h.num_relations = cat.num_relations();
  h.root_type = cat.root_type();
  h.num_tuples = cat.num_tuples();

  // --- Types ---
  ArenaAccum type_names, type_lemmas;
  std::vector<uint64_t> type_lemma_ends;
  std::vector<uint64_t> parent_ends, child_ends, dirent_ends;
  std::vector<TypeId> parents, children;
  std::vector<EntityId> dirents;
  for (TypeId t = 0; t < h.num_types; ++t) {
    type_names.Add(cat.TypeName(t));
    for (int32_t i = 0; i < cat.NumTypeLemmas(t); ++i) {
      type_lemmas.Add(cat.TypeLemma(t, i));
    }
    type_lemma_ends.push_back(type_lemmas.size());
    auto ps = cat.TypeParents(t);
    parents.insert(parents.end(), ps.begin(), ps.end());
    parent_ends.push_back(parents.size());
    auto cs = cat.TypeChildren(t);
    children.insert(children.end(), cs.begin(), cs.end());
    child_ends.push_back(children.size());
    auto es = cat.TypeDirectEntities(t);
    dirents.insert(dirents.end(), es.begin(), es.end());
    dirent_ends.push_back(dirents.size());
  }
  h.type_names = sb.AddArena(type_names.ends, type_names.chars);
  h.type_lemmas = sb.AddArena(type_lemmas.ends, type_lemmas.chars);
  h.type_lemma_ends = sb.Add(type_lemma_ends);
  h.type_parents = CsrRef{sb.Add(parent_ends), sb.Add(parents)};
  h.type_children = CsrRef{sb.Add(child_ends), sb.Add(children)};
  h.type_direct_entities = CsrRef{sb.Add(dirent_ends), sb.Add(dirents)};

  // --- Entities ---
  ArenaAccum entity_names, entity_lemmas;
  std::vector<uint64_t> entity_lemma_ends, dirtype_ends;
  std::vector<TypeId> dirtypes;
  for (EntityId e = 0; e < h.num_entities; ++e) {
    entity_names.Add(cat.EntityName(e));
    for (int32_t i = 0; i < cat.NumEntityLemmas(e); ++i) {
      entity_lemmas.Add(cat.EntityLemma(e, i));
    }
    entity_lemma_ends.push_back(entity_lemmas.size());
    auto ts = cat.EntityDirectTypes(e);
    dirtypes.insert(dirtypes.end(), ts.begin(), ts.end());
    dirtype_ends.push_back(dirtypes.size());
  }
  h.entity_names = sb.AddArena(entity_names.ends, entity_names.chars);
  h.entity_lemmas = sb.AddArena(entity_lemmas.ends, entity_lemmas.chars);
  h.entity_lemma_ends = sb.Add(entity_lemma_ends);
  h.entity_direct_types = CsrRef{sb.Add(dirtype_ends), sb.Add(dirtypes)};

  // --- Relations: meta + tuples + derived indexes ---
  ArenaAccum relation_names;
  std::vector<RelationMetaDisk> metas;
  std::vector<uint64_t> tuple_ends;
  std::vector<EntityPair> tuples;
  std::vector<uint64_t> fwd_key_ends, fwd_value_ends;
  std::vector<EntityId> fwd_keys, fwd_values;
  std::vector<uint64_t> rev_key_ends, rev_value_ends;
  std::vector<EntityId> rev_keys, rev_values;
  std::vector<std::pair<uint64_t, RelationId>> pair_entries;
  for (RelationId b = 0; b < h.num_relations; ++b) {
    relation_names.Add(cat.RelationName(b));
    RelationMetaDisk meta;
    meta.subject_type = cat.RelationSubjectType(b);
    meta.object_type = cat.RelationObjectType(b);
    meta.cardinality = static_cast<int32_t>(cat.RelationCardinalityOf(b));
    meta.distinct_subjects = static_cast<int32_t>(cat.DistinctSubjects(b));
    meta.distinct_objects = static_cast<int32_t>(cat.DistinctObjects(b));
    metas.push_back(meta);

    auto ts = cat.RelationTuples(b);
    tuples.insert(tuples.end(), ts.begin(), ts.end());
    tuple_ends.push_back(tuples.size());

    // Forward index: tuples are sorted by (subject, object), so one
    // linear grouping pass yields sorted keys with sorted object runs.
    for (size_t i = 0; i < ts.size();) {
      EntityId subject = ts[i].first;
      fwd_keys.push_back(subject);
      while (i < ts.size() && ts[i].first == subject) {
        fwd_values.push_back(ts[i].second);
        ++i;
      }
      fwd_value_ends.push_back(fwd_values.size());
    }
    fwd_key_ends.push_back(fwd_keys.size());

    // Reverse index: re-sort by (object, subject).
    std::vector<EntityPair> rev(ts.begin(), ts.end());
    std::sort(rev.begin(), rev.end(),
              [](const EntityPair& a, const EntityPair& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    for (size_t i = 0; i < rev.size();) {
      EntityId object = rev[i].second;
      rev_keys.push_back(object);
      while (i < rev.size() && rev[i].second == object) {
        rev_values.push_back(rev[i].first);
        ++i;
      }
      rev_value_ends.push_back(rev_values.size());
    }
    rev_key_ends.push_back(rev_keys.size());

    for (const EntityPair& tp : ts) {
      uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(tp.first)) << 32) |
          static_cast<uint32_t>(tp.second);
      pair_entries.emplace_back(key, b);
    }
  }
  h.relation_names = sb.AddArena(relation_names.ends, relation_names.chars);
  h.relation_meta = sb.Add(metas);
  h.tuples = CsrRef{sb.Add(tuple_ends), sb.Add(tuples)};
  h.fwd_key_ends = sb.Add(fwd_key_ends);
  h.fwd_keys = sb.Add(fwd_keys);
  h.fwd_value_ends = sb.Add(fwd_value_ends);
  h.fwd_values = sb.Add(fwd_values);
  h.rev_key_ends = sb.Add(rev_key_ends);
  h.rev_keys = sb.Add(rev_keys);
  h.rev_value_ends = sb.Add(rev_value_ends);
  h.rev_values = sb.Add(rev_values);

  // Pair index. Stable sort keeps relations in ascending id order within
  // one key, matching the in-memory build (tuples_by_pair_ push order).
  std::stable_sort(pair_entries.begin(), pair_entries.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<uint64_t> pair_keys, pair_rel_ends;
  std::vector<RelationId> pair_rels;
  for (size_t i = 0; i < pair_entries.size();) {
    uint64_t key = pair_entries[i].first;
    pair_keys.push_back(key);
    while (i < pair_entries.size() && pair_entries[i].first == key) {
      pair_rels.push_back(pair_entries[i].second);
      ++i;
    }
    pair_rel_ends.push_back(pair_rels.size());
  }
  h.pair_keys = sb.Add(pair_keys);
  h.pair_rel_ends = sb.Add(pair_rel_ends);
  h.pair_rels = sb.Add(pair_rels);

  h.types_by_name = sb.Add(SortIdsByName(
      h.num_types, [&](int32_t t) { return cat.TypeName(t); }));
  h.entities_by_name = sb.Add(SortIdsByName(
      h.num_entities, [&](int32_t e) { return cat.EntityName(e); }));
  h.relations_by_name = sb.Add(SortIdsByName(
      h.num_relations, [&](int32_t b) { return cat.RelationName(b); }));

  sb.FinishHeader(&h, sizeof(h));
  return sb.TakeBytes();
}

std::vector<uint8_t> BuildLemmaIndexSection(const LemmaIndex& index) {
  SectionBuilder sb(sizeof(LemmaIndexHeader));
  LemmaIndexHeader h;
  const Vocabulary& vocab = *index.vocabulary();
  h.num_postings = index.num_postings();
  h.num_documents = vocab.num_documents();
  h.num_tokens = vocab.size();

  ArenaAccum token_texts;
  std::vector<int64_t> doc_freq;
  for (TokenId t = 0; t < h.num_tokens; ++t) {
    token_texts.Add(vocab.TokenText(t));
    doc_freq.push_back(vocab.DocumentFrequency(t));
  }
  h.token_texts = sb.AddArena(token_texts.ends, token_texts.chars);
  h.token_doc_freq = sb.Add(doc_freq);
  h.tokens_by_text = sb.Add(SortIdsByName(
      static_cast<int32_t>(h.num_tokens),
      [&](int32_t t) { return std::string_view(vocab.TokenText(t)); }));

  std::vector<uint64_t> ent_ends, typ_ends;
  std::vector<LemmaPosting> ent_vals, typ_vals;
  for (TokenId t = 0; t < h.num_tokens; ++t) {
    auto ep = index.EntityPostingsForToken(t);
    ent_vals.insert(ent_vals.end(), ep.begin(), ep.end());
    ent_ends.push_back(ent_vals.size());
    auto tp = index.TypePostingsForToken(t);
    typ_vals.insert(typ_vals.end(), tp.begin(), tp.end());
    typ_ends.push_back(typ_vals.size());
  }
  h.entity_postings = CsrRef{sb.Add(ent_ends), sb.Add(ent_vals)};
  h.type_postings = CsrRef{sb.Add(typ_ends), sb.Add(typ_vals)};

  sb.FinishHeader(&h, sizeof(h));
  return sb.TakeBytes();
}

/// Serializes an unordered postings map with sortable keys: emits
/// (sorted keys, CSR of the per-key vectors in stored order). Stored
/// order is the CorpusIndex build order, i.e. table-sorted — the
/// CorpusView ordering contract OpenValidated re-checks on open.
template <typename K, typename V>
void AddKeyedPostings(SectionBuilder* sb,
                      const std::unordered_map<K, std::vector<V>>& map,
                      BlobRef* keys_out, CsrRef* postings_out) {
  std::vector<K> keys;
  keys.reserve(map.size());
  for (const auto& [k, v] : map) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  std::vector<uint64_t> ends;
  std::vector<V> values;
  for (const K& k : keys) {
    const auto& v = map.at(k);
    values.insert(values.end(), v.begin(), v.end());
    ends.push_back(values.size());
  }
  *keys_out = sb->Add(keys);
  *postings_out = CsrRef{sb->Add(ends), sb->Add(values)};
}

/// String-keyed variant: keys become a sorted token arena.
template <typename MapT>
void AddTokenPostings(SectionBuilder* sb, const MapT& map,
                      StringArenaRef* tokens_out, CsrRef* postings_out) {
  using V = typename MapT::mapped_type::value_type;
  std::vector<const std::string*> keys;
  keys.reserve(map.size());
  for (const auto& [k, v] : map) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  ArenaAccum arena;
  std::vector<uint64_t> ends;
  std::vector<V> values;
  for (const std::string* k : keys) {
    arena.Add(*k);
    const auto& v = map.at(*k);
    values.insert(values.end(), v.begin(), v.end());
    ends.push_back(values.size());
  }
  *tokens_out = sb->AddArena(arena.ends, arena.chars);
  *postings_out = CsrRef{sb->Add(ends), sb->Add(values)};
}

std::vector<uint8_t> BuildCorpusSection(const CorpusIndex& corpus) {
  SectionBuilder sb(sizeof(CorpusHeader));
  CorpusHeader h;
  h.num_tables = corpus.num_tables();

  std::vector<TableMetaDisk> metas;
  ArenaAccum cells, headers, contexts;
  std::vector<TypeId> column_types;
  std::vector<EntityId> cell_entities;
  std::vector<uint64_t> rel_ends;
  std::vector<TableRelationDisk> rels;
  for (int t = 0; t < h.num_tables; ++t) {
    const AnnotatedTable& at = corpus.table(t);
    TableMetaDisk meta;
    meta.id = at.table.id();
    meta.rows = at.table.rows();
    meta.cols = at.table.cols();
    meta.cell_start = cells.size();
    meta.col_start = headers.size();
    meta.has_headers = at.table.has_headers() ? 1 : 0;
    metas.push_back(meta);
    for (int r = 0; r < meta.rows; ++r) {
      for (int c = 0; c < meta.cols; ++c) {
        cells.Add(at.table.cell(r, c));
        cell_entities.push_back(at.annotation.EntityOf(r, c));
      }
    }
    for (int c = 0; c < meta.cols; ++c) {
      headers.Add(at.table.header(c));
      column_types.push_back(at.annotation.TypeOf(c));
    }
    contexts.Add(at.table.context());
    // std::map iterates pairs in (c1, c2) order; skip explicit na
    // entries (they decode identically to absent ones).
    for (const auto& [pair, rel] : at.annotation.relations) {
      if (rel.is_na()) continue;
      rels.push_back(TableRelationDisk{pair.first, pair.second,
                                       rel.relation, rel.swapped ? 1 : 0});
    }
    rel_ends.push_back(rels.size());
  }
  h.table_meta = sb.Add(metas);
  h.cells = sb.AddArena(cells.ends, cells.chars);
  h.headers = sb.AddArena(headers.ends, headers.chars);
  h.contexts = sb.AddArena(contexts.ends, contexts.chars);
  h.column_types = sb.Add(column_types);
  h.cell_entities = sb.Add(cell_entities);
  h.table_relations = CsrRef{sb.Add(rel_ends), sb.Add(rels)};

  AddTokenPostings(&sb, corpus.header_postings_map(), &h.header_tokens,
                   &h.header_postings);
  AddTokenPostings(&sb, corpus.context_postings_map(), &h.context_tokens,
                   &h.context_postings);
  AddKeyedPostings(&sb, corpus.type_postings_map(), &h.type_keys,
                   &h.type_postings);
  AddKeyedPostings(&sb, corpus.relation_postings_map(), &h.relation_keys,
                   &h.relation_postings);
  AddKeyedPostings(&sb, corpus.entity_postings_map(), &h.entity_keys,
                   &h.entity_postings);

  sb.FinishHeader(&h, sizeof(h));
  return sb.TakeBytes();
}

/// Builds the block-max section. Every block CSR mirrors the row order
/// its corpus-section twin was serialized in (sorted keys / sorted token
/// arena — AddKeyedPostings / AddTokenPostings above), so row i here
/// summarizes row i there. Blocks come from the same shared helper the
/// in-memory CorpusIndex build uses, keeping both backends' summaries
/// identical for identical lists.
std::vector<uint8_t> BuildBlockMaxSection(const CorpusIndex& corpus) {
  SectionBuilder sb(sizeof(BlockMaxHeader));
  BlockMaxHeader h;
  auto rows_of = [&](int32_t t) { return corpus.rows(t); };

  // Token-keyed lists iterate in sorted token order; id-keyed lists in
  // sorted id order — exactly the corpus section's serialization order.
  auto add_token_blocks = [&](const auto& map) {
    std::vector<const std::string*> keys;
    keys.reserve(map.size());
    for (const auto& [k, v] : map) keys.push_back(&k);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    std::vector<uint64_t> ends;
    std::vector<PostingBlockMax> blocks;
    for (const std::string* k : keys) {
      search_internal::AppendPostingBlocks(std::span(map.at(*k)), rows_of,
                                           &blocks);
      ends.push_back(blocks.size());
    }
    return CsrRef{sb.Add(ends), sb.Add(blocks)};
  };
  auto add_keyed_blocks = [&](const auto& map) {
    using K = typename std::decay_t<decltype(map)>::key_type;
    std::vector<K> keys;
    keys.reserve(map.size());
    for (const auto& [k, v] : map) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    std::vector<uint64_t> ends;
    std::vector<PostingBlockMax> blocks;
    for (const K& k : keys) {
      search_internal::AppendPostingBlocks(std::span(map.at(k)), rows_of,
                                           &blocks);
      ends.push_back(blocks.size());
    }
    return CsrRef{sb.Add(ends), sb.Add(blocks)};
  };

  h.header_blocks = add_token_blocks(corpus.header_postings_map());
  h.context_blocks = add_token_blocks(corpus.context_postings_map());
  h.type_blocks = add_keyed_blocks(corpus.type_postings_map());
  h.relation_blocks = add_keyed_blocks(corpus.relation_postings_map());
  h.entity_blocks = add_keyed_blocks(corpus.entity_postings_map());

  AddTokenPostings(&sb, corpus.cell_token_postings_map(), &h.cell_tokens,
                   &h.cell_token_postings);

  sb.FinishHeader(&h, sizeof(h));
  return sb.TakeBytes();
}

}  // namespace

SnapshotBuilder& SnapshotBuilder::SetCatalog(const CatalogView* catalog) {
  catalog_ = catalog;
  return *this;
}

SnapshotBuilder& SnapshotBuilder::SetLemmaIndex(const LemmaIndex* index) {
  index_ = index;
  return *this;
}

SnapshotBuilder& SnapshotBuilder::SetCorpus(const CorpusIndex* corpus) {
  corpus_ = corpus;
  return *this;
}

SnapshotBuilder& SnapshotBuilder::SetWriteBlockMax(bool write) {
  write_block_max_ = write;
  return *this;
}

Status SnapshotBuilder::WriteTo(std::vector<uint8_t>* out) const {
  if (catalog_ == nullptr) {
    return Status::FailedPrecondition("snapshot requires a catalog payload");
  }

  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> sections;
  sections.emplace_back(kCatalogSection, BuildCatalogSection(*catalog_));
  if (index_ != nullptr) {
    sections.emplace_back(kLemmaIndexSection,
                          BuildLemmaIndexSection(*index_));
  }
  if (corpus_ != nullptr) {
    sections.emplace_back(kCorpusSection, BuildCorpusSection(*corpus_));
    if (write_block_max_) {
      sections.emplace_back(kBlockMaxSection,
                            BuildBlockMaxSection(*corpus_));
    }
  }

  out->clear();
  out->resize(sizeof(FileHeader), 0);
  std::vector<SectionEntry> entries;
  for (auto& [kind, bytes] : sections) {
    SectionEntry entry;
    entry.kind = kind;
    entry.offset = out->size();
    entry.size = bytes.size();
    entries.push_back(entry);
    out->insert(out->end(), bytes.begin(), bytes.end());
    out->resize((out->size() + 7) & ~size_t{7}, 0);  // 8-align next.
  }
  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  // Legacy layout (no block-max section) is exactly minor 0.
  header.version_minor =
      (corpus_ != nullptr && write_block_max_) ? kFormatVersionMinor : 0;
  header.section_count = static_cast<uint32_t>(entries.size());
  header.section_table_offset = out->size();
  const uint8_t* entry_bytes =
      reinterpret_cast<const uint8_t*>(entries.data());
  out->insert(out->end(), entry_bytes,
              entry_bytes + entries.size() * sizeof(SectionEntry));
  header.file_size = out->size();
  header.payload_checksum = Checksum64(out->data() + sizeof(FileHeader),
                                    out->size() - sizeof(FileHeader));
  std::memcpy(out->data(), &header, sizeof(header));
  return Status::Ok();
}

Status SnapshotBuilder::WriteToFile(const std::string& path) const {
  std::vector<uint8_t> bytes;
  WEBTAB_RETURN_IF_ERROR(WriteTo(&bytes));
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + tmp);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace webtab
