#include "table/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace webtab {

namespace {
const std::string kEmpty;
}  // namespace

const std::string& Table::header(int c) const {
  WEBTAB_CHECK(c >= 0 && c < cols_);
  if (headers_.empty()) return kEmpty;
  return headers_[c];
}

void Table::set_header(int c, std::string text) {
  WEBTAB_CHECK(c >= 0 && c < cols_);
  if (headers_.empty()) headers_.resize(cols_);
  headers_[c] = std::move(text);
}

double Table::NumericFraction(int c) const {
  WEBTAB_CHECK(c >= 0 && c < cols_);
  if (rows_ == 0) return 0.0;
  int numeric = 0;
  for (int r = 0; r < rows_; ++r) {
    if (LooksNumeric(cell(r, c))) ++numeric;
  }
  return static_cast<double>(numeric) / rows_;
}

std::string Table::DebugString() const {
  std::string out;
  if (!context_.empty()) out += "context: " + context_ + "\n";
  if (has_headers()) {
    for (int c = 0; c < cols_; ++c) {
      if (c) out += " | ";
      out += header(c);
    }
    out += "\n";
    out += std::string(40, '-');
    out += "\n";
  }
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (c) out += " | ";
      out += cell(r, c);
    }
    out += "\n";
  }
  return out;
}

}  // namespace webtab
