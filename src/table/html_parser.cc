#include "table/html_parser.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace webtab {

namespace {

struct Tag {
  std::string name;     // Lowercase, no slash.
  bool closing = false;
  std::string attrs;    // Raw attribute text.
};

/// Scans one tag starting at `pos` (s[pos] == '<'). Returns position just
/// past '>' (or end of string) and fills `tag`.
size_t ScanTag(std::string_view s, size_t pos, Tag* tag) {
  size_t i = pos + 1;
  tag->closing = false;
  tag->name.clear();
  tag->attrs.clear();
  if (i < s.size() && s[i] == '/') {
    tag->closing = true;
    ++i;
  }
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])))) {
    tag->name += static_cast<char>(
        std::tolower(static_cast<unsigned char>(s[i])));
    ++i;
  }
  size_t attr_start = i;
  while (i < s.size() && s[i] != '>') ++i;
  tag->attrs = std::string(s.substr(attr_start, i - attr_start));
  return i < s.size() ? i + 1 : i;
}

/// Parses integer attribute like colspan="3" from a raw attribute string.
int AttrInt(const std::string& attrs, std::string_view name, int def) {
  std::string lower = ToLower(attrs);
  size_t pos = lower.find(std::string(name));
  if (pos == std::string::npos) return def;
  pos = lower.find('=', pos);
  if (pos == std::string::npos) return def;
  ++pos;
  while (pos < lower.size() &&
         (lower[pos] == '"' || lower[pos] == '\'' || lower[pos] == ' ')) {
    ++pos;
  }
  int v = std::atoi(lower.c_str() + pos);
  return v > 0 ? v : def;
}

void AppendText(std::string* out, std::string_view text) {
  std::string decoded = DecodeHtmlEntities(text);
  std::string_view stripped = StripWhitespace(decoded);
  if (stripped.empty()) return;
  if (!out->empty()) *out += ' ';
  out->append(stripped);
}

}  // namespace

std::string DecodeHtmlEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size();) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos || semi - i > 8) {
      out += text[i++];
      continue;
    }
    std::string_view ent = text.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out += '&';
    } else if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos" || ent == "#39") {
      out += '\'';
    } else if (ent == "nbsp") {
      out += ' ';
    } else if (!ent.empty() && ent[0] == '#') {
      int code = std::atoi(std::string(ent.substr(1)).c_str());
      if (code >= 32 && code < 127) {
        out += static_cast<char>(code);
      } else {
        out += ' ';
      }
    } else {
      out += '&';
      ++i;
      continue;
    }
    i = semi + 1;
  }
  return out;
}

bool RawTable::HasMergedCells() const {
  for (const auto& row : rows) {
    for (const auto& cell : row) {
      if (cell.colspan > 1 || cell.rowspan > 1) return true;
    }
  }
  return false;
}

bool RawTable::IsRegular() const {
  if (rows.empty() || rows[0].empty()) return false;
  size_t n = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != n) return false;
  }
  return true;
}

int RawTable::NumCols() const {
  return rows.empty() ? 0 : static_cast<int>(rows[0].size());
}

std::vector<RawTable> ParseHtmlTables(std::string_view html) {
  std::vector<RawTable> tables;
  // Rolling window of text preceding the current table, used as context.
  std::string recent_text;

  size_t i = 0;
  while (i < html.size()) {
    if (html[i] != '<') {
      size_t next = html.find('<', i);
      if (next == std::string_view::npos) next = html.size();
      AppendText(&recent_text, html.substr(i, next - i));
      if (recent_text.size() > 400) {
        recent_text.erase(0, recent_text.size() - 400);
      }
      i = next;
      continue;
    }
    Tag tag;
    size_t after = ScanTag(html, i, &tag);
    if (tag.name != "table" || tag.closing) {
      i = after;
      continue;
    }
    // Inside a <table>: scan until its matching </table>, tracking depth
    // for nested tables (their content is folded into the current cell).
    RawTable table;
    table.context = recent_text;
    int depth = 1;
    RawCell* cell = nullptr;
    std::vector<RawCell> row;
    bool in_row = false;
    size_t j = after;
    while (j < html.size() && depth > 0) {
      if (html[j] != '<') {
        size_t next = html.find('<', j);
        if (next == std::string_view::npos) next = html.size();
        if (cell != nullptr) {
          AppendText(&cell->text, html.substr(j, next - j));
        }
        j = next;
        continue;
      }
      Tag t;
      size_t tag_end = ScanTag(html, j, &t);
      if (t.name == "table") {
        if (t.closing) {
          --depth;
        } else {
          ++depth;
          table.nested = true;
        }
      } else if (depth == 1) {
        if (t.name == "tr") {
          if (!t.closing) {
            if (in_row && !row.empty()) {
              table.rows.push_back(std::move(row));
              row.clear();
            }
            in_row = true;
            cell = nullptr;
          } else {
            if (in_row && !row.empty()) {
              table.rows.push_back(std::move(row));
              row.clear();
            }
            in_row = false;
            cell = nullptr;
          }
        } else if (t.name == "td" || t.name == "th") {
          if (!t.closing) {
            if (!in_row) in_row = true;  // Tolerate missing <tr>.
            row.push_back(RawCell{});
            cell = &row.back();
            cell->is_header = (t.name == "th");
            cell->colspan = AttrInt(t.attrs, "colspan", 1);
            cell->rowspan = AttrInt(t.attrs, "rowspan", 1);
          } else {
            cell = nullptr;
          }
        } else if (cell != nullptr) {
          if (t.name == "a" && !t.closing) ++cell->link_count;
          if (t.name == "img" && !t.closing) ++cell->image_count;
          if ((t.name == "form" || t.name == "input" ||
               t.name == "select") &&
              !t.closing) {
            ++cell->form_count;
          }
        }
      }
      j = tag_end;
    }
    if (in_row && !row.empty()) table.rows.push_back(std::move(row));
    tables.push_back(std::move(table));
    recent_text.clear();
    i = j;
  }
  return tables;
}

}  // namespace webtab
