#ifndef WEBTAB_TABLE_TABLE_H_
#define WEBTAB_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace webtab {

/// A source table after preprocessing (paper §3.2): very regular —
/// #cells == rows × cols, no merged cells — with optional column headers
/// and a short textual context captured from around the table. Rows are
/// relation instances, columns are attributes.
class Table {
 public:
  Table() = default;
  Table(int rows, int cols)
      : rows_(rows), cols_(cols), cells_(static_cast<size_t>(rows) * cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Cell text D_rc; r in [0, rows), c in [0, cols).
  const std::string& cell(int r, int c) const {
    return cells_[Index(r, c)];
  }
  void set_cell(int r, int c, std::string text) {
    cells_[Index(r, c)] = std::move(text);
  }

  /// Header text H_c; empty string when the column has no header.
  const std::string& header(int c) const;
  void set_header(int c, std::string text);
  bool has_headers() const { return !headers_.empty(); }

  const std::string& context() const { return context_; }
  void set_context(std::string context) { context_ = std::move(context); }

  /// Stable identifier within a corpus (assigned by extractor/generator).
  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  /// Fraction of cells in column c that look numeric.
  double NumericFraction(int c) const;

  /// Human-readable rendering for debugging / examples.
  std::string DebugString() const;

 private:
  size_t Index(int r, int c) const {
    return static_cast<size_t>(r) * cols_ + c;
  }

  int rows_ = 0;
  int cols_ = 0;
  int64_t id_ = -1;
  std::string context_;
  std::vector<std::string> headers_;  // Empty or size cols_.
  std::vector<std::string> cells_;
};

}  // namespace webtab

#endif  // WEBTAB_TABLE_TABLE_H_
