#ifndef WEBTAB_TABLE_ANNOTATION_H_
#define WEBTAB_TABLE_ANNOTATION_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "catalog/ids.h"
#include "table/table.h"

namespace webtab {

/// The full annotation of one table (paper §1.1): a type per column, an
/// entity per cell, and a relation per column pair — each possibly kNa.
/// Used both as system output and as ground truth.
struct TableAnnotation {
  /// column_types[c]; kNa = no type annotation.
  std::vector<TypeId> column_types;
  /// cell_entities[r][c]; kNa = no entity annotation.
  std::vector<std::vector<EntityId>> cell_entities;
  /// Relations on ordered column pairs (c < c'); absent pairs mean na.
  std::map<std::pair<int, int>, RelationCandidate> relations;

  /// Sized-out empty annotation (all na) for an r x c table.
  static TableAnnotation Empty(int rows, int cols);

  TypeId TypeOf(int c) const;
  EntityId EntityOf(int r, int c) const;
  RelationCandidate RelationOf(int c1, int c2) const;

  int64_t CountEntityLabels() const;  // Non-na cells.
  int64_t CountTypeLabels() const;    // Non-na columns.
  int64_t CountRelationLabels() const;
};

/// A table paired with its ground truth — the unit of the labeled
/// datasets (Figure 5). `relations_only` marks Web-Relations-style data
/// where only column-pair relations were labeled; `entities_only` marks
/// Wiki-Link-style data with only cell-entity labels.
struct LabeledTable {
  Table table;
  TableAnnotation gold;
  bool relations_only = false;
  bool entities_only = false;
};

}  // namespace webtab

#endif  // WEBTAB_TABLE_ANNOTATION_H_
