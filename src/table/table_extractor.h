#ifndef WEBTAB_TABLE_TABLE_EXTRACTOR_H_
#define WEBTAB_TABLE_TABLE_EXTRACTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "table/table.h"
#include "table/table_filter.h"

namespace webtab {

/// Counters describing one extraction run.
struct ExtractionStats {
  int64_t raw_tables = 0;
  int64_t accepted = 0;
  int64_t rejected_too_small = 0;
  int64_t rejected_irregular = 0;
  int64_t rejected_merged = 0;
  int64_t rejected_layout = 0;  // link farm / forms / long text / empties.

  std::string DebugString() const;
  void Add(const ExtractionStats& other);
};

/// Turns HTML pages into screened relational Table objects (§3.2
/// preprocessing): parse, screen with TableFilterOptions, promote a
/// leading all-<th> row to column headers, attach nearby text as context.
class TableExtractor {
 public:
  explicit TableExtractor(TableFilterOptions options = TableFilterOptions());

  /// Extracts relational tables from one page, appending to `out`.
  /// Assigns ids sequentially from the internal counter.
  void ExtractFromPage(std::string_view html, std::vector<Table>* out);

  const ExtractionStats& stats() const { return stats_; }

 private:
  TableFilterOptions options_;
  ExtractionStats stats_;
  int64_t next_id_ = 0;
};

/// Converts an accepted RawTable into a Table (header promotion, entity
/// decoding already handled by the parser). Exposed for tests.
Table MaterializeTable(const RawTable& raw);

}  // namespace webtab

#endif  // WEBTAB_TABLE_TABLE_EXTRACTOR_H_
