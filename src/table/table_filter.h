#ifndef WEBTAB_TABLE_TABLE_FILTER_H_
#define WEBTAB_TABLE_TABLE_FILTER_H_

#include <string_view>

#include "table/html_parser.h"

namespace webtab {

/// Screening heuristics for relational vs. formatting tables, in the
/// spirit of WebTables [6] as referenced by §3.2: discard layout tables,
/// merged-cell tables, and irregular grids.
struct TableFilterOptions {
  int min_rows = 2;         // Data rows (excluding a header row).
  int min_cols = 2;
  int max_cols = 30;
  double max_empty_fraction = 0.3;
  double max_link_density = 2.0;   // Avg links per cell above this = nav bar.
  double max_form_fraction = 0.0;  // Any form controls => layout.
  int max_cell_length = 200;       // Very long cells = paragraphs, not data.
};

enum class FilterVerdict {
  kRelational = 0,
  kTooSmall,
  kTooWide,
  kIrregular,
  kMergedCells,
  kTooManyEmptyCells,
  kLinkFarm,
  kFormLayout,
  kLongText,
};

std::string_view FilterVerdictName(FilterVerdict v);

/// Classifies one raw table.
FilterVerdict ScreenTable(const RawTable& raw,
                          const TableFilterOptions& options);

}  // namespace webtab

#endif  // WEBTAB_TABLE_TABLE_FILTER_H_
