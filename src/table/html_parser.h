#ifndef WEBTAB_TABLE_HTML_PARSER_H_
#define WEBTAB_TABLE_HTML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

namespace webtab {

/// One <td>/<th> cell as parsed from markup, before screening.
struct RawCell {
  std::string text;
  bool is_header = false;
  int colspan = 1;
  int rowspan = 1;
  int link_count = 0;   // <a> tags inside the cell.
  int image_count = 0;  // <img> tags inside the cell.
  int form_count = 0;   // <form>/<input>/<select> tags inside the cell.
};

/// One <table> element: a ragged grid of raw cells plus surrounding text
/// captured as context (paper §3.2 keeps "some amount of textual context").
struct RawTable {
  std::vector<std::vector<RawCell>> rows;
  std::string context;
  bool nested = false;  // Contains a nested <table>.

  bool HasMergedCells() const;
  /// True when every row has the same positive number of cells.
  bool IsRegular() const;
  int NumCols() const;
};

/// Extracts every top-level <table> from an HTML page with a small
/// stateful scanner: no external parser, tolerant of unclosed tags,
/// decodes the common character entities. Nested tables are flattened
/// into text and flagged via RawTable::nested.
std::vector<RawTable> ParseHtmlTables(std::string_view html);

/// Decodes &amp; &lt; &gt; &quot; &#39; &nbsp; and numeric entities.
std::string DecodeHtmlEntities(std::string_view text);

}  // namespace webtab

#endif  // WEBTAB_TABLE_HTML_PARSER_H_
