#include "table/annotation.h"

namespace webtab {

TableAnnotation TableAnnotation::Empty(int rows, int cols) {
  TableAnnotation a;
  a.column_types.assign(cols, kNa);
  a.cell_entities.assign(rows, std::vector<EntityId>(cols, kNa));
  return a;
}

TypeId TableAnnotation::TypeOf(int c) const {
  if (c < 0 || c >= static_cast<int>(column_types.size())) return kNa;
  return column_types[c];
}

EntityId TableAnnotation::EntityOf(int r, int c) const {
  if (r < 0 || r >= static_cast<int>(cell_entities.size())) return kNa;
  const auto& row = cell_entities[r];
  if (c < 0 || c >= static_cast<int>(row.size())) return kNa;
  return row[c];
}

RelationCandidate TableAnnotation::RelationOf(int c1, int c2) const {
  auto it = relations.find({c1, c2});
  return it == relations.end() ? RelationCandidate{} : it->second;
}

int64_t TableAnnotation::CountEntityLabels() const {
  int64_t n = 0;
  for (const auto& row : cell_entities) {
    for (EntityId e : row) {
      if (e != kNa) ++n;
    }
  }
  return n;
}

int64_t TableAnnotation::CountTypeLabels() const {
  int64_t n = 0;
  for (TypeId t : column_types) {
    if (t != kNa) ++n;
  }
  return n;
}

int64_t TableAnnotation::CountRelationLabels() const {
  int64_t n = 0;
  for (const auto& [pair, rel] : relations) {
    if (!rel.is_na()) ++n;
  }
  return n;
}

}  // namespace webtab
