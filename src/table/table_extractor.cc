#include "table/table_extractor.h"

#include "common/string_util.h"

namespace webtab {

std::string ExtractionStats::DebugString() const {
  return StrFormat(
      "raw=%lld accepted=%lld small=%lld irregular=%lld merged=%lld "
      "layout=%lld",
      static_cast<long long>(raw_tables), static_cast<long long>(accepted),
      static_cast<long long>(rejected_too_small),
      static_cast<long long>(rejected_irregular),
      static_cast<long long>(rejected_merged),
      static_cast<long long>(rejected_layout));
}

void ExtractionStats::Add(const ExtractionStats& other) {
  raw_tables += other.raw_tables;
  accepted += other.accepted;
  rejected_too_small += other.rejected_too_small;
  rejected_irregular += other.rejected_irregular;
  rejected_merged += other.rejected_merged;
  rejected_layout += other.rejected_layout;
}

Table MaterializeTable(const RawTable& raw) {
  bool first_row_is_header = !raw.rows.empty();
  for (const RawCell& cell : raw.rows.empty() ? std::vector<RawCell>{}
                                              : raw.rows[0]) {
    if (!cell.is_header) {
      first_row_is_header = false;
      break;
    }
  }
  int header_rows = first_row_is_header ? 1 : 0;
  int rows = static_cast<int>(raw.rows.size()) - header_rows;
  int cols = raw.NumCols();
  Table table(rows, cols);
  table.set_context(raw.context);
  if (first_row_is_header) {
    for (int c = 0; c < cols; ++c) {
      table.set_header(c, raw.rows[0][c].text);
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      table.set_cell(r, c, raw.rows[r + header_rows][c].text);
    }
  }
  return table;
}

TableExtractor::TableExtractor(TableFilterOptions options)
    : options_(options) {}

void TableExtractor::ExtractFromPage(std::string_view html,
                                     std::vector<Table>* out) {
  for (const RawTable& raw : ParseHtmlTables(html)) {
    ++stats_.raw_tables;
    switch (ScreenTable(raw, options_)) {
      case FilterVerdict::kRelational: {
        Table table = MaterializeTable(raw);
        table.set_id(next_id_++);
        out->push_back(std::move(table));
        ++stats_.accepted;
        break;
      }
      case FilterVerdict::kTooSmall:
      case FilterVerdict::kTooWide:
        ++stats_.rejected_too_small;
        break;
      case FilterVerdict::kIrregular:
        ++stats_.rejected_irregular;
        break;
      case FilterVerdict::kMergedCells:
        ++stats_.rejected_merged;
        break;
      case FilterVerdict::kTooManyEmptyCells:
      case FilterVerdict::kLinkFarm:
      case FilterVerdict::kFormLayout:
      case FilterVerdict::kLongText:
        ++stats_.rejected_layout;
        break;
    }
  }
}

}  // namespace webtab
