#include "table/table_filter.h"

#include "common/string_util.h"

namespace webtab {

std::string_view FilterVerdictName(FilterVerdict v) {
  switch (v) {
    case FilterVerdict::kRelational:
      return "relational";
    case FilterVerdict::kTooSmall:
      return "too-small";
    case FilterVerdict::kTooWide:
      return "too-wide";
    case FilterVerdict::kIrregular:
      return "irregular";
    case FilterVerdict::kMergedCells:
      return "merged-cells";
    case FilterVerdict::kTooManyEmptyCells:
      return "too-many-empty-cells";
    case FilterVerdict::kLinkFarm:
      return "link-farm";
    case FilterVerdict::kFormLayout:
      return "form-layout";
    case FilterVerdict::kLongText:
      return "long-text";
  }
  return "unknown";
}

FilterVerdict ScreenTable(const RawTable& raw,
                          const TableFilterOptions& options) {
  if (raw.rows.empty()) return FilterVerdict::kTooSmall;
  if (!raw.IsRegular()) return FilterVerdict::kIrregular;
  if (raw.HasMergedCells()) return FilterVerdict::kMergedCells;

  int cols = raw.NumCols();
  if (cols < options.min_cols) return FilterVerdict::kTooSmall;
  if (cols > options.max_cols) return FilterVerdict::kTooWide;

  // A leading all-header row does not count toward the data-row minimum.
  bool first_row_is_header = true;
  for (const RawCell& cell : raw.rows[0]) {
    if (!cell.is_header) {
      first_row_is_header = false;
      break;
    }
  }
  int data_rows = static_cast<int>(raw.rows.size()) -
                  (first_row_is_header ? 1 : 0);
  if (data_rows < options.min_rows) return FilterVerdict::kTooSmall;

  int64_t cells = 0;
  int64_t empty = 0;
  int64_t links = 0;
  int64_t forms = 0;
  int64_t long_cells = 0;
  for (const auto& row : raw.rows) {
    for (const RawCell& cell : row) {
      ++cells;
      if (StripWhitespace(cell.text).empty()) ++empty;
      links += cell.link_count;
      forms += cell.form_count;
      if (static_cast<int>(cell.text.size()) > options.max_cell_length) {
        ++long_cells;
      }
    }
  }
  if (cells == 0) return FilterVerdict::kTooSmall;
  if (static_cast<double>(empty) / cells > options.max_empty_fraction) {
    return FilterVerdict::kTooManyEmptyCells;
  }
  if (static_cast<double>(links) / cells > options.max_link_density) {
    return FilterVerdict::kLinkFarm;
  }
  if (forms > 0 && options.max_form_fraction <= 0.0) {
    return FilterVerdict::kFormLayout;
  }
  if (long_cells > 0) return FilterVerdict::kLongText;
  return FilterVerdict::kRelational;
}

}  // namespace webtab
