#ifndef WEBTAB_SEARCH_CORPUS_INDEX_H_
#define WEBTAB_SEARCH_CORPUS_INDEX_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "annotate/corpus_annotator.h"
#include "text/vocabulary.h"

namespace webtab {

/// Postings over an annotated table corpus (the paper indexes 25M tables
/// with Lucene; same access paths here):
///  - header/context token postings for the string-only baseline,
///  - column-type postings and pair-relation postings for the hardened
///    engines,
///  - per-table cell/annotation access.
class CorpusIndex {
 public:
  struct ColumnRef {
    int table = 0;
    int col = 0;
  };
  struct RelationRef {
    int table = 0;
    int c1 = 0;
    int c2 = 0;
    bool swapped = false;
  };

  /// Builds the index; takes ownership of the annotated tables. When
  /// `closure` is non-null, type postings are expanded to catalog
  /// ancestors (querying T1 = person matches columns annotated actor).
  explicit CorpusIndex(std::vector<AnnotatedTable> tables,
                       ClosureCache* closure = nullptr);

  int64_t num_tables() const {
    return static_cast<int64_t>(tables_.size());
  }
  const AnnotatedTable& table(int i) const { return tables_[i]; }

  /// Tables whose header row contains `token` (any column).
  const std::vector<ColumnRef>& HeaderPostings(const std::string& token)
      const;

  /// Tables whose context contains `token`.
  const std::vector<int>& ContextPostings(const std::string& token) const;

  /// Columns annotated with type `t` — including via subtype: postings
  /// are stored on the annotated type and every catalog ancestor.
  const std::vector<ColumnRef>& TypePostings(TypeId t) const;

  /// Column pairs annotated with relation `b`.
  const std::vector<RelationRef>& RelationPostings(RelationId b) const;

  /// Cells annotated with entity `e` as (table, row, col) triples packed
  /// into ColumnRef+row.
  struct CellRef {
    int table = 0;
    int row = 0;
    int col = 0;
  };
  const std::vector<CellRef>& EntityPostings(EntityId e) const;

 private:
  std::vector<AnnotatedTable> tables_;
  std::unordered_map<std::string, std::vector<ColumnRef>> header_postings_;
  std::unordered_map<std::string, std::vector<int>> context_postings_;
  std::unordered_map<TypeId, std::vector<ColumnRef>> type_postings_;
  std::unordered_map<RelationId, std::vector<RelationRef>>
      relation_postings_;
  std::unordered_map<EntityId, std::vector<CellRef>> entity_postings_;
};

}  // namespace webtab

#endif  // WEBTAB_SEARCH_CORPUS_INDEX_H_
