#ifndef WEBTAB_SEARCH_CORPUS_INDEX_H_
#define WEBTAB_SEARCH_CORPUS_INDEX_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "annotate/corpus_annotator.h"
#include "search/corpus_view.h"
#include "text/vocabulary.h"

namespace webtab {

/// Transparent string hashing so string_view lookups probe the postings
/// maps without materializing a std::string per query token.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Token-keyed postings map with heterogeneous (string_view) lookup.
template <typename V>
using TokenPostingsMap =
    std::unordered_map<std::string, std::vector<V>, TransparentStringHash,
                       std::equal_to<>>;

/// In-memory postings over an annotated table corpus; implements
/// CorpusView so the search engines are agnostic to whether the corpus
/// came from a fresh annotation run or an mmap'd snapshot.
class CorpusIndex : public CorpusView {
 public:
  // Nested aliases kept for existing call sites.
  using ColumnRef = webtab::ColumnRef;
  using RelationRef = webtab::RelationRef;
  using CellRef = webtab::CellRef;

  /// Builds the index; takes ownership of the annotated tables. When
  /// `closure` is non-null, type postings are expanded to catalog
  /// ancestors (querying T1 = person matches columns annotated actor).
  explicit CorpusIndex(std::vector<AnnotatedTable> tables,
                       ClosureCache* closure = nullptr);

  int64_t num_tables() const override {
    return static_cast<int64_t>(tables_.size());
  }
  const AnnotatedTable& table(int i) const { return tables_[i]; }

  int rows(int t) const override { return tables_[t].table.rows(); }
  int cols(int t) const override { return tables_[t].table.cols(); }
  int64_t table_id(int t) const override { return tables_[t].table.id(); }
  std::string_view cell(int t, int r, int c) const override {
    return tables_[t].table.cell(r, c);
  }
  std::string_view header(int t, int c) const override {
    return tables_[t].table.header(c);
  }
  std::string_view context(int t) const override {
    return tables_[t].table.context();
  }

  TypeId ColumnType(int t, int c) const override {
    return tables_[t].annotation.TypeOf(c);
  }
  EntityId CellEntity(int t, int r, int c) const override {
    return tables_[t].annotation.EntityOf(r, c);
  }
  RelationCandidate RelationOf(int t, int c1, int c2) const override {
    return tables_[t].annotation.RelationOf(c1, c2);
  }
  /// Direct strided walk over the owned table/annotation storage — the
  /// non-virtual accessors inline, which is the point of the batch.
  void GatherColumn(int t, int c, int row_begin, int n, EntityId* entities,
                    std::string_view* cells) const override {
    const AnnotatedTable& at = tables_[t];
    if (entities != nullptr) {
      for (int i = 0; i < n; ++i) {
        entities[i] = at.annotation.EntityOf(row_begin + i, c);
      }
    }
    if (cells != nullptr) {
      for (int i = 0; i < n; ++i) cells[i] = at.table.cell(row_begin + i, c);
    }
  }

  std::span<const ColumnRef> HeaderPostings(
      std::string_view token) const override;
  std::span<const int32_t> ContextPostings(
      std::string_view token) const override;
  std::span<const ColumnRef> TypePostings(TypeId t) const override;
  std::span<const RelationRef> RelationPostings(RelationId b) const override;
  std::span<const CellRef> EntityPostings(EntityId e) const override;

  // Block-max index: the in-memory build always carries it, computed
  // with the same shared helper (block_max.h) the snapshot writer uses,
  // so both backends expose identical summaries for identical lists.
  bool HasMatchSupport() const override { return true; }
  std::span<const CellTokenRef> CellTokenPostings(
      std::string_view token) const override;
  PostingBlockSpan HeaderPostingBlocks(
      std::string_view token) const override;
  PostingBlockSpan ContextPostingBlocks(
      std::string_view token) const override;
  PostingBlockSpan TypePostingBlocks(TypeId t) const override;
  PostingBlockSpan RelationPostingBlocks(RelationId b) const override;
  PostingBlockSpan EntityPostingBlocks(EntityId e) const override;

  // --- Serialization access (snapshot writer): the raw postings maps. ---
  const TokenPostingsMap<ColumnRef>& header_postings_map() const {
    return header_postings_;
  }
  const TokenPostingsMap<int32_t>& context_postings_map() const {
    return context_postings_;
  }
  const std::unordered_map<TypeId, std::vector<ColumnRef>>&
  type_postings_map() const {
    return type_postings_;
  }
  const std::unordered_map<RelationId, std::vector<RelationRef>>&
  relation_postings_map() const {
    return relation_postings_;
  }
  const std::unordered_map<EntityId, std::vector<CellRef>>&
  entity_postings_map() const {
    return entity_postings_;
  }
  const TokenPostingsMap<CellTokenRef>& cell_token_postings_map() const {
    return cell_token_postings_;
  }

 private:
  std::vector<AnnotatedTable> tables_;
  TokenPostingsMap<ColumnRef> header_postings_;
  TokenPostingsMap<int32_t> context_postings_;
  std::unordered_map<TypeId, std::vector<ColumnRef>> type_postings_;
  std::unordered_map<RelationId, std::vector<RelationRef>>
      relation_postings_;
  std::unordered_map<EntityId, std::vector<CellRef>> entity_postings_;
  // Match-support index: cell token -> (table, col, min cell tokens),
  // sorted unique by (table, col) — column-granular so engine bounds
  // track where E2 text can actually match, with the min cell size
  // feeding the Jaccard feasibility test.
  TokenPostingsMap<CellTokenRef> cell_token_postings_;
  // Block-max summaries, keyed in parallel with the postings maps.
  TokenPostingsMap<PostingBlockMax> header_blocks_;
  TokenPostingsMap<PostingBlockMax> context_blocks_;
  std::unordered_map<TypeId, std::vector<PostingBlockMax>> type_blocks_;
  std::unordered_map<RelationId, std::vector<PostingBlockMax>>
      relation_blocks_;
  std::unordered_map<EntityId, std::vector<PostingBlockMax>> entity_blocks_;
};

}  // namespace webtab

#endif  // WEBTAB_SEARCH_CORPUS_INDEX_H_
