#ifndef WEBTAB_SEARCH_ENGINE_UTIL_H_
#define WEBTAB_SEARCH_ENGINE_UTIL_H_

#include <string_view>

#include "text/similarity.h"

namespace webtab {
namespace search_internal {

// The map-backed EvidenceAggregator that used to live here was replaced
// by the flat epoch-stamped EvidenceMap in search_workspace.h (its
// descending-id tie-break is also fixed there: ties now rank by
// ascending id, consistent with the repo-wide (score desc, id asc)
// convention). The retired implementation is retained verbatim — with
// the tie-break corrected — as the equivalence reference in
// tests/reference_search.h.

/// Does `cell_text` plausibly mention the query's E2 string? Exact
/// normalized match or strong token overlap (covers abbreviated forms).
/// Callers pass the query side pre-normalized (NormalizeSelectQuery);
/// normalization is idempotent so the measures are unchanged.
///
/// This is the semantic ground truth for the kernel's memoized
/// TextMatchMemo (search_workspace.h), which must return bit-identical
/// results — asserted by tests/search_equivalence_test.cc.
inline bool CellMatchesText(std::string_view cell_text,
                            std::string_view e2_text) {
  if (ExactNormalizedMatch(cell_text, e2_text)) return true;
  return JaccardSimilarity(cell_text, e2_text) >= 0.5;
}

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_ENGINE_UTIL_H_
