#ifndef WEBTAB_SEARCH_ENGINE_UTIL_H_
#define WEBTAB_SEARCH_ENGINE_UTIL_H_

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "search/query.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace webtab {
namespace search_internal {

/// Accumulates evidence per answer (entity id or normalized text),
/// then emits a deterministic ranked list (paper: "aggregate evidence in
/// favor of known entities; cluster, dedup, rank").
class EvidenceAggregator {
 public:
  void AddEntity(EntityId e, std::string_view text, double score) {
    auto& slot = by_entity_[e];
    slot.first += score;
    if (slot.second.empty()) slot.second = std::string(text);
  }

  void AddText(std::string_view raw, double score) {
    std::string key = NormalizeText(raw);
    if (key.empty()) return;
    auto& slot = by_text_[key];
    slot.first += score;
    if (slot.second.empty()) slot.second = std::string(raw);
  }

  std::vector<SearchResult> Ranked() const {
    std::vector<SearchResult> out;
    for (const auto& [e, slot] : by_entity_) {
      out.push_back(SearchResult{e, slot.second, slot.first});
    }
    for (const auto& [key, slot] : by_text_) {
      out.push_back(SearchResult{kNa, slot.second, slot.first});
    }
    std::sort(out.begin(), out.end(),
              [](const SearchResult& a, const SearchResult& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.entity != b.entity) return a.entity > b.entity;
                return a.text < b.text;
              });
    return out;
  }

 private:
  std::map<EntityId, std::pair<double, std::string>> by_entity_;
  std::map<std::string, std::pair<double, std::string>> by_text_;
};

/// Does `cell_text` plausibly mention the query's E2 string? Exact
/// normalized match or strong token overlap (covers abbreviated forms).
/// Callers pass the query side pre-normalized (NormalizeSelectQuery);
/// normalization is idempotent so the measures are unchanged.
inline bool CellMatchesText(std::string_view cell_text,
                            std::string_view e2_text) {
  if (ExactNormalizedMatch(cell_text, e2_text)) return true;
  return JaccardSimilarity(cell_text, e2_text) >= 0.5;
}

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_ENGINE_UTIL_H_
