#include "search/parallel_search.h"

#include <bit>
#include <chrono>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/baseline_search.h"
#include "search/select_kernel.h"
#include "search/type_relation_search.h"
#include "search/type_search.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {

using search_internal::ShardControl;
using search_internal::ShardPhase;

void DispatchSequential(SelectEngineKind engine, const CorpusView& index,
                        const SelectQuery& query,
                        const NormalizedSelectQuery& nq,
                        const TopKOptions& topk, SearchWorkspace* ws,
                        std::vector<SearchResult>* out) {
  switch (engine) {
    case SelectEngineKind::kBaseline:
      BaselineSearch(index, query, nq, topk, ws, out);
      break;
    case SelectEngineKind::kType:
      TypeSearch(index, query, nq, topk, ws, out);
      break;
    case SelectEngineKind::kTypeRelation:
      TypeRelationSearch(index, query, nq, topk, ws, out);
      break;
  }
}

/// One shard task: runs the engine against the shard's clamped view with
/// recording armed. The TopKOptions carried by the slot points at the
/// slot's ShardScan, which routes the engine's RunPlannedTables into
/// shard mode (select_kernel.h).
void RunSelectShardTask(void* arg, int index) {
  auto* ctx = static_cast<ParallelSearchContext*>(arg);
  ParallelSearchContext::Slot& sl = *ctx->slots_[index];
  DispatchSequential(sl.engine, sl.view, *sl.query, *sl.nq, sl.topk, &sl.ws,
                     &sl.scratch_out);
}

/// One join leg-1 task: expands bindings w, w+stride, ... each into the
/// slot's private accumulator and snapshots the (entity, evidence) pairs
/// in insertion order — the caller multiplies and merges them in binding
/// order, reproducing the sequential engine's accumulation exactly.
void RunJoinLegTask(void* arg, int w) {
  auto* ctx = static_cast<ParallelSearchContext*>(arg);
  const ParallelSearchContext::JoinTaskArgs& ja = ctx->join_args_;
  ParallelSearchContext::Slot& sl = *ctx->slots_[w];
  for (size_t i = static_cast<size_t>(w); i < ja.bindings.size();
       i += static_cast<size_t>(ja.stride)) {
    ParallelSearchContext::BindingResult& br = *ctx->bindings_[i];
    sl.ws.query_stats = SearchWorkspace::QueryStats{};
    sl.ws.decision_log.clear();
    search_internal::JoinExpandLeg(
        *ja.index, ja.query->r1, ja.bindings[i].first, /*grounded_text=*/{},
        /*grounded_is_object=*/ja.query->e1_is_subject, ja.support_valid,
        ja.use_batch, &sl.ws, &sl.ws.leg_acc);
    br.pairs.clear();
    sl.ws.leg_acc.ForEach([&](EntityId e1, double evidence) {
      br.pairs.emplace_back(e1, evidence);
    });
    br.planned = sl.ws.query_stats.tables_planned;
    br.scored = sl.ws.query_stats.tables_scored;
    if (ja.explain) {
      br.log.assign(sl.ws.decision_log.begin(), sl.ws.decision_log.end());
    }
    br.done.store(1, std::memory_order_release);
  }
}

/// Yield a few times for the common fast transition, then back off to
/// short sleeps so a gather stuck behind a slow shard stops burning a
/// core (the request thread has already contributed its own shard by
/// the time it waits here).
struct Backoff {
  int spins = 0;
  void Pause() {
    if (++spins <= 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
};

void WaitState(const std::atomic<uint32_t>& state, uint32_t target) {
  Backoff backoff;
  while (state.load(std::memory_order_acquire) < target) {
    backoff.Pause();
  }
}

/// Pool trampolines shifted by one: the caller runs shard/leg 0 on its
/// own thread (a context's pool is sized one short of the fan-out for
/// exactly this reason), so pool task i maps to slot i + 1.
void RunSelectShardTaskFromPool(void* arg, int index) {
  RunSelectShardTask(arg, index + 1);
}

void RunJoinLegTaskFromPool(void* arg, int w) { RunJoinLegTask(arg, w + 1); }

void RecordShardMetrics(int shards, int64_t abandoned) {
  static obs::Counter* fanout =
      obs::MetricsRegistry::Get().GetCounter("search.shard_fanout");
  static obs::Counter* dropped =
      obs::MetricsRegistry::Get().GetCounter("search.shard_abandoned");
  fanout->Add(shards);
  dropped->Add(abandoned);
  obs::TraceAddCounter("shard_fanout", shards);
  if (abandoned > 0) obs::TraceAddCounter("shard_abandoned", abandoned);
}

}  // namespace

void PartitionTables(int64_t num_tables, int shards,
                     std::vector<int32_t>* starts) {
  // Boundaries are int32 because table ids are int32 corpus-wide; fail
  // loudly (instead of truncating positions) if that ever changes.
  WEBTAB_CHECK(num_tables <= std::numeric_limits<int32_t>::max());
  if (shards < 1) shards = 1;
  starts->clear();
  starts->push_back(0);
  const int64_t base = num_tables / shards;
  const int64_t rem = num_tables % shards;
  int64_t pos = 0;
  for (int s = 0; s < shards; ++s) {
    pos += base + (s < rem ? 1 : 0);
    starts->push_back(static_cast<int32_t>(pos));
  }
}

void ParallelSelectSearch(SelectEngineKind engine, const CorpusView& index,
                          const SelectQuery& query,
                          const NormalizedSelectQuery& nq,
                          const TopKOptions& topk, ParallelSearchContext* ctx,
                          SearchWorkspace* ws,
                          std::vector<SearchResult>* out) {
  using Decision = SearchWorkspace::TableDecision;
  TopKOptions seq = topk;
  seq.parallelism = 1;
  seq.shard = nullptr;
  int S = std::min(topk.parallelism, ctx->max_shards());
  const int64_t num_tables = index.num_tables();
  if (static_cast<int64_t>(S) > num_tables) {
    S = static_cast<int>(num_tables);
  }
  if (S <= 1) {
    DispatchSequential(engine, index, query, nq, seq, ws, out);
    return;
  }

  PartitionTables(num_tables, S, &ctx->shard_starts_);
  ctx->control_.Reset();
  const bool threaded = ctx->threaded();
  for (int s = 0; s < S; ++s) {
    ParallelSearchContext::Slot& sl = *ctx->slots_[s];
    sl.view.Reset(&index, ctx->shard_starts_[s], ctx->shard_starts_[s + 1]);
    sl.ws.EnableExplain(false);  // the gather owns all EXPLAIN capture
    sl.ws.BeginRecording();
    sl.scan.control = &ctx->control_;
    sl.scan.shard_index = s;
    sl.scan.phase =
        threaded ? ShardPhase::kPlanAndScore : ShardPhase::kPlanOnly;
    sl.scan.state = threaded ? &sl.state : nullptr;
    sl.scan.abandoned = 0;
    sl.state.store(0, std::memory_order_relaxed);
    sl.engine = engine;
    sl.query = &query;
    sl.nq = &nq;
    sl.topk = seq;
    sl.topk.shard = &sl.scan;
  }

  {
    obs::TraceSpan scatter_span("search.scatter");
    if (threaded) {
      // Shards 1..S-1 scatter onto the pool; the request thread runs
      // shard 0 itself instead of spinning through the whole scatter.
      ctx->pool_.Launch(&RunSelectShardTaskFromPool, ctx, S - 1);
      RunSelectShardTask(ctx, 0);
      for (int s = 1; s < S; ++s) WaitState(ctx->slots_[s]->state, 1);
    } else {
      for (int s = 0; s < S; ++s) RunSelectShardTask(ctx, s);
    }
  }

  // The merge workspace starts exactly like a sequential engine run;
  // replaying shard records in ascending shard order then reproduces
  // the sequential AddEntity/AddText stream bit for bit.
  ws->BeginSelect(nq.e2_text);
  const bool prune = topk.k > 0 && topk.prune;
  const bool explain = ws->explain_enabled();
  if (explain) ws->decision_bounds_valid = prune;

  ctx->shard_base_.resize(static_cast<size_t>(S));
  size_t total = 0;
  for (int s = 0; s < S; ++s) {
    ctx->shard_base_[s] = total;
    total += ctx->slots_[s]->ws.plan.size();
    ws->shard_log.push_back(SearchWorkspace::ShardSummary{
        s, ctx->shard_starts_[s], ctx->shard_starts_[s + 1],
        static_cast<int64_t>(ctx->slots_[s]->ws.plan.size()), 0, 0});
  }
  ws->query_stats.tables_planned = static_cast<int64_t>(total);
  if (prune) {
    // Global suffix bounds with the sequential kernel's exact backwards
    // accumulation order over the concatenated shard plans.
    ctx->suffix_.resize(total);
    double acc = 0.0;
    size_t gi = total;
    for (int s = S; s-- > 0;) {
      const auto& plan = ctx->slots_[s]->ws.plan;
      for (size_t pi = plan.size(); pi-- > 0;) {
        ctx->suffix_[--gi] = acc;
        acc += plan[pi].bound;
      }
    }
  }

  {
    obs::TraceSpan gather_span("search.gather");
    bool stopped = false;
    for (int s = 0; s < S && !stopped; ++s) {
      ParallelSearchContext::Slot& sl = *ctx->slots_[s];
      if (threaded) {
        WaitState(sl.state, 2);
      } else {
        // Inline deterministic mode: score this shard now, after the
        // gather already replayed every earlier shard — its scan
        // observes all previously published stops.
        sl.scan.phase = ShardPhase::kScoreOnly;
        RunSelectShardTask(ctx, s);
      }
      const auto& plan = sl.ws.plan;
      const auto& marks = sl.ws.emit_marks;
      const size_t gbase = ctx->shard_base_[s];
      size_t mi = 0;
      for (size_t pi = 0; pi < plan.size(); ++pi) {
        const double bound = prune ? plan[pi].bound : 0.0;
        const double suffix = prune ? ctx->suffix_[gbase + pi] : 0.0;
        if (prune && bound <= 0.0) {
          if (explain) {
            ws->decision_log.push_back({plan[pi].table,
                                        Decision::Verdict::kPrunedZeroBound,
                                        bound, suffix});
          }
          continue;
        }
        // A position the gather reaches was never abandoned (the stop
        // is published only below, after which the gather quits), so
        // its mark must exist.
        while (mi < marks.size() && marks[mi].plan_pos < pi) ++mi;
        WEBTAB_CHECK(mi < marks.size() && marks[mi].plan_pos == pi);
        ws->ReplayRecordsFrom(sl.ws, marks[mi].begin, marks[mi].end);
        ++ws->query_stats.tables_scored;
        ++ws->shard_log[static_cast<size_t>(s)].replayed;
        if (explain) {
          ws->decision_log.push_back(
              {plan[pi].table, Decision::Verdict::kScored, bound, suffix});
        }
        if (!prune) continue;
        if (suffix <= 0.0 || ws->ShouldStop(topk.k, suffix)) {
          // Publish the first abandoned global position: in-flight
          // shards poll it and abandon everything at or past it.
          ctx->control_.stop_pos.store(ShardControl::Encode(s, pi) + 1,
                                       std::memory_order_relaxed);
          if (explain) {
            for (size_t pj = pi + 1; pj < plan.size(); ++pj) {
              ws->decision_log.push_back({plan[pj].table,
                                          Decision::Verdict::kPrunedSuffix,
                                          plan[pj].bound,
                                          ctx->suffix_[gbase + pj]});
            }
            for (int s2 = s + 1; s2 < S; ++s2) {
              const auto& plan2 = ctx->slots_[s2]->ws.plan;
              const size_t base2 = ctx->shard_base_[s2];
              for (size_t pj = 0; pj < plan2.size(); ++pj) {
                ws->decision_log.push_back({plan2[pj].table,
                                            Decision::Verdict::kPrunedSuffix,
                                            plan2[pj].bound,
                                            ctx->suffix_[base2 + pj]});
              }
            }
          }
          stopped = true;
          break;
        }
      }
      // Shared-threshold telemetry: the merged evidence's running max
      // after folding this shard in.
      ctx->control_.merged_max_score_bits.store(
          std::bit_cast<uint64_t>(ws->max_evidence_score()),
          std::memory_order_relaxed);
    }
    if (threaded) {
      // Shards behind a stop keep running briefly and abandon their
      // remaining positions; the pool barrier makes their counters (and
      // the slots) safe to reuse.
      ctx->pool_.Drain();
    } else if (stopped) {
      // Deterministic mode scores the post-stop shards too: every one
      // of their non-zero-bound positions abandons against the
      // published stop, making the abandonment counters reproducible.
      for (int s = 0; s < S; ++s) {
        ParallelSearchContext::Slot& sl = *ctx->slots_[s];
        if (sl.scan.phase != ShardPhase::kPlanOnly) continue;
        sl.scan.phase = ShardPhase::kScoreOnly;
        RunSelectShardTask(ctx, s);
      }
    }
  }

  int64_t abandoned = 0;
  for (int s = 0; s < S; ++s) {
    ws->shard_log[static_cast<size_t>(s)].abandoned =
        ctx->slots_[s]->scan.abandoned;
    abandoned += ctx->slots_[s]->scan.abandoned;
    ctx->slots_[s]->ws.EndRecording();
  }
  ws->query_stats.shards_used = S;
  ws->query_stats.shard_tables_abandoned = abandoned;
  if (prune) {
    ws->query_stats.stopped_early =
        ws->query_stats.tables_scored < ws->query_stats.tables_planned;
  }
  search_internal::RecordQueryStatsMetrics(ws->query_stats);
  RecordShardMetrics(S, abandoned);
  ws->EmitRanked(topk, out);
}

void ParallelJoinSearch(const CorpusView& index, const JoinQuery& query,
                        const TopKOptions& topk, ParallelSearchContext* ctx,
                        SearchWorkspace* ws,
                        std::vector<SearchResult>* out) {
  TopKOptions seq = topk;
  seq.parallelism = 1;
  seq.shard = nullptr;
  int W = std::min(topk.parallelism, ctx->max_shards());
  if (W <= 1) {
    JoinSearch(index, query, seq, ws, out);
    return;
  }

  // Leg 2 (binding enumeration) is identical to the sequential engine
  // and runs on the merge workspace.
  NormalizeTextInto(query.e3_text, &ws->norm_scratch);
  ws->BeginSelect(ws->norm_scratch);
  const bool support_valid = ws->BuildMatchSupport(index);
  obs::TraceSpan plan_span("search.plan");
  search_internal::JoinExpandLeg(
      index, query.r2, query.e3, ws->norm_scratch,
      /*grounded_is_object=*/query.e2_is_subject, support_valid, topk.batch,
      ws, &ws->leg_acc);
  ws->leg_acc.ExtractRanked(std::max(0, query.max_join_entities),
                            &ws->binding_list);
  plan_span.End();

  const size_t num_bindings = ws->binding_list.size();
  const bool explain = ws->explain_enabled();
  W = std::min(W, static_cast<int>(std::max<size_t>(num_bindings, 1)));
  while (ctx->bindings_.size() < num_bindings) {
    ctx->bindings_.push_back(
        std::make_unique<ParallelSearchContext::BindingResult>());
  }
  for (size_t i = 0; i < num_bindings; ++i) {
    ctx->bindings_[i]->done.store(0, std::memory_order_relaxed);
  }
  for (int w = 0; w < W; ++w) {
    ctx->slots_[w]->ws.EnableExplain(explain);
    ctx->slots_[w]->ws.EndRecording();
  }
  ctx->join_args_ = ParallelSearchContext::JoinTaskArgs{
      &index, &query,
      std::span<const std::pair<EntityId, double>>(ws->binding_list),
      support_valid, topk.batch, explain, W};

  {
    // Leg 1: per-binding expansions fan out; the merge folds them back
    // in binding order, so the multiplicative chaining sums doubles in
    // the sequential engine's exact order.
    obs::TraceSpan score_span("search.score");
    const bool threaded = ctx->threaded();
    if (threaded) {
      // Legs 1..W-1 fan out to the pool; the request thread expands
      // leg-0's binding stripe itself before it starts merging.
      ctx->pool_.Launch(&RunJoinLegTaskFromPool, ctx, W - 1);
      RunJoinLegTask(ctx, 0);
    } else {
      for (int w = 0; w < W; ++w) RunJoinLegTask(ctx, w);
    }
    for (size_t i = 0; i < num_bindings; ++i) {
      ParallelSearchContext::BindingResult& br = *ctx->bindings_[i];
      Backoff backoff;
      while (br.done.load(std::memory_order_acquire) == 0) {
        backoff.Pause();
      }
      const double binding_score = ws->binding_list[i].second;
      for (const auto& [e1, evidence] : br.pairs) {
        ws->AddEntity(/*table=*/0, e1, /*raw=*/{}, evidence * binding_score);
      }
      ws->query_stats.tables_planned += br.planned;
      ws->query_stats.tables_scored += br.scored;
      if (explain) {
        ws->decision_log.insert(ws->decision_log.end(), br.log.begin(),
                                br.log.end());
      }
    }
    if (threaded) ctx->pool_.Drain();
  }

  ws->query_stats.stopped_early =
      ws->query_stats.tables_scored < ws->query_stats.tables_planned;
  ws->query_stats.shards_used = W;
  search_internal::RecordQueryStatsMetrics(ws->query_stats);
  RecordShardMetrics(W, /*abandoned=*/0);
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
