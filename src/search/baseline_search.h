#ifndef WEBTAB_SEARCH_BASELINE_SEARCH_H_
#define WEBTAB_SEARCH_BASELINE_SEARCH_H_

#include <vector>

#include "search/corpus_view.h"
#include "search/query.h"
#include "search/search_workspace.h"

namespace webtab {

/// Figure 3: the no-annotation engine. All inputs are strings; tables
/// qualify when column headers match the T1/T2 strings (context matching
/// the relation string adds score); E2 is located by text similarity in
/// the T2 column; the T1 column's raw cell strings are clustered, deduped
/// and ranked. Returns unresolved strings (SearchResult::entity == kNa).
/// The three-argument form takes a pre-normalized query (the serving
/// layer shares one normalization between the cache key and the engine).
std::vector<SearchResult> BaselineSearch(const CorpusView& index,
                                         const SelectQuery& query);
std::vector<SearchResult> BaselineSearch(
    const CorpusView& index, const SelectQuery& query,
    const NormalizedSelectQuery& normalized);
/// Kernel form: reusable workspace, results into `out`, top-k pruning.
void BaselineSearch(const CorpusView& index, const SelectQuery& query,
                    const NormalizedSelectQuery& normalized,
                    const TopKOptions& topk, SearchWorkspace* workspace,
                    std::vector<SearchResult>* out);

}  // namespace webtab

#endif  // WEBTAB_SEARCH_BASELINE_SEARCH_H_
