#ifndef WEBTAB_SEARCH_POSTING_CURSOR_H_
#define WEBTAB_SEARCH_POSTING_CURSOR_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "search/corpus_view.h"

namespace webtab {
namespace search_internal {

/// The table index a posting element refers to.
inline int32_t PostingTable(const ColumnRef& r) { return r.table; }
inline int32_t PostingTable(const RelationRef& r) { return r.table; }
inline int32_t PostingTable(const CellRef& r) { return r.table; }
inline int32_t PostingTable(const CellTokenRef& r) { return r.table; }
inline int32_t PostingTable(int32_t table) { return table; }

/// Forward-only cursor over one posting list, grouped by table. Requires
/// the list sorted by non-decreasing table index — guaranteed by the
/// CorpusIndex build (tables are indexed in order) and validated for
/// snapshot files by SnapshotCorpusView::DeepValidate (OpenValidated).
///
/// SeekTable gallops (exponential probe + binary search within the
/// bracket), so a full two-list intersection costs
/// O(min Σ log(gap)) instead of materializing per-table maps — the
/// classic leapfrog used for the T1×T2 column co-occurrence join.
template <typename Ref>
class PostingCursor {
 public:
  explicit PostingCursor(std::span<const Ref> postings)
      : postings_(postings) {}

  /// Block-aware cursor: `blocks` is the list's block-max summary
  /// (kPostingBlockSize postings per block). Long seeks first binary
  /// search the block last-tables and land at a block start, so the
  /// gallop only walks the final block instead of the whole gap.
  PostingCursor(std::span<const Ref> postings, PostingBlockSpan blocks)
      : postings_(postings), blocks_(blocks) {}

  bool done() const { return pos_ >= postings_.size(); }
  int32_t table() const { return PostingTable(postings_[pos_]); }

  /// Advances to the first posting with table >= target. No-op when
  /// already there; past-the-end when no such posting exists.
  void SeekTable(int32_t target) {
    if (done() || PostingTable(postings_[pos_]) >= target) return;
    if (!blocks_.empty()) {
      const size_t cur_block = pos_ / kPostingBlockSize;
      if (blocks_[cur_block].last_table < target) {
        // First block whose last table reaches the target; everything
        // before it is provably < target.
        auto it = std::lower_bound(
            blocks_.begin() + cur_block, blocks_.end(), target,
            [](const PostingBlockMax& b, int32_t t) {
              return b.last_table < t;
            });
        if (it == blocks_.end()) {
          pos_ = postings_.size();
          return;
        }
        pos_ = static_cast<size_t>(it - blocks_.begin()) *
               kPostingBlockSize;
      }
    }
    // Gallop: double the step from the current position until the probe
    // reaches target, then binary-search the bracketed range.
    size_t lo = pos_, step = 1;
    while (lo + step < postings_.size() &&
           PostingTable(postings_[lo + step]) < target) {
      lo += step;
      step <<= 1;
    }
    size_t hi = std::min(lo + step + 1, postings_.size());
    auto it = std::lower_bound(
        postings_.begin() + lo, postings_.begin() + hi, target,
        [](const Ref& r, int32_t t) { return PostingTable(r) < t; });
    pos_ = static_cast<size_t>(it - postings_.begin());
  }

  /// Returns the run of postings sharing the current table and advances
  /// past it. Runs are short (bounded by a table's columns / annotated
  /// pairs), so the scan is linear.
  std::span<const Ref> TakeRun() {
    const size_t begin = pos_;
    const int32_t t = table();
    while (pos_ < postings_.size() &&
           PostingTable(postings_[pos_]) == t) {
      ++pos_;
    }
    return postings_.subspan(begin, pos_ - begin);
  }

 private:
  std::span<const Ref> postings_;
  PostingBlockSpan blocks_;
  size_t pos_ = 0;
};

/// Leapfrog intersection by table over two sorted posting lists. Calls
/// `fn(table, run_a, run_b)` for every table present in both, in
/// ascending table order (the order every engine scores in, so full-rank
/// results stay byte-identical to the pre-cursor implementation).
template <typename RefA, typename RefB, typename Fn>
void IntersectByTable(std::span<const RefA> a, std::span<const RefB> b,
                      Fn&& fn) {
  PostingCursor<RefA> ca(a);
  PostingCursor<RefB> cb(b);
  while (!ca.done() && !cb.done()) {
    const int32_t ta = ca.table();
    const int32_t tb = cb.table();
    if (ta < tb) {
      ca.SeekTable(tb);
    } else if (tb < ta) {
      cb.SeekTable(ta);
    } else {
      fn(ta, ca.TakeRun(), cb.TakeRun());
    }
  }
}

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_POSTING_CURSOR_H_
