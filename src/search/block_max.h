#ifndef WEBTAB_SEARCH_BLOCK_MAX_H_
#define WEBTAB_SEARCH_BLOCK_MAX_H_

#include <algorithm>
#include <span>
#include <vector>

#include "search/corpus_view.h"
#include "search/posting_cursor.h"

namespace webtab {
namespace search_internal {

/// Builds the block summaries for one table-sorted posting list:
/// ceil(len / kPostingBlockSize) blocks, each carrying the exact last
/// table plus tight upper bounds over the tables it covers. `rows_of`
/// maps a table index to its row count. Shared by the in-memory
/// CorpusIndex build and the snapshot writer so both backends emit
/// identical summaries for identical lists.
template <typename Ref, typename RowsFn>
void AppendPostingBlocks(std::span<const Ref> postings, RowsFn&& rows_of,
                         std::vector<PostingBlockMax>* out) {
  for (size_t begin = 0; begin < postings.size();
       begin += kPostingBlockSize) {
    const size_t end =
        std::min(begin + static_cast<size_t>(kPostingBlockSize),
                 postings.size());
    PostingBlockMax block;
    block.last_table = PostingTable(postings[end - 1]);
    // Walk the block's per-table runs. A run split across a block edge
    // is counted per block, which only lowers the declared max_run /
    // max_bound toward the in-block truth — still an upper bound for
    // any cursor that consumes whole blocks.
    size_t i = begin;
    while (i < end) {
      const int32_t table = PostingTable(postings[i]);
      size_t j = i;
      while (j < end && PostingTable(postings[j]) == table) ++j;
      const int32_t run = static_cast<int32_t>(j - i);
      const int32_t rows = rows_of(table);
      block.max_rows = std::max(block.max_rows, rows);
      block.max_run = std::max(block.max_run, run);
      block.max_bound = std::max(block.max_bound, rows * run);
      i = j;
    }
    out->push_back(block);
  }
}

/// Number of blocks covering a list of `count` postings.
inline uint64_t NumPostingBlocks(uint64_t count) {
  return (count + kPostingBlockSize - 1) / kPostingBlockSize;
}

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_BLOCK_MAX_H_
