#ifndef WEBTAB_SEARCH_TYPE_SEARCH_H_
#define WEBTAB_SEARCH_TYPE_SEARCH_H_

#include <vector>

#include "search/corpus_view.h"
#include "search/query.h"
#include "search/search_workspace.h"

namespace webtab {

/// The intermediate engine of Figure 9 ("Type"): uses column *type*
/// annotations to locate candidate column pairs (c1 typed T1, c2 typed
/// T2 in the same table) but no relation annotations. E2 is matched by
/// cell entity annotation when the query's E2 is grounded, falling back
/// to text similarity; answers are resolved through cell entity
/// annotations when present.
std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query);
/// Pre-normalized variant (cache key and engine share one tokenization).
std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query,
                                     const NormalizedSelectQuery& normalized);
/// The kernel form every caller on a hot path uses: reusable workspace
/// (zero steady-state allocations), results emitted into `out`
/// (reused), top-k with safe pruning per TopKOptions.
void TypeSearch(const CorpusView& index, const SelectQuery& query,
                const NormalizedSelectQuery& normalized,
                const TopKOptions& topk, SearchWorkspace* workspace,
                std::vector<SearchResult>* out);

}  // namespace webtab

#endif  // WEBTAB_SEARCH_TYPE_SEARCH_H_
