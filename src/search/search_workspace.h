#ifndef WEBTAB_SEARCH_SEARCH_WORKSPACE_H_
#define WEBTAB_SEARCH_SEARCH_WORKSPACE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/filter_manager.h"
#include "exec/score_batch.h"
#include "search/corpus_view.h"
#include "search/query.h"

namespace webtab {
namespace search_internal {

/// Flat epoch-stamped EntityId -> score accumulator (open addressing,
/// power-of-two capacity). Begin() is O(touched of the previous use);
/// steady state performs no allocations. Used for the join engine's leg
/// expansions, where answers are always resolved entities.
class EntityAccumulator {
 public:
  void Begin();
  /// Insert-or-find; returns the slot's score for `+=`.
  double& Add(EntityId e);
  size_t size() const { return touched_.size(); }

  /// Extracts (entity, score) pairs sorted by (score desc, id asc) into
  /// `out` (reused), truncated to `limit` when limit >= 0.
  void ExtractRanked(int limit,
                     std::vector<std::pair<EntityId, double>>* out) const;

  /// Unordered access to this epoch's entries (insertion order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t i : touched_) fn(slots_[i].entity, slots_[i].score);
  }

 private:
  struct Slot {
    uint64_t epoch = 0;
    EntityId entity = kNa;
    double score = 0.0;
  };
  void Grow();

  std::vector<Slot> slots_;
  std::vector<uint32_t> touched_;
  // Starts at 1: slot epoch 0 means "never used", so the probe loops
  // terminate even if an accumulator is used before its first Begin().
  uint64_t epoch_ = 1;
};

/// The evidence accumulator behind every engine's ranking — the flat
/// replacement for the retired map-backed EvidenceAggregator. Answers
/// are keyed either by resolved entity id or by normalized answer text
/// (paper: "aggregate evidence in favor of known entities; cluster,
/// dedup, rank"); scores accumulate; the display string is the first
/// non-empty raw form from the lowest-indexed table (identical to
/// first-seen under the engines' ascending table scan). Text keys and
/// display strings live in a per-query arena, so steady state performs
/// no allocations.
class EvidenceMap {
 public:
  void Begin();
  void AddEntity(int32_t table, EntityId e, std::string_view raw_text,
                 double score);
  /// `normalized` must already be NormalizeText'd (empty keys are
  /// dropped, matching the reference aggregator); `raw` is the display
  /// form.
  void AddText(int32_t table, std::string_view normalized,
               std::string_view raw, double score);

  size_t size() const { return touched_.size(); }
  double max_score() const { return max_score_; }

  /// Emits the ranking into `out` (reused; zero steady-state
  /// allocations — surplus element strings are recycled through an
  /// internal spare pool when the result count shrinks, so their
  /// capacity survives). k <= 0 emits everything; k > 0 emits the
  /// first k under the documented (score desc, entity id asc —
  /// unresolved text answers carry kNa and sort first among ties —,
  /// text asc) tie-break.
  void EmitRanked(int k, std::vector<SearchResult>* out);

  /// Copies this epoch's scores into `scratch` (reused) for the prune
  /// rule's gap test.
  void CopyScores(std::vector<double>* scratch) const;

 private:
  struct Slot {
    uint64_t epoch = 0;
    uint64_t hash = 0;
    EntityId entity = kNa;  // kNa: text-keyed answer
    uint32_t key_off = 0, key_len = 0;    // text key (arena)
    uint32_t disp_off = 0, disp_len = 0;  // display string (arena)
    int32_t disp_table = 0;
    double score = 0.0;
  };

  std::string_view KeyOf(const Slot& s) const {
    return {arena_.data() + s.key_off, s.key_len};
  }
  std::string_view DisplayOf(const Slot& s) const {
    return {arena_.data() + s.disp_off, s.disp_len};
  }
  Slot& FindOrInsert(uint64_t hash, EntityId entity,
                     std::string_view text_key);
  void MaybeTakeDisplay(Slot* slot, int32_t table, std::string_view raw);
  void Grow();

  std::vector<Slot> slots_;
  std::vector<uint32_t> touched_;
  std::string arena_;
  uint64_t epoch_ = 1;  // Slot epoch 0 = never used (see EntityAccumulator).
  double max_score_ = 0.0;
  std::vector<uint32_t> order_;            // EmitRanked scratch
  std::vector<std::string> spare_strings_;  // recycled result texts
};

/// Memoizes the engines' shared E2 text predicate (engine_util.h's
/// CellMatchesText: exact normalized match, else token-set Jaccard >=
/// 0.5) against one target string per query. Distinct cell strings are
/// evaluated once; repeats — the common case in entity columns — cost a
/// hash probe. Results are bit-identical to CellMatchesText: same
/// normalization, same distinct-token counts, same double division.
/// Keys are string_views into the corpus mapping (stable for the
/// query's duration); stale entries die with the epoch stamp.
class TextMatchMemo {
 public:
  /// `normalized_target` must already be NormalizeText'd (idempotent,
  /// so engines pass the query's pre-normalized E2 form). Begins a new
  /// epoch.
  void SetTarget(std::string_view normalized_target);
  bool Matches(std::string_view cell);

  /// The target's distinct normalized tokens (sorted). A cell can match
  /// only if it shares at least one of these (Jaccard >= 0.5 needs an
  /// intersection; exact match is a superset of that) — the soundness
  /// basis of the match-support prune. Empty when the target normalizes
  /// to zero tokens, in which case no token-based elimination is valid.
  std::span<const std::string> TargetTokens() const {
    return {target_tokens_.data(), target_token_count_};
  }

 private:
  struct Slot {
    uint64_t epoch = 0;
    uint64_t hash = 0;
    const char* ptr = nullptr;
    uint32_t len = 0;
    bool value = false;
  };
  bool Compute(std::string_view cell);
  void Grow();

  std::vector<Slot> slots_;
  size_t used_ = 0;
  uint64_t epoch_ = 1;  // Slot epoch 0 = never used (see EntityAccumulator).
  std::string target_;
  std::vector<std::string> target_tokens_;  // sorted unique, first n
  size_t target_token_count_ = 0;
  // Per-cell scratch.
  std::string norm_;
  std::vector<std::string> tokens_;
};

/// One candidate table of a select query's plan: the column runs (ranges
/// into SearchWorkspace::col_pool, or posting-run bounds for the
/// relation engine) plus the prune bound — an upper bound on the
/// evidence any single answer can still gain from this table.
struct PlannedTable {
  int32_t table = 0;
  uint32_t a_begin = 0, a_end = 0;  // answer-side columns / run begin-end
  uint32_t b_begin = 0, b_end = 0;  // E2-side columns
  double bound = 0.0;
};

}  // namespace search_internal

/// Reusable per-worker scratch for the table-at-a-time search kernel —
/// the search-side twin of PR 4's CandidateWorkspace. Holds the flat
/// evidence accumulator, the memoized E2 text matcher, the query plan
/// and column pools, and the top-k prune state. One instance serves any
/// number of sequential queries against any CorpusView backend; all
/// internal storage is epoch-stamped or cleared-in-place, so steady
/// state allocates nothing. Not thread-safe: one workspace per worker.
class SearchWorkspace {
 public:
  struct QueryStats {
    int64_t tables_planned = 0;
    int64_t tables_scored = 0;
    bool stopped_early = false;
    /// Scatter-gather fan-out that produced this query's ranking; 1 for
    /// the classic sequential scan.
    int shards_used = 1;
    /// Planned tables that in-flight shards skipped because the shared
    /// stop threshold had already passed their global position. Strictly
    /// telemetry: the positions lie behind the published stop, so their
    /// records were never going to be replayed. Deterministic in the
    /// inline executor; timing-dependent under real threads.
    int64_t shard_tables_abandoned = 0;
  };

  /// Per-shard gather summary for EXPLAIN's scatter-gather section
  /// (filled by parallel_search.cc; empty for sequential queries).
  struct ShardSummary {
    int32_t shard = 0;
    int32_t table_begin = 0;  // corpus table-order range [begin, end)
    int32_t table_end = 0;
    int64_t planned = 0;      // plan entries this shard produced
    int64_t replayed = 0;     // positions whose records the gather replayed
    int64_t abandoned = 0;    // positions skipped via the shared stop
  };

  /// One planned table's fate in the EXPLAIN decision log. The log is
  /// the counters' ledger: one entry per planned table (or per relation
  /// run for the join engine), in scan order, so
  ///   log.size()      == stats().tables_planned
  ///   count(kScored)  == stats().tables_scored
  ///   any non-scored  == stats().stopped_early
  /// hold exactly — asserted by the serving layer and the equivalence
  /// sweep.
  struct TableDecision {
    enum class Verdict : uint8_t {
      /// The table was scored (bound survived, or pruning was off).
      kScored,
      /// The per-table upper bound proved zero contribution, so the
      /// scan skipped it (exact elimination). The join engine uses this
      /// verdict for relation runs proven matchless.
      kPrunedZeroBound,
      /// Left unscanned behind a proven-safe early stop (zero suffix
      /// bound or the top-k gap test).
      kPrunedSuffix,
    };
    int32_t table = 0;
    Verdict verdict = Verdict::kScored;
    /// The table's per-answer upper bound — the number that justified a
    /// kPrunedZeroBound verdict. Meaningful only when
    /// decision_bounds_valid.
    double bound = 0.0;
    /// Remaining suffix mass after this table — the number the stop
    /// rule compared against. Meaningful only when
    /// decision_bounds_valid.
    double suffix_after = 0.0;
  };

  /// Begins a select-style query: resets the evidence map and seeds the
  /// text memo with the query's normalized E2 form.
  void BeginSelect(std::string_view normalized_e2);

  /// Memoized CellMatchesText(cell, target) against the BeginSelect /
  /// SetMatchTarget string.
  bool CellMatches(std::string_view cell) { return memo_.Matches(cell); }
  /// Retargets the memo mid-query (join legs ground different strings).
  void SetMatchTarget(std::string_view normalized_target) {
    memo_.SetTarget(normalized_target);
  }

  void AddEntity(int32_t table, EntityId e, std::string_view raw,
                 double score) {
    if (recording_) {
      emit_records.push_back(EmitRecord{table, e, raw.data(),
                                        static_cast<uint32_t>(raw.size()), 0,
                                        0, score});
      return;
    }
    evidence_.AddEntity(table, e, raw, score);
  }
  void AddText(int32_t table, std::string_view raw, double score);

  // --- Scatter-gather recording (parallel_search.cc). ---
  // A shard's scoring pass cannot feed a private evidence map and merge
  // subtotals later: double addition is not associative, so merged sums
  // would drift from the sequential scan's bit pattern. Instead a shard
  // *records* the exact AddEntity/AddText argument stream and the gather
  // replays it in global table order into the merge workspace —
  // reproducing the sequential accumulation order, display-string
  // adoption and tie-breaks by construction.

  /// One recorded evidence call. Raw text views point into the corpus
  /// backing store (stable for the query's duration); AddText's
  /// normalized key is copied into emit_keys because the normalization
  /// scratch is reused per call.
  struct EmitRecord {
    int32_t table = 0;
    EntityId entity = kNa;  // kNa: text-keyed answer
    const char* raw = nullptr;
    uint32_t raw_len = 0;
    uint32_t key_off = 0, key_len = 0;  // into emit_keys (text answers)
    double score = 0.0;
  };
  /// Maps one scored plan position to its emit_records range; the gather
  /// replays ranges in plan order and runs the sequential stop rule
  /// between them. Positions without a mark were not scored.
  struct EmitMark {
    uint32_t plan_pos = 0;
    uint32_t begin = 0, end = 0;
  };

  /// Arms recording and clears the record buffers. Deliberately not part
  /// of BeginSelect: the inline shard protocol re-enters an engine (and
  /// thus BeginSelect) for the scoring pass and must keep both the flag
  /// and the buffers across it.
  void BeginRecording() {
    recording_ = true;
    emit_records.clear();
    emit_marks.clear();
    emit_keys.clear();
  }
  void EndRecording() { recording_ = false; }
  bool recording() const { return recording_; }
  void MarkRecorded(uint32_t plan_pos, uint32_t begin) {
    emit_marks.push_back(
        EmitMark{plan_pos, begin, static_cast<uint32_t>(emit_records.size())});
  }
  /// Replays `shard`'s records [begin, end) into this workspace's
  /// evidence map — the gather side of the contract above.
  void ReplayRecordsFrom(const SearchWorkspace& shard, uint32_t begin,
                         uint32_t end);

  /// The safe early-termination rule. `remaining` is the sum over
  /// unscanned tables of PlannedTable::bound — an upper bound on any
  /// single answer's missing evidence. Stopping is allowed only when
  /// more than k answers exist and every adjacent gap among the current
  /// top k+1 scores strictly exceeds `remaining`: then no unscanned
  /// table can reorder the prefix or promote an outside answer into it,
  /// so the pruned prefix equals the full ranking's. Ties (gap 0) block
  /// stopping, which is what keeps the documented tie-break exact.
  bool ShouldStop(int k, double remaining);

  /// Ranks the accumulated evidence into `out` (reused).
  void EmitRanked(const TopKOptions& topk, std::vector<SearchResult>* out);

  /// Builds `support_cols` — the columns where a cell could possibly
  /// text-match the current target, from the corpus's column-granular
  /// CellTokenPostings: a matching cell needs at least ceil(nb/2) of
  /// the target's nb tokens (CellMatchesText's Jaccard >= 0.5 forces
  /// it), so a column containing fewer distinct target tokens is
  /// provably matchless. Returns true when the support set is valid
  /// for pruning; false when the backend lacks match support or the
  /// target has no tokens (then token absence proves nothing and
  /// engines must not eliminate anything on it).
  bool BuildMatchSupport(const CorpusView& corpus);

  /// Membership tests against the last BuildMatchSupport result
  /// (sorted by (table, col)).
  bool ColumnHasMatchSupport(int32_t table, int32_t col) const {
    auto cmp = [](const ColumnRef& r, const ColumnRef& key) {
      if (r.table != key.table) return r.table < key.table;
      return r.col < key.col;
    };
    return std::binary_search(support_cols.begin(), support_cols.end(),
                              ColumnRef{table, col}, cmp);
  }
  bool TableHasMatchSupport(int32_t table) const {
    auto it = std::lower_bound(
        support_cols.begin(), support_cols.end(), table,
        [](const ColumnRef& r, int32_t t) { return r.table < t; });
    return it != support_cols.end() && it->table == table;
  }

  const QueryStats& stats() const { return query_stats; }

  /// Running max accumulated score in the evidence map — the gather
  /// publishes it as the shared-threshold telemetry after each shard
  /// replay.
  double max_evidence_score() const { return evidence_.max_score(); }

  /// One batched bound screen's outcome in the EXPLAIN filter log:
  /// which condition order the adaptive reorderer ran, how many plan
  /// lanes entered, and how many survived to the refined-bound pass.
  /// The determinism test replays a fixed query sequence and asserts
  /// the order trace bit for bit.
  struct FilterDecision {
    int cls = 0;               // FilterManager class id
    uint32_t lanes_in = 0;     // plan lanes entering the screen batch
    uint32_t lanes_pass = 0;   // lanes surviving to the refined pass
    uint8_t num_conditions = 0;
    bool exploring = false;    // order came from an exploration round
    std::array<uint8_t, exec::FilterManager::kMaxConditions> order{};
  };

  /// Lazily registers the engines' screen classes (class ids stay
  /// stable for the workspace's lifetime). Conditions carry static
  /// cost hints; measured pass rates drive the order.
  void EnsureFilterClasses();

  const exec::FilterManager& filter_manager() const { return filters; }

  /// Arms EXPLAIN capture for subsequent queries (sticky across
  /// queries; BeginSelect clears the log, not the flag). Off — the
  /// default — costs one branch per planned table and keeps the
  /// zero-allocation contract; on, the kernel appends one
  /// TableDecision per planned table, growing decision_log.
  void EnableExplain(bool on) { explain_enabled_ = on; }
  bool explain_enabled() const { return explain_enabled_; }

  // --- Engine-facing scratch (internal to src/search/). ---
  std::vector<search_internal::PlannedTable> plan;
  std::vector<double> suffix_bound;       // suffix sums over `plan`
  std::vector<int32_t> col_pool;          // planned column ranges
  std::vector<ColumnRef> side_a, side_b;  // baseline header-union sides
  std::vector<int32_t> context_tables;    // baseline context bonus
  std::vector<ColumnRef> support_cols;    // BuildMatchSupport result
  /// One cell-token posting tagged with its target token's bloom bit —
  /// the (table, col) groups below need to know which token each entry
  /// came from to run the pairwise co-occurrence test.
  struct SupportEntry {
    int32_t table;
    int32_t col;
    int32_t min_tokens;
    uint64_t bit;   // CellTokenMask(target token)
    uint64_t cooc;  // posting's co-occurrence bloom
  };
  std::vector<SupportEntry> support_scratch;  // token-posting union

  // --- Vectorized batch kernel scratch (src/exec). ---
  /// Columnar lanes shared by the bound screen (table/bound + selection
  /// vectors) and the row-chunk scoring sweeps (entity/text/score).
  exec::ScoreBatch batch;
  /// Adaptive condition reorderer for the batched bound screens; one
  /// class per engine, registered by EnsureFilterClasses.
  exec::FilterManager filters;
  int filter_class_type = -1;
  int filter_class_type_relation = -1;
  int filter_class_baseline = -1;
  /// Per-plan-lane scoring verdicts, filled by ComputeColumnVerdicts
  /// before the score scan. For the type/baseline engines a lane is a
  /// col_pool position (b-side columns); for the relation engine it is
  /// a relation-posting index. has_entity: the column holds at least
  /// one E2-annotated cell, so the entity comparison can fire.
  /// has_support: the column can text-match the target (or the backend
  /// cannot prove otherwise), so the memo probe can fire. A lane with
  /// neither is a proven no-op and its column scan is skipped exactly.
  exec::BitVector lane_has_entity, lane_has_support;
  /// Answer-side gathered lanes for a scoring chunk: slot k holds
  /// column k's rows at stride exec::kBatchSize. Grown past the high
  /// water mark only (EnsureGatherCapacity), zero steady-state
  /// allocations.
  std::vector<EntityId> gather_entities;
  std::vector<std::string_view> gather_cells;
  void EnsureGatherCapacity(uint32_t num_columns) {
    const size_t need = size_t{num_columns} * exec::kBatchSize;
    if (gather_entities.size() < need) gather_entities.resize(need);
    if (gather_cells.size() < need) gather_cells.resize(need);
  }
  /// EXPLAIN trace of the batched bound screens for the last query
  /// (empty unless explain_enabled()).
  std::vector<FilterDecision> filter_log;

  search_internal::EntityAccumulator leg_acc;  // join leg expansion
  std::vector<std::pair<EntityId, double>> binding_list;  // join bindings
  std::string norm_scratch;  // join E3 normalization
  QueryStats query_stats;   // written by the engines per query
  /// Recording buffers (see BeginRecording). Engine-facing: the gather
  /// reads a shard workspace's buffers after its done flag.
  std::vector<EmitRecord> emit_records;
  std::vector<EmitMark> emit_marks;
  std::string emit_keys;  // normalized text keys backing emit_records
  /// Per-shard EXPLAIN summaries for the last query (empty for
  /// sequential scans); cleared by BeginSelect.
  std::vector<ShardSummary> shard_log;
  /// EXPLAIN decision log for the last query (empty unless
  /// explain_enabled()); one entry per planned table in scan order.
  std::vector<TableDecision> decision_log;
  /// True when decision_log's bound/suffix_after fields were really
  /// computed (pruned select scan); false for prune-off scans and the
  /// join engine, whose eliminations are support proofs, not bounds.
  bool decision_bounds_valid = false;

 private:
  search_internal::EvidenceMap evidence_;
  search_internal::TextMatchMemo memo_;
  std::string text_key_scratch_;
  std::vector<double> score_scratch_;
  // Exponential backoff for the O(answers) gap test (see ShouldStop).
  int64_t stop_check_skip_ = 0;
  int64_t stop_check_backoff_ = 1;
  bool explain_enabled_ = false;
  bool recording_ = false;
};

/// Per-thread workspace backing the convenience engine wrappers (the
/// engines never nest, so all four share one instance per thread).
/// Hot-path callers should own a workspace instead.
SearchWorkspace& ThreadLocalSearchWorkspace();

}  // namespace webtab

#endif  // WEBTAB_SEARCH_SEARCH_WORKSPACE_H_
