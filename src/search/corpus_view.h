#ifndef WEBTAB_SEARCH_CORPUS_VIEW_H_
#define WEBTAB_SEARCH_CORPUS_VIEW_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "catalog/ids.h"

namespace webtab {

/// Posting payloads. Fixed all-int32 layouts so the same element type
/// backs in-memory vectors and mmap'd snapshot arrays verbatim.
struct ColumnRef {
  int32_t table = 0;
  int32_t col = 0;
};
static_assert(sizeof(ColumnRef) == 8, "postings are mmap'd verbatim");

struct RelationRef {
  int32_t table = 0;
  int32_t c1 = 0;
  int32_t c2 = 0;
  int32_t swapped = 0;  // 0/1; int32 keeps the struct pad-free on disk.
};
static_assert(sizeof(RelationRef) == 16, "postings are mmap'd verbatim");

struct CellRef {
  int32_t table = 0;
  int32_t row = 0;
  int32_t col = 0;
};
static_assert(sizeof(CellRef) == 12, "postings are mmap'd verbatim");

/// Cell-token posting: one column that contains the token in at least
/// one cell. `min_tokens` is the smallest distinct-token count of any
/// such cell — the match-support probe needs it because a single shared
/// token only satisfies Jaccard >= 0.5 against a short enough cell
/// (3*inter >= na + nb), so e.g. a two-token person name cannot match a
/// full-name cell that shares just the given name. `cooc` is a 64-bit
/// bloom over the *other* distinct tokens sharing a cell with this one
/// in this column (union across cells): a multi-token overlap needs two
/// target tokens in one cell, which requires their mutual bloom bits —
/// a column holding "Pavel Novak" and "Maria Kovac" has both tokens of
/// "Pavel Kovac" but no co-occurring pair, so it is provably dead.
struct CellTokenRef {
  int32_t table = 0;
  int32_t col = 0;
  int32_t min_tokens = 0;
  uint32_t reserved = 0;  // Zero on disk; keeps cooc 8-byte aligned.
  uint64_t cooc = 0;
};
static_assert(sizeof(CellTokenRef) == 24, "postings are mmap'd verbatim");

/// Bloom mask for a token's appearance in CellTokenRef::cooc — two
/// bits from independent slices of an FNV-1a hash (membership requires
/// both, squaring the false-positive rate). A fixed inline hash so the
/// build side (corpus_index, snapshot writer) and the query side
/// (BuildMatchSupport) agree across processes — std::hash is not
/// guaranteed stable between binaries.
inline uint64_t CellTokenMask(std::string_view token) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : token) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return (1ull << (h & 63)) | (1ull << ((h >> 6) & 63));
}

/// Postings are chunked into fixed-size blocks of kPostingBlockSize
/// elements (the last block of a list may be short).
inline constexpr int kPostingBlockSize = 64;

/// Per-block summary of one posting list — the block-max index (the
/// WAND / Block-Max-WAND treatment adapted to table-at-a-time search).
/// Declared bounds may overestimate (slack is sound) but never
/// underestimate; both directions of the contract are validated by
/// SnapshotCorpusView::DeepValidate for untrusted files.
struct PostingBlockMax {
  int32_t last_table = -1;  // table of the block's final posting
  int32_t max_rows = 0;     // max rows(t) over tables in the block
  int32_t max_run = 0;      // max per-table posting count in the block
  int32_t max_bound = 0;    // max rows(t) * run(t): one table's largest
                            // per-answer contribution (up to the
                            // engine's constant weight)
};
static_assert(sizeof(PostingBlockMax) == 16, "blocks are mmap'd verbatim");

/// One posting list's block summaries; empty() when the backend carries
/// no block-max index (pre-minor-1 snapshots).
using PostingBlockSpan = std::span<const PostingBlockMax>;

/// Read-only access to an annotated table corpus and its postings (the
/// paper indexes 25M tables with Lucene; same access paths here):
///  - header/context token postings for the string-only baseline,
///  - column-type postings and pair-relation postings for the hardened
///    engines,
///  - per-table cell text and annotation access.
///
/// Two backends: the in-memory CorpusIndex build, and the zero-copy
/// snapshot view over an mmap'd file. All four search engines run against
/// this interface and produce identical rankings on both.
class CorpusView {
 public:
  virtual ~CorpusView() = default;

  virtual int64_t num_tables() const = 0;

  // --- Per-table access (t indexes the corpus, not the source id). ---
  virtual int rows(int t) const = 0;
  virtual int cols(int t) const = 0;
  virtual int64_t table_id(int t) const = 0;
  virtual std::string_view cell(int t, int r, int c) const = 0;
  virtual std::string_view header(int t, int c) const = 0;
  virtual std::string_view context(int t) const = 0;

  // --- Per-table annotation access. ---
  virtual TypeId ColumnType(int t, int c) const = 0;
  virtual EntityId CellEntity(int t, int r, int c) const = 0;
  /// Relation on the ordered pair (c1 < c2); {kNa, false} when absent.
  virtual RelationCandidate RelationOf(int t, int c1, int c2) const = 0;

  /// Batched column gather: fills entities[i] = CellEntity(t, row_begin
  /// + i, c) and cells[i] = cell(t, row_begin + i, c) for i in [0, n).
  /// Either output may be null to skip that lane. The batch scoring
  /// kernels read cells exclusively through this — one virtual call per
  /// (column, row chunk) instead of two per cell — and both backends
  /// override it with direct strided walks over their storage. The
  /// default loops the scalar accessors, so alternative CorpusView
  /// implementations stay correct without writing a gather.
  virtual void GatherColumn(int t, int c, int row_begin, int n,
                            EntityId* entities,
                            std::string_view* cells) const {
    if (entities != nullptr) {
      for (int i = 0; i < n; ++i) {
        entities[i] = CellEntity(t, row_begin + i, c);
      }
    }
    if (cells != nullptr) {
      for (int i = 0; i < n; ++i) cells[i] = cell(t, row_begin + i, c);
    }
  }

  // --- Postings. ---
  //
  // Ordering contract: every postings list is sorted by non-decreasing
  // table index. The search kernel's galloping cursors
  // (posting_cursor.h) binary-search inside the spans, so an
  // out-of-order list would silently drop or double-count evidence.
  // The in-memory build guarantees it by construction (checked at
  // build time); snapshot files are checked by
  // SnapshotCorpusView::DeepValidate under Snapshot::OpenValidated.
  //
  /// Tables whose header row contains `token` (any column).
  virtual std::span<const ColumnRef> HeaderPostings(
      std::string_view token) const = 0;
  /// Tables whose context contains `token`.
  virtual std::span<const int32_t> ContextPostings(
      std::string_view token) const = 0;
  /// Columns annotated with type `t` — including via subtype when the
  /// index was built with a closure: postings are stored on the annotated
  /// type and every catalog ancestor.
  virtual std::span<const ColumnRef> TypePostings(TypeId t) const = 0;
  /// Column pairs annotated with relation `b`.
  virtual std::span<const RelationRef> RelationPostings(
      RelationId b) const = 0;
  /// Cells annotated with entity `e`.
  virtual std::span<const CellRef> EntityPostings(EntityId e) const = 0;

  // --- Block-max index (optional capability). ---
  //
  // Per-list block summaries (kPostingBlockSize postings per block) with
  // upper bounds on what any table inside the block can contribute, plus
  // a cell-token match-support index: for every token appearing in any
  // cell, the (table, column) pairs whose column contains it. The select
  // engines use match support to prove a candidate column contributes
  // zero text evidence (CellMatchesText requires enough shared tokens)
  // and drop it from their bounds exactly; the cursors use block
  // last-tables to seek. Both default to "absent" so alternative
  // CorpusView implementations keep working — engines then fall back to
  // the unrefined ascending scan.

  /// True when CellTokenPostings is populated (block-max index built).
  virtual bool HasMatchSupport() const { return false; }
  /// Columns with at least one cell containing `token`, sorted by
  /// (table, col), unique, each carrying the min distinct-token count
  /// among the containing cells. Column-granular on purpose: engines
  /// match E2 text only against specific columns, and a token common
  /// elsewhere in the table must not keep the column alive.
  virtual std::span<const CellTokenRef> CellTokenPostings(
      std::string_view /*token*/) const {
    return {};
  }
  virtual PostingBlockSpan HeaderPostingBlocks(
      std::string_view /*token*/) const {
    return {};
  }
  virtual PostingBlockSpan ContextPostingBlocks(
      std::string_view /*token*/) const {
    return {};
  }
  virtual PostingBlockSpan TypePostingBlocks(TypeId /*t*/) const {
    return {};
  }
  virtual PostingBlockSpan RelationPostingBlocks(RelationId /*b*/) const {
    return {};
  }
  virtual PostingBlockSpan EntityPostingBlocks(EntityId /*e*/) const {
    return {};
  }
};

}  // namespace webtab

#endif  // WEBTAB_SEARCH_CORPUS_VIEW_H_
