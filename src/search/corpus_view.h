#ifndef WEBTAB_SEARCH_CORPUS_VIEW_H_
#define WEBTAB_SEARCH_CORPUS_VIEW_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "catalog/ids.h"

namespace webtab {

/// Posting payloads. Fixed all-int32 layouts so the same element type
/// backs in-memory vectors and mmap'd snapshot arrays verbatim.
struct ColumnRef {
  int32_t table = 0;
  int32_t col = 0;
};
static_assert(sizeof(ColumnRef) == 8, "postings are mmap'd verbatim");

struct RelationRef {
  int32_t table = 0;
  int32_t c1 = 0;
  int32_t c2 = 0;
  int32_t swapped = 0;  // 0/1; int32 keeps the struct pad-free on disk.
};
static_assert(sizeof(RelationRef) == 16, "postings are mmap'd verbatim");

struct CellRef {
  int32_t table = 0;
  int32_t row = 0;
  int32_t col = 0;
};
static_assert(sizeof(CellRef) == 12, "postings are mmap'd verbatim");

/// Read-only access to an annotated table corpus and its postings (the
/// paper indexes 25M tables with Lucene; same access paths here):
///  - header/context token postings for the string-only baseline,
///  - column-type postings and pair-relation postings for the hardened
///    engines,
///  - per-table cell text and annotation access.
///
/// Two backends: the in-memory CorpusIndex build, and the zero-copy
/// snapshot view over an mmap'd file. All four search engines run against
/// this interface and produce identical rankings on both.
class CorpusView {
 public:
  virtual ~CorpusView() = default;

  virtual int64_t num_tables() const = 0;

  // --- Per-table access (t indexes the corpus, not the source id). ---
  virtual int rows(int t) const = 0;
  virtual int cols(int t) const = 0;
  virtual int64_t table_id(int t) const = 0;
  virtual std::string_view cell(int t, int r, int c) const = 0;
  virtual std::string_view header(int t, int c) const = 0;
  virtual std::string_view context(int t) const = 0;

  // --- Per-table annotation access. ---
  virtual TypeId ColumnType(int t, int c) const = 0;
  virtual EntityId CellEntity(int t, int r, int c) const = 0;
  /// Relation on the ordered pair (c1 < c2); {kNa, false} when absent.
  virtual RelationCandidate RelationOf(int t, int c1, int c2) const = 0;

  // --- Postings. ---
  //
  // Ordering contract: every postings list is sorted by non-decreasing
  // table index. The search kernel's galloping cursors
  // (posting_cursor.h) binary-search inside the spans, so an
  // out-of-order list would silently drop or double-count evidence.
  // The in-memory build guarantees it by construction (checked at
  // build time); snapshot files are checked by
  // SnapshotCorpusView::DeepValidate under Snapshot::OpenValidated.
  //
  /// Tables whose header row contains `token` (any column).
  virtual std::span<const ColumnRef> HeaderPostings(
      std::string_view token) const = 0;
  /// Tables whose context contains `token`.
  virtual std::span<const int32_t> ContextPostings(
      std::string_view token) const = 0;
  /// Columns annotated with type `t` — including via subtype when the
  /// index was built with a closure: postings are stored on the annotated
  /// type and every catalog ancestor.
  virtual std::span<const ColumnRef> TypePostings(TypeId t) const = 0;
  /// Column pairs annotated with relation `b`.
  virtual std::span<const RelationRef> RelationPostings(
      RelationId b) const = 0;
  /// Cells annotated with entity `e`.
  virtual std::span<const CellRef> EntityPostings(EntityId e) const = 0;
};

}  // namespace webtab

#endif  // WEBTAB_SEARCH_CORPUS_VIEW_H_
