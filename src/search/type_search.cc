#include "search/type_search.h"

#include "search/select_kernel.h"

namespace webtab {

std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query) {
  // Normalize E2's string form once (not per cell comparison).
  return TypeSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query,
                                     const NormalizedSelectQuery& nq) {
  std::vector<SearchResult> out;
  TypeSearch(index, query, nq, TopKOptions{},
             &ThreadLocalSearchWorkspace(), &out);
  return out;
}

void TypeSearch(const CorpusView& index, const SelectQuery& query,
                const NormalizedSelectQuery& nq, const TopKOptions& topk,
                SearchWorkspace* ws, std::vector<SearchResult>* out) {
  using search_internal::AppendUniqueCols;
  using search_internal::IntersectByTable;
  using search_internal::PlannedTable;
  using search_internal::PostingRunCounter;

  ws->BeginSelect(nq.e2_text);
  // Match-support refinement: with the cell-token index we know exactly
  // which tables can text-match E2 (CellMatchesText needs a shared
  // token), and the entity postings say how many cells are annotated
  // with E2. A table with neither contributes zero evidence.
  const bool refine =
      topk.k > 0 && topk.prune && ws->BuildMatchSupport(index);
  PostingRunCounter<CellRef> e2_runs(
      query.e2 != kNa ? index.EntityPostings(query.e2)
                      : std::span<const CellRef>(),
      query.e2 != kNa ? index.EntityPostingBlocks(query.e2)
                      : PostingBlockSpan());

  // Plan: leapfrog the two table-sorted type posting lists; a candidate
  // table needs a T1-typed column and a T2-typed column.
  obs::TraceSpan plan_span("search.plan");
  ws->plan.clear();
  ws->col_pool.clear();
  IntersectByTable(
      index.TypePostings(query.type1), index.TypePostings(query.type2),
      [&](int32_t table, std::span<const ColumnRef> run1,
          std::span<const ColumnRef> run2) {
        PlannedTable p;
        p.table = table;
        std::tie(p.a_begin, p.a_end) = AppendUniqueCols(run1, &ws->col_pool);
        std::tie(p.b_begin, p.b_end) = AppendUniqueCols(run2, &ws->col_pool);
        ws->plan.push_back(p);
      });
  plan_span.End();
  search_internal::RunPlannedTables(
      ws, topk,
      // Any single answer gains at most one row_score (max 1.0) per
      // (row, answer cell, matching E2 column) triple. With match
      // support the E2 side tightens: per b-column, at most its count
      // of E2-annotated cells at 1.0 each, plus text fallbacks (0.6)
      // only when that column actually contains enough of the
      // target's tokens.
      [&](const PlannedTable& p) {
        const double rows = index.rows(p.table);
        const double a = p.a_end - p.a_begin;
        const double b = p.b_end - p.b_begin;
        double bound = rows * a * b;
        if (refine) {
          // Annotated hits count only in the E2-side columns, so sum
          // the entity postings per b-column instead of per table.
          double refined = 0.0;
          for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
            const int col = ws->col_pool[bi];
            refined += e2_runs.CountAtCol(p.table, col);
            if (ws->ColumnHasMatchSupport(p.table, col)) {
              refined += 0.6 * rows;
            }
          }
          bound = std::min(bound, a * refined);
        }
        return bound;
      },
      [&](const PlannedTable& p) {
        const int table = p.table;
        const int num_rows = index.rows(table);
        for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
          const int c2 = ws->col_pool[bi];
          for (int r = 0; r < num_rows; ++r) {
            double row_score = 0.0;
            EntityId cell_entity = index.CellEntity(table, r, c2);
            if (query.e2 != kNa && cell_entity == query.e2) {
              row_score = 1.0;  // Annotated hit.
            } else if (ws->CellMatches(index.cell(table, r, c2))) {
              row_score = 0.6;  // Text fallback.
            }
            if (row_score <= 0.0) continue;
            for (uint32_t ai = p.a_begin; ai < p.a_end; ++ai) {
              const int c1 = ws->col_pool[ai];
              if (c1 == c2) continue;
              EntityId answer = index.CellEntity(table, r, c1);
              if (answer != kNa) {
                ws->AddEntity(table, answer, index.cell(table, r, c1),
                              row_score);
              } else {
                ws->AddText(table, index.cell(table, r, c1),
                            row_score * 0.8);
              }
            }
          }
        }
      });
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
