#include "search/type_search.h"

#include <map>
#include <set>

#include "search/engine_util.h"

namespace webtab {

std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query) {
  // Normalize E2's string form once (not per cell comparison).
  return TypeSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query,
                                     const NormalizedSelectQuery& nq) {
  using search_internal::CellMatchesText;
  using search_internal::EvidenceAggregator;

  std::map<int, std::set<int>> t1_cols;
  std::map<int, std::set<int>> t2_cols;
  for (const ColumnRef& ref : index.TypePostings(query.type1)) {
    t1_cols[ref.table].insert(ref.col);
  }
  for (const ColumnRef& ref : index.TypePostings(query.type2)) {
    t2_cols[ref.table].insert(ref.col);
  }

  EvidenceAggregator agg;
  for (const auto& [table_idx, c1s] : t1_cols) {
    auto it2 = t2_cols.find(table_idx);
    if (it2 == t2_cols.end()) continue;
    const int num_rows = index.rows(table_idx);
    for (int c2 : it2->second) {
      for (int r = 0; r < num_rows; ++r) {
        double row_score = 0.0;
        EntityId cell_entity = index.CellEntity(table_idx, r, c2);
        if (query.e2 != kNa && cell_entity == query.e2) {
          row_score = 1.0;  // Annotated hit.
        } else if (CellMatchesText(index.cell(table_idx, r, c2),
                                   nq.e2_text)) {
          row_score = 0.6;  // Text fallback.
        }
        if (row_score <= 0.0) continue;
        for (int c1 : c1s) {
          if (c1 == c2) continue;
          EntityId answer = index.CellEntity(table_idx, r, c1);
          if (answer != kNa) {
            agg.AddEntity(answer, index.cell(table_idx, r, c1), row_score);
          } else {
            agg.AddText(index.cell(table_idx, r, c1), row_score * 0.8);
          }
        }
      }
    }
  }
  return agg.Ranked();
}

}  // namespace webtab
