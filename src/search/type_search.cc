#include "search/type_search.h"

#include "search/select_kernel.h"

namespace webtab {

std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query) {
  // Normalize E2's string form once (not per cell comparison).
  return TypeSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> TypeSearch(const CorpusView& index,
                                     const SelectQuery& query,
                                     const NormalizedSelectQuery& nq) {
  std::vector<SearchResult> out;
  TypeSearch(index, query, nq, TopKOptions{},
             &ThreadLocalSearchWorkspace(), &out);
  return out;
}

void TypeSearch(const CorpusView& index, const SelectQuery& query,
                const NormalizedSelectQuery& nq, const TopKOptions& topk,
                SearchWorkspace* ws, std::vector<SearchResult>* out) {
  using search_internal::AppendUniqueCols;
  using search_internal::IntersectByTable;
  using search_internal::PlannedTable;
  using search_internal::PostingRunCounter;
  using search_internal::ScreenCond;

  ws->BeginSelect(nq.e2_text);
  const bool prune = topk.k > 0 && topk.prune;
  // Match-support refinement: with the cell-token index we know exactly
  // which tables can text-match E2 (CellMatchesText needs a shared
  // token), and the entity postings say how many cells are annotated
  // with E2. A table with neither contributes zero evidence. The batch
  // path builds the support set even on full-rank scans — its
  // scoring-side verdicts eliminate proven-matchless columns there too.
  const bool support_valid =
      (prune || topk.batch) && ws->BuildMatchSupport(index);
  const bool refine = prune && support_valid;
  const bool e2_present = query.e2 != kNa;
  const std::span<const CellRef> e2_postings =
      e2_present ? index.EntityPostings(query.e2)
                 : std::span<const CellRef>();
  const PostingBlockSpan e2_blocks = e2_present
                                         ? index.EntityPostingBlocks(query.e2)
                                         : PostingBlockSpan();

  // Plan: leapfrog the two table-sorted type posting lists; a candidate
  // table needs a T1-typed column and a T2-typed column.
  obs::TraceSpan plan_span("search.plan");
  ws->plan.clear();
  ws->col_pool.clear();
  IntersectByTable(
      index.TypePostings(query.type1), index.TypePostings(query.type2),
      [&](int32_t table, std::span<const ColumnRef> run1,
          std::span<const ColumnRef> run2) {
        PlannedTable p;
        p.table = table;
        std::tie(p.a_begin, p.a_end) = AppendUniqueCols(run1, &ws->col_pool);
        std::tie(p.b_begin, p.b_end) = AppendUniqueCols(run2, &ws->col_pool);
        ws->plan.push_back(p);
      });
  plan_span.End();

  // Any single answer gains at most one row_score (max 1.0) per (row,
  // answer cell, matching E2 column) triple. With match support the E2
  // side tightens: per b-column, at most its count of E2-annotated
  // cells at 1.0 each, plus text fallbacks (0.6) only when that column
  // actually contains enough of the target's tokens. Shared verbatim
  // by the scalar loop and the batched screen's survivor pass, so both
  // produce the same doubles.
  auto refined_bound = [&](const PlannedTable& p,
                           PostingRunCounter<CellRef>* e2_runs) {
    const double rows = index.rows(p.table);
    const double a = p.a_end - p.a_begin;
    const double b = p.b_end - p.b_begin;
    double bound = rows * a * b;
    double refined = 0.0;
    for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
      const int col = ws->col_pool[bi];
      refined += e2_runs->CountAtCol(p.table, col);
      if (ws->ColumnHasMatchSupport(p.table, col)) {
        refined += 0.6 * rows;
      }
    }
    return std::min(bound, a * refined);
  };
  auto fill_bounds = [&] {
    if (!refine) {
      for (PlannedTable& p : ws->plan) {
        const double rows = index.rows(p.table);
        const double a = p.a_end - p.a_begin;
        const double b = p.b_end - p.b_begin;
        p.bound = rows * a * b;
      }
      return;
    }
    if (topk.batch) {
      ws->EnsureFilterClasses();
      static constexpr ScreenCond kKinds[] = {ScreenCond::kEntityRun,
                                              ScreenCond::kTableSupport};
      search_internal::BatchedBoundFill(ws, ws->filter_class_type, kKinds,
                                        e2_postings, e2_blocks,
                                        refined_bound);
      return;
    }
    PostingRunCounter<CellRef> e2_runs(e2_postings, e2_blocks);
    for (PlannedTable& p : ws->plan) p.bound = refined_bound(p, &e2_runs);
  };

  auto scalar_score = [&](const PlannedTable& p) {
    const int table = p.table;
    const int num_rows = index.rows(table);
    for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
      const int c2 = ws->col_pool[bi];
      for (int r = 0; r < num_rows; ++r) {
        double row_score = 0.0;
        EntityId cell_entity = index.CellEntity(table, r, c2);
        if (query.e2 != kNa && cell_entity == query.e2) {
          row_score = 1.0;  // Annotated hit.
        } else if (ws->CellMatches(index.cell(table, r, c2))) {
          row_score = 0.6;  // Text fallback.
        }
        if (row_score <= 0.0) continue;
        for (uint32_t ai = p.a_begin; ai < p.a_end; ++ai) {
          const int c1 = ws->col_pool[ai];
          if (c1 == c2) continue;
          EntityId answer = index.CellEntity(table, r, c1);
          if (answer != kNa) {
            ws->AddEntity(table, answer, index.cell(table, r, c1),
                          row_score);
          } else {
            ws->AddText(table, index.cell(table, r, c1), row_score * 0.8);
          }
        }
      }
    }
  };

  // Lazy verdict counter: scored tables arrive in ascending order, so
  // one forward counter serves every FillColumnVerdicts call.
  PostingRunCounter<CellRef> verdict_runs{e2_postings, e2_blocks};
  auto batch_score = [&](const PlannedTable& p) {
    search_internal::FillColumnVerdicts(ws, p, &verdict_runs, e2_present,
                                        support_valid);
    const int table = p.table;
    // Row-chunk scoring pass: survivors keep the same row_score the
    // scalar loop computes, and the memo is probed for exactly the
    // same cells in the same order (an entity hit short-circuits it).
    auto score_chunk = [&](exec::ScoreBatch* batch, int n, bool has_entity,
                           bool has_support) {
      uint32_t* tids = batch->active.mutable_data();
      uint32_t m = 0;
      if (has_entity && has_support) {
        for (int i = 0; i < n; ++i) {
          double rs = 0.0;
          if (batch->entity[i] == query.e2) {
            rs = 1.0;
          } else if (ws->CellMatches(batch->text[i])) {
            rs = 0.6;
          }
          tids[m] = static_cast<uint32_t>(i);
          batch->score[m] = rs;
          m += static_cast<uint32_t>(rs > 0.0);
        }
      } else if (has_entity) {
        // No column support: the memo is provably false on every cell,
        // so only the annotated comparison can fire.
        for (int i = 0; i < n; ++i) {
          tids[m] = static_cast<uint32_t>(i);
          batch->score[m] = 1.0;
          m += static_cast<uint32_t>(batch->entity[i] == query.e2);
        }
      } else {
        // No E2 annotation in the column: only the text fallback.
        for (int i = 0; i < n; ++i) {
          tids[m] = static_cast<uint32_t>(i);
          batch->score[m] = 0.6;
          m += static_cast<uint32_t>(ws->CellMatches(batch->text[i]));
        }
      }
      batch->active.SetSize(m);
    };
    search_internal::ScoreTableBatched(
        ws, index, p, /*need_answer_entities=*/true, score_chunk,
        [&](uint32_t k, uint32_t i, double rs) {
          const size_t lane = k * exec::kBatchSize + i;
          EntityId answer = ws->gather_entities[lane];
          if (answer != kNa) {
            ws->AddEntity(table, answer, ws->gather_cells[lane], rs);
          } else {
            ws->AddText(table, ws->gather_cells[lane], rs * 0.8);
          }
        });
  };

  if (topk.batch) {
    search_internal::PrepareVerdictLanes(ws, ws->col_pool.size());
    search_internal::RunPlannedTables(ws, topk, fill_bounds, batch_score);
  } else {
    search_internal::RunPlannedTables(ws, topk, fill_bounds, scalar_score);
  }
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
