#ifndef WEBTAB_SEARCH_JOIN_SEARCH_H_
#define WEBTAB_SEARCH_JOIN_SEARCH_H_

#include <string>
#include <vector>

#include "search/corpus_view.h"
#include "search/query.h"
#include "search/search_workspace.h"

namespace webtab {

/// The paper's future-work query form (§2.1):
///   R1(e1 ∈ T1, e2 ∈ T2) ∧ R2(e2 ∈ T2, E3 ∈ T3)
/// — a join through the unbound entity e2, answered *without fuzzy text
/// matching* because both legs run over entity/relation annotations.
/// Role flags orient each leg: with e1_is_subject=false the first leg
/// reads R1(e2, e1), so "actors in movies directed by D" is
///   JoinQuery{r1=acted_in, e1_is_subject=false,
///             r2=directed,  e2_is_subject=true, e3=D}.
struct JoinQuery {
  RelationId r1 = kNa;
  bool e1_is_subject = true;  // e1's role in R1 (e2 takes the other).
  RelationId r2 = kNa;
  bool e2_is_subject = true;  // e2's role in R2 (E3 takes the other).
  EntityId e3 = kNa;
  std::string e3_text;        // Fallback when E3 is not in the catalog.
  /// How many join-variable bindings to expand (top-scored first).
  int max_join_entities = 20;
};

/// Two-stage evaluation over the annotated corpus: ground e2 via the R2
/// leg (like Figure 4), then expand each binding through the R1 leg,
/// aggregating evidence multiplicatively per answer entity.
std::vector<SearchResult> JoinSearch(const CorpusView& index,
                                     const JoinQuery& query);
/// Kernel form: reusable workspace, results into `out`. Top-k applies
/// to the final ranking; the legs themselves are already bounded by
/// max_join_entities, so no table pruning runs inside them.
void JoinSearch(const CorpusView& index, const JoinQuery& query,
                const TopKOptions& topk, SearchWorkspace* workspace,
                std::vector<SearchResult>* out);

namespace search_internal {
/// One leg expansion of the join engine (bindings of `rel`'s unbound
/// side given the grounded side), exposed so the scatter-gather
/// executor can run leg-1 expansions per binding on the task pool; see
/// the definition for the full contract. `grounded_text` must be
/// pre-normalized and already set as `ws`'s match target when non-empty.
void JoinExpandLeg(const CorpusView& index, RelationId rel, EntityId grounded,
                   std::string_view grounded_text, bool grounded_is_object,
                   bool support_valid, bool use_batch, SearchWorkspace* ws,
                   EntityAccumulator* acc);
}  // namespace search_internal

}  // namespace webtab

#endif  // WEBTAB_SEARCH_JOIN_SEARCH_H_
