#include "search/join_search.h"

#include <algorithm>
#include <map>

#include "search/engine_util.h"

namespace webtab {

namespace {

/// Collects bindings of the unbound side of relation `rel` given the
/// grounded side, by scanning the relation's annotated column pairs.
/// grounded_is_object: the grounded entity sits in the object column.
std::map<EntityId, double> ExpandLeg(const CorpusView& index,
                                     RelationId rel, EntityId grounded,
                                     const std::string& grounded_text,
                                     bool grounded_is_object) {
  using search_internal::CellMatchesText;
  std::map<EntityId, double> bindings;
  for (const RelationRef& ref : index.RelationPostings(rel)) {
    int subject_col = ref.swapped ? ref.c2 : ref.c1;
    int object_col = ref.swapped ? ref.c1 : ref.c2;
    int grounded_col = grounded_is_object ? object_col : subject_col;
    int free_col = grounded_is_object ? subject_col : object_col;
    const int num_rows = index.rows(ref.table);
    for (int r = 0; r < num_rows; ++r) {
      double row_score = 0.0;
      EntityId cell = index.CellEntity(ref.table, r, grounded_col);
      if (grounded != kNa && cell == grounded) {
        row_score = 1.0;
      } else if (!grounded_text.empty() &&
                 CellMatchesText(index.cell(ref.table, r, grounded_col),
                                 grounded_text)) {
        row_score = 0.6;
      }
      if (row_score <= 0.0) continue;
      EntityId answer = index.CellEntity(ref.table, r, free_col);
      if (answer != kNa) bindings[answer] += row_score;
    }
  }
  return bindings;
}

}  // namespace

std::vector<SearchResult> JoinSearch(const CorpusView& index,
                                     const JoinQuery& query) {
  // Normalize E3's string form once (idempotent, so scores match the
  // raw string bit for bit).
  const std::string e3_text = NormalizeText(query.e3_text);

  // Leg 2: ground the join variable e2 from R2(e2, E3) (or swapped).
  std::map<EntityId, double> join_bindings =
      ExpandLeg(index, query.r2, query.e3, e3_text,
                /*grounded_is_object=*/query.e2_is_subject);

  // Keep the top-K join bindings by evidence.
  std::vector<std::pair<EntityId, double>> ranked(join_bindings.begin(),
                                                  join_bindings.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (static_cast<int>(ranked.size()) > query.max_join_entities) {
    ranked.resize(query.max_join_entities);
  }

  // Leg 1: expand each binding through R1 toward e1.
  search_internal::EvidenceAggregator agg;
  for (const auto& [e2, e2_score] : ranked) {
    std::map<EntityId, double> answers =
        ExpandLeg(index, query.r1, e2, /*grounded_text=*/"",
                  /*grounded_is_object=*/query.e1_is_subject);
    for (const auto& [e1, evidence] : answers) {
      // Multiplicative chaining: weak join bindings contribute less.
      agg.AddEntity(e1, /*text=*/"", evidence * e2_score);
    }
  }
  return agg.Ranked();
}

}  // namespace webtab
