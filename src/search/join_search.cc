#include "search/join_search.h"

#include <algorithm>

#include "search/select_kernel.h"
#include "text/tokenizer.h"

namespace webtab {
namespace search_internal {

/// Collects bindings of the unbound side of relation `rel` given the
/// grounded side, by scanning the relation's annotated column pairs.
/// grounded_is_object: the grounded entity sits in the object column.
/// Accumulates into the workspace's flat entity accumulator (the scratch
/// replacement for the retired per-call std::map). `grounded_text` must
/// be pre-normalized and already set as the workspace match target when
/// non-empty.
///
/// With a match-support backend, whole table runs are skipped when no
/// annotated pair's grounded column holds the grounded entity or (text
/// path) can text-match the target — both row conditions are then
/// provably false for every row, so the skip generates the exact same
/// Add calls as the full scan. `support_valid` says the workspace's
/// support set covers the current match target; without it, text-bearing
/// legs scan everything.
void JoinExpandLeg(const CorpusView& index, RelationId rel, EntityId grounded,
                   std::string_view grounded_text, bool grounded_is_object,
                   bool support_valid, bool use_batch, SearchWorkspace* ws,
                   EntityAccumulator* acc) {
  acc->Begin();
  const bool has_text = !grounded_text.empty();
  const bool can_skip =
      index.HasMatchSupport() && (!has_text || support_valid);
  search_internal::PostingRunCounter<CellRef> grounded_runs(
      grounded != kNa ? index.EntityPostings(grounded)
                      : std::span<const CellRef>(),
      grounded != kNa ? index.EntityPostingBlocks(grounded)
                      : PostingBlockSpan());
  search_internal::PostingCursor<RelationRef> cursor(
      index.RelationPostings(rel), index.RelationPostingBlocks(rel));
  const bool explain = ws->explain_enabled();
  while (!cursor.done()) {
    const int32_t table = cursor.table();
    std::span<const RelationRef> run = cursor.TakeRun();
    ++ws->query_stats.tables_planned;
    if (can_skip) {
      bool possible = false;
      for (const RelationRef& ref : run) {
        int subject_col = ref.swapped ? ref.c2 : ref.c1;
        int object_col = ref.swapped ? ref.c1 : ref.c2;
        int grounded_col = grounded_is_object ? object_col : subject_col;
        // Per pair: the grounded entity must be annotated in the
        // grounded column itself, or (text path) that column must be
        // able to text-match the target.
        if (grounded != kNa &&
            grounded_runs.CountAtCol(table, grounded_col) > 0) {
          possible = true;
          break;
        }
        if (has_text && ws->ColumnHasMatchSupport(table, grounded_col)) {
          possible = true;
          break;
        }
      }
      if (!possible) {
        // The support proof shows every row contributes zero — same
        // exact-elimination class as a zero select bound (the join
        // engine computes no numeric bounds; decision_bounds_valid
        // stays false).
        if (explain) {
          ws->decision_log.push_back(
              {table,
               SearchWorkspace::TableDecision::Verdict::kPrunedZeroBound,
               0.0, 0.0});
        }
        continue;
      }
    }
    ++ws->query_stats.tables_scored;
    if (explain) {
      ws->decision_log.push_back(
          {table, SearchWorkspace::TableDecision::Verdict::kScored, 0.0,
           0.0});
    }
    for (const RelationRef& ref : run) {
      int subject_col = ref.swapped ? ref.c2 : ref.c1;
      int object_col = ref.swapped ? ref.c1 : ref.c2;
      int grounded_col = grounded_is_object ? object_col : subject_col;
      int free_col = grounded_is_object ? subject_col : object_col;
      const int num_rows = index.rows(ref.table);
      if (!use_batch) {
        for (int r = 0; r < num_rows; ++r) {
          double row_score = 0.0;
          EntityId cell = index.CellEntity(ref.table, r, grounded_col);
          if (grounded != kNa && cell == grounded) {
            row_score = 1.0;
          } else if (has_text &&
                     ws->CellMatches(
                         index.cell(ref.table, r, grounded_col))) {
            row_score = 0.6;
          }
          if (row_score <= 0.0) continue;
          EntityId answer = index.CellEntity(ref.table, r, free_col);
          if (answer != kNa) acc->Add(answer) += row_score;
        }
        continue;
      }
      // Batch path: the same per-pair conditions the run-level skip
      // tested, now at pair granularity — a pair whose grounded column
      // has neither the grounded entity annotated nor (provable) text
      // support emits no Add for any row, so skipping it is exact.
      const bool has_entity =
          grounded != kNa &&
          grounded_runs.CountAtCol(table, grounded_col) > 0;
      const bool text_possible =
          has_text &&
          (!can_skip || ws->ColumnHasMatchSupport(table, grounded_col));
      if (!has_entity && !text_possible) continue;
      exec::ScoreBatch& batch = ws->batch;
      ws->EnsureGatherCapacity(1);
      for (int rb = 0; rb < num_rows;
           rb += static_cast<int>(exec::kBatchSize)) {
        const int n =
            std::min(static_cast<int>(exec::kBatchSize), num_rows - rb);
        index.GatherColumn(ref.table, grounded_col, rb, n,
                           has_entity ? batch.entity.data() : nullptr,
                           text_possible ? batch.text.data() : nullptr);
        uint32_t* tids = batch.active.mutable_data();
        uint32_t m = 0;
        if (has_entity && text_possible) {
          for (int i = 0; i < n; ++i) {
            double rs = 0.0;
            if (batch.entity[i] == grounded) {
              rs = 1.0;
            } else if (ws->CellMatches(batch.text[i])) {
              rs = 0.6;
            }
            tids[m] = static_cast<uint32_t>(i);
            batch.score[m] = rs;
            m += static_cast<uint32_t>(rs > 0.0);
          }
        } else if (has_entity) {
          for (int i = 0; i < n; ++i) {
            tids[m] = static_cast<uint32_t>(i);
            batch.score[m] = 1.0;
            m += static_cast<uint32_t>(batch.entity[i] == grounded);
          }
        } else {
          for (int i = 0; i < n; ++i) {
            tids[m] = static_cast<uint32_t>(i);
            batch.score[m] = 0.6;
            m += static_cast<uint32_t>(ws->CellMatches(batch.text[i]));
          }
        }
        batch.active.SetSize(m);
        if (batch.active.empty()) continue;
        // Bindings need entities only — the free column's text is
        // never read, so the cell lane is skipped entirely.
        index.GatherColumn(ref.table, free_col, rb, n,
                           ws->gather_entities.data(), nullptr);
        for (uint32_t j = 0; j < m; ++j) {
          const uint32_t i = batch.active[j];
          EntityId answer = ws->gather_entities[i];
          if (answer != kNa) acc->Add(answer) += batch.score[j];
        }
      }
    }
  }
}

}  // namespace search_internal

std::vector<SearchResult> JoinSearch(const CorpusView& index,
                                     const JoinQuery& query) {
  std::vector<SearchResult> out;
  JoinSearch(index, query, TopKOptions{},
             &ThreadLocalSearchWorkspace(), &out);
  return out;
}

void JoinSearch(const CorpusView& index, const JoinQuery& query,
                const TopKOptions& topk, SearchWorkspace* ws,
                std::vector<SearchResult>* out) {
  // Normalize E3's string form once (idempotent, so scores match the
  // raw string bit for bit); it doubles as the leg-2 match target.
  NormalizeTextInto(query.e3_text, &ws->norm_scratch);
  ws->BeginSelect(ws->norm_scratch);
  // Run skipping is a provable no-op elimination (not a lossy prune),
  // so it stays on even for full-rank queries; stats count relation
  // runs rather than select-plan tables.
  const bool support_valid = ws->BuildMatchSupport(index);

  // Leg 2: ground the join variable e2 from R2(e2, E3) (or swapped),
  // then keep the top-K bindings by evidence (score desc, id asc).
  // Trace-wise the binding leg is the plan (it fixes what leg 1 scans)
  // and the expansion loop is the scoring scan.
  obs::TraceSpan plan_span("search.plan");
  search_internal::JoinExpandLeg(
      index, query.r2, query.e3, ws->norm_scratch,
      /*grounded_is_object=*/query.e2_is_subject, support_valid, topk.batch,
      ws, &ws->leg_acc);
  ws->leg_acc.ExtractRanked(std::max(0, query.max_join_entities),
                            &ws->binding_list);
  plan_span.End();

  // Leg 1: expand each binding through R1 toward e1. Per-binding
  // evidence sums are completed before the multiplicative chaining so
  // the doubles match the reference's map-then-multiply exactly.
  // Bindings are grounded entities with no text form, so every
  // unsupported run dies on the entity check alone.
  {
    obs::TraceSpan score_span("search.score");
    for (const auto& [e2, e2_score] : ws->binding_list) {
      search_internal::JoinExpandLeg(
          index, query.r1, e2, /*grounded_text=*/{},
          /*grounded_is_object=*/query.e1_is_subject, support_valid,
          topk.batch, ws, &ws->leg_acc);
      const double binding_score = e2_score;
      ws->leg_acc.ForEach([&](EntityId e1, double evidence) {
        // Multiplicative chaining: weak join bindings contribute less.
        ws->AddEntity(/*table=*/0, e1, /*raw=*/{},
                      evidence * binding_score);
      });
    }
  }
  ws->query_stats.stopped_early =
      ws->query_stats.tables_scored < ws->query_stats.tables_planned;
  search_internal::RecordQueryStatsMetrics(ws->query_stats);
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
