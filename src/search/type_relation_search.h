#ifndef WEBTAB_SEARCH_TYPE_RELATION_SEARCH_H_
#define WEBTAB_SEARCH_TYPE_RELATION_SEARCH_H_

#include <vector>

#include "search/corpus_view.h"
#include "search/query.h"
#include "search/search_workspace.h"

namespace webtab {

/// Figure 4: the fully hardened engine. Locates column pairs annotated
/// with relation R (direction-aware), reads E2 from the object column by
/// entity annotation (text fallback per Figure 4 line 7), and collects
/// the subject column's answers, aggregating evidence per entity.
std::vector<SearchResult> TypeRelationSearch(const CorpusView& index,
                                             const SelectQuery& query);
/// Pre-normalized variant (cache key and engine share one tokenization).
std::vector<SearchResult> TypeRelationSearch(
    const CorpusView& index, const SelectQuery& query,
    const NormalizedSelectQuery& normalized);
/// Kernel form: reusable workspace, results into `out`, top-k pruning.
void TypeRelationSearch(const CorpusView& index, const SelectQuery& query,
                        const NormalizedSelectQuery& normalized,
                        const TopKOptions& topk, SearchWorkspace* workspace,
                        std::vector<SearchResult>* out);

}  // namespace webtab

#endif  // WEBTAB_SEARCH_TYPE_RELATION_SEARCH_H_
