#include "search/type_relation_search.h"

#include "search/select_kernel.h"

namespace webtab {

std::vector<SearchResult> TypeRelationSearch(const CorpusView& index,
                                             const SelectQuery& query) {
  // Normalize E2's string form once (not per cell comparison).
  return TypeRelationSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> TypeRelationSearch(
    const CorpusView& index, const SelectQuery& query,
    const NormalizedSelectQuery& nq) {
  std::vector<SearchResult> out;
  TypeRelationSearch(index, query, nq, TopKOptions{},
             &ThreadLocalSearchWorkspace(), &out);
  return out;
}

void TypeRelationSearch(const CorpusView& index, const SelectQuery& query,
                        const NormalizedSelectQuery& nq,
                        const TopKOptions& topk, SearchWorkspace* ws,
                        std::vector<SearchResult>* out) {
  using search_internal::PlannedTable;
  using search_internal::PostingCursor;
  using search_internal::PostingRunCounter;
  using search_internal::ScreenCond;

  ws->BeginSelect(nq.e2_text);
  const bool prune = topk.k > 0 && topk.prune;
  // See type_search.cc: entity postings bound the annotated E2 hits,
  // the cell-token support set bounds where text fallback can fire.
  const bool support_valid =
      (prune || topk.batch) && ws->BuildMatchSupport(index);
  const bool refine = prune && support_valid;
  const bool e2_present = query.e2 != kNa;
  const std::span<const CellRef> e2_postings =
      e2_present ? index.EntityPostings(query.e2)
                 : std::span<const CellRef>();
  const PostingBlockSpan e2_blocks = e2_present
                                         ? index.EntityPostingBlocks(query.e2)
                                         : PostingBlockSpan();

  // Plan: group the relation's table-sorted postings into per-table
  // runs (a_begin/a_end index the postings span itself).
  obs::TraceSpan plan_span("search.plan");
  std::span<const RelationRef> postings =
      index.RelationPostings(query.relation);
  ws->plan.clear();
  PostingCursor<RelationRef> cursor(postings);
  while (!cursor.done()) {
    PlannedTable p;
    p.table = cursor.table();
    std::span<const RelationRef> run = cursor.TakeRun();
    p.a_begin = static_cast<uint32_t>(run.data() - postings.data());
    p.a_end = p.a_begin + static_cast<uint32_t>(run.size());
    ws->plan.push_back(p);
  }
  plan_span.End();

  // Max row_score is 1.2; one answer can gain it once per (row,
  // annotated pair) of the table. Refined: per pair at most the object
  // column's E2-annotated cell count (1.2 each) plus, only when that
  // object column can text-match the target, rows text fallbacks
  // (0.7). Shared by the scalar loop and the batched screen's survivor
  // pass.
  auto refined_bound = [&](const PlannedTable& p,
                           PostingRunCounter<CellRef>* e2_runs) {
    const double rows = index.rows(p.table);
    const double runs = p.a_end - p.a_begin;
    double bound = rows * 1.2 * runs;
    double refined = 0.0;
    for (uint32_t ri = p.a_begin; ri < p.a_end; ++ri) {
      const RelationRef& ref = postings[ri];
      const int object_col = ref.swapped ? ref.c1 : ref.c2;
      // Only E2 annotations in this pair's object column count.
      refined += 1.2 * e2_runs->CountAtCol(p.table, object_col);
      if (ws->ColumnHasMatchSupport(p.table, object_col)) {
        refined += 0.7 * rows;
      }
    }
    return std::min(bound, refined);
  };
  auto fill_bounds = [&] {
    if (!refine) {
      for (PlannedTable& p : ws->plan) {
        const double rows = index.rows(p.table);
        const double runs = p.a_end - p.a_begin;
        p.bound = rows * 1.2 * runs;
      }
      return;
    }
    if (topk.batch) {
      ws->EnsureFilterClasses();
      static constexpr ScreenCond kKinds[] = {ScreenCond::kEntityRun,
                                              ScreenCond::kTableSupport};
      search_internal::BatchedBoundFill(ws,
                                        ws->filter_class_type_relation,
                                        kKinds, e2_postings, e2_blocks,
                                        refined_bound);
      return;
    }
    PostingRunCounter<CellRef> e2_runs(e2_postings, e2_blocks);
    for (PlannedTable& p : ws->plan) p.bound = refined_bound(p, &e2_runs);
  };

  auto scalar_score = [&](const PlannedTable& p) {
    for (uint32_t ri = p.a_begin; ri < p.a_end; ++ri) {
      const RelationRef& ref = postings[ri];
      // Subject column holds E1 (answers); object column holds E2.
      int subject_col = ref.swapped ? ref.c2 : ref.c1;
      int object_col = ref.swapped ? ref.c1 : ref.c2;
      const int num_rows = index.rows(ref.table);
      for (int r = 0; r < num_rows; ++r) {
        double row_score = 0.0;
        EntityId obj = index.CellEntity(ref.table, r, object_col);
        if (query.e2 != kNa && obj == query.e2) {
          row_score = 1.2;  // Relation + entity annotated: strongest.
        } else if (ws->CellMatches(
                       index.cell(ref.table, r, object_col))) {
          row_score = 0.7;
        }
        if (row_score <= 0.0) continue;
        EntityId answer = index.CellEntity(ref.table, r, subject_col);
        if (answer != kNa) {
          ws->AddEntity(ref.table, answer,
                        index.cell(ref.table, r, subject_col), row_score);
        } else {
          ws->AddText(ref.table, index.cell(ref.table, r, subject_col),
                      row_score * 0.8);
        }
      }
    }
  };

  // Lazy verdict counter: scored tables arrive in ascending order, so
  // one forward counter serves every FillRelationVerdicts call.
  PostingRunCounter<CellRef> verdict_runs{e2_postings, e2_blocks};
  auto batch_score = [&](const PlannedTable& p) {
    search_internal::FillRelationVerdicts(ws, p, postings, &verdict_runs,
                                          e2_present, support_valid);
    exec::ScoreBatch& batch = ws->batch;
    ws->EnsureGatherCapacity(1);
    for (uint32_t ri = p.a_begin; ri < p.a_end; ++ri) {
      const bool has_entity = ws->lane_has_entity.Test(ri);
      const bool has_support = ws->lane_has_support.Test(ri);
      if (!has_entity && !has_support) continue;  // proven no-op pair
      const RelationRef& ref = postings[ri];
      int subject_col = ref.swapped ? ref.c2 : ref.c1;
      int object_col = ref.swapped ? ref.c1 : ref.c2;
      const int num_rows = index.rows(ref.table);
      for (int rb = 0; rb < num_rows;
           rb += static_cast<int>(exec::kBatchSize)) {
        const int n =
            std::min(static_cast<int>(exec::kBatchSize), num_rows - rb);
        index.GatherColumn(ref.table, object_col, rb, n,
                           has_entity ? batch.entity.data() : nullptr,
                           has_support ? batch.text.data() : nullptr);
        uint32_t* tids = batch.active.mutable_data();
        uint32_t m = 0;
        if (has_entity && has_support) {
          for (int i = 0; i < n; ++i) {
            double rs = 0.0;
            if (batch.entity[i] == query.e2) {
              rs = 1.2;  // Relation + entity annotated: strongest.
            } else if (ws->CellMatches(batch.text[i])) {
              rs = 0.7;
            }
            tids[m] = static_cast<uint32_t>(i);
            batch.score[m] = rs;
            m += static_cast<uint32_t>(rs > 0.0);
          }
        } else if (has_entity) {
          for (int i = 0; i < n; ++i) {
            tids[m] = static_cast<uint32_t>(i);
            batch.score[m] = 1.2;
            m += static_cast<uint32_t>(batch.entity[i] == query.e2);
          }
        } else {
          for (int i = 0; i < n; ++i) {
            tids[m] = static_cast<uint32_t>(i);
            batch.score[m] = 0.7;
            m += static_cast<uint32_t>(ws->CellMatches(batch.text[i]));
          }
        }
        batch.active.SetSize(m);
        if (batch.active.empty()) continue;
        index.GatherColumn(ref.table, subject_col, rb, n,
                           ws->gather_entities.data(),
                           ws->gather_cells.data());
        for (uint32_t j = 0; j < m; ++j) {
          const uint32_t i = batch.active[j];
          const double rs = batch.score[j];
          EntityId answer = ws->gather_entities[i];
          if (answer != kNa) {
            ws->AddEntity(ref.table, answer, ws->gather_cells[i], rs);
          } else {
            ws->AddText(ref.table, ws->gather_cells[i], rs * 0.8);
          }
        }
      }
    }
  };

  if (topk.batch) {
    search_internal::PrepareVerdictLanes(ws, postings.size());
    search_internal::RunPlannedTables(ws, topk, fill_bounds, batch_score);
  } else {
    search_internal::RunPlannedTables(ws, topk, fill_bounds, scalar_score);
  }
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
