#include "search/type_relation_search.h"

#include "search/engine_util.h"

namespace webtab {

std::vector<SearchResult> TypeRelationSearch(const CorpusIndex& index,
                                             const SelectQuery& query) {
  using search_internal::CellMatchesText;
  using search_internal::EvidenceAggregator;

  EvidenceAggregator agg;
  for (const auto& ref : index.RelationPostings(query.relation)) {
    const AnnotatedTable& at = index.table(ref.table);
    const Table& table = at.table;
    // Subject column holds E1 (answers); object column holds E2.
    int subject_col = ref.swapped ? ref.c2 : ref.c1;
    int object_col = ref.swapped ? ref.c1 : ref.c2;
    for (int r = 0; r < table.rows(); ++r) {
      double row_score = 0.0;
      EntityId obj = at.annotation.EntityOf(r, object_col);
      if (query.e2 != kNa && obj == query.e2) {
        row_score = 1.2;  // Relation + entity annotated: strongest signal.
      } else if (CellMatchesText(table.cell(r, object_col),
                                 query.e2_text)) {
        row_score = 0.7;
      }
      if (row_score <= 0.0) continue;
      EntityId answer = at.annotation.EntityOf(r, subject_col);
      if (answer != kNa) {
        agg.AddEntity(answer, table.cell(r, subject_col), row_score);
      } else {
        agg.AddText(table.cell(r, subject_col), row_score * 0.8);
      }
    }
  }
  return agg.Ranked();
}

}  // namespace webtab
