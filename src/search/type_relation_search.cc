#include "search/type_relation_search.h"

#include "search/engine_util.h"

namespace webtab {

std::vector<SearchResult> TypeRelationSearch(const CorpusView& index,
                                             const SelectQuery& query) {
  // Normalize E2's string form once (not per cell comparison).
  return TypeRelationSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> TypeRelationSearch(
    const CorpusView& index, const SelectQuery& query,
    const NormalizedSelectQuery& nq) {
  using search_internal::CellMatchesText;
  using search_internal::EvidenceAggregator;

  EvidenceAggregator agg;
  for (const RelationRef& ref : index.RelationPostings(query.relation)) {
    // Subject column holds E1 (answers); object column holds E2.
    int subject_col = ref.swapped ? ref.c2 : ref.c1;
    int object_col = ref.swapped ? ref.c1 : ref.c2;
    const int num_rows = index.rows(ref.table);
    for (int r = 0; r < num_rows; ++r) {
      double row_score = 0.0;
      EntityId obj = index.CellEntity(ref.table, r, object_col);
      if (query.e2 != kNa && obj == query.e2) {
        row_score = 1.2;  // Relation + entity annotated: strongest signal.
      } else if (CellMatchesText(index.cell(ref.table, r, object_col),
                                 nq.e2_text)) {
        row_score = 0.7;
      }
      if (row_score <= 0.0) continue;
      EntityId answer = index.CellEntity(ref.table, r, subject_col);
      if (answer != kNa) {
        agg.AddEntity(answer, index.cell(ref.table, r, subject_col),
                      row_score);
      } else {
        agg.AddText(index.cell(ref.table, r, subject_col), row_score * 0.8);
      }
    }
  }
  return agg.Ranked();
}

}  // namespace webtab
