#include "search/type_relation_search.h"

#include "search/select_kernel.h"

namespace webtab {

std::vector<SearchResult> TypeRelationSearch(const CorpusView& index,
                                             const SelectQuery& query) {
  // Normalize E2's string form once (not per cell comparison).
  return TypeRelationSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> TypeRelationSearch(
    const CorpusView& index, const SelectQuery& query,
    const NormalizedSelectQuery& nq) {
  std::vector<SearchResult> out;
  TypeRelationSearch(index, query, nq, TopKOptions{},
             &ThreadLocalSearchWorkspace(), &out);
  return out;
}

void TypeRelationSearch(const CorpusView& index, const SelectQuery& query,
                        const NormalizedSelectQuery& nq,
                        const TopKOptions& topk, SearchWorkspace* ws,
                        std::vector<SearchResult>* out) {
  using search_internal::PlannedTable;
  using search_internal::PostingCursor;
  using search_internal::PostingRunCounter;

  ws->BeginSelect(nq.e2_text);
  // See type_search.cc: entity postings bound the annotated E2 hits,
  // the cell-token support set bounds where text fallback can fire.
  const bool refine =
      topk.k > 0 && topk.prune && ws->BuildMatchSupport(index);
  PostingRunCounter<CellRef> e2_runs(
      query.e2 != kNa ? index.EntityPostings(query.e2)
                      : std::span<const CellRef>(),
      query.e2 != kNa ? index.EntityPostingBlocks(query.e2)
                      : PostingBlockSpan());

  // Plan: group the relation's table-sorted postings into per-table
  // runs (a_begin/a_end index the postings span itself).
  obs::TraceSpan plan_span("search.plan");
  std::span<const RelationRef> postings =
      index.RelationPostings(query.relation);
  ws->plan.clear();
  PostingCursor<RelationRef> cursor(postings);
  while (!cursor.done()) {
    PlannedTable p;
    p.table = cursor.table();
    std::span<const RelationRef> run = cursor.TakeRun();
    p.a_begin = static_cast<uint32_t>(run.data() - postings.data());
    p.a_end = p.a_begin + static_cast<uint32_t>(run.size());
    ws->plan.push_back(p);
  }
  plan_span.End();
  search_internal::RunPlannedTables(
      ws, topk,
      // Max row_score is 1.2; one answer can gain it once per (row,
      // annotated pair) of the table. Refined: per pair at most the
      // object column's E2-annotated cell count (1.2 each) plus, only
      // when that object column can text-match the target, rows text
      // fallbacks (0.7).
      [&](const PlannedTable& p) {
        const double rows = index.rows(p.table);
        const double runs = p.a_end - p.a_begin;
        double bound = rows * 1.2 * runs;
        if (refine) {
          double refined = 0.0;
          for (uint32_t ri = p.a_begin; ri < p.a_end; ++ri) {
            const RelationRef& ref = postings[ri];
            const int object_col = ref.swapped ? ref.c1 : ref.c2;
            // Only E2 annotations in this pair's object column count.
            refined += 1.2 * e2_runs.CountAtCol(p.table, object_col);
            if (ws->ColumnHasMatchSupport(p.table, object_col)) {
              refined += 0.7 * rows;
            }
          }
          bound = std::min(bound, refined);
        }
        return bound;
      },
      [&](const PlannedTable& p) {
        for (uint32_t ri = p.a_begin; ri < p.a_end; ++ri) {
          const RelationRef& ref = postings[ri];
          // Subject column holds E1 (answers); object column holds E2.
          int subject_col = ref.swapped ? ref.c2 : ref.c1;
          int object_col = ref.swapped ? ref.c1 : ref.c2;
          const int num_rows = index.rows(ref.table);
          for (int r = 0; r < num_rows; ++r) {
            double row_score = 0.0;
            EntityId obj = index.CellEntity(ref.table, r, object_col);
            if (query.e2 != kNa && obj == query.e2) {
              row_score = 1.2;  // Relation + entity annotated: strongest.
            } else if (ws->CellMatches(
                           index.cell(ref.table, r, object_col))) {
              row_score = 0.7;
            }
            if (row_score <= 0.0) continue;
            EntityId answer = index.CellEntity(ref.table, r, subject_col);
            if (answer != kNa) {
              ws->AddEntity(ref.table, answer,
                            index.cell(ref.table, r, subject_col),
                            row_score);
            } else {
              ws->AddText(ref.table,
                          index.cell(ref.table, r, subject_col),
                          row_score * 0.8);
            }
          }
        }
      });
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
