#include "search/search_workspace.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "obs/trace.h"
#include "text/tokenizer.h"

namespace webtab {
namespace search_internal {

namespace {

/// splitmix64 finalizer: integer keys (entity ids).
inline uint64_t HashInt(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a: byte keys (normalized text, cell strings).
inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr size_t kMinCapacity = 64;

inline size_t GrownCapacity(size_t current) {
  return current == 0 ? kMinCapacity : current * 2;
}

}  // namespace

// --- EntityAccumulator ----------------------------------------------------

void EntityAccumulator::Begin() {
  ++epoch_;
  touched_.clear();
}

void EntityAccumulator::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(GrownCapacity(old.size()), Slot{});
  const size_t mask = slots_.size() - 1;
  for (uint32_t& idx : touched_) {
    const Slot& s = old[idx];
    size_t i = HashInt(static_cast<uint64_t>(s.entity)) & mask;
    while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
    slots_[i] = s;
    idx = static_cast<uint32_t>(i);
  }
}

double& EntityAccumulator::Add(EntityId e) {
  if (slots_.empty() || (touched_.size() + 1) * 4 > slots_.size() * 3) {
    Grow();
  }
  const size_t mask = slots_.size() - 1;
  size_t i = HashInt(static_cast<uint64_t>(e)) & mask;
  while (slots_[i].epoch == epoch_) {
    if (slots_[i].entity == e) return slots_[i].score;
    i = (i + 1) & mask;
  }
  Slot& slot = slots_[i];
  slot.epoch = epoch_;
  slot.entity = e;
  slot.score = 0.0;
  touched_.push_back(static_cast<uint32_t>(i));
  return slot.score;
}

void EntityAccumulator::ExtractRanked(
    int limit, std::vector<std::pair<EntityId, double>>* out) const {
  out->clear();
  for (uint32_t i : touched_) {
    out->emplace_back(slots_[i].entity, slots_[i].score);
  }
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (limit >= 0 && out->size() > static_cast<size_t>(limit)) {
    out->resize(limit);
  }
}

// --- EvidenceMap ----------------------------------------------------------

void EvidenceMap::Begin() {
  ++epoch_;
  touched_.clear();
  arena_.clear();
  max_score_ = 0.0;
}

void EvidenceMap::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(GrownCapacity(old.size()), Slot{});
  const size_t mask = slots_.size() - 1;
  for (uint32_t& idx : touched_) {
    const Slot& s = old[idx];
    size_t i = s.hash & mask;
    while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
    slots_[i] = s;
    idx = static_cast<uint32_t>(i);
  }
}

EvidenceMap::Slot& EvidenceMap::FindOrInsert(uint64_t hash, EntityId entity,
                                             std::string_view text_key) {
  if (slots_.empty() || (touched_.size() + 1) * 4 > slots_.size() * 3) {
    Grow();
  }
  const size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (slots_[i].epoch == epoch_) {
    Slot& s = slots_[i];
    if (s.hash == hash && s.entity == entity &&
        (entity != kNa || KeyOf(s) == text_key)) {
      return s;
    }
    i = (i + 1) & mask;
  }
  Slot& slot = slots_[i];
  slot.epoch = epoch_;
  slot.hash = hash;
  slot.entity = entity;
  slot.key_off = static_cast<uint32_t>(arena_.size());
  slot.key_len = static_cast<uint32_t>(text_key.size());
  arena_.append(text_key);
  slot.disp_off = slot.disp_len = 0;
  slot.disp_table = 0;
  slot.score = 0.0;
  touched_.push_back(static_cast<uint32_t>(i));
  return slot;
}

void EvidenceMap::MaybeTakeDisplay(Slot* slot, int32_t table,
                                   std::string_view raw) {
  // The display string is the first non-empty raw form in ascending
  // table order — identical to the reference aggregator's "first
  // non-empty seen" under its ascending scan, but stable under any
  // processing order. Within one table the first occurrence wins
  // (strictly-lower replaces only).
  if (raw.empty()) return;
  if (slot->disp_len != 0 && table >= slot->disp_table) return;
  slot->disp_off = static_cast<uint32_t>(arena_.size());
  slot->disp_len = static_cast<uint32_t>(raw.size());
  slot->disp_table = table;
  arena_.append(raw);
}

void EvidenceMap::AddEntity(int32_t table, EntityId e,
                            std::string_view raw_text, double score) {
  Slot& slot = FindOrInsert(HashInt(static_cast<uint64_t>(e)), e, {});
  MaybeTakeDisplay(&slot, table, raw_text);
  slot.score += score;
  if (slot.score > max_score_) max_score_ = slot.score;
}

void EvidenceMap::AddText(int32_t table, std::string_view normalized,
                          std::string_view raw, double score) {
  if (normalized.empty()) return;
  Slot& slot = FindOrInsert(HashBytes(normalized), kNa, normalized);
  MaybeTakeDisplay(&slot, table, raw);
  slot.score += score;
  if (slot.score > max_score_) max_score_ = slot.score;
}

void EvidenceMap::EmitRanked(int k, std::vector<SearchResult>* out) {
  order_.assign(touched_.begin(), touched_.end());
  // The documented ranking convention, shared with PR 4's LemmaHit
  // ordering: score desc, then ascending id (kNa text answers first),
  // then display text asc. Distinct slots always differ on one of the
  // three (equal displays imply equal normalized keys imply one slot),
  // so the order is total and deterministic.
  auto cmp = [this](uint32_t ia, uint32_t ib) {
    const Slot& a = slots_[ia];
    const Slot& b = slots_[ib];
    if (a.score != b.score) return a.score > b.score;
    if (a.entity != b.entity) return a.entity < b.entity;
    return DisplayOf(a) < DisplayOf(b);
  };
  size_t n = order_.size();
  if (k > 0 && static_cast<size_t>(k) < n) {
    std::partial_sort(order_.begin(), order_.begin() + k, order_.end(),
                      cmp);
    n = static_cast<size_t>(k);
  } else {
    std::sort(order_.begin(), order_.end(), cmp);
  }
  // Resize `out` without destroying string capacity: surplus element
  // strings park in the spare pool, and new elements pull from it —
  // across repeated queries every buffer converges to its peak size
  // and emission stops allocating.
  while (out->size() > n) {
    spare_strings_.push_back(std::move(out->back().text));
    out->pop_back();
  }
  while (out->size() < n) {
    SearchResult r;
    if (!spare_strings_.empty()) {
      r.text = std::move(spare_strings_.back());
      spare_strings_.pop_back();
    }
    out->push_back(std::move(r));
  }
  for (size_t i = 0; i < n; ++i) {
    const Slot& s = slots_[order_[i]];
    SearchResult& r = (*out)[i];
    r.entity = s.entity;
    std::string_view display = DisplayOf(s);
    r.text.assign(display.data(), display.size());
    r.score = s.score;
  }
}

void EvidenceMap::CopyScores(std::vector<double>* scratch) const {
  scratch->clear();
  for (uint32_t i : touched_) scratch->push_back(slots_[i].score);
}

// --- TextMatchMemo --------------------------------------------------------

void TextMatchMemo::SetTarget(std::string_view normalized_target) {
  ++epoch_;
  used_ = 0;
  target_.assign(normalized_target);
  size_t n = TokenizeInto(target_, &target_tokens_);
  std::sort(target_tokens_.begin(), target_tokens_.begin() + n);
  auto end = std::unique(target_tokens_.begin(), target_tokens_.begin() + n);
  target_token_count_ =
      static_cast<size_t>(end - target_tokens_.begin());
}

void TextMatchMemo::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(GrownCapacity(old.size()), Slot{});
  const size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.epoch != epoch_) continue;
    size_t i = s.hash & mask;
    while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

bool TextMatchMemo::Matches(std::string_view cell) {
  if (slots_.empty() || (used_ + 1) * 4 > slots_.size() * 3) Grow();
  const uint64_t hash = HashBytes(cell);
  const size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (slots_[i].epoch == epoch_) {
    const Slot& s = slots_[i];
    if (s.hash == hash && s.len == cell.size() &&
        (s.ptr == cell.data() ||
         std::memcmp(s.ptr, cell.data(), cell.size()) == 0)) {
      return s.value;
    }
    i = (i + 1) & mask;
  }
  Slot& slot = slots_[i];
  slot.epoch = epoch_;
  slot.hash = hash;
  slot.ptr = cell.data();
  slot.len = static_cast<uint32_t>(cell.size());
  slot.value = Compute(cell);
  ++used_;
  return slot.value;
}

bool TextMatchMemo::Compute(std::string_view cell) {
  // Bit-identical to engine_util.h's CellMatchesText(cell, target_):
  // exact normalized match, else token-set Jaccard >= 0.5 — same
  // normalization, same distinct-token counts, same double division.
  NormalizeTextInto(cell, &norm_);
  if (norm_ == target_) return true;
  size_t n = TokenizeInto(norm_, &tokens_);
  std::sort(tokens_.begin(), tokens_.begin() + n);
  auto end = std::unique(tokens_.begin(), tokens_.begin() + n);
  const size_t na = static_cast<size_t>(end - tokens_.begin());
  const size_t nb = target_token_count_;
  if (na == 0 || nb == 0) {
    // Jaccard defines empty/empty as 1.0, but that case is exact-equal
    // and already returned above; one-sided empty is 0.0.
    return false;
  }
  size_t inter = 0, ia = 0, ib = 0;
  while (ia < na && ib < nb) {
    int c = tokens_[ia].compare(target_tokens_[ib]);
    if (c < 0) {
      ++ia;
    } else if (c > 0) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  const size_t uni = na + nb - inter;
  return static_cast<double>(inter) / static_cast<double>(uni) >= 0.5;
}

}  // namespace search_internal

// --- SearchWorkspace ------------------------------------------------------

void SearchWorkspace::BeginSelect(std::string_view normalized_e2) {
  evidence_.Begin();
  memo_.SetTarget(normalized_e2);
  query_stats = QueryStats{};
  decision_log.clear();
  filter_log.clear();
  shard_log.clear();
  decision_bounds_valid = false;
  stop_check_skip_ = 0;
  stop_check_backoff_ = 1;
  // Recording state is deliberately untouched: the inline shard protocol
  // re-enters engines (and thus BeginSelect) between the plan and score
  // passes and brackets recording explicitly via Begin/EndRecording.
}

void SearchWorkspace::AddText(int32_t table, std::string_view raw,
                              double score) {
  NormalizeTextInto(raw, &text_key_scratch_);
  if (recording_) {
    // EvidenceMap::AddText drops empty normalized keys; skipping the
    // record here is equivalent (replay would drop it too) and cheaper.
    if (text_key_scratch_.empty()) return;
    EmitRecord r;
    r.table = table;
    r.entity = kNa;
    r.raw = raw.data();
    r.raw_len = static_cast<uint32_t>(raw.size());
    r.key_off = static_cast<uint32_t>(emit_keys.size());
    r.key_len = static_cast<uint32_t>(text_key_scratch_.size());
    r.score = score;
    emit_keys.append(text_key_scratch_);
    emit_records.push_back(r);
    return;
  }
  evidence_.AddText(table, text_key_scratch_, raw, score);
}

void SearchWorkspace::ReplayRecordsFrom(const SearchWorkspace& shard,
                                        uint32_t begin, uint32_t end) {
  for (uint32_t i = begin; i < end; ++i) {
    const EmitRecord& r = shard.emit_records[i];
    const std::string_view raw =
        r.raw_len != 0 ? std::string_view(r.raw, r.raw_len)
                       : std::string_view();
    if (r.entity != kNa) {
      evidence_.AddEntity(r.table, r.entity, raw, r.score);
    } else {
      evidence_.AddText(
          r.table, {shard.emit_keys.data() + r.key_off, r.key_len}, raw,
          r.score);
    }
  }
}

bool SearchWorkspace::BuildMatchSupport(const CorpusView& corpus) {
  obs::TraceSpan span("search.match_support");
  support_cols.clear();
  if (!corpus.HasMatchSupport()) return false;
  std::span<const std::string> tokens = memo_.TargetTokens();
  // A zero-token target normalizes to "", which only exact-matches
  // cells that also normalize to "" — exactly the columns the index
  // records under the empty-token sentinel row.
  if (tokens.empty()) {
    for (const CellTokenRef& r :
         corpus.CellTokenPostings(std::string_view())) {
      support_cols.push_back(ColumnRef{r.table, r.col});
    }
    return true;
  }
  support_scratch.clear();
  for (const std::string& token : tokens) {
    const uint64_t mask = CellTokenMask(token);
    for (const CellTokenRef& r : corpus.CellTokenPostings(token)) {
      support_scratch.push_back(
          SupportEntry{r.table, r.col, r.min_tokens, mask, r.cooc});
    }
  }
  std::sort(support_scratch.begin(), support_scratch.end(),
            [](const SupportEntry& a, const SupportEntry& b) {
              if (a.table != b.table) return a.table < b.table;
              return a.col < b.col;
            });
  // Necessary match condition. Jaccard >= 0.5 against nb distinct
  // target tokens means 3*inter >= na + nb for some cell with na
  // distinct tokens sharing inter of them; an exact normalized match
  // shares all nb. Two feasible shapes:
  //   - inter == 1: forces na <= 3 - nb, so only nb <= 2 and only
  //     against a single-token cell (min_tokens refutes it — a
  //     two-token person name can single-token-match a surname-only
  //     cell, never a different full name sharing a given name);
  //   - inter >= 2: the cell holds >= ceil(nb / 2) >= 2 target tokens
  //     *together*, so the column must list >= ceil(nb / 2) target
  //     tokens AND some pair of them must share a cell, which the
  //     mutual co-occurrence blooms check (false positives only).
  // Column granularity keeps pool-collision tokens in *other* columns
  // of a table from keeping its E2-side columns alive.
  const size_t nb = tokens.size();
  const size_t multi = std::max<size_t>(2, (nb + 1) / 2);
  const size_t n = support_scratch.size();
  for (size_t i = 0; i < n;) {
    size_t j = i;
    int32_t best = support_scratch[i].min_tokens;
    while (j < n && support_scratch[j].table == support_scratch[i].table &&
           support_scratch[j].col == support_scratch[i].col) {
      best = std::min(best, support_scratch[j].min_tokens);
      ++j;
    }
    bool alive = nb <= 2 && static_cast<size_t>(best) + nb <= 3;
    // A multi-token match cell shares some inter >= max(2, ceil(nb/2))
    // target tokens, all pairwise sharing that cell, with distinct size
    // na <= 3*inter - nb and na >= min_tokens of every shared token. So
    // the column must hold an `inter`-sized subset of its target tokens
    // that forms a mutual co-occurrence clique under the blooms, every
    // member's min cell size within the cap. Enumerating subsets is
    // cheap (group size <= nb); a pair-only test is too weak — e.g. a
    // 4-token target needs 3 tokens in one cell, and columns holding
    // (klee, i) together but l elsewhere must die.
    const size_t g = j - i;
    if (!alive && g >= multi && g > 12) {
      alive = true;  // Absurdly long target: skip the 2^g scan, sound.
    }
    if (!alive && g >= multi && g <= 12) {
      for (size_t inter = multi; inter <= g && !alive; ++inter) {
        const int32_t cap = static_cast<int32_t>(3 * inter - nb);
        for (uint32_t bits = 0; bits < (1u << g) && !alive; ++bits) {
          if (static_cast<size_t>(std::popcount(bits)) != inter) continue;
          bool ok = true;
          for (size_t x = 0; x < g && ok; ++x) {
            if (!(bits >> x & 1u)) continue;
            if (support_scratch[i + x].min_tokens > cap) {
              ok = false;
              break;
            }
            for (size_t y = x + 1; y < g && ok; ++y) {
              if (!(bits >> y & 1u)) continue;
              const uint64_t bx = support_scratch[i + x].bit;
              const uint64_t by = support_scratch[i + y].bit;
              ok = (support_scratch[i + x].cooc & by) == by &&
                   (support_scratch[i + y].cooc & bx) == bx;
            }
          }
          alive = ok;
        }
      }
    }
    if (alive) {
      support_cols.push_back(
          ColumnRef{support_scratch[i].table, support_scratch[i].col});
    }
    i = j;
  }
  return true;
}

bool SearchWorkspace::ShouldStop(int k, double remaining) {
  if (k <= 0 || remaining <= 0.0) return false;
  if (evidence_.size() <= static_cast<size_t>(k)) return false;
  // Cheap trigger: every adjacent gap is bounded by the top score, so a
  // remaining mass at least that large can never satisfy the gap test.
  if (remaining >= evidence_.max_score()) return false;
  // The full gap test is O(answers); on flat score distributions it
  // can fail on every table, so failed attempts back off exponentially
  // — stopping is an optimization, never a correctness requirement.
  if (stop_check_skip_ > 0) {
    --stop_check_skip_;
    return false;
  }
  evidence_.CopyScores(&score_scratch_);
  const size_t m = static_cast<size_t>(k) + 1;
  std::partial_sort(score_scratch_.begin(), score_scratch_.begin() + m,
                    score_scratch_.end(), std::greater<double>());
  for (size_t i = 0; i + 1 < m; ++i) {
    if (score_scratch_[i] - score_scratch_[i + 1] <= remaining) {
      stop_check_skip_ = stop_check_backoff_;
      stop_check_backoff_ = std::min<int64_t>(stop_check_backoff_ * 2, 256);
      return false;
    }
  }
  query_stats.stopped_early = true;
  return true;
}

void SearchWorkspace::EmitRanked(const TopKOptions& topk,
                                 std::vector<SearchResult>* out) {
  obs::TraceSpan span("search.emit");
  evidence_.EmitRanked(topk.k, out);
}

void SearchWorkspace::EnsureFilterClasses() {
  if (filter_class_type >= 0) return;
  using ConditionDef = exec::FilterManager::ConditionDef;
  // Cost hints: the entity-run probe seeks a posting cursor (galloping
  // + a cached-run reuse), the support probe is one binary search over
  // the per-query support set. Measured pass rates refine the order
  // from there.
  const ConditionDef entity_and_support[] = {
      {"e2-entity-run", 2.0},
      {"match-support", 1.0},
  };
  const ConditionDef support_only[] = {
      {"match-support", 1.0},
  };
  filter_class_type = filters.RegisterClass("type", entity_and_support);
  filter_class_type_relation =
      filters.RegisterClass("type_relation", entity_and_support);
  filter_class_baseline = filters.RegisterClass("baseline", support_only);
}

SearchWorkspace& ThreadLocalSearchWorkspace() {
  static thread_local SearchWorkspace workspace;
  return workspace;
}

}  // namespace webtab
