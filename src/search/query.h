#ifndef WEBTAB_SEARCH_QUERY_H_
#define WEBTAB_SEARCH_QUERY_H_

#include <string>
#include <vector>

#include "catalog/catalog_view.h"
#include "catalog/ids.h"
#include "common/status.h"

namespace webtab {

/// The §5 select-project query: given R, T1, T2 and a grounded E2 ∈+ T2,
/// return ranked E1 ∈+ T1 with R(E1, E2). The string form carries what a
/// no-annotation baseline sees; the ids carry the "hardened" query.
struct SelectQuery {
  RelationId relation = kNa;
  TypeId type1 = kNa;
  TypeId type2 = kNa;
  EntityId e2 = kNa;        // kNa when E2 is not in the catalog.
  std::string e2_text;      // Always present (string form of E2).
  // String forms for the baseline (Figure 3 "interpret all inputs as
  // strings").
  std::string relation_text;
  std::string type1_text;
  std::string type2_text;
};

/// One ranked answer. `entity` is resolved for annotation-aware engines;
/// the baseline returns raw strings (entity == kNa).
struct SearchResult {
  EntityId entity = kNa;
  std::string text;
  double score = 0.0;
};

struct JoinQuery;  // join_search.h

namespace search_internal {
struct ShardScan;  // shard_scan.h (scatter-gather kernel protocol)
}  // namespace search_internal

/// How much of the ranking a caller wants. Every engine accepts one:
///  - k <= 0: the full exact ranking (byte-identical to the retained
///    reference engines — same answers, same doubles, same order).
///  - k > 0, prune = false: the exact full ranking truncated to its
///    first k entries (still score-exact).
///  - k > 0, prune = true: the same top-k *prefix* (same answers in the
///    same order, under the documented (score desc, entity id asc, text
///    asc) tie-break), computed with safe early termination: the kernel
///    tracks a per-table upper bound on any single answer's remaining
///    evidence and stops scanning once no unscanned table can change the
///    prefix. Reported scores are the evidence accumulated up to the
///    proof point — exact lower bounds, not the full-rank totals — and
///    an *entity* answer's display text is resolved from scanned tables
///    only (it can be empty in the pathological case where the entity's
///    every scanned cell is blank; the ranking itself is unaffected,
///    since ties between distinct entities break on id before text).
struct TopKOptions {
  int k = 0;
  bool prune = true;
  /// Route scoring through the vectorized batch kernel (columnar bound
  /// screens over selection vectors + gathered-lane scoring sweeps).
  /// Bit-identical to the scalar path — same answers, same doubles,
  /// same order — which is retained as the equivalence reference and
  /// asserted against in search_equivalence_test / exec_batch_test.
  bool batch = true;
  /// Requested intra-query fan-out. 1 runs the classic sequential scan;
  /// N > 1 asks the scatter-gather executor (parallel_search.h) to split
  /// the corpus into N contiguous table-range shards and merge — the
  /// merged ranking is byte-identical to the sequential one for every
  /// k/prune/batch combination (determinism contract, asserted by
  /// parallel_search_test and in-bench). Engines themselves ignore the
  /// field; the serving layer clamps it to ServiceOptions::search_shards.
  int parallelism = 1;
  /// Internal scatter-gather hook: non-null only when the parallel
  /// executor invokes an engine as one shard of a partitioned scan.
  /// Callers leave it null.
  search_internal::ShardScan* shard = nullptr;
};

/// Validates catalog ids carried by a query against `catalog`: kNa means
/// "absent" and is always legal (engines fall back to text matching),
/// but any other out-of-range id returns kInvalidArgument naming the
/// field — the serving layer echoes this to clients instead of letting
/// snapshot accessors CHECK-fail on garbage ids.
Status ValidateSelectQuery(const SelectQuery& query,
                           const CatalogView& catalog);
Status ValidateJoinQuery(const JoinQuery& query, const CatalogView& catalog);

/// The query's string inputs pushed through the shared tokenizer exactly
/// once. Every engine consumes this (instead of re-tokenizing per probe),
/// and the serving result cache keys on the same normalization — so two
/// textual spellings that the engines cannot distinguish ("George
/// Clooney" / "george  clooney.") share one cache entry and one ranking.
struct NormalizedSelectQuery {
  std::vector<std::string> type1_tokens;
  std::vector<std::string> type2_tokens;
  std::vector<std::string> relation_tokens;
  /// NormalizeText(e2_text); normalization is idempotent, so feeding
  /// this back through the similarity measures gives bit-identical
  /// scores to the raw string.
  std::string e2_text;
};

NormalizedSelectQuery NormalizeSelectQuery(const SelectQuery& query);

/// Canonical, collision-resistant string key for result caching: ids plus
/// the normalized string forms, so the key distinguishes exactly what the
/// engines distinguish. Engine choice is NOT part of the key; prepend it.
/// The two-argument form reuses an existing normalization (one tokenizer
/// pass per request: key and engine share it).
std::string SelectQueryCacheKey(const SelectQuery& query);
std::string SelectQueryCacheKey(const SelectQuery& query,
                                const NormalizedSelectQuery& normalized);
std::string JoinQueryCacheKey(const JoinQuery& query);

}  // namespace webtab

#endif  // WEBTAB_SEARCH_QUERY_H_
