#ifndef WEBTAB_SEARCH_QUERY_H_
#define WEBTAB_SEARCH_QUERY_H_

#include <string>
#include <vector>

#include "catalog/ids.h"

namespace webtab {

/// The §5 select-project query: given R, T1, T2 and a grounded E2 ∈+ T2,
/// return ranked E1 ∈+ T1 with R(E1, E2). The string form carries what a
/// no-annotation baseline sees; the ids carry the "hardened" query.
struct SelectQuery {
  RelationId relation = kNa;
  TypeId type1 = kNa;
  TypeId type2 = kNa;
  EntityId e2 = kNa;        // kNa when E2 is not in the catalog.
  std::string e2_text;      // Always present (string form of E2).
  // String forms for the baseline (Figure 3 "interpret all inputs as
  // strings").
  std::string relation_text;
  std::string type1_text;
  std::string type2_text;
};

/// One ranked answer. `entity` is resolved for annotation-aware engines;
/// the baseline returns raw strings (entity == kNa).
struct SearchResult {
  EntityId entity = kNa;
  std::string text;
  double score = 0.0;
};

}  // namespace webtab

#endif  // WEBTAB_SEARCH_QUERY_H_
