#ifndef WEBTAB_SEARCH_QUERY_H_
#define WEBTAB_SEARCH_QUERY_H_

#include <string>
#include <vector>

#include "catalog/ids.h"

namespace webtab {

/// The §5 select-project query: given R, T1, T2 and a grounded E2 ∈+ T2,
/// return ranked E1 ∈+ T1 with R(E1, E2). The string form carries what a
/// no-annotation baseline sees; the ids carry the "hardened" query.
struct SelectQuery {
  RelationId relation = kNa;
  TypeId type1 = kNa;
  TypeId type2 = kNa;
  EntityId e2 = kNa;        // kNa when E2 is not in the catalog.
  std::string e2_text;      // Always present (string form of E2).
  // String forms for the baseline (Figure 3 "interpret all inputs as
  // strings").
  std::string relation_text;
  std::string type1_text;
  std::string type2_text;
};

/// One ranked answer. `entity` is resolved for annotation-aware engines;
/// the baseline returns raw strings (entity == kNa).
struct SearchResult {
  EntityId entity = kNa;
  std::string text;
  double score = 0.0;
};

struct JoinQuery;  // join_search.h

/// The query's string inputs pushed through the shared tokenizer exactly
/// once. Every engine consumes this (instead of re-tokenizing per probe),
/// and the serving result cache keys on the same normalization — so two
/// textual spellings that the engines cannot distinguish ("George
/// Clooney" / "george  clooney.") share one cache entry and one ranking.
struct NormalizedSelectQuery {
  std::vector<std::string> type1_tokens;
  std::vector<std::string> type2_tokens;
  std::vector<std::string> relation_tokens;
  /// NormalizeText(e2_text); normalization is idempotent, so feeding
  /// this back through the similarity measures gives bit-identical
  /// scores to the raw string.
  std::string e2_text;
};

NormalizedSelectQuery NormalizeSelectQuery(const SelectQuery& query);

/// Canonical, collision-resistant string key for result caching: ids plus
/// the normalized string forms, so the key distinguishes exactly what the
/// engines distinguish. Engine choice is NOT part of the key; prepend it.
/// The two-argument form reuses an existing normalization (one tokenizer
/// pass per request: key and engine share it).
std::string SelectQueryCacheKey(const SelectQuery& query);
std::string SelectQueryCacheKey(const SelectQuery& query,
                                const NormalizedSelectQuery& normalized);
std::string JoinQueryCacheKey(const JoinQuery& query);

}  // namespace webtab

#endif  // WEBTAB_SEARCH_QUERY_H_
