#include "search/query.h"

// SelectQuery and SearchResult are plain data; no out-of-line definitions
// needed. This translation unit anchors the module.
