#include "search/query.h"

#include "search/join_search.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {

void AppendTokens(std::string* out, const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) {
    *out += t;
    *out += ' ';
  }
}

}  // namespace

NormalizedSelectQuery NormalizeSelectQuery(const SelectQuery& query) {
  NormalizedSelectQuery out;
  out.type1_tokens = Tokenize(query.type1_text);
  out.type2_tokens = Tokenize(query.type2_text);
  out.relation_tokens = Tokenize(query.relation_text);
  out.e2_text = NormalizeText(query.e2_text);
  return out;
}

std::string SelectQueryCacheKey(const SelectQuery& query) {
  return SelectQueryCacheKey(query, NormalizeSelectQuery(query));
}

std::string SelectQueryCacheKey(const SelectQuery& query,
                                const NormalizedSelectQuery& nq) {
  std::string key = "sel|r=" + std::to_string(query.relation) +
                    "|t1=" + std::to_string(query.type1) +
                    "|t2=" + std::to_string(query.type2) +
                    "|e2=" + std::to_string(query.e2) + "|e2t=" +
                    nq.e2_text + "|rt=";
  AppendTokens(&key, nq.relation_tokens);
  key += "|t1t=";
  AppendTokens(&key, nq.type1_tokens);
  key += "|t2t=";
  AppendTokens(&key, nq.type2_tokens);
  return key;
}

namespace {

Status BadId(const char* field, const char* what, int32_t id) {
  return Status::InvalidArgument(std::string(field) + ": unknown " + what +
                                 " id " + std::to_string(id));
}

}  // namespace

Status ValidateSelectQuery(const SelectQuery& query,
                           const CatalogView& catalog) {
  if (query.relation != kNa && !catalog.ValidRelation(query.relation)) {
    return BadId("relation", "relation", query.relation);
  }
  if (query.type1 != kNa && !catalog.ValidType(query.type1)) {
    return BadId("type1", "type", query.type1);
  }
  if (query.type2 != kNa && !catalog.ValidType(query.type2)) {
    return BadId("type2", "type", query.type2);
  }
  if (query.e2 != kNa && !catalog.ValidEntity(query.e2)) {
    return BadId("e2", "entity", query.e2);
  }
  return Status::Ok();
}

Status ValidateJoinQuery(const JoinQuery& query,
                         const CatalogView& catalog) {
  if (query.r1 != kNa && !catalog.ValidRelation(query.r1)) {
    return BadId("r1", "relation", query.r1);
  }
  if (query.r2 != kNa && !catalog.ValidRelation(query.r2)) {
    return BadId("r2", "relation", query.r2);
  }
  if (query.e3 != kNa && !catalog.ValidEntity(query.e3)) {
    return BadId("e3", "entity", query.e3);
  }
  return Status::Ok();
}

std::string JoinQueryCacheKey(const JoinQuery& query) {
  return "join|r1=" + std::to_string(query.r1) +
         "|s1=" + std::to_string(query.e1_is_subject ? 1 : 0) +
         "|r2=" + std::to_string(query.r2) +
         "|s2=" + std::to_string(query.e2_is_subject ? 1 : 0) +
         "|e3=" + std::to_string(query.e3) + "|e3t=" +
         NormalizeText(query.e3_text) +
         "|k=" + std::to_string(query.max_join_entities);
}

}  // namespace webtab
