#include "search/query.h"

#include "search/join_search.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {

void AppendTokens(std::string* out, const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) {
    *out += t;
    *out += ' ';
  }
}

}  // namespace

NormalizedSelectQuery NormalizeSelectQuery(const SelectQuery& query) {
  NormalizedSelectQuery out;
  out.type1_tokens = Tokenize(query.type1_text);
  out.type2_tokens = Tokenize(query.type2_text);
  out.relation_tokens = Tokenize(query.relation_text);
  out.e2_text = NormalizeText(query.e2_text);
  return out;
}

std::string SelectQueryCacheKey(const SelectQuery& query) {
  return SelectQueryCacheKey(query, NormalizeSelectQuery(query));
}

std::string SelectQueryCacheKey(const SelectQuery& query,
                                const NormalizedSelectQuery& nq) {
  std::string key = "sel|r=" + std::to_string(query.relation) +
                    "|t1=" + std::to_string(query.type1) +
                    "|t2=" + std::to_string(query.type2) +
                    "|e2=" + std::to_string(query.e2) + "|e2t=" +
                    nq.e2_text + "|rt=";
  AppendTokens(&key, nq.relation_tokens);
  key += "|t1t=";
  AppendTokens(&key, nq.type1_tokens);
  key += "|t2t=";
  AppendTokens(&key, nq.type2_tokens);
  return key;
}

std::string JoinQueryCacheKey(const JoinQuery& query) {
  return "join|r1=" + std::to_string(query.r1) +
         "|s1=" + std::to_string(query.e1_is_subject ? 1 : 0) +
         "|r2=" + std::to_string(query.r2) +
         "|s2=" + std::to_string(query.e2_is_subject ? 1 : 0) +
         "|e3=" + std::to_string(query.e3) + "|e3t=" +
         NormalizeText(query.e3_text) +
         "|k=" + std::to_string(query.max_join_entities);
}

}  // namespace webtab
