#include "search/baseline_search.h"

#include <algorithm>

#include "search/select_kernel.h"

namespace webtab {

namespace {

/// Collects the union of one query side's header-token postings into
/// `side` (reused), sorted by (table, col) with duplicates removed —
/// the scratch replacement for the retired std::map<int, std::set<int>>
/// materialization. Each token's postings arrive table-sorted; the
/// union across tokens needs one sort of the combined (small) list.
void CollectHeaderSide(const CorpusView& index,
                       const std::vector<std::string>& tokens,
                       std::vector<ColumnRef>* side) {
  side->clear();
  for (const std::string& token : tokens) {
    std::span<const ColumnRef> postings = index.HeaderPostings(token);
    side->insert(side->end(), postings.begin(), postings.end());
  }
  std::sort(side->begin(), side->end(),
            [](const ColumnRef& a, const ColumnRef& b) {
              if (a.table != b.table) return a.table < b.table;
              return a.col < b.col;
            });
  side->erase(std::unique(side->begin(), side->end(),
                          [](const ColumnRef& a, const ColumnRef& b) {
                            return a.table == b.table && a.col == b.col;
                          }),
              side->end());
}

}  // namespace

std::vector<SearchResult> BaselineSearch(const CorpusView& index,
                                         const SelectQuery& query) {
  // All query strings pass through the shared tokenizer exactly once.
  return BaselineSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> BaselineSearch(const CorpusView& index,
                                         const SelectQuery& query,
                                         const NormalizedSelectQuery& nq) {
  std::vector<SearchResult> out;
  BaselineSearch(index, query, nq, TopKOptions{},
             &ThreadLocalSearchWorkspace(), &out);
  return out;
}

void BaselineSearch(const CorpusView& index, const SelectQuery& /*query*/,
                    const NormalizedSelectQuery& nq, const TopKOptions& topk,
                    SearchWorkspace* ws, std::vector<SearchResult>* out) {
  // The baseline interprets all inputs as strings, so it is fully
  // determined by the normalized form.
  using search_internal::AppendUniqueCols;
  using search_internal::IntersectByTable;
  using search_internal::PlannedTable;

  ws->BeginSelect(nq.e2_text);
  // The baseline's only match path is CellMatchesText against E2's
  // string, so a table outside the match-support set scores nothing.
  const bool refine =
      topk.k > 0 && topk.prune && ws->BuildMatchSupport(index);

  // Candidate columns per side via header-token postings.
  obs::TraceSpan plan_span("search.plan");
  CollectHeaderSide(index, nq.type1_tokens, &ws->side_a);
  CollectHeaderSide(index, nq.type2_tokens, &ws->side_b);

  // Context-match bonus tables (sorted unique; binary searched below).
  ws->context_tables.clear();
  for (const std::string& token : nq.relation_tokens) {
    std::span<const int32_t> postings = index.ContextPostings(token);
    ws->context_tables.insert(ws->context_tables.end(), postings.begin(),
                              postings.end());
  }
  std::sort(ws->context_tables.begin(), ws->context_tables.end());
  ws->context_tables.erase(
      std::unique(ws->context_tables.begin(), ws->context_tables.end()),
      ws->context_tables.end());

  ws->plan.clear();
  ws->col_pool.clear();
  IntersectByTable(
      std::span<const ColumnRef>(ws->side_a),
      std::span<const ColumnRef>(ws->side_b),
      [&](int32_t table, std::span<const ColumnRef> run1,
          std::span<const ColumnRef> run2) {
        PlannedTable p;
        p.table = table;
        std::tie(p.a_begin, p.a_end) = AppendUniqueCols(run1, &ws->col_pool);
        std::tie(p.b_begin, p.b_end) = AppendUniqueCols(run2, &ws->col_pool);
        ws->plan.push_back(p);
      });
  plan_span.End();
  auto table_score = [&](int32_t table) {
    return std::binary_search(ws->context_tables.begin(),
                              ws->context_tables.end(), table)
               ? 1.5
               : 1.0;
  };

  search_internal::RunPlannedTables(
      ws, topk,
      // Only E2-side columns that can text-match the target contribute
      // (the baseline has no entity path), so b shrinks to the
      // supported count — 0 eliminates the table outright.
      [&](const PlannedTable& p) {
        double b = p.b_end - p.b_begin;
        if (refine) {
          b = 0.0;
          for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
            if (ws->ColumnHasMatchSupport(p.table, ws->col_pool[bi])) {
              b += 1.0;
            }
          }
        }
        return static_cast<double>(index.rows(p.table)) *
               table_score(p.table) * (p.a_end - p.a_begin) * b;
      },
      [&](const PlannedTable& p) {
        const int table = p.table;
        const int num_rows = index.rows(table);
        const double score = table_score(table);
        for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
          const int c2 = ws->col_pool[bi];
          for (int r = 0; r < num_rows; ++r) {
            if (!ws->CellMatches(index.cell(table, r, c2))) continue;
            for (uint32_t ai = p.a_begin; ai < p.a_end; ++ai) {
              const int c1 = ws->col_pool[ai];
              if (c1 == c2) continue;
              ws->AddText(table, index.cell(table, r, c1), score);
            }
          }
        }
      });
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
