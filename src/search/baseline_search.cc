#include "search/baseline_search.h"

#include <algorithm>

#include "search/select_kernel.h"

namespace webtab {

namespace {

/// Collects the union of one query side's header-token postings into
/// `side` (reused), sorted by (table, col) with duplicates removed —
/// the scratch replacement for the retired std::map<int, std::set<int>>
/// materialization. Each token's postings arrive table-sorted; the
/// union across tokens needs one sort of the combined (small) list.
void CollectHeaderSide(const CorpusView& index,
                       const std::vector<std::string>& tokens,
                       std::vector<ColumnRef>* side) {
  side->clear();
  for (const std::string& token : tokens) {
    std::span<const ColumnRef> postings = index.HeaderPostings(token);
    side->insert(side->end(), postings.begin(), postings.end());
  }
  std::sort(side->begin(), side->end(),
            [](const ColumnRef& a, const ColumnRef& b) {
              if (a.table != b.table) return a.table < b.table;
              return a.col < b.col;
            });
  side->erase(std::unique(side->begin(), side->end(),
                          [](const ColumnRef& a, const ColumnRef& b) {
                            return a.table == b.table && a.col == b.col;
                          }),
              side->end());
}

}  // namespace

std::vector<SearchResult> BaselineSearch(const CorpusView& index,
                                         const SelectQuery& query) {
  // All query strings pass through the shared tokenizer exactly once.
  return BaselineSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> BaselineSearch(const CorpusView& index,
                                         const SelectQuery& query,
                                         const NormalizedSelectQuery& nq) {
  std::vector<SearchResult> out;
  BaselineSearch(index, query, nq, TopKOptions{},
             &ThreadLocalSearchWorkspace(), &out);
  return out;
}

void BaselineSearch(const CorpusView& index, const SelectQuery& /*query*/,
                    const NormalizedSelectQuery& nq, const TopKOptions& topk,
                    SearchWorkspace* ws, std::vector<SearchResult>* out) {
  // The baseline interprets all inputs as strings, so it is fully
  // determined by the normalized form.
  using search_internal::AppendUniqueCols;
  using search_internal::IntersectByTable;
  using search_internal::PlannedTable;
  using search_internal::PostingRunCounter;
  using search_internal::ScreenCond;

  ws->BeginSelect(nq.e2_text);
  const bool prune = topk.k > 0 && topk.prune;
  // The baseline's only match path is CellMatchesText against E2's
  // string, so a table outside the match-support set scores nothing.
  // The batch path builds the set on full-rank scans too: its
  // scoring-side verdicts skip proven-matchless columns exactly.
  const bool support_valid =
      (prune || topk.batch) && ws->BuildMatchSupport(index);
  const bool refine = prune && support_valid;

  // Candidate columns per side via header-token postings.
  obs::TraceSpan plan_span("search.plan");
  CollectHeaderSide(index, nq.type1_tokens, &ws->side_a);
  CollectHeaderSide(index, nq.type2_tokens, &ws->side_b);

  // Context-match bonus tables (sorted unique; binary searched below).
  ws->context_tables.clear();
  for (const std::string& token : nq.relation_tokens) {
    std::span<const int32_t> postings = index.ContextPostings(token);
    ws->context_tables.insert(ws->context_tables.end(), postings.begin(),
                              postings.end());
  }
  std::sort(ws->context_tables.begin(), ws->context_tables.end());
  ws->context_tables.erase(
      std::unique(ws->context_tables.begin(), ws->context_tables.end()),
      ws->context_tables.end());

  ws->plan.clear();
  ws->col_pool.clear();
  IntersectByTable(
      std::span<const ColumnRef>(ws->side_a),
      std::span<const ColumnRef>(ws->side_b),
      [&](int32_t table, std::span<const ColumnRef> run1,
          std::span<const ColumnRef> run2) {
        PlannedTable p;
        p.table = table;
        std::tie(p.a_begin, p.a_end) = AppendUniqueCols(run1, &ws->col_pool);
        std::tie(p.b_begin, p.b_end) = AppendUniqueCols(run2, &ws->col_pool);
        ws->plan.push_back(p);
      });
  plan_span.End();
  auto table_score = [&](int32_t table) {
    return std::binary_search(ws->context_tables.begin(),
                              ws->context_tables.end(), table)
               ? 1.5
               : 1.0;
  };

  // Only E2-side columns that can text-match the target contribute
  // (the baseline has no entity path), so b shrinks to the supported
  // count — 0 eliminates the table outright. Shared by the scalar loop
  // and the batched screen's survivor pass.
  auto refined_bound = [&](const PlannedTable& p,
                           PostingRunCounter<CellRef>* /*e2_runs*/) {
    double b = 0.0;
    for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
      if (ws->ColumnHasMatchSupport(p.table, ws->col_pool[bi])) {
        b += 1.0;
      }
    }
    return static_cast<double>(index.rows(p.table)) *
           table_score(p.table) * (p.a_end - p.a_begin) * b;
  };
  auto fill_bounds = [&] {
    if (!refine) {
      for (PlannedTable& p : ws->plan) {
        const double b = p.b_end - p.b_begin;
        p.bound = static_cast<double>(index.rows(p.table)) *
                  table_score(p.table) * (p.a_end - p.a_begin) * b;
      }
      return;
    }
    if (topk.batch) {
      ws->EnsureFilterClasses();
      static constexpr ScreenCond kKinds[] = {ScreenCond::kTableSupport};
      search_internal::BatchedBoundFill(ws, ws->filter_class_baseline,
                                        kKinds,
                                        std::span<const CellRef>(),
                                        PostingBlockSpan(), refined_bound);
      return;
    }
    PostingRunCounter<CellRef> unused{std::span<const CellRef>(),
                                      PostingBlockSpan()};
    for (PlannedTable& p : ws->plan) p.bound = refined_bound(p, &unused);
  };

  auto scalar_score = [&](const PlannedTable& p) {
    const int table = p.table;
    const int num_rows = index.rows(table);
    const double score = table_score(table);
    for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
      const int c2 = ws->col_pool[bi];
      for (int r = 0; r < num_rows; ++r) {
        if (!ws->CellMatches(index.cell(table, r, c2))) continue;
        for (uint32_t ai = p.a_begin; ai < p.a_end; ++ai) {
          const int c1 = ws->col_pool[ai];
          if (c1 == c2) continue;
          ws->AddText(table, index.cell(table, r, c1), score);
        }
      }
    }
  };

  // Lazy verdicts (no entity lane in the baseline: support only).
  PostingRunCounter<CellRef> verdict_runs{std::span<const CellRef>(),
                                          PostingBlockSpan()};
  auto batch_score = [&](const PlannedTable& p) {
    search_internal::FillColumnVerdicts(ws, p, &verdict_runs,
                                        /*e2_present=*/false,
                                        support_valid);
    const int table = p.table;
    const double score = table_score(table);
    auto score_chunk = [&](exec::ScoreBatch* batch, int n,
                           bool /*has_entity*/, bool /*has_support*/) {
      uint32_t* tids = batch->active.mutable_data();
      uint32_t m = 0;
      for (int i = 0; i < n; ++i) {
        tids[m] = static_cast<uint32_t>(i);
        batch->score[m] = score;
        m += static_cast<uint32_t>(ws->CellMatches(batch->text[i]));
      }
      batch->active.SetSize(m);
    };
    search_internal::ScoreTableBatched(
        ws, index, p, /*need_answer_entities=*/false, score_chunk,
        [&](uint32_t k, uint32_t i, double rs) {
          ws->AddText(table, ws->gather_cells[k * exec::kBatchSize + i],
                      rs);
        });
  };

  if (topk.batch) {
    search_internal::PrepareVerdictLanes(ws, ws->col_pool.size());
    search_internal::RunPlannedTables(ws, topk, fill_bounds, batch_score);
  } else {
    search_internal::RunPlannedTables(ws, topk, fill_bounds, scalar_score);
  }
  ws->EmitRanked(topk, out);
}

}  // namespace webtab
