#include "search/baseline_search.h"

#include <map>
#include <set>

#include "search/engine_util.h"

namespace webtab {

std::vector<SearchResult> BaselineSearch(const CorpusView& index,
                                         const SelectQuery& query) {
  // All query strings pass through the shared tokenizer exactly once.
  return BaselineSearch(index, query, NormalizeSelectQuery(query));
}

std::vector<SearchResult> BaselineSearch(const CorpusView& index,
                                         const SelectQuery& /*query*/,
                                         const NormalizedSelectQuery& nq) {
  // The baseline interprets all inputs as strings, so it is fully
  // determined by the normalized form.
  using search_internal::CellMatchesText;
  using search_internal::EvidenceAggregator;

  // Find (table, c1-candidates, c2-candidates) via header-token postings.
  std::map<int, std::set<int>> t1_cols;
  std::map<int, std::set<int>> t2_cols;
  for (const std::string& token : nq.type1_tokens) {
    for (const ColumnRef& ref : index.HeaderPostings(token)) {
      t1_cols[ref.table].insert(ref.col);
    }
  }
  for (const std::string& token : nq.type2_tokens) {
    for (const ColumnRef& ref : index.HeaderPostings(token)) {
      t2_cols[ref.table].insert(ref.col);
    }
  }
  // Context-match bonus tables.
  std::set<int> context_tables;
  for (const std::string& token : nq.relation_tokens) {
    for (int32_t t : index.ContextPostings(token)) context_tables.insert(t);
  }

  EvidenceAggregator agg;
  for (const auto& [table_idx, c1s] : t1_cols) {
    auto it2 = t2_cols.find(table_idx);
    if (it2 == t2_cols.end()) continue;
    const int num_rows = index.rows(table_idx);
    double table_score = context_tables.count(table_idx) ? 1.5 : 1.0;
    for (int c2 : it2->second) {
      for (int r = 0; r < num_rows; ++r) {
        if (!CellMatchesText(index.cell(table_idx, r, c2), nq.e2_text)) {
          continue;
        }
        for (int c1 : c1s) {
          if (c1 == c2) continue;
          agg.AddText(index.cell(table_idx, r, c1), table_score);
        }
      }
    }
  }
  return agg.Ranked();
}

}  // namespace webtab
