#ifndef WEBTAB_SEARCH_SHARD_SCAN_H_
#define WEBTAB_SEARCH_SHARD_SCAN_H_

#include <atomic>
#include <cstdint>

#include "common/logging.h"

namespace webtab {
namespace search_internal {

/// Cross-shard coordination state for one scatter-gather query. The
/// gather thread replays shard evidence in global table order and runs
/// the exact sequential stop rule on the merged evidence; when the rule
/// fires it publishes the first abandoned *global plan position* here.
/// In-flight shards poll it (relaxed — the value only ever tightens)
/// before scoring each table and abandon positions at or past it: a hot
/// shard's merged results stop cold shards mid-flight without changing
/// a single emitted byte, because abandoned positions lie strictly
/// behind the published stop and their records would never be replayed.
struct ShardControl {
  /// Encoded (shard << 32 | plan_index) of the first abandoned global
  /// position; kNoStop while the scan is live. Monotone: written once,
  /// by the gather, under the sequential stop proof.
  static constexpr int64_t kNoStop = INT64_MAX;
  std::atomic<int64_t> stop_pos{kNoStop};

  /// Telemetry twin of the stop: the merged evidence map's running max
  /// score (bit_cast to uint64) published by the gather after each shard
  /// replay — the "shared k-th-score threshold" surfaced by EXPLAIN and
  /// the shard metrics. Shards do not branch on it; stop_pos is the
  /// sound operational form (it encodes the full gap test, not just a
  /// single score).
  std::atomic<uint64_t> merged_max_score_bits{0};

  static int64_t Encode(int shard, size_t plan_index) {
    // The packing gives plan_index the low 32 bits, and the gather
    // publishes Encode(s, pi) + 1 — so an index must stay strictly
    // below 2^32 - 1 or the +1 carries into the shard bits. Plans hold
    // at most one entry per table and PartitionTables CHECKs the corpus
    // at <= INT32_MAX tables, so this only fires if table-id width ever
    // grows past the packing's assumption.
    WEBTAB_CHECK(plan_index < (uint64_t{1} << 32) - 1);
    return (static_cast<int64_t>(shard) << 32) |
           static_cast<int64_t>(plan_index);
  }

  void Reset() {
    stop_pos.store(kNoStop, std::memory_order_relaxed);
    merged_max_score_bits.store(0, std::memory_order_relaxed);
  }
};

/// How a shard invocation of an engine should run its planned scan.
enum class ShardPhase : uint8_t {
  /// Threaded mode: plan, publish bounds, then score with recording in
  /// one pass (abandoning past the shared stop).
  kPlanAndScore,
  /// Inline deterministic mode, pass 1: run the engine up to (and
  /// including) bound fill, publish the plan, skip scoring.
  kPlanOnly,
  /// Inline deterministic mode, pass 2: re-run the engine (the replan
  /// recomputes identical bounds) and score with recording. Each shard's
  /// scoring pass deterministically observes every stop the gather
  /// published while replaying earlier shards.
  kScoreOnly,
};

/// Per-shard handle threaded through TopKOptions::shard. The engine's
/// RunPlannedTables branches into shard mode when it sees one: scoring
/// records evidence-map calls into the shard workspace instead of
/// accumulating, and the state flag sequences the gather (1 = plan and
/// bounds readable, 2 = records complete).
struct ShardScan {
  ShardControl* control = nullptr;
  int shard_index = 0;
  ShardPhase phase = ShardPhase::kPlanAndScore;
  /// 0 = running, 1 = plan ready (release), 2 = done (release). Null in
  /// inline mode, where the caller sequences shards itself.
  std::atomic<uint32_t>* state = nullptr;
  /// Out: planned tables this shard skipped because the shared stop had
  /// already passed their position ("pruning fires harder under
  /// parallelism"). Written by the shard task; read after state == 2.
  int64_t abandoned = 0;
};

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_SHARD_SCAN_H_
