#ifndef WEBTAB_SEARCH_SELECT_KERNEL_H_
#define WEBTAB_SEARCH_SELECT_KERNEL_H_

#include <algorithm>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "search/posting_cursor.h"
#include "search/search_workspace.h"

namespace webtab {
namespace search_internal {

/// Appends `run`'s distinct column indices to `pool` in ascending order
/// (the reference engines' std::set semantics) and returns the appended
/// [begin, end) range. Runs are one table's worth of postings, so the
/// sort is tiny.
inline std::pair<uint32_t, uint32_t> AppendUniqueCols(
    std::span<const ColumnRef> run, std::vector<int32_t>* pool) {
  const uint32_t begin = static_cast<uint32_t>(pool->size());
  for (const ColumnRef& ref : run) pool->push_back(ref.col);
  std::sort(pool->begin() + begin, pool->end());
  pool->erase(std::unique(pool->begin() + begin, pool->end()),
              pool->end());
  return {begin, static_cast<uint32_t>(pool->size())};
}

/// Fills ws->suffix_bound: suffix_bound[i] = Σ plan[j].bound for j > i —
/// the prune rule's "remaining evidence mass" after scoring table i.
inline void ComputeSuffixBounds(SearchWorkspace* ws) {
  ws->suffix_bound.resize(ws->plan.size());
  double acc = 0.0;
  for (size_t i = ws->plan.size(); i-- > 0;) {
    ws->suffix_bound[i] = acc;
    acc += ws->plan[i].bound;
  }
}

/// The shared execution skeleton every select engine runs after
/// building its plan: record plan stats, compute per-table bounds and
/// suffix sums when pruning applies (`bound_of(p)` is the engine's
/// upper bound on one answer's evidence from table p), then score
/// tables in ascending order with the safe early-stop check after each.
/// Keeping this in one place keeps the stop condition and stats
/// accounting from drifting apart across engines.
template <typename BoundFn, typename ScoreFn>
void RunPlannedTables(SearchWorkspace* ws, const TopKOptions& topk,
                      BoundFn&& bound_of, ScoreFn&& score_table) {
  ws->query_stats.tables_planned = static_cast<int64_t>(ws->plan.size());
  const bool prune = topk.k > 0 && topk.prune;
  if (prune) {
    for (PlannedTable& p : ws->plan) p.bound = bound_of(p);
    ComputeSuffixBounds(ws);
  }
  for (size_t pi = 0; pi < ws->plan.size(); ++pi) {
    score_table(ws->plan[pi]);
    ++ws->query_stats.tables_scored;
    if (prune && ws->ShouldStop(topk.k, ws->suffix_bound[pi])) break;
  }
}

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_SELECT_KERNEL_H_
