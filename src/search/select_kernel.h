#ifndef WEBTAB_SEARCH_SELECT_KERNEL_H_
#define WEBTAB_SEARCH_SELECT_KERNEL_H_

#include <algorithm>
#include <array>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/posting_cursor.h"
#include "search/search_workspace.h"
#include "search/shard_scan.h"

namespace webtab {
namespace search_internal {

/// Appends `run`'s distinct column indices to `pool` in ascending order
/// (the reference engines' std::set semantics) and returns the appended
/// [begin, end) range. Runs are one table's worth of postings, almost
/// always a handful of columns, so the fast path dedups through a
/// fixed stack ring with an insertion sort — no tail std::sort, no
/// erase, one bulk append into the pool per run. Oversized runs fall
/// back to the sort+unique treatment with identical semantics.
inline std::pair<uint32_t, uint32_t> AppendUniqueCols(
    std::span<const ColumnRef> run, std::vector<int32_t>* pool) {
  const uint32_t begin = static_cast<uint32_t>(pool->size());
  constexpr size_t kRing = 64;
  if (run.size() <= kRing) {
    int32_t ring[kRing];
    size_t n = 0;
    for (const ColumnRef& ref : run) {
      const int32_t c = ref.col;
      size_t pos = n;
      while (pos > 0 && ring[pos - 1] > c) --pos;
      if (pos > 0 && ring[pos - 1] == c) continue;  // duplicate
      for (size_t j = n; j > pos; --j) ring[j] = ring[j - 1];
      ring[pos] = c;
      ++n;
    }
    pool->insert(pool->end(), ring, ring + n);
    return {begin, static_cast<uint32_t>(pool->size())};
  }
  for (const ColumnRef& ref : run) pool->push_back(ref.col);
  std::sort(pool->begin() + begin, pool->end());
  pool->erase(std::unique(pool->begin() + begin, pool->end()),
              pool->end());
  return {begin, static_cast<uint32_t>(pool->size())};
}

/// Counts one posting list's entries at successive tables via a
/// forward block-aware cursor — the engines' per-table n_e2 probe for
/// the refined bounds. Tables must be asked in ascending order, which
/// is exactly the order bound_of runs over the plan.
template <typename Ref>
class PostingRunCounter {
 public:
  PostingRunCounter(std::span<const Ref> postings, PostingBlockSpan blocks)
      : cursor_(postings, blocks) {}

  int32_t CountAt(int32_t table) {
    return static_cast<int32_t>(Run(table).size());
  }

  /// Entries at (table, col). Entity postings are built column-major
  /// within a table (corpus_index.cc's c-then-r loop, serialized
  /// verbatim by the snapshot writer), so each run is col-sorted.
  /// Repeated probes of one table reuse the cached run.
  int32_t CountAtCol(int32_t table, int32_t col) {
    std::span<const Ref> run = Run(table);
    auto lo = std::lower_bound(
        run.begin(), run.end(), col,
        [](const Ref& r, int32_t c) { return r.col < c; });
    auto hi = std::upper_bound(
        lo, run.end(), col,
        [](int32_t c, const Ref& r) { return c < r.col; });
    return static_cast<int32_t>(hi - lo);
  }

 private:
  std::span<const Ref> Run(int32_t table) {
    if (table == run_table_) return run_;
    cursor_.SeekTable(table);
    run_table_ = table;
    run_ = (!cursor_.done() && cursor_.table() == table)
               ? cursor_.TakeRun()
               : std::span<const Ref>();
    return run_;
  }

  PostingCursor<Ref> cursor_;
  int32_t run_table_ = -1;
  std::span<const Ref> run_;
};

/// Condition kinds available to the batched bound screens. Every
/// screen condition across the select engines is one of these two
/// necessary-evidence probes; the FilterManager permutes their
/// evaluation order per engine class from measured pass rates.
enum class ScreenCond : uint8_t {
  /// The table holds at least one E2-annotated cell (entity-postings
  /// run nonempty). Necessary for any annotated hit.
  kEntityRun,
  /// The table is in the query's match-support set. Necessary for any
  /// text-fallback hit.
  kTableSupport,
};

/// Batched, filter-adaptive bound fill — the columnar replacement for
/// the per-table bound_of loop. Plan lanes are processed in
/// exec::kBatchSize batches; per batch the screen conditions run as
/// columnar PartitionInto passes in the FilterManager's current order
/// (disjunctive: a lane any condition proves alive skips the rest).
/// Lanes no condition claims are proven to contribute zero evidence —
/// their bound is exactly 0.0, the same double the scalar refined
/// formula produces for them — and only survivors pay the exact
/// refined-bound computation (`refined_of(p, counter)`, the engine's
/// scalar formula verbatim, so survivor bounds are bit-identical too).
///
/// Counter discipline: PostingRunCounter seeks forward only, so every
/// columnar pass gets a fresh counter, and the survivor list is
/// re-sorted ascending before the refined pass.
template <typename RefinedFn>
void BatchedBoundFill(SearchWorkspace* ws, int cls,
                      std::span<const ScreenCond> kinds,
                      std::span<const CellRef> e2_postings,
                      PostingBlockSpan e2_blocks, RefinedFn&& refined_of) {
  exec::ScoreBatch& batch = ws->batch;
  const bool explain = ws->explain_enabled();
  const uint32_t plan_size = static_cast<uint32_t>(ws->plan.size());
  for (uint32_t base = 0; base < plan_size; base += exec::kBatchSize) {
    const uint32_t n = std::min(exec::kBatchSize, plan_size - base);
    batch.Reset(n);  // active = undecided lanes, scratch = survivors
    std::array<uint8_t, exec::FilterManager::kMaxConditions> order_used{};
    {
      std::span<const uint8_t> order = ws->filters.Order(cls);
      std::copy(order.begin(), order.end(), order_used.begin());
      const bool exploring = ws->filters.state(cls).exploring;
      for (size_t oi = 0; oi < order.size() && !batch.active.empty();
           ++oi) {
        const uint8_t cond = order[oi];
        const uint32_t in = batch.active.size();
        const uint32_t pass_before = batch.scratch.size();
        switch (kinds[cond]) {
          case ScreenCond::kEntityRun: {
            PostingRunCounter<CellRef> runs(e2_postings, e2_blocks);
            batch.active.PartitionInto(
                &batch.scratch, [&](uint32_t t) {
                  return runs.CountAt(ws->plan[base + t].table) > 0;
                });
            break;
          }
          case ScreenCond::kTableSupport: {
            batch.active.PartitionInto(
                &batch.scratch, [&](uint32_t t) {
                  return ws->TableHasMatchSupport(ws->plan[base + t].table);
                });
            break;
          }
        }
        ws->filters.Record(cls, cond, in,
                           batch.scratch.size() - pass_before);
      }
      // Unclaimed lanes: every screen condition failed, so neither an
      // annotated hit nor a text match is possible anywhere in the
      // table — the refined sum is zero and the bound is exactly 0.0.
      for (uint32_t t : batch.active) ws->plan[base + t].bound = 0.0;
      batch.scratch.SortAscending();
      PostingRunCounter<CellRef> runs(e2_postings, e2_blocks);
      for (uint32_t t : batch.scratch) {
        search_internal::PlannedTable& p = ws->plan[base + t];
        p.bound = refined_of(p, &runs);
      }
      if (explain) {
        SearchWorkspace::FilterDecision d;
        d.cls = cls;
        d.lanes_in = n;
        d.lanes_pass = batch.scratch.size();
        d.num_conditions = static_cast<uint8_t>(
            ws->filters.state(cls).num_conditions);
        d.exploring = exploring;
        d.order = order_used;
        ws->filter_log.push_back(d);
      }
    }
    ws->filters.EndBatch(cls);
  }
}

/// Sizes the scoring-verdict lanes (all bits clear). Engines call this
/// once after planning; FillColumnVerdicts / FillRelationVerdicts then
/// populate one scored table's lanes at a time — lazily, so pruned
/// scans never pay verdicts for tables they skip. Laziness is sound
/// because score_table runs in ascending table order, which is exactly
/// the forward posting counter's requirement.
inline void PrepareVerdictLanes(SearchWorkspace* ws, size_t num_lanes) {
  ws->lane_has_entity.Resize(static_cast<uint32_t>(num_lanes));
  ws->lane_has_support.Resize(static_cast<uint32_t>(num_lanes));
}

/// Fills ws->lane_has_entity / lane_has_support for one scored table's
/// E2-side columns (lane = col_pool position over [b_begin, b_end)) —
/// the scoring-side verdict pass. has_entity: the column holds an
/// E2-annotated cell, so the batch scorer gathers the entity lane and
/// runs the comparison. has_support: the column can text-match the
/// target (or the backend cannot prove otherwise), so the memo probe
/// runs. Both false proves the column's scan emits no Add at all, and
/// the scorer skips it — exact, including on full-rank scans where the
/// bound screen never runs.
inline void FillColumnVerdicts(SearchWorkspace* ws, const PlannedTable& p,
                               PostingRunCounter<CellRef>* e2_runs,
                               bool e2_present, bool support_valid) {
  for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
    const int32_t col = ws->col_pool[bi];
    ws->lane_has_entity.Assign(
        bi, e2_present && e2_runs->CountAtCol(p.table, col) > 0);
    ws->lane_has_support.Assign(
        bi, !support_valid || ws->ColumnHasMatchSupport(p.table, col));
  }
}

/// Relation-engine variant of FillColumnVerdicts: lanes are
/// relation-posting indices and the probed column is each pair's
/// object column.
inline void FillRelationVerdicts(SearchWorkspace* ws,
                                 const PlannedTable& p,
                                 std::span<const RelationRef> postings,
                                 PostingRunCounter<CellRef>* e2_runs,
                                 bool e2_present, bool support_valid) {
  for (uint32_t ri = p.a_begin; ri < p.a_end; ++ri) {
    const RelationRef& ref = postings[ri];
    const int32_t object_col = ref.swapped ? ref.c1 : ref.c2;
    ws->lane_has_entity.Assign(
        ri, e2_present && e2_runs->CountAtCol(p.table, object_col) > 0);
    ws->lane_has_support.Assign(
        ri,
        !support_valid || ws->ColumnHasMatchSupport(p.table, object_col));
  }
}

/// The batch scorer's shared (b-column × row chunks × a-columns)
/// sweep for the col_pool engines (type, baseline). Per b-column it
/// consults the verdict lanes (skipping proven no-op columns and
/// unneeded gathers), gathers the E2-side lanes one chunk at a time,
/// lets `score_chunk(batch, n, has_entity, has_support)` build the
/// surviving-row selection vector (batch->active ascending, parallel
/// row scores in batch->score), then gathers the answer-side lanes
/// once per chunk and emits `emit(k, i, rs)` in the scalar
/// path's exact (b asc, row asc, a asc) order — so every Add call, and
/// with it every accumulated double and display string, is
/// bit-identical to the scalar reference.
template <typename ScoreChunkFn, typename EmitFn>
void ScoreTableBatched(SearchWorkspace* ws, const CorpusView& index,
                       const PlannedTable& p, bool need_answer_entities,
                       ScoreChunkFn&& score_chunk, EmitFn&& emit) {
  exec::ScoreBatch& batch = ws->batch;
  const int table = p.table;
  const int num_rows = index.rows(table);
  const uint32_t a_count = p.a_end - p.a_begin;
  if (a_count == 0 || num_rows == 0) return;
  ws->EnsureGatherCapacity(a_count);
  for (uint32_t bi = p.b_begin; bi < p.b_end; ++bi) {
    const bool has_entity = ws->lane_has_entity.Test(bi);
    const bool has_support = ws->lane_has_support.Test(bi);
    if (!has_entity && !has_support) continue;  // proven no-op column
    const int c2 = ws->col_pool[bi];
    for (int rb = 0; rb < num_rows;
         rb += static_cast<int>(exec::kBatchSize)) {
      const int n =
          std::min(static_cast<int>(exec::kBatchSize), num_rows - rb);
      index.GatherColumn(table, c2, rb, n,
                         has_entity ? batch.entity.data() : nullptr,
                         has_support ? batch.text.data() : nullptr);
      score_chunk(&batch, n, has_entity, has_support);
      if (batch.active.empty()) continue;
      // Lazy answer-side gather: only chunks with survivors pay it.
      for (uint32_t k = 0; k < a_count; ++k) {
        index.GatherColumn(
            table, ws->col_pool[p.a_begin + k], rb, n,
            need_answer_entities
                ? ws->gather_entities.data() + k * exec::kBatchSize
                : nullptr,
            ws->gather_cells.data() + k * exec::kBatchSize);
      }
      const uint32_t m = batch.active.size();
      for (uint32_t j = 0; j < m; ++j) {
        const uint32_t i = batch.active[j];
        const double rs = batch.score[j];
        for (uint32_t k = 0; k < a_count; ++k) {
          if (ws->col_pool[p.a_begin + k] == c2) continue;
          emit(k, i, rs);
        }
      }
    }
  }
}

/// Fills ws->suffix_bound: suffix_bound[i] = Σ plan[j].bound for j > i —
/// the prune rule's "remaining evidence mass" after scoring table i.
inline void ComputeSuffixBounds(SearchWorkspace* ws) {
  ws->suffix_bound.resize(ws->plan.size());
  double acc = 0.0;
  for (size_t i = ws->plan.size(); i-- > 0;) {
    ws->suffix_bound[i] = acc;
    acc += ws->plan[i].bound;
  }
}

/// Folds one finished query's plan/scan stats into the process-wide
/// registry and the attached trace (if any). Once per query, off the
/// per-table loop: the registry totals mirror the per-query stats the
/// serving layer already reports. Called by RunPlannedTables for the
/// select engines and by JoinSearch directly (its stats count relation
/// runs rather than select-plan tables).
inline void RecordQueryStatsMetrics(
    const SearchWorkspace::QueryStats& stats) {
  static obs::Counter* planned =
      obs::MetricsRegistry::Get().GetCounter("search.tables_planned");
  static obs::Counter* scored =
      obs::MetricsRegistry::Get().GetCounter("search.tables_scored");
  static obs::Counter* stops =
      obs::MetricsRegistry::Get().GetCounter("search.prune_stops");
  planned->Add(stats.tables_planned);
  scored->Add(stats.tables_scored);
  if (stats.stopped_early) stops->Add(1);
  obs::TraceAddCounter("tables_planned", stats.tables_planned);
  obs::TraceAddCounter("tables_scored", stats.tables_scored);
  if (stats.stopped_early) obs::TraceAddCounter("prune_stops", 1);
}

/// The shared execution skeleton every select engine runs after
/// building its plan: record plan stats, compute per-table bounds and
/// suffix sums when pruning applies (`fill_bounds()` writes every
/// plan entry's upper bound on one answer's evidence — either the
/// engine's scalar loop or the batched adaptive screen above), then
/// score tables in ascending order with the safe early-stop check
/// after each.
/// Keeping this in one place keeps the stop condition and stats
/// accounting from drifting apart across engines.
///
/// Two exact eliminations besides the PR 5 gap test:
///   - A table whose bound is 0 is skipped without scoring: a zero
///     upper bound proves it contributes no Add call at all, so the
///     reference scan of the same table is a no-op and skipping it
///     leaves every accumulated double bit-identical.
///   - When the suffix bound after table pi is exactly 0, every
///     remaining table is a proven no-op and the scan ends with the
///     ranking equal to the full one (ShouldStop never fires on
///     remaining == 0, so this stop must live here).
/// Scan order stays ascending — reordering would change double
/// summation order and break bit-identity with the reference.
/// Shard-mode twin of RunPlannedTables, entered when the scatter-gather
/// executor invoked the engine with TopKOptions::shard set. The shard
/// scores its clamped plan with *recording* armed (AddEntity/AddText
/// append to the shard workspace's record buffers instead of
/// accumulating) and never runs the stop rule itself — the gather
/// replays records in global table order on the merge workspace and
/// owns all stop/EXPLAIN/stats accounting. The only cross-thread reads
/// are relaxed polls of the shared stop position: once the gather's
/// sequential stop proof passes a position, its records would never be
/// replayed, so abandoning it cannot change a byte of output.
template <typename BoundFillFn, typename ScoreFn>
void RunShardPlannedTables(SearchWorkspace* ws, const TopKOptions& topk,
                           BoundFillFn&& fill_bounds, ScoreFn&& score_table) {
  ShardScan* shard = topk.shard;
  const bool prune = topk.k > 0 && topk.prune;
  ws->query_stats.tables_planned = static_cast<int64_t>(ws->plan.size());
  // Bounds are needed in every phase that proceeds past planning: the
  // zero-bound skip below must mirror the gather's replay skip exactly.
  // No suffix sums here — only the gather sees the global plan.
  if (prune) {
    obs::TraceSpan bound_span("search.bounds");
    fill_bounds();
  }
  if (shard->state != nullptr) {
    shard->state->store(1, std::memory_order_release);  // plan + bounds ready
  }
  if (shard->phase == ShardPhase::kPlanOnly) return;
  ShardControl* ctrl = shard->control;
  obs::TraceSpan score_span("search.score");
  for (size_t pi = 0; pi < ws->plan.size(); ++pi) {
    // Exact mirror of the sequential zero-bound elimination; the gather
    // logs the verdict.
    if (prune && ws->plan[pi].bound <= 0.0) continue;
    if (ctrl != nullptr &&
        ctrl->stop_pos.load(std::memory_order_relaxed) <=
            ShardControl::Encode(shard->shard_index, pi)) {
      ++shard->abandoned;
      continue;
    }
    const uint32_t begin = static_cast<uint32_t>(ws->emit_records.size());
    score_table(ws->plan[pi]);
    ws->MarkRecorded(static_cast<uint32_t>(pi), begin);
  }
  if (shard->state != nullptr) {
    shard->state->store(2, std::memory_order_release);  // records complete
  }
}

template <typename BoundFillFn, typename ScoreFn>
void RunPlannedTables(SearchWorkspace* ws, const TopKOptions& topk,
                      BoundFillFn&& fill_bounds, ScoreFn&& score_table) {
  if (topk.shard != nullptr) {
    RunShardPlannedTables(ws, topk, std::forward<BoundFillFn>(fill_bounds),
                          std::forward<ScoreFn>(score_table));
    return;
  }
  using Decision = SearchWorkspace::TableDecision;
  ws->query_stats.tables_planned = static_cast<int64_t>(ws->plan.size());
  const bool prune = topk.k > 0 && topk.prune;
  // EXPLAIN capture: one branch per table when off (the serving
  // default), so the zero-allocation / <=2% overhead contract holds;
  // when on, every planned table lands in the decision log with the
  // bound that decided its fate.
  const bool explain = ws->explain_enabled();
  if (explain) ws->decision_bounds_valid = prune;
  if (prune) {
    obs::TraceSpan bound_span("search.bounds");
    fill_bounds();
    ComputeSuffixBounds(ws);
  }
  {
    obs::TraceSpan score_span("search.score");
    for (size_t pi = 0; pi < ws->plan.size(); ++pi) {
      const double bound = prune ? ws->plan[pi].bound : 0.0;
      const double suffix = prune ? ws->suffix_bound[pi] : 0.0;
      if (prune && bound <= 0.0) {
        if (explain) {
          ws->decision_log.push_back({ws->plan[pi].table,
                                      Decision::Verdict::kPrunedZeroBound,
                                      bound, suffix});
        }
        continue;
      }
      score_table(ws->plan[pi]);
      ++ws->query_stats.tables_scored;
      if (explain) {
        ws->decision_log.push_back(
            {ws->plan[pi].table, Decision::Verdict::kScored, bound, suffix});
      }
      if (!prune) continue;
      // Stop when the remaining tail is a proven no-op (suffix == 0) or
      // the top-k gap test proves the prefix final.
      if (suffix <= 0.0 || ws->ShouldStop(topk.k, suffix)) {
        if (explain) {
          for (size_t pj = pi + 1; pj < ws->plan.size(); ++pj) {
            ws->decision_log.push_back({ws->plan[pj].table,
                                        Decision::Verdict::kPrunedSuffix,
                                        ws->plan[pj].bound,
                                        ws->suffix_bound[pj]});
          }
        }
        break;
      }
    }
  }
  if (prune) {
    // Any table the scan never scored — skipped as zero-bound or left
    // behind a stop — counts as pruned work.
    ws->query_stats.stopped_early =
        ws->query_stats.tables_scored < ws->query_stats.tables_planned;
  }
  RecordQueryStatsMetrics(ws->query_stats);
}

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_SELECT_KERNEL_H_
