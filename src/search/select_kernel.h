#ifndef WEBTAB_SEARCH_SELECT_KERNEL_H_
#define WEBTAB_SEARCH_SELECT_KERNEL_H_

#include <algorithm>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/posting_cursor.h"
#include "search/search_workspace.h"

namespace webtab {
namespace search_internal {

/// Appends `run`'s distinct column indices to `pool` in ascending order
/// (the reference engines' std::set semantics) and returns the appended
/// [begin, end) range. Runs are one table's worth of postings, so the
/// sort is tiny.
inline std::pair<uint32_t, uint32_t> AppendUniqueCols(
    std::span<const ColumnRef> run, std::vector<int32_t>* pool) {
  const uint32_t begin = static_cast<uint32_t>(pool->size());
  for (const ColumnRef& ref : run) pool->push_back(ref.col);
  std::sort(pool->begin() + begin, pool->end());
  pool->erase(std::unique(pool->begin() + begin, pool->end()),
              pool->end());
  return {begin, static_cast<uint32_t>(pool->size())};
}

/// Counts one posting list's entries at successive tables via a
/// forward block-aware cursor — the engines' per-table n_e2 probe for
/// the refined bounds. Tables must be asked in ascending order, which
/// is exactly the order bound_of runs over the plan.
template <typename Ref>
class PostingRunCounter {
 public:
  PostingRunCounter(std::span<const Ref> postings, PostingBlockSpan blocks)
      : cursor_(postings, blocks) {}

  int32_t CountAt(int32_t table) {
    return static_cast<int32_t>(Run(table).size());
  }

  /// Entries at (table, col). Entity postings are built column-major
  /// within a table (corpus_index.cc's c-then-r loop, serialized
  /// verbatim by the snapshot writer), so each run is col-sorted.
  /// Repeated probes of one table reuse the cached run.
  int32_t CountAtCol(int32_t table, int32_t col) {
    std::span<const Ref> run = Run(table);
    auto lo = std::lower_bound(
        run.begin(), run.end(), col,
        [](const Ref& r, int32_t c) { return r.col < c; });
    auto hi = std::upper_bound(
        lo, run.end(), col,
        [](int32_t c, const Ref& r) { return c < r.col; });
    return static_cast<int32_t>(hi - lo);
  }

 private:
  std::span<const Ref> Run(int32_t table) {
    if (table == run_table_) return run_;
    cursor_.SeekTable(table);
    run_table_ = table;
    run_ = (!cursor_.done() && cursor_.table() == table)
               ? cursor_.TakeRun()
               : std::span<const Ref>();
    return run_;
  }

  PostingCursor<Ref> cursor_;
  int32_t run_table_ = -1;
  std::span<const Ref> run_;
};

/// Fills ws->suffix_bound: suffix_bound[i] = Σ plan[j].bound for j > i —
/// the prune rule's "remaining evidence mass" after scoring table i.
inline void ComputeSuffixBounds(SearchWorkspace* ws) {
  ws->suffix_bound.resize(ws->plan.size());
  double acc = 0.0;
  for (size_t i = ws->plan.size(); i-- > 0;) {
    ws->suffix_bound[i] = acc;
    acc += ws->plan[i].bound;
  }
}

/// Folds one finished query's plan/scan stats into the process-wide
/// registry and the attached trace (if any). Once per query, off the
/// per-table loop: the registry totals mirror the per-query stats the
/// serving layer already reports. Called by RunPlannedTables for the
/// select engines and by JoinSearch directly (its stats count relation
/// runs rather than select-plan tables).
inline void RecordQueryStatsMetrics(
    const SearchWorkspace::QueryStats& stats) {
  static obs::Counter* planned =
      obs::MetricsRegistry::Get().GetCounter("search.tables_planned");
  static obs::Counter* scored =
      obs::MetricsRegistry::Get().GetCounter("search.tables_scored");
  static obs::Counter* stops =
      obs::MetricsRegistry::Get().GetCounter("search.prune_stops");
  planned->Add(stats.tables_planned);
  scored->Add(stats.tables_scored);
  if (stats.stopped_early) stops->Add(1);
  obs::TraceAddCounter("tables_planned", stats.tables_planned);
  obs::TraceAddCounter("tables_scored", stats.tables_scored);
  if (stats.stopped_early) obs::TraceAddCounter("prune_stops", 1);
}

/// The shared execution skeleton every select engine runs after
/// building its plan: record plan stats, compute per-table bounds and
/// suffix sums when pruning applies (`bound_of(p)` is the engine's
/// upper bound on one answer's evidence from table p), then score
/// tables in ascending order with the safe early-stop check after each.
/// Keeping this in one place keeps the stop condition and stats
/// accounting from drifting apart across engines.
///
/// Two exact eliminations besides the PR 5 gap test:
///   - A table whose bound is 0 is skipped without scoring: a zero
///     upper bound proves it contributes no Add call at all, so the
///     reference scan of the same table is a no-op and skipping it
///     leaves every accumulated double bit-identical.
///   - When the suffix bound after table pi is exactly 0, every
///     remaining table is a proven no-op and the scan ends with the
///     ranking equal to the full one (ShouldStop never fires on
///     remaining == 0, so this stop must live here).
/// Scan order stays ascending — reordering would change double
/// summation order and break bit-identity with the reference.
template <typename BoundFn, typename ScoreFn>
void RunPlannedTables(SearchWorkspace* ws, const TopKOptions& topk,
                      BoundFn&& bound_of, ScoreFn&& score_table) {
  using Decision = SearchWorkspace::TableDecision;
  ws->query_stats.tables_planned = static_cast<int64_t>(ws->plan.size());
  const bool prune = topk.k > 0 && topk.prune;
  // EXPLAIN capture: one branch per table when off (the serving
  // default), so the zero-allocation / <=2% overhead contract holds;
  // when on, every planned table lands in the decision log with the
  // bound that decided its fate.
  const bool explain = ws->explain_enabled();
  if (explain) ws->decision_bounds_valid = prune;
  if (prune) {
    obs::TraceSpan bound_span("search.bounds");
    for (PlannedTable& p : ws->plan) p.bound = bound_of(p);
    ComputeSuffixBounds(ws);
  }
  {
    obs::TraceSpan score_span("search.score");
    for (size_t pi = 0; pi < ws->plan.size(); ++pi) {
      const double bound = prune ? ws->plan[pi].bound : 0.0;
      const double suffix = prune ? ws->suffix_bound[pi] : 0.0;
      if (prune && bound <= 0.0) {
        if (explain) {
          ws->decision_log.push_back({ws->plan[pi].table,
                                      Decision::Verdict::kPrunedZeroBound,
                                      bound, suffix});
        }
        continue;
      }
      score_table(ws->plan[pi]);
      ++ws->query_stats.tables_scored;
      if (explain) {
        ws->decision_log.push_back(
            {ws->plan[pi].table, Decision::Verdict::kScored, bound, suffix});
      }
      if (!prune) continue;
      // Stop when the remaining tail is a proven no-op (suffix == 0) or
      // the top-k gap test proves the prefix final.
      if (suffix <= 0.0 || ws->ShouldStop(topk.k, suffix)) {
        if (explain) {
          for (size_t pj = pi + 1; pj < ws->plan.size(); ++pj) {
            ws->decision_log.push_back({ws->plan[pj].table,
                                        Decision::Verdict::kPrunedSuffix,
                                        ws->plan[pj].bound,
                                        ws->suffix_bound[pj]});
          }
        }
        break;
      }
    }
  }
  if (prune) {
    // Any table the scan never scored — skipped as zero-bound or left
    // behind a stop — counts as pruned work.
    ws->query_stats.stopped_early =
        ws->query_stats.tables_scored < ws->query_stats.tables_planned;
  }
  RecordQueryStatsMetrics(ws->query_stats);
}

}  // namespace search_internal
}  // namespace webtab

#endif  // WEBTAB_SEARCH_SELECT_KERNEL_H_
