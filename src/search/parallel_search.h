#ifndef WEBTAB_SEARCH_PARALLEL_SEARCH_H_
#define WEBTAB_SEARCH_PARALLEL_SEARCH_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/task_pool.h"
#include "search/corpus_view.h"
#include "search/join_search.h"
#include "search/posting_cursor.h"
#include "search/query.h"
#include "search/search_workspace.h"
#include "search/shard_scan.h"

namespace webtab {

/// Which select engine a scatter-gather query runs (mirrors the serving
/// layer's engine dispatch; the join engine has its own entry point).
enum class SelectEngineKind { kBaseline, kType, kTypeRelation };

/// Splits `num_tables` into `shards` contiguous table-order ranges as
/// evenly as possible: `starts` gets shards + 1 boundaries, shard s
/// covering [starts[s], starts[s+1]). Purely logical — no snapshot
/// format change; the per-shard views below clamp the table-ordered
/// postings to the range.
void PartitionTables(int64_t num_tables, int shards,
                     std::vector<int32_t>* starts);

/// A logical shard of a corpus: delegates every accessor to the base
/// view but clamps all posting lists to the tables in [begin, end).
/// Because postings are sorted by non-decreasing table and a clamp never
/// splits one table's run, the shard plans an engine builds concatenate
/// (in shard order) to exactly the sequential plan over the base view —
/// the root of the scatter-gather determinism contract.
///
/// Block-max spans are deliberately reported empty: a clamped span's
/// offsets no longer align to the base list's block boundaries, so the
/// cursors fall back to pure galloping (exact; prune bounds come from
/// exact run counts, never from block maxima).
class ShardView final : public CorpusView {
 public:
  void Reset(const CorpusView* base, int32_t begin_table,
             int32_t end_table) {
    base_ = base;
    begin_ = begin_table;
    end_ = end_table;
  }
  int32_t begin_table() const { return begin_; }
  int32_t end_table() const { return end_; }

  int64_t num_tables() const override { return base_->num_tables(); }
  int rows(int t) const override { return base_->rows(t); }
  int cols(int t) const override { return base_->cols(t); }
  int64_t table_id(int t) const override { return base_->table_id(t); }
  std::string_view cell(int t, int r, int c) const override {
    return base_->cell(t, r, c);
  }
  std::string_view header(int t, int c) const override {
    return base_->header(t, c);
  }
  std::string_view context(int t) const override {
    return base_->context(t);
  }
  TypeId ColumnType(int t, int c) const override {
    return base_->ColumnType(t, c);
  }
  EntityId CellEntity(int t, int r, int c) const override {
    return base_->CellEntity(t, r, c);
  }
  RelationCandidate RelationOf(int t, int c1, int c2) const override {
    return base_->RelationOf(t, c1, c2);
  }
  void GatherColumn(int t, int c, int row_begin, int n, EntityId* entities,
                    std::string_view* cells) const override {
    base_->GatherColumn(t, c, row_begin, n, entities, cells);
  }

  std::span<const ColumnRef> HeaderPostings(
      std::string_view token) const override {
    return Clamp(base_->HeaderPostings(token));
  }
  std::span<const int32_t> ContextPostings(
      std::string_view token) const override {
    return Clamp(base_->ContextPostings(token));
  }
  std::span<const ColumnRef> TypePostings(TypeId t) const override {
    return Clamp(base_->TypePostings(t));
  }
  std::span<const RelationRef> RelationPostings(
      RelationId b) const override {
    return Clamp(base_->RelationPostings(b));
  }
  std::span<const CellRef> EntityPostings(EntityId e) const override {
    return Clamp(base_->EntityPostings(e));
  }
  bool HasMatchSupport() const override { return base_->HasMatchSupport(); }
  std::span<const CellTokenRef> CellTokenPostings(
      std::string_view token) const override {
    return Clamp(base_->CellTokenPostings(token));
  }

 private:
  template <typename T>
  std::span<const T> Clamp(std::span<const T> s) const {
    auto below = [](const T& r, int32_t t) {
      return search_internal::PostingTable(r) < t;
    };
    const T* first =
        std::lower_bound(s.data(), s.data() + s.size(), begin_, below);
    const T* last = std::lower_bound(first, s.data() + s.size(), end_, below);
    return {first, static_cast<size_t>(last - first)};
  }

  const CorpusView* base_ = nullptr;
  int32_t begin_ = 0, end_ = 0;
};

/// Reusable per-worker state for scatter-gather query execution: the
/// task pool, one workspace-pool slot per potential shard (workspaces
/// reused across queries — steady state allocates nothing), and the
/// shared cross-shard control word. One context serves any number of
/// sequential queries; not thread-safe across queries (one in-flight
/// query per context, like SearchWorkspace itself).
///
/// `threads` == 0 builds the inline deterministic executor: shards run
/// on the calling thread in a plan-all / score-and-replay-per-shard
/// order, so each shard's scoring pass observes every stop the gather
/// published for earlier shards — the mode the equivalence and
/// cold-shard tests pin down.
///
/// In threaded mode the calling thread always runs shard 0 (join: leg
/// 0) itself while the pool covers the rest, so `threads` =
/// max_shards - 1 already saturates a max_shards-way fan-out — the
/// sizing the serving layer uses to avoid oversubscribing a machine
/// with one spinning request thread per worker.
class ParallelSearchContext {
 public:
  ParallelSearchContext(int max_shards, int threads)
      : pool_(threads > 0 ? threads : 0) {
    if (max_shards < 1) max_shards = 1;
    slots_.reserve(static_cast<size_t>(max_shards));
    for (int i = 0; i < max_shards; ++i) {
      slots_.push_back(std::make_unique<Slot>());
    }
  }

  int max_shards() const { return static_cast<int>(slots_.size()); }
  bool threaded() const { return pool_.num_threads() > 0; }

  // --- Executor-facing internals (parallel_search.cc). ---
  struct Slot {
    SearchWorkspace ws;
    ShardView view;
    search_internal::ShardScan scan;
    std::atomic<uint32_t> state{0};
    std::vector<SearchResult> scratch_out;  // engines' dummy emit target
    // Select-shard task arguments (set per query before Launch).
    SelectEngineKind engine = SelectEngineKind::kType;
    const SelectQuery* query = nullptr;
    const NormalizedSelectQuery* nq = nullptr;
    TopKOptions topk;
  };

  /// Per-binding output of a parallel join leg-1 expansion, merged by
  /// the caller in binding order so every accumulated double matches the
  /// sequential engine bit for bit.
  struct BindingResult {
    std::vector<std::pair<EntityId, double>> pairs;  // leg_acc, in order
    int64_t planned = 0;
    int64_t scored = 0;
    std::vector<SearchWorkspace::TableDecision> log;  // explain only
    std::atomic<uint32_t> done{0};
  };
  struct JoinTaskArgs {
    const CorpusView* index = nullptr;
    const JoinQuery* query = nullptr;
    std::span<const std::pair<EntityId, double>> bindings;
    bool support_valid = false;
    bool use_batch = true;
    bool explain = false;
    int stride = 1;  // number of leg-1 tasks
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::unique_ptr<BindingResult>> bindings_;
  JoinTaskArgs join_args_;
  TaskPool pool_;
  search_internal::ShardControl control_;
  std::vector<int32_t> shard_starts_;
  std::vector<double> suffix_;  // global suffix bounds over the merged plan
  std::vector<size_t> shard_base_;  // each shard's global plan offset
};

/// Scatter-gather select execution: partitions the corpus into
/// min(topk.parallelism, ctx->max_shards()) table-range shards, runs
/// `engine` per shard (recording evidence calls), and replays the
/// records in global table order into `ws`, running the exact
/// sequential zero-bound / suffix / gap-test logic on the merged
/// evidence. The final ranking in `out` — scores, display strings,
/// tie-breaks, stats — is byte-identical to the sequential engine for
/// every k/prune/batch combination. When the merged stop rule fires,
/// the global stop position is published to in-flight shards, which
/// abandon later tables mid-flight (counted in
/// stats().shard_tables_abandoned).
///
/// With effective parallelism 1 this simply runs the sequential engine.
void ParallelSelectSearch(SelectEngineKind engine, const CorpusView& index,
                          const SelectQuery& query,
                          const NormalizedSelectQuery& normalized,
                          const TopKOptions& topk, ParallelSearchContext* ctx,
                          SearchWorkspace* ws, std::vector<SearchResult>* out);

/// Parallel join execution: leg 2 (binding enumeration) runs
/// sequentially on `ws`; leg-1 expansions parallelize per binding on the
/// task pool, each into a private accumulator, and merge in binding
/// order — byte-identical to the sequential join engine.
void ParallelJoinSearch(const CorpusView& index, const JoinQuery& query,
                        const TopKOptions& topk, ParallelSearchContext* ctx,
                        SearchWorkspace* ws, std::vector<SearchResult>* out);

}  // namespace webtab

#endif  // WEBTAB_SEARCH_PARALLEL_SEARCH_H_
