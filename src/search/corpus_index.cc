#include "search/corpus_index.h"

#include <unordered_set>

#include "text/tokenizer.h"

namespace webtab {

namespace {
template <typename K, typename V>
const std::vector<V>& FindOrEmpty(
    const std::unordered_map<K, std::vector<V>>& map, const K& key) {
  static const std::vector<V> kEmpty;
  auto it = map.find(key);
  return it == map.end() ? kEmpty : it->second;
}
}  // namespace

CorpusIndex::CorpusIndex(std::vector<AnnotatedTable> tables,
                         ClosureCache* closure)
    : tables_(std::move(tables)) {
  for (int i = 0; i < static_cast<int>(tables_.size()); ++i) {
    const Table& table = tables_[i].table;
    const TableAnnotation& ann = tables_[i].annotation;

    for (const std::string& token : Tokenize(table.context())) {
      auto& postings = context_postings_[token];
      if (postings.empty() || postings.back() != i) postings.push_back(i);
    }
    for (int c = 0; c < table.cols(); ++c) {
      for (const std::string& token : Tokenize(table.header(c))) {
        header_postings_[token].push_back(ColumnRef{i, c});
      }
      TypeId t = ann.TypeOf(c);
      if (t != kNa) {
        if (closure != nullptr) {
          for (TypeId anc : closure->TypeAncestorsOfType(t)) {
            type_postings_[anc].push_back(ColumnRef{i, c});
          }
        } else {
          type_postings_[t].push_back(ColumnRef{i, c});
        }
      }
      for (int r = 0; r < table.rows(); ++r) {
        EntityId e = ann.EntityOf(r, c);
        if (e != kNa) entity_postings_[e].push_back(CellRef{i, r, c});
      }
    }
    for (const auto& [pair, rel] : ann.relations) {
      if (rel.is_na()) continue;
      relation_postings_[rel.relation].push_back(
          RelationRef{i, pair.first, pair.second, rel.swapped});
    }
  }
}

const std::vector<CorpusIndex::ColumnRef>& CorpusIndex::HeaderPostings(
    const std::string& token) const {
  return FindOrEmpty(header_postings_, token);
}

const std::vector<int>& CorpusIndex::ContextPostings(
    const std::string& token) const {
  return FindOrEmpty(context_postings_, token);
}

const std::vector<CorpusIndex::ColumnRef>& CorpusIndex::TypePostings(
    TypeId t) const {
  return FindOrEmpty(type_postings_, t);
}

const std::vector<CorpusIndex::RelationRef>& CorpusIndex::RelationPostings(
    RelationId b) const {
  return FindOrEmpty(relation_postings_, b);
}

const std::vector<CorpusIndex::CellRef>& CorpusIndex::EntityPostings(
    EntityId e) const {
  return FindOrEmpty(entity_postings_, e);
}

}  // namespace webtab
