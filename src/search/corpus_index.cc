#include "search/corpus_index.h"

#include <algorithm>

#include "common/logging.h"
#include "search/block_max.h"
#include "search/posting_cursor.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {
/// Works for both the id-keyed maps and the transparent token maps;
/// `key` may be a string_view probing a std::string-keyed map without
/// allocating.
template <typename Map, typename K>
auto FindOrEmpty(const Map& map, const K& key)
    -> std::span<const typename Map::mapped_type::value_type> {
  auto it = map.find(key);
  if (it == map.end()) return {};
  return std::span<const typename Map::mapped_type::value_type>(it->second);
}
}  // namespace

CorpusIndex::CorpusIndex(std::vector<AnnotatedTable> tables,
                         ClosureCache* closure)
    : tables_(std::move(tables)) {
  for (int i = 0; i < static_cast<int>(tables_.size()); ++i) {
    const Table& table = tables_[i].table;
    const TableAnnotation& ann = tables_[i].annotation;

    for (const std::string& token : Tokenize(table.context())) {
      auto& postings = context_postings_[token];
      if (postings.empty() || postings.back() != i) postings.push_back(i);
    }
    for (int c = 0; c < table.cols(); ++c) {
      for (const std::string& token : Tokenize(table.header(c))) {
        header_postings_[token].push_back(ColumnRef{i, c});
      }
      for (int r = 0; r < table.rows(); ++r) {
        // Distinct tokens only: `min_tokens` must be the same
        // distinct-token count CellMatchesText's Jaccard uses.
        std::vector<std::string> toks = Tokenize(table.cell(r, c));
        std::sort(toks.begin(), toks.end());
        toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
        const int32_t na = static_cast<int32_t>(toks.size());
        if (na == 0) {
          // Sentinel row under the empty token: this column has a cell
          // that normalizes to "", the only thing an empty-text target
          // can exact-match. min_tokens is unused here but must pass
          // the >= 1 snapshot validation.
          auto& support = cell_token_postings_[std::string()];
          if (support.empty() || support.back().table != i ||
              support.back().col != c) {
            support.push_back(CellTokenRef{i, c, 1, 0, 0});
          }
          continue;
        }
        for (const std::string& token : toks) {
          auto& support = cell_token_postings_[token];
          if (support.empty() || support.back().table != i ||
              support.back().col != c) {
            support.push_back(CellTokenRef{i, c, na, 0, 0});
          } else if (na < support.back().min_tokens) {
            support.back().min_tokens = na;
          }
          CellTokenRef& entry = support.back();
          for (const std::string& other : toks) {
            if (other != token) entry.cooc |= CellTokenMask(other);
          }
        }
      }
      TypeId t = ann.TypeOf(c);
      if (t != kNa) {
        if (closure != nullptr) {
          for (TypeId anc : closure->TypeAncestorsOfType(t)) {
            type_postings_[anc].push_back(ColumnRef{i, c});
          }
        } else {
          type_postings_[t].push_back(ColumnRef{i, c});
        }
      }
      for (int r = 0; r < table.rows(); ++r) {
        EntityId e = ann.EntityOf(r, c);
        if (e != kNa) entity_postings_[e].push_back(CellRef{i, r, c});
      }
    }
    for (const auto& [pair, rel] : ann.relations) {
      if (rel.is_na()) continue;
      relation_postings_[rel.relation].push_back(
          RelationRef{i, pair.first, pair.second, rel.swapped ? 1 : 0});
    }
  }

  // Every postings list is table-sorted by construction (tables are
  // indexed in ascending order), which the search kernel's galloping
  // cursors rely on (posting_cursor.h) and the snapshot writer
  // serializes verbatim. Verify the invariant once at build time so a
  // future build-order change fails loudly here instead of silently
  // corrupting rankings.
  auto check = [](auto& map, const char* what) {
    for (const auto& [key, postings] : map) {
      int32_t prev = -1;
      for (const auto& ref : postings) {
        int32_t table = search_internal::PostingTable(ref);
        WEBTAB_CHECK(table >= prev)
            << what << " postings out of table order";
        prev = table;
      }
    }
  };
  check(header_postings_, "header");
  check(context_postings_, "context");
  check(type_postings_, "type");
  check(relation_postings_, "relation");
  check(entity_postings_, "entity");
  check(cell_token_postings_, "cell token");

  // Block-max summaries over every search-facing posting list, via the
  // same helper the snapshot writer uses (block_max.h).
  auto rows_of = [this](int32_t t) { return tables_[t].table.rows(); };
  auto build_blocks = [&](const auto& postings_map, auto* blocks_map) {
    for (const auto& [key, postings] : postings_map) {
      search_internal::AppendPostingBlocks(
          std::span(postings), rows_of, &(*blocks_map)[key]);
    }
  };
  build_blocks(header_postings_, &header_blocks_);
  build_blocks(context_postings_, &context_blocks_);
  build_blocks(type_postings_, &type_blocks_);
  build_blocks(relation_postings_, &relation_blocks_);
  build_blocks(entity_postings_, &entity_blocks_);
}

std::span<const ColumnRef> CorpusIndex::HeaderPostings(
    std::string_view token) const {
  return FindOrEmpty(header_postings_, token);
}

std::span<const int32_t> CorpusIndex::ContextPostings(
    std::string_view token) const {
  return FindOrEmpty(context_postings_, token);
}

std::span<const ColumnRef> CorpusIndex::TypePostings(TypeId t) const {
  return FindOrEmpty(type_postings_, t);
}

std::span<const RelationRef> CorpusIndex::RelationPostings(
    RelationId b) const {
  return FindOrEmpty(relation_postings_, b);
}

std::span<const CellRef> CorpusIndex::EntityPostings(EntityId e) const {
  return FindOrEmpty(entity_postings_, e);
}

std::span<const CellTokenRef> CorpusIndex::CellTokenPostings(
    std::string_view token) const {
  return FindOrEmpty(cell_token_postings_, token);
}

PostingBlockSpan CorpusIndex::HeaderPostingBlocks(
    std::string_view token) const {
  return FindOrEmpty(header_blocks_, token);
}

PostingBlockSpan CorpusIndex::ContextPostingBlocks(
    std::string_view token) const {
  return FindOrEmpty(context_blocks_, token);
}

PostingBlockSpan CorpusIndex::TypePostingBlocks(TypeId t) const {
  return FindOrEmpty(type_blocks_, t);
}

PostingBlockSpan CorpusIndex::RelationPostingBlocks(RelationId b) const {
  return FindOrEmpty(relation_blocks_, b);
}

PostingBlockSpan CorpusIndex::EntityPostingBlocks(EntityId e) const {
  return FindOrEmpty(entity_blocks_, e);
}

}  // namespace webtab
