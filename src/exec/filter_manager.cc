#include "exec/filter_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace webtab {
namespace exec {

int FilterManager::RegisterClass(const char* name,
                                 std::span<const ConditionDef> conds) {
  WEBTAB_CHECK(!conds.empty() &&
               conds.size() <= static_cast<size_t>(kMaxConditions))
      << "FilterManager class needs 1.." << kMaxConditions
      << " conditions, got " << conds.size();
  ClassState c;
  c.name = name;
  c.num_conditions = static_cast<int>(conds.size());
  for (size_t i = 0; i < conds.size(); ++i) {
    c.conditions[i].name = conds[i].name;
    c.conditions[i].cost = conds[i].cost;
    c.order[i] = static_cast<uint8_t>(i);
  }
  classes_.push_back(c);
  return static_cast<int>(classes_.size()) - 1;
}

uint64_t FilterManager::NextRandom() {
  // xorshift64* — deterministic from the constructor seed; state
  // advances only on exploration draws, so the stream is a pure
  // function of the call sequence.
  rng_ ^= rng_ >> 12;
  rng_ ^= rng_ << 25;
  rng_ ^= rng_ >> 27;
  return rng_ * 0x2545f4914f6cdd1dull;
}

void FilterManager::Reorder(ClassState* c) {
  ++c->resamples;
  if (c->num_conditions < 2) return;
  if (c->resamples % kExplorePeriod == 0) {
    // Exploration: a seeded-random permutation for the next window, so
    // conditions stuck in late positions get measured on unfiltered
    // populations again (late conditions only see lanes earlier ones
    // failed, which biases their measured rates).
    for (int i = c->num_conditions - 1; i > 0; --i) {
      const int j = static_cast<int>(NextRandom() % (i + 1));
      std::swap(c->order[i], c->order[j]);
    }
    c->exploring = true;
    return;
  }
  // Exploit: for a disjunctive screen every passing lane skips all
  // later conditions, so evaluate the highest pass-rate-per-cost
  // condition first. Stable tie-break on condition index keeps the
  // order deterministic when rates tie.
  c->exploring = false;
  // Insertion sort over at most kMaxConditions entries; the comparator
  // is a total order (index tie-break), so the result is the unique
  // sorted permutation.
  const auto before = [&](uint8_t a, uint8_t b) {
    const ConditionState& ca = c->conditions[a];
    const ConditionState& cb = c->conditions[b];
    const double ra = ca.PassRate() / ca.cost;
    const double rb = cb.PassRate() / cb.cost;
    if (ra != rb) return ra > rb;
    return a < b;
  };
  std::array<uint8_t, kMaxConditions>& order = c->order;
  const int n = std::min(c->num_conditions, kMaxConditions);
  for (int i = 1; i < n; ++i) {
    const uint8_t v = order[i];
    int j = i;
    while (j > 0 && before(v, order[j - 1])) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = v;
  }
}

void FilterManager::EndBatch(int cls) {
  ClassState& c = classes_[cls];
  ++c.batches;
  if (c.batches % kResamplePeriod == 0) Reorder(&c);
}

}  // namespace exec
}  // namespace webtab
