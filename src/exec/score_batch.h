#ifndef WEBTAB_EXEC_SCORE_BATCH_H_
#define WEBTAB_EXEC_SCORE_BATCH_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "catalog/ids.h"
#include "exec/bit_vector.h"
#include "exec/tid_list.h"

namespace webtab {
namespace exec {

/// One fixed-capacity columnar batch of scoring work — the
/// VectorProjection of this codebase. Each lane array holds one
/// attribute of up to kBatchSize (table, entity, col, bound, score)
/// items; `active` is the selection vector of lanes still alive.
/// Predicates run as columnar passes over `active` (via TidList::Filter
/// / PartitionInto or BitVector::Assign + BuildFromBits), never as
/// per-item branches inside scoring loops.
///
/// All storage is inline and fixed, so a ScoreBatch allocates exactly
/// once (at construction, inside its BitVector) and nothing per batch:
/// the zero-steady-state-allocation contract of the kernels it backs.
///
/// Producers fill only the lanes their pipeline reads — e.g. the
/// select kernel's bound screen fills `table` and `bound` and never
/// touches `entity`; the lemma sweep uses `entity`/`score`. Unfilled
/// lanes carry stale values by design (they are never read without a
/// fill; the batch is scratch, not a record).
struct ScoreBatch {
  static constexpr uint32_t kCapacity = kBatchSize;

  uint32_t size = 0;

  std::array<int32_t, kCapacity> table;
  std::array<EntityId, kCapacity> entity;
  std::array<int32_t, kCapacity> col;
  std::array<double, kCapacity> bound;
  std::array<double, kCapacity> score;
  /// Gathered cell text (views into the corpus mapping, valid for the
  /// duration of the query like every other engine string_view).
  std::array<std::string_view, kCapacity> text;

  /// Lanes still alive (ascending). Reset(n) selects everything.
  TidList active;
  /// Scratch second list for PartitionInto-style splits.
  TidList scratch;
  /// Dense scratch for predicate passes feeding BuildFromBits.
  BitVector bits;

  ScoreBatch() : bits(kCapacity) {}

  /// Begins a batch of n items with every lane index active.
  void Reset(uint32_t n) {
    size = n;
    active.Reset(n);
    scratch.Clear();
  }
};

}  // namespace exec
}  // namespace webtab

#endif  // WEBTAB_EXEC_SCORE_BATCH_H_
