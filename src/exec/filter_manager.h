#ifndef WEBTAB_EXEC_FILTER_MANAGER_H_
#define WEBTAB_EXEC_FILTER_MANAGER_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace webtab {
namespace exec {

/// Adaptive predicate reorderer for columnar screens — the
/// FilterManager treatment adapted to this kernel's disjunctive bound
/// screens. A "query class" is one registered set of conditions (e.g.
/// the type engine's zero-bound screen); per class the manager tracks
/// each condition's measured pass rate and static cost hint, and
/// periodically permutes evaluation order so the condition that peels
/// off the most lanes per unit cost runs first.
///
/// Screens here are disjunctive (a lane survives if ANY condition
/// passes; each passing lane skips the remaining conditions), so the
/// preferred order is descending pass-rate / cost — the opposite of
/// the conjunctive textbook order, same machinery.
///
/// Determinism contract: reordering decisions depend only on the
/// sequence of Record/EndBatch calls and the constructor seed — no
/// wall-clock sampling anywhere. A fixed seed and a fixed query
/// sequence produce a fixed permutation trace (asserted by
/// exec_batch_test via EXPLAIN). Rates are measured from integer
/// counters; periodic exploration rounds (seeded xorshift) evaluate a
/// random permutation so later-positioned conditions keep getting
/// measured on unfiltered populations.
///
/// Not thread-safe; one instance per workspace/worker.
class FilterManager {
 public:
  static constexpr int kMaxConditions = 4;
  /// Reconsider the permutation every this many batches per class.
  static constexpr uint64_t kResamplePeriod = 32;
  /// Every this many resamples, explore a random permutation instead
  /// of exploiting the measured best.
  static constexpr uint64_t kExplorePeriod = 8;
  static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ull;

  struct ConditionDef {
    const char* name;
    /// Relative evaluation cost per lane (any consistent unit).
    double cost;
  };

  struct ConditionState {
    const char* name = nullptr;
    double cost = 1.0;
    uint64_t evaluated = 0;  // lanes this condition was evaluated on
    uint64_t passed = 0;     // lanes it proved alive
    /// Laplace-smoothed pass-rate estimate (0.5 prior when unseen).
    double PassRate() const {
      return static_cast<double>(passed + 1) /
             static_cast<double>(evaluated + 2);
    }
  };

  struct ClassState {
    const char* name = nullptr;
    int num_conditions = 0;
    std::array<ConditionState, kMaxConditions> conditions;
    /// Current evaluation order (condition indices).
    std::array<uint8_t, kMaxConditions> order{};
    uint64_t batches = 0;
    uint64_t resamples = 0;
    /// True while the current order is an exploration round.
    bool exploring = false;
  };

  explicit FilterManager(uint64_t seed = kDefaultSeed) : rng_(seed) {}

  /// Registers a condition set; returns the class id. Call once per
  /// class at workspace setup.
  int RegisterClass(const char* name, std::span<const ConditionDef> conds);

  /// Current evaluation order for `cls` (condition indices).
  std::span<const uint8_t> Order(int cls) const {
    const ClassState& c = classes_[cls];
    return {c.order.data(), static_cast<size_t>(c.num_conditions)};
  }

  /// Reports one columnar pass: `cond` was evaluated on `evaluated`
  /// lanes and passed `passed` of them.
  void Record(int cls, int cond, uint64_t evaluated, uint64_t passed) {
    ConditionState& s = classes_[cls].conditions[cond];
    s.evaluated += evaluated;
    s.passed += passed;
  }

  /// Marks one batch finished; every kResamplePeriod batches the order
  /// is re-derived from the measured rates (or explored).
  void EndBatch(int cls);

  const ClassState& state(int cls) const { return classes_[cls]; }
  int num_classes() const { return static_cast<int>(classes_.size()); }
  /// All registered classes, indexed by class id — the snapshot the
  /// serving layer copies out for {"op":"stats"} and EXPLAIN.
  std::span<const ClassState> classes() const { return classes_; }

 private:
  uint64_t NextRandom();  // xorshift64*, deterministic from seed
  void Reorder(ClassState* c);

  std::vector<ClassState> classes_;
  uint64_t rng_;
};

}  // namespace exec
}  // namespace webtab

#endif  // WEBTAB_EXEC_FILTER_MANAGER_H_
