#ifndef WEBTAB_EXEC_BIT_VECTOR_H_
#define WEBTAB_EXEC_BIT_VECTOR_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace webtab {
namespace exec {

/// Word-at-a-time bit vector — the dense half of the selection-vector
/// pair (TidList is the sparse half). Predicates write one bit per lane
/// without branching (Assign), and consumers walk set bits with a
/// count-trailing-zeros loop, so filtering cost scales with words plus
/// matches, not with lanes.
///
/// Storage grows monotonically and is reused across batches; Resize
/// only allocates past the high-water mark, so steady-state batch
/// filtering performs no allocations.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(uint32_t num_bits) { Resize(num_bits); }

  /// Sets the logical size to `num_bits` with all bits clear. Tail bits
  /// of the last word stay zero — every whole-word operation below
  /// relies on that invariant.
  void Resize(uint32_t num_bits) {
    num_bits_ = num_bits;
    const size_t words = NumWords();
    if (words_.size() < words) words_.resize(words, 0);
    std::memset(words_.data(), 0, words * sizeof(uint64_t));
  }

  uint32_t num_bits() const { return num_bits_; }
  size_t NumWords() const { return (num_bits_ + 63) / 64; }

  bool Test(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(uint32_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(uint32_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Branch-free conditional set: writes bit i = cond without a branch
  /// (the predicate-lane idiom — evaluate the condition as 0/1, OR it
  /// into place).
  void Assign(uint32_t i, bool cond) {
    words_[i >> 6] |= static_cast<uint64_t>(cond) << (i & 63);
  }

  void SetAll() {
    const size_t words = NumWords();
    if (words == 0) return;
    std::memset(words_.data(), 0xff, words * sizeof(uint64_t));
    // Keep tail bits zero (the whole-word invariant).
    const uint32_t tail = num_bits_ & 63;
    if (tail != 0) words_[words - 1] = (uint64_t{1} << tail) - 1;
  }

  uint32_t CountOnes() const {
    uint32_t n = 0;
    const size_t words = NumWords();
    for (size_t w = 0; w < words; ++w) {
      n += static_cast<uint32_t>(std::popcount(words_[w]));
    }
    return n;
  }

  void And(const BitVector& other) {
    const size_t words = NumWords();
    for (size_t w = 0; w < words; ++w) words_[w] &= other.words_[w];
  }
  void Or(const BitVector& other) {
    const size_t words = NumWords();
    for (size_t w = 0; w < words; ++w) words_[w] |= other.words_[w];
  }

  /// Visits set bits in ascending order: one ctz per match plus one
  /// load per word. Ascending order is load-bearing — the search
  /// kernel's scan order (and so double summation order) follows it.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    const size_t words = NumWords();
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  const uint64_t* words() const { return words_.data(); }

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace exec
}  // namespace webtab

#endif  // WEBTAB_EXEC_BIT_VECTOR_H_
