#ifndef WEBTAB_EXEC_TID_LIST_H_
#define WEBTAB_EXEC_TID_LIST_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>

#include "common/logging.h"
#include "exec/bit_vector.h"

namespace webtab {
namespace exec {

/// Batches hold at most this many lanes. 1024 keeps every lane array
/// comfortably inside L1/L2 while amortizing per-batch fixed costs.
inline constexpr uint32_t kBatchSize = 1024;

/// Sparse selection vector over one batch: the ascending list of lane
/// indices ("tids") still active. Fixed capacity kBatchSize, inline
/// storage — a TidList never allocates.
///
/// Filtering uses the store-always / advance-conditionally idiom:
/// every element is written back unconditionally and the write cursor
/// advances by the predicate's 0/1 value, so a filter pass costs one
/// predictable loop regardless of how the predicate's outcomes are
/// distributed. Passes preserve ascending order, which downstream scan
/// loops (and so double summation order) rely on.
class TidList {
 public:
  TidList() = default;

  /// Resets to the full selection [0, n).
  void Reset(uint32_t n) {
    WEBTAB_CHECK(n <= kBatchSize) << "batch overflow: " << n;
    size_ = n;
    for (uint32_t i = 0; i < n; ++i) tids_[i] = i;
  }

  void Clear() { size_ = 0; }

  void Append(uint32_t tid) {
    WEBTAB_CHECK(size_ < kBatchSize) << "TidList overflow";
    tids_[size_++] = tid;
  }

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Raw write access for producers that compact parallel value lanes
  /// alongside the tid lane (store-always into both, then SetSize).
  uint32_t* mutable_data() { return tids_.data(); }
  void SetSize(uint32_t n) {
    WEBTAB_CHECK(n <= kBatchSize) << "batch overflow: " << n;
    size_ = n;
  }

  /// Restores ascending order after PartitionInto-style passes have
  /// interleaved survivors from several conditions. Downstream passes
  /// (forward-only posting counters, FP summation order) require it.
  void SortAscending() { std::sort(tids_.begin(), tids_.begin() + size_); }
  uint32_t operator[](uint32_t i) const { return tids_[i]; }
  std::span<const uint32_t> tids() const { return {tids_.data(), size_}; }

  const uint32_t* begin() const { return tids_.data(); }
  const uint32_t* end() const { return tids_.data() + size_; }

  /// Rebuilds the selection from a bit vector's set bits (ascending).
  void BuildFromBits(const BitVector& bits) {
    size_ = 0;
    bits.ForEachSetBit([&](uint32_t i) { tids_[size_++] = i; });
  }

  /// Keeps tids where pred(tid) is true; branch-free compaction.
  template <typename Pred>
  void Filter(Pred&& pred) {
    uint32_t out = 0;
    for (uint32_t i = 0; i < size_; ++i) {
      const uint32_t t = tids_[i];
      tids_[out] = t;
      out += static_cast<uint32_t>(static_cast<bool>(pred(t)));
    }
    size_ = out;
  }

  /// Splits this list by pred: passing tids are appended to `pass`
  /// (in ascending order), failing tids stay here (ascending). The
  /// disjunctive-screen building block — each condition peels off the
  /// lanes it proves alive, the remainder moves on to the next.
  template <typename Pred>
  void PartitionInto(TidList* pass, Pred&& pred) {
    uint32_t out = 0;
    for (uint32_t i = 0; i < size_; ++i) {
      const uint32_t t = tids_[i];
      const bool p = static_cast<bool>(pred(t));
      // Both sides use store-always writes; only the cursors branch on
      // nothing.
      pass->tids_[pass->size_] = t;
      pass->size_ += static_cast<uint32_t>(p);
      tids_[out] = t;
      out += static_cast<uint32_t>(!p);
    }
    size_ = out;
  }

 private:
  uint32_t size_ = 0;
  std::array<uint32_t, kBatchSize> tids_;
};

}  // namespace exec
}  // namespace webtab

#endif  // WEBTAB_EXEC_TID_LIST_H_
