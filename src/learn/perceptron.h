#ifndef WEBTAB_LEARN_PERCEPTRON_H_
#define WEBTAB_LEARN_PERCEPTRON_H_

#include <vector>

#include "index/candidates.h"
#include "inference/belief_propagation.h"
#include "learn/feature_map.h"
#include "table/annotation.h"

namespace webtab {

struct PerceptronOptions {
  int epochs = 5;
  double learning_rate = 0.25;
  bool averaged = true;
  bool loss_augmented = true;
  LossWeights loss;
  uint64_t shuffle_seed = 11;
  bool use_relations = true;
  BpOptions bp;
  /// Starting point. Default() converges much faster than Zero().
  Weights initial = Weights::Default();
};

struct TrainStats {
  std::vector<double> epoch_losses;  // Mean train loss per epoch.
  int updates = 0;
};

/// Averaged structured perceptron with loss-augmented decoding — our
/// stand-in for the max-margin structured learner of [22] (§4.3 trains
/// w1..w5 on Wiki Manual). Gold labels are injected into every label
/// space so the target is always reachable.
Weights TrainPerceptron(const std::vector<LabeledTable>& data,
                        const CatalogView* catalog,
                        const LemmaIndexView* index,
                        const CandidateOptions& candidates,
                        const FeatureOptions& feature_options,
                        const PerceptronOptions& options,
                        TrainStats* stats = nullptr);

}  // namespace webtab

#endif  // WEBTAB_LEARN_PERCEPTRON_H_
