#include "learn/loss.h"

namespace webtab {

double AnnotationLoss(const TableAnnotation& gold,
                      const TableAnnotation& predicted,
                      const LossWeights& weights, bool entities_only,
                      bool relations_only) {
  double loss = 0.0;
  int rows = static_cast<int>(gold.cell_entities.size());
  int cols = static_cast<int>(gold.column_types.size());
  if (!relations_only) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (gold.EntityOf(r, c) != predicted.EntityOf(r, c)) {
          loss += weights.entity;
        }
      }
    }
    if (!entities_only) {
      for (int c = 0; c < cols; ++c) {
        if (gold.TypeOf(c) != predicted.TypeOf(c)) loss += weights.type;
      }
    }
  }
  if (!entities_only) {
    // Union of pairs labeled by either side.
    std::map<std::pair<int, int>, bool> pairs;
    for (const auto& [p, rel] : gold.relations) pairs[p] = true;
    for (const auto& [p, rel] : predicted.relations) pairs[p] = true;
    for (const auto& [p, unused] : pairs) {
      (void)unused;
      if (!(gold.RelationOf(p.first, p.second) ==
            predicted.RelationOf(p.first, p.second))) {
        loss += weights.relation;
      }
    }
  }
  return loss;
}

void AddLossAugmentation(const TableLabelSpace& space,
                         const TableAnnotation& gold,
                         const LossWeights& weights, TableGraph* graph) {
  int rows = space.rows();
  int cols = space.cols();
  for (int c = 0; c < cols; ++c) {
    int v = graph->type_var[c];
    if (v < 0) continue;
    const auto& domain = space.TypeDomain(c);
    int gold_idx = TableLabelSpace::IndexOfType(domain, gold.TypeOf(c));
    if (gold_idx < 0) gold_idx = 0;
    for (int l = 0; l < static_cast<int>(domain.size()); ++l) {
      if (l != gold_idx) {
        graph->graph.AddToNodeLogPotential(v, l, weights.type);
      }
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int v = graph->entity_var[r][c];
      if (v < 0) continue;
      const auto& domain = space.EntityDomain(r, c);
      int gold_idx =
          TableLabelSpace::IndexOfEntity(domain, gold.EntityOf(r, c));
      if (gold_idx < 0) gold_idx = 0;
      for (int l = 0; l < static_cast<int>(domain.size()); ++l) {
        if (l != gold_idx) {
          graph->graph.AddToNodeLogPotential(v, l, weights.entity);
        }
      }
    }
  }
  for (const auto& [pair, v] : graph->relation_var) {
    const auto& domain = space.RelationDomain(pair.first, pair.second);
    int gold_idx = TableLabelSpace::IndexOfRelation(
        domain, gold.RelationOf(pair.first, pair.second));
    if (gold_idx < 0) gold_idx = 0;
    for (int l = 0; l < static_cast<int>(domain.size()); ++l) {
      if (l != gold_idx) {
        graph->graph.AddToNodeLogPotential(v, l, weights.relation);
      }
    }
  }
}

}  // namespace webtab
