#ifndef WEBTAB_LEARN_LOSS_H_
#define WEBTAB_LEARN_LOSS_H_

#include "inference/table_graph.h"
#include "model/label_space.h"
#include "table/annotation.h"

namespace webtab {

/// Per-variable Hamming loss weights. Relations and types are fewer than
/// cells, so they get larger default weight to balance the tasks.
struct LossWeights {
  double entity = 1.0;
  double type = 2.0;
  double relation = 2.0;
};

/// Weighted Hamming distance between two annotations over the variables
/// that `gold` labels (datasets that only label entities or relations
/// contribute only those terms).
double AnnotationLoss(const TableAnnotation& gold,
                      const TableAnnotation& predicted,
                      const LossWeights& weights, bool entities_only = false,
                      bool relations_only = false);

/// Adds the Hamming loss to a table graph's node potentials: every label
/// that disagrees with the gold assignment gains its loss weight, turning
/// MAP into loss-augmented decoding (margin rescaling, [22]).
void AddLossAugmentation(const TableLabelSpace& space,
                         const TableAnnotation& gold,
                         const LossWeights& weights, TableGraph* graph);

}  // namespace webtab

#endif  // WEBTAB_LEARN_LOSS_H_
