#include "learn/ssvm.h"

#include <numeric>

#include "common/rng.h"

namespace webtab {

Weights TrainSsvm(const std::vector<LabeledTable>& data,
                  const CatalogView* catalog, const LemmaIndexView* index,
                  const CandidateOptions& candidates,
                  const FeatureOptions& feature_options,
                  const SsvmOptions& options, TrainStats* stats) {
  ClosureCache closure(catalog);
  // Snapshot-backed indexes have no mutable vocabulary; materialize a
  // private copy (identical IDF statistics) for feature similarity.
  Vocabulary vocab_storage;
  FeatureComputer features(&closure,
                           EnsureMutableVocabulary(*index, &vocab_storage),
                           feature_options);
  Rng rng(options.shuffle_seed);
  // One workspace across all examples and epochs: message buffers are
  // reused, so steady-state decodes allocate nothing in BP.
  BpWorkspace bp_workspace;

  std::vector<double> w = options.initial.Flatten();
  std::vector<TableLabelSpace> spaces;
  spaces.reserve(data.size());
  // One candidate workspace across the training set: the column-probe
  // batch and vote scratch are reused table to table. The feature
  // computer's similarity scratch then persists across every epoch's
  // decode loop, so repeated (cell, label) evaluations are lookups.
  CandidateWorkspace candidate_workspace;
  for (const LabeledTable& lt : data) {
    TableCandidates cand = GenerateCandidates(
        lt.table, *index, &closure, candidates, &candidate_workspace);
    spaces.push_back(TableLabelSpace::Build(lt.table, cand, &lt.gold));
  }

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  int64_t t = 0;
  int updates = 0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t idx : order) {
      ++t;
      double eta = options.learning_rate /
                   (1.0 + options.lambda * static_cast<double>(t));
      const LabeledTable& lt = data[idx];
      Weights current = Weights::FromFlat(w);
      TableAnnotation predicted = LossAugmentedDecode(
          lt.table, spaces[idx], &features, current, lt.gold, options.loss,
          options.use_relations, options.bp, &bp_workspace);
      double l = AnnotationLoss(lt.gold, predicted, options.loss,
                                lt.entities_only, lt.relations_only);
      epoch_loss += l;

      // L2 shrinkage then (sub)gradient step on the hinge term.
      for (double& x : w) x *= (1.0 - eta * options.lambda);
      if (l > 0.0) {
        std::vector<double> psi_gold = JointFeatureMap(
            lt.table, lt.gold, &features, options.use_relations);
        std::vector<double> psi_pred = JointFeatureMap(
            lt.table, predicted, &features, options.use_relations);
        for (size_t i = 0; i < w.size(); ++i) {
          w[i] += eta * (psi_gold[i] - psi_pred[i]);
        }
        ++updates;
      }
    }
    if (stats != nullptr) {
      stats->epoch_losses.push_back(
          data.empty() ? 0.0 : epoch_loss / static_cast<double>(data.size()));
    }
  }
  if (stats != nullptr) stats->updates = updates;
  return Weights::FromFlat(w);
}

}  // namespace webtab
