#ifndef WEBTAB_LEARN_FEATURE_MAP_H_
#define WEBTAB_LEARN_FEATURE_MAP_H_

#include <vector>

#include "inference/belief_propagation.h"
#include "learn/loss.h"
#include "model/features.h"
#include "model/label_space.h"
#include "table/annotation.h"

namespace webtab {

/// Joint feature map Ψ(x, y): the sum of f1..f5 over a complete labeling,
/// concatenated in Weights::Flatten() order. By construction,
/// w.Flatten() · Ψ(x,y) equals the model's log-score of y.
std::vector<double> JointFeatureMap(const Table& table,
                                    const TableAnnotation& annotation,
                                    FeatureComputer* features,
                                    bool use_relations = true);

/// One loss-augmented decode: builds the graph under `w`, adds the
/// Hamming augmentation toward `gold`, runs BP, returns the decoded
/// annotation. Shared by the perceptron and SSVM trainers. `workspace`
/// is optional; the trainers pass one reused across all examples and
/// epochs so steady-state decoding performs no message-buffer
/// allocations (ROADMAP: faster epochs).
TableAnnotation LossAugmentedDecode(const Table& table,
                                    const TableLabelSpace& space,
                                    FeatureComputer* features,
                                    const Weights& w,
                                    const TableAnnotation& gold,
                                    const LossWeights& loss,
                                    bool use_relations,
                                    const BpOptions& bp_options,
                                    BpWorkspace* workspace = nullptr);

}  // namespace webtab

#endif  // WEBTAB_LEARN_FEATURE_MAP_H_
