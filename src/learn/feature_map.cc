#include "learn/feature_map.h"

#include "inference/belief_propagation.h"
#include "inference/table_graph.h"

namespace webtab {

std::vector<double> JointFeatureMap(const Table& table,
                                    const TableAnnotation& annotation,
                                    FeatureComputer* features,
                                    bool use_relations) {
  std::vector<double> psi(kF1Size + kF2Size + kF3Size + kF4Size + kF5Size,
                          0.0);
  auto add = [&](int offset, const auto& f) {
    for (size_t i = 0; i < f.size(); ++i) psi[offset + i] += f[i];
  };
  constexpr int kOff1 = 0;
  constexpr int kOff2 = kOff1 + kF1Size;
  constexpr int kOff3 = kOff2 + kF2Size;
  constexpr int kOff4 = kOff3 + kF3Size;
  constexpr int kOff5 = kOff4 + kF4Size;

  for (int c = 0; c < table.cols(); ++c) {
    TypeId t = annotation.TypeOf(c);
    if (t != kNa) add(kOff2, features->F2(table.header(c), t));
    for (int r = 0; r < table.rows(); ++r) {
      EntityId e = annotation.EntityOf(r, c);
      if (e == kNa) continue;
      add(kOff1, features->F1(table.cell(r, c), e));
      if (t != kNa) add(kOff3, features->F3(t, e));
    }
  }
  if (use_relations) {
    for (const auto& [pair, rel] : annotation.relations) {
      if (rel.is_na()) continue;
      auto [c1, c2] = pair;
      TypeId t1 = annotation.TypeOf(c1);
      TypeId t2 = annotation.TypeOf(c2);
      if (t1 != kNa && t2 != kNa) add(kOff4, features->F4(rel, t1, t2));
      for (int r = 0; r < table.rows(); ++r) {
        EntityId e1 = annotation.EntityOf(r, c1);
        EntityId e2 = annotation.EntityOf(r, c2);
        if (e1 != kNa && e2 != kNa) {
          add(kOff5, features->F5(rel, e1, e2));
        }
      }
    }
  }
  return psi;
}

TableAnnotation LossAugmentedDecode(const Table& table,
                                    const TableLabelSpace& space,
                                    FeatureComputer* features,
                                    const Weights& w,
                                    const TableAnnotation& gold,
                                    const LossWeights& loss,
                                    bool use_relations,
                                    const BpOptions& bp_options,
                                    BpWorkspace* workspace) {
  TableGraphOptions graph_options;
  graph_options.use_relations = use_relations;
  TableGraph graph =
      BuildTableGraph(table, space, features, w, graph_options);
  AddLossAugmentation(space, gold, loss, &graph);
  BpResult bp = RunBeliefPropagation(graph.graph, bp_options, workspace);
  return graph.DecodeAssignment(bp.assignment, space);
}

}  // namespace webtab
