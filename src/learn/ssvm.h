#ifndef WEBTAB_LEARN_SSVM_H_
#define WEBTAB_LEARN_SSVM_H_

#include <vector>

#include "learn/perceptron.h"

namespace webtab {

struct SsvmOptions {
  int epochs = 8;
  double lambda = 1e-3;        // L2 regularization strength.
  double learning_rate = 0.5;  // Base step; decays as eta/(1+lambda*t).
  LossWeights loss;
  uint64_t shuffle_seed = 13;
  bool use_relations = true;
  BpOptions bp;
  Weights initial = Weights::Default();
};

/// Stochastic-subgradient structural SVM with margin rescaling
/// (Pegasos-style optimization of the objective in Tsochantaridis et
/// al. [22]): per example, decode ŷ = argmax_y w·Ψ(x,y) + L(y*, y) and
/// step along Ψ(x,y*) − Ψ(x,ŷ) with L2 shrinkage.
Weights TrainSsvm(const std::vector<LabeledTable>& data,
                  const CatalogView* catalog,
                  const LemmaIndexView* index,
                  const CandidateOptions& candidates,
                  const FeatureOptions& feature_options,
                  const SsvmOptions& options, TrainStats* stats = nullptr);

}  // namespace webtab

#endif  // WEBTAB_LEARN_SSVM_H_
