#ifndef WEBTAB_COMMON_TIMER_H_
#define WEBTAB_COMMON_TIMER_H_

#include <chrono>

namespace webtab {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace webtab

#endif  // WEBTAB_COMMON_TIMER_H_
