#include "common/table_printer.h"

#include <algorithm>

#include "common/string_util.h"

namespace webtab {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace webtab
