#ifndef WEBTAB_COMMON_STATUS_H_
#define WEBTAB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace webtab {

/// Error categories for recoverable failures. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
  kParseError,
  kUnavailable,
  kDeadlineExceeded,
};

/// Human-readable name for a status code ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A RocksDB/Abseil-style status object: either OK or an error code with a
/// message. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(payload_);
  }

  /// Requires ok(). Undefined behaviour otherwise (checked in debug builds
  /// by the variant access).
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status from an expression producing a Status.
#define WEBTAB_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::webtab::Status webtab_status_tmp_ = (expr);      \
    if (!webtab_status_tmp_.ok()) return webtab_status_tmp_; \
  } while (false)

}  // namespace webtab

#endif  // WEBTAB_COMMON_STATUS_H_
