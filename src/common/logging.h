#ifndef WEBTAB_COMMON_LOGGING_H_
#define WEBTAB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace webtab {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for emitted log lines. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error",
/// case-insensitively. Returns false (and leaves `out` alone) on
/// anything else.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Applies the WEBTAB_LOG_LEVEL environment variable, if set and valid
/// (see ParseLogLevel). Called once at tool startup; an unparsable
/// value logs a Warning and keeps the default.
void InitLogLevelFromEnv();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by checks.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define WEBTAB_LOG(level)                                              \
  if (::webtab::LogLevel::k##level < ::webtab::GetLogLevel()) {        \
  } else                                                               \
    ::webtab::internal::LogMessage(::webtab::LogLevel::k##level,       \
                                   __FILE__, __LINE__)                 \
        .stream()

/// Aborts with a message if `cond` is false. For programmer errors only;
/// recoverable failures use Status.
#define WEBTAB_CHECK(cond)                                                  \
  if (cond) {                                                               \
  } else                                                                    \
    ::webtab::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

#define WEBTAB_CHECK_OK(expr)                                    \
  do {                                                           \
    const ::webtab::Status webtab_check_status_ = (expr);        \
    WEBTAB_CHECK(webtab_check_status_.ok())                      \
        << webtab_check_status_.ToString();                      \
  } while (false)

}  // namespace webtab

#endif  // WEBTAB_COMMON_LOGGING_H_
