#include "common/flags.h"

#include <cstdlib>

#include "common/string_util.h"

namespace webtab {

void FlagSet::AddInt(const std::string& name, int64_t* target,
                     const std::string& help) {
  flags_[name] = {Kind::kInt, target, help};
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  flags_[name] = {Kind::kDouble, target, help};
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  flags_[name] = {Kind::kString, target, help};
}

void FlagSet::AddBool(const std::string& name, bool* target,
                      const std::string& help) {
  flags_[name] = {Kind::kBool, target, help};
}

Status FlagSet::Assign(const FlagInfo& info, const std::string& value) {
  switch (info.kind) {
    case Kind::kInt: {
      char* end = nullptr;
      int64_t v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad integer: " + value);
      }
      *static_cast<int64_t*>(info.target) = v;
      return Status::Ok();
    }
    case Kind::kDouble: {
      char* end = nullptr;
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double: " + value);
      }
      *static_cast<double*>(info.target) = v;
      return Status::Ok();
    }
    case Kind::kString:
      *static_cast<std::string*>(info.target) = value;
      return Status::Ok();
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(info.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(info.target) = false;
      } else {
        return Status::InvalidArgument("bad bool: " + value);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      positional_.push_back(arg);  // Pass through (e.g. --benchmark_*).
      continue;
    }
    if (!has_value) {
      if (it->second.kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
    }
    WEBTAB_RETURN_IF_ERROR(Assign(it->second, value));
  }
  return Status::Ok();
}

std::string FlagSet::Usage() const {
  std::string out = "Flags:\n";
  for (const auto& [name, info] : flags_) {
    out += StrFormat("  --%-24s %s\n", name.c_str(), info.help.c_str());
  }
  return out;
}

}  // namespace webtab
