#include "common/task_pool.h"

namespace webtab {

TaskPool::TaskPool(int num_threads) {
  threads_.reserve(num_threads > 0 ? static_cast<size_t>(num_threads) : 0);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::Launch(TaskFn fn, void* ctx, int count) {
  if (threads_.empty()) {
    // Inline degradation: deterministic single-thread execution.
    for (int i = 0; i < count; ++i) fn(ctx, i);
    std::lock_guard<std::mutex> lock(mu_);
    count_ = count;
    completed_ = count;
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Even after the previous group's last task completed, a worker may
    // still be between its final ++completed_ and the claim attempt that
    // observes exhaustion. Resetting next_ under it would hand that
    // stale worker index 0 of the new group with the old fn/ctx. Wait
    // for every worker to leave the old claim loop first.
    done_cv_.wait(lock, [&] { return completed_ >= count_ && active_ == 0; });
    fn_ = fn;
    ctx_ = ctx;
    count_ = count;
    completed_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
}

void TaskPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return completed_ >= count_ && active_ == 0; });
}

void TaskPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    TaskFn fn;
    void* ctx;
    int count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      fn = fn_;
      ctx = ctx_;
      count = count_;
      ++active_;
    }
    while (true) {
      const int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(ctx, i);
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
      if (completed_ >= count) done_cv_.notify_all();
    }
    {
      // Claim loop exhausted: this worker can no longer touch next_
      // until the next generation, so the group retires when the last
      // one gets here.
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0 && completed_ >= count_) done_cv_.notify_all();
    }
  }
}

}  // namespace webtab
