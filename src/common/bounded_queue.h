#ifndef WEBTAB_COMMON_BOUNDED_QUEUE_H_
#define WEBTAB_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace webtab {

/// A mutex-based multi-producer multi-consumer FIFO with a hard capacity.
/// Producers never block: TryPush fails immediately when the queue is
/// full, which is the admission-control point of the serving layer —
/// under overload the caller gets a fast rejection instead of unbounded
/// queueing. Consumers block in Pop until an item arrives or the queue is
/// closed and drained, so Close() lets already-accepted work finish
/// (nothing in flight is dropped).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed. Never blocks. On
  /// failure `item` is NOT consumed — the caller keeps ownership (so a
  /// rejected request can still carry its error back to the submitter).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returning it) or the queue is
  /// closed and empty (returning nullopt). Items accepted before Close()
  /// are always delivered.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes all blocked consumers once the
  /// backlog drains. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace webtab

#endif  // WEBTAB_COMMON_BOUNDED_QUEUE_H_
