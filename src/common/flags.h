#ifndef WEBTAB_COMMON_FLAGS_H_
#define WEBTAB_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace webtab {

/// Minimal command-line flag parser for bench/example binaries.
/// Supports --name=value and --name value; bool flags accept bare --name.
/// Unrecognized arguments are collected as positional arguments so the
/// google-benchmark flags (--benchmark_*) pass through untouched.
class FlagSet {
 public:
  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target,
               const std::string& help);

  /// Parses argv, writing values into the registered targets.
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing all registered flags with their help strings.
  std::string Usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct FlagInfo {
    Kind kind;
    void* target;
    std::string help;
  };
  Status Assign(const FlagInfo& info, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_;
};

}  // namespace webtab

#endif  // WEBTAB_COMMON_FLAGS_H_
