#ifndef WEBTAB_COMMON_TASK_POOL_H_
#define WEBTAB_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace webtab {

/// Minimal fixed-size worker pool for intra-query fan-out (the search
/// scatter-gather and the join's per-binding leg expansion). One task
/// group runs at a time: Launch hands the workers a plain function
/// pointer plus a caller-owned context and an index range — no
/// std::function, no queue nodes — so launching a group performs no
/// allocations and the serving hot path keeps its zero-steady-state-
/// allocation contract.
///
/// Tasks must never block on work that only the pool could run (the
/// scatter-gather protocol keeps shards lock-free for exactly this
/// reason). Completion is usually observed through the caller's own
/// per-task state; Drain() is the barrier for reusing the group's
/// context.
///
/// A pool built with zero threads degrades to running every task inline
/// on the Launch caller — the deterministic mode the equivalence tests
/// use.
class TaskPool {
 public:
  using TaskFn = void (*)(void* ctx, int index);

  explicit TaskPool(int num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Starts `count` tasks fn(ctx, 0 .. count-1) on the pool and returns
  /// immediately (with zero threads: runs them all before returning).
  /// Waits for the previous group to fully retire first (see Drain), so
  /// a worker still inside the old group's claim loop can never claim an
  /// index of the new group with the old fn/ctx.
  void Launch(TaskFn fn, void* ctx, int count);

  /// Blocks until every task of the current group has finished AND every
  /// worker has left the group's claim loop. The second half matters: a
  /// worker that just completed the group's last task still performs one
  /// more claim attempt before parking, and the group only becomes safe
  /// to replace once that attempt has observed exhaustion. Idempotent; a
  /// no-op when no group is in flight.
  void Drain();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  TaskFn fn_ = nullptr;      // guarded by mu_ (read once per wakeup)
  void* ctx_ = nullptr;      // guarded by mu_
  int count_ = 0;            // guarded by mu_
  int completed_ = 0;        // guarded by mu_
  int active_ = 0;           // guarded by mu_; workers inside the claim loop
  uint64_t generation_ = 0;  // guarded by mu_; bumps once per Launch
  bool shutdown_ = false;    // guarded by mu_
  std::atomic<int> next_{0};
  std::vector<std::thread> threads_;
};

}  // namespace webtab

#endif  // WEBTAB_COMMON_TASK_POOL_H_
