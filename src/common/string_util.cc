#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace webtab {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool LooksNumeric(std::string_view s) {
  bool saw_digit = false;
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isdigit(u)) {
      saw_digit = true;
    } else if (c != '+' && c != '-' && c != '.' && c != ',' && c != '%' &&
               c != '$' && !std::isspace(u)) {
      return false;
    }
  }
  return saw_digit;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace webtab
