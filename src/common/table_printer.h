#ifndef WEBTAB_COMMON_TABLE_PRINTER_H_
#define WEBTAB_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace webtab {

/// Aligned text-table writer used by the bench binaries to print
/// paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; missing trailing cells print empty, extras are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace webtab

#endif  // WEBTAB_COMMON_TABLE_PRINTER_H_
