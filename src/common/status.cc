#include "common/status.h"

namespace webtab {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace webtab
