#include "common/logging.h"

#include <atomic>

namespace webtab {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* value = std::getenv("WEBTAB_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return;
  LogLevel level;
  if (ParseLogLevel(value, &level)) {
    SetLogLevel(level);
  } else {
    WEBTAB_LOG(Warning) << "ignoring unparsable WEBTAB_LOG_LEVEL=\""
                        << value << "\" (want debug|info|warning|error)";
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace webtab
