#ifndef WEBTAB_COMMON_RNG_H_
#define WEBTAB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace webtab {

/// Deterministic pseudo-random generator (PCG32 seeded via SplitMix64).
/// All randomness in the library flows through explicit Rng instances so
/// that worlds, corpora, experiments and tests are exactly reproducible
/// from a 64-bit seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Derives an independent child stream; deterministic in (parent seed,
  /// stream id). Useful to decorrelate sub-generators.
  Rng Fork(uint64_t stream_id) const;

  uint32_t NextU32();
  uint64_t NextU64();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent s (s=0 is uniform).
  /// Sampled by inversion over precomputable weights; O(log n) per draw
  /// after an O(n) table build memoized for the (n, s) most recently used.
  uint64_t Zipf(uint64_t n, double s);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (uint64_t i = v->size() - 1; i > 0; --i) {
      uint64_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks one element uniformly. Requires non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  // Memoized cumulative weights for the Zipf sampler.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace webtab

#endif  // WEBTAB_COMMON_RNG_H_
