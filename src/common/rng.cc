#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace webtab {

namespace {
// SplitMix64: expands a 64-bit seed into well-distributed initial state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  state_ = SplitMix64(&s);
  inc_ = SplitMix64(&s) | 1ULL;  // Stream selector must be odd.
}

Rng Rng::Fork(uint64_t stream_id) const {
  uint64_t mix = state_ ^ (0xA0761D6478BD642FULL * (stream_id + 1));
  return Rng(mix);
}

uint32_t Rng::NextU32() {
  // PCG-XSH-RR.
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
  uint32_t rot = static_cast<uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint64_t Rng::Uniform(uint64_t n) {
  WEBTAB_CHECK(n > 0) << "Uniform(0) is undefined";
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WEBTAB_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformReal() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  WEBTAB_CHECK(n > 0);
  if (n == 1) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = total;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= total;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = UniformReal();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

double Rng::Gaussian() {
  double u1 = 0.0;
  do {
    u1 = UniformReal();
  } while (u1 <= 1e-300);
  double u2 = UniformReal();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace webtab
