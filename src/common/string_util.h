#ifndef WEBTAB_COMMON_STRING_UTIL_H_
#define WEBTAB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace webtab {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any ASCII whitespace run; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` consists only of digits, signs, decimal points, commas,
/// percent signs and whitespace — the table-screening notion of a
/// "numeric" cell.
bool LooksNumeric(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace webtab

#endif  // WEBTAB_COMMON_STRING_UTIL_H_
