#ifndef WEBTAB_COMMON_DEADLINE_H_
#define WEBTAB_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace webtab {

/// A point in monotonic time by which a request must finish. Requests
/// carry a Deadline through the serving queue so workers can shed load
/// that is no longer worth doing (the client already gave up) instead of
/// burning annotation time on it. Default-constructed deadlines never
/// expire.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline AfterMillis(int64_t millis) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::milliseconds(millis);
    return d;
  }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; negative when already expired. A very
  /// large value for infinite deadlines.
  double remaining_millis() const {
    if (infinite_) return 1e18;
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace webtab

#endif  // WEBTAB_COMMON_DEADLINE_H_
