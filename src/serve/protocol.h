#ifndef WEBTAB_SERVE_PROTOCOL_H_
#define WEBTAB_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog_view.h"
#include "serve/service.h"
#include "table/table.h"

namespace webtab {
namespace serve {

/// The JSON-lines wire format spoken by serve_tool over stdin or TCP:
/// one request object per line in, one response object per line out.
/// Requests name catalog objects by string; ids are resolved against the
/// snapshot generation that answers the request (names are stable across
/// snapshots, ids need not be). See src/serve/README.md for the full
/// protocol reference.
///
///   {"op":"search","engine":"type_relation","relation":"directed",
///    "type1":"movie","type2":"director","e2":"george clooney","k":5}
///   {"op":"annotate","table":{"headers":["Title","written by"],
///    "rows":[["...","..."]],"context":"..."}}
///   {"op":"swap","path":"/data/new.snap"}
///   {"op":"timeseries","window_s":60}   {"op":"debug"}
///   {"op":"stats"}   {"op":"metrics"}   {"op":"quit"}

struct WireSelect {
  std::string relation, type1, type2, e2;
};

struct WireJoin {
  std::string r1, r2, e3;
  bool e1_is_subject = true;
  bool e2_is_subject = true;
  int max_join_entities = 20;
};

struct WireTable {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
  std::string context;
  int64_t id = -1;
};

struct WireRequest {
  enum class Op {
    kAnnotate, kSearch, kJoin, kSwap, kStats, kMetrics,
    kTimeseries, kDebug, kQuit
  };
  Op op = Op::kStats;
  EngineKind engine = EngineKind::kTypeRelation;
  WireSelect select;
  WireJoin join;
  WireTable table;
  std::string path;        // swap
  /// <= 0 (wire "k" absent): engines compute the exact full ranking
  /// and only the rendered list is truncated (to 10). > 0: flows into
  /// the engines as TopKOptions{k, prune=true} — bounded selection
  /// with safe pruning; scores are then lower bounds and
  /// total_results <= k.
  int top_k = 0;
  /// Wire "parallelism" on search/join requests: intra-query
  /// scatter-gather fan-out. 0 (absent) uses the server default
  /// (ServiceOptions::search_shards); values are clamped to
  /// [1, search_shards]. Results are byte-identical at any setting —
  /// the knob trades latency for cores, never answers.
  int parallelism = 0;
  int64_t deadline_ms = 0; // 0 = service default
  /// Wire "stats": true — opt-in on search/join requests. The response
  /// then carries a "stats" object with the engine's pruning counters
  /// (tables_planned / tables_scored / stopped_early) when the engine
  /// actually ran; cache hits answer without one.
  bool want_stats = false;
  /// Wire "trace": true — opt-in on search/join/annotate requests. The
  /// response then carries a "trace" object with the per-stage wall
  /// time breakdown; cache hits answer with an empty stage list.
  bool want_trace = false;
  /// Wire "explain": true — opt-in on search/join/annotate requests.
  /// Search/join responses gain an "explain" object with the per-table
  /// decision log (scored / pruned and the bounds that justified it);
  /// annotate responses gain per-column candidate counts and the BP
  /// convergence curve. Explained requests bypass the result cache
  /// lookup so the decision log always reflects a real engine run.
  bool want_explain = false;
  /// Wire "window_s" on {"op":"timeseries"}: rollup window in seconds
  /// (clamped to the store's retention). Default 60.
  double window_s = 60.0;
};

/// Parses one request line. Unknown fields are ignored; a missing or
/// unknown "op" is an error.
Result<WireRequest> ParseWireRequest(std::string_view line);

/// Resolves wire strings against a catalog: names that match become ids,
/// everything stays available in string form for the text-fallback paths
/// (exactly what the §5 engines expect).
SelectQuery ResolveSelectQuery(const WireSelect& wire,
                               const CatalogView& catalog);
JoinQuery ResolveJoinQuery(const WireJoin& wire, const CatalogView& catalog);

/// Post-resolution validation: kInvalidArgument naming the offending
/// field when a name the chosen engine relies on did not resolve —
/// the type engine needs type1/type2, the type_relation engine needs
/// relation (it reads nothing else), joins need r1/r2. The baseline
/// treats all inputs as strings so nothing is required, and e2/e3
/// always keep their free-text fallback (the paper's "E2 not in the
/// catalog" case). This is how a typo'd name surfaces as a JSON error
/// instead of a silently empty ranking.
Status ValidateResolvedSelect(EngineKind engine, const WireSelect& wire,
                              const SelectQuery& query);
Status ValidateResolvedJoin(const WireJoin& wire, const JoinQuery& query);

/// Builds a Table from the wire form; rows must be rectangular.
Result<Table> WireToTable(const WireTable& wire);

// --- Response rendering (one JSON line, no trailing newline). ---
/// `want_stats` echoes the request's "stats" flag: when set and the
/// response carries engine stats, a "stats" object is emitted. Traces
/// render whenever the response carries one (the service only fills it
/// for opted-in requests).
std::string RenderSearchResponse(const SearchResponse& response,
                                 const CatalogView* catalog, int top_k,
                                 bool want_stats = false);
std::string RenderAnnotateResponse(const AnnotateResponse& response,
                                   const CatalogView* catalog);
std::string RenderErrorResponse(const Status& status);
std::string RenderSwapResponse(uint64_t version);
/// Service counters plus the full process metrics registry: every
/// counter/gauge value and every histogram with count, sum, mean,
/// p50/p95/p99 and its non-empty buckets (upper bound + count).
std::string RenderStatsResponse(const ServiceStats& stats,
                                uint64_t snapshot_version,
                                const std::string& snapshot_path);
/// {"ok":true,"metrics":"<Prometheus text exposition>"} — the payload
/// is the same text `serve_tool --metrics-dump` prints at exit.
std::string RenderMetricsResponse();
/// {"op":"timeseries"} response: the store's rollups over the trailing
/// `window_s` seconds — counters as delta + rate_per_s, gauges as
/// last/min/max/avg, histograms as count/sum/p50/p95/p99 reconstructed
/// from the window's bucket deltas. Also reports the store's tick,
/// retention, series count and fixed memory footprint.
std::string RenderTimeseriesResponse(const obs::TimeSeriesStore& store,
                                     double window_s);
/// {"op":"debug"} response: the retained slow-request exemplars,
/// newest first — request id, kind, queue/work split and the full
/// stage trace of each over-threshold request.
std::string RenderDebugResponse(const obs::ExemplarBuffer& exemplars,
                                double threshold_ms);

}  // namespace serve
}  // namespace webtab

#endif  // WEBTAB_SERVE_PROTOCOL_H_
