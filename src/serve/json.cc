#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace webtab {
namespace serve {

namespace {

/// Recursive-descent parser over a cursor. Depth-capped so a hostile
/// request line ("[[[[...") cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    Json value;
    WEBTAB_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Status::ParseError("JSON nested too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        WEBTAB_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::String(s);
        return Status::Ok();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = Json::Bool(true);
          return Status::Ok();
        }
        return Status::ParseError("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = Json::Bool(false);
          return Status::Ok();
        }
        return Status::ParseError("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = Json::Null();
          return Status::Ok();
        }
        return Status::ParseError("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      WEBTAB_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Status::ParseError("expected ':'");
      Json value;
      WEBTAB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Status::ParseError("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Json value;
      WEBTAB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Status::ParseError("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::ParseError("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::ParseError("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::ParseError("bad \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs pass through as two
          // 3-byte sequences, good enough for a line protocol).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::ParseError("bad escape character");
      }
    }
    return Status::ParseError("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) return Status::ParseError("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::ParseError("bad number: " + token);
    }
    *out = Json::Number(value);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const Json* found = nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) found = &v;
  }
  return found;
}

std::string Json::GetString(std::string_view key,
                            std::string_view fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_string()) return std::string(fallback);
  return v->string_value();
}

double Json::GetNumber(std::string_view key, double fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->number_value();
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_bool()) return fallback;
  return v->bool_value();
}

Json& Json::Append(Json value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

Json& Json::Set(std::string_view key, Json value) {
  kind_ = Kind::kObject;
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

void JsonEscape(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void Json::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      char buf[40];
      // Integral values (ids, counts) render as integers; everything
      // else gets enough digits to round-trip a double.
      if (std::nearbyint(number_) == number_ &&
          std::fabs(number_) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      *out += buf;
      break;
    }
    case Kind::kString:
      out->push_back('"');
      JsonEscape(string_, out);
      out->push_back('"');
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        JsonEscape(key, out);
        *out += "\":";
        value.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace serve
}  // namespace webtab
