#ifndef WEBTAB_SERVE_SNAPSHOT_MANAGER_H_
#define WEBTAB_SERVE_SNAPSHOT_MANAGER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "catalog/catalog_view.h"
#include "catalog/closure.h"
#include "index/lemma_index.h"
#include "search/corpus_view.h"
#include "storage/snapshot.h"

namespace webtab {
namespace serve {

struct ServingSnapshotOptions {
  /// Open with Snapshot::OpenValidated (checksum + deep semantic
  /// validation). The serving process must survive a bad file; a crash
  /// on swap would drop every in-flight request.
  bool validated_open = true;
  /// Precompute type closures (ancestor sets, min entity distances) into
  /// the shared prototype at load, so the first request pays the same
  /// closure cost as the thousandth (ROADMAP open item).
  bool precompute_closures = true;
  /// Also precompute E(T) extents — more load-time work and resident
  /// memory for faster cold starts of extent-hungry features.
  bool precompute_entity_extents = false;
};

/// One immutable generation of serving state: the mmap'd snapshot (or
/// borrowed in-memory views) plus everything derived from it that every
/// worker shares read-only — today the precomputed closure prototype.
/// Handed out as shared_ptr; a request pins its generation for its whole
/// lifetime, so hot-swapping to a newer file never tears an in-flight
/// request and the old mapping unmaps exactly when its last request
/// finishes.
class ServingSnapshot {
 public:
  /// Opens `path` and builds derived state. All failures are Status.
  static Result<std::shared_ptr<const ServingSnapshot>> Load(
      const std::string& path, const ServingSnapshotOptions& options);

  /// Wraps in-memory builds without taking ownership (tests, embedded
  /// callers). The views must outlive the returned snapshot.
  static std::shared_ptr<const ServingSnapshot> Borrow(
      const CatalogView* catalog, const LemmaIndexView* lemma_index,
      const CorpusView* corpus,
      const ServingSnapshotOptions& options = ServingSnapshotOptions());

  const CatalogView& catalog() const { return *catalog_; }
  /// nullptr when the snapshot carries no such section.
  const LemmaIndexView* lemma_index() const { return lemma_index_; }
  const CorpusView* corpus() const { return corpus_; }

  /// The shared closure prototype, fully built at construction and
  /// read-only afterwards. Workers clone it via ClosureCache::SeedFrom.
  const ClosureCache& closure_prototype() const { return *closure_; }

  /// Source path; empty for borrowed views.
  const std::string& path() const { return path_; }

 private:
  ServingSnapshot() = default;
  void BuildClosures(const ServingSnapshotOptions& options);

  std::optional<storage::Snapshot> owned_;
  const CatalogView* catalog_ = nullptr;
  const LemmaIndexView* lemma_index_ = nullptr;
  const CorpusView* corpus_ = nullptr;
  std::unique_ptr<ClosureCache> closure_;
  std::string path_;
};

/// Publishes the current ServingSnapshot generation and hot-swaps it
/// atomically. Readers take a Handle (shared_ptr + version) once per
/// request; writers install a fully-built replacement under a short
/// lock. No reader ever observes a half-loaded snapshot, and a failed
/// load leaves the current generation serving.
class SnapshotManager {
 public:
  explicit SnapshotManager(
      ServingSnapshotOptions options = ServingSnapshotOptions())
      : options_(options) {}

  struct Handle {
    std::shared_ptr<const ServingSnapshot> snapshot;  // null before Load
    uint64_t version = 0;
  };

  /// Opens and installs `path`; returns the new version. On error the
  /// previous generation keeps serving untouched.
  Result<uint64_t> Load(const std::string& path);

  /// Installs an already-built generation (borrowed views, tests).
  uint64_t Install(std::shared_ptr<const ServingSnapshot> snapshot);

  Handle Current() const;
  uint64_t current_version() const;

  const ServingSnapshotOptions& options() const { return options_; }

 private:
  ServingSnapshotOptions options_;
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> current_;
  uint64_t version_ = 0;
};

}  // namespace serve
}  // namespace webtab

#endif  // WEBTAB_SERVE_SNAPSHOT_MANAGER_H_
