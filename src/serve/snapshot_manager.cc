#include "serve/snapshot_manager.h"

#include <utility>

namespace webtab {
namespace serve {

void ServingSnapshot::BuildClosures(const ServingSnapshotOptions& options) {
  closure_ = std::make_unique<ClosureCache>(catalog_);
  if (options.precompute_closures) {
    closure_->PrecomputeTypeClosures(options.precompute_entity_extents);
  }
}

Result<std::shared_ptr<const ServingSnapshot>> ServingSnapshot::Load(
    const std::string& path, const ServingSnapshotOptions& options) {
  Result<storage::Snapshot> opened =
      options.validated_open ? storage::Snapshot::OpenValidated(path)
                             : storage::Snapshot::Open(path);
  if (!opened.ok()) return opened.status();

  // make_shared needs a public constructor; new + shared_ptr keeps the
  // constructor private to the factories.
  std::shared_ptr<ServingSnapshot> snap(new ServingSnapshot());
  snap->owned_.emplace(std::move(opened).value());
  snap->catalog_ = snap->owned_->catalog();
  snap->lemma_index_ = snap->owned_->lemma_index();
  snap->corpus_ = snap->owned_->corpus();
  snap->path_ = path;
  snap->BuildClosures(options);
  return std::shared_ptr<const ServingSnapshot>(std::move(snap));
}

std::shared_ptr<const ServingSnapshot> ServingSnapshot::Borrow(
    const CatalogView* catalog, const LemmaIndexView* lemma_index,
    const CorpusView* corpus, const ServingSnapshotOptions& options) {
  std::shared_ptr<ServingSnapshot> snap(new ServingSnapshot());
  snap->catalog_ = catalog;
  snap->lemma_index_ = lemma_index;
  snap->corpus_ = corpus;
  snap->BuildClosures(options);
  return std::shared_ptr<const ServingSnapshot>(std::move(snap));
}

Result<uint64_t> SnapshotManager::Load(const std::string& path) {
  // Build the replacement entirely outside the lock: opening and closure
  // precompute can take a while and requests must keep flowing against
  // the current generation meanwhile.
  Result<std::shared_ptr<const ServingSnapshot>> next =
      ServingSnapshot::Load(path, options_);
  if (!next.ok()) return next.status();
  return Install(std::move(next).value());
}

uint64_t SnapshotManager::Install(
    std::shared_ptr<const ServingSnapshot> snapshot) {
  std::shared_ptr<const ServingSnapshot> retired;
  uint64_t version;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::move(current_);
    current_ = std::move(snapshot);
    version = ++version_;
  }
  // `retired` drops here, outside the lock; the old mapping unmaps when
  // the last in-flight request holding a Handle to it completes.
  return version;
}

SnapshotManager::Handle SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Handle{current_, version_};
}

uint64_t SnapshotManager::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

}  // namespace serve
}  // namespace webtab
