#include "serve/result_cache.h"

#include <algorithm>
#include <functional>

namespace webtab {
namespace serve {

ResultCache::ResultCache(int num_shards, int capacity) {
  num_shards = std::max(1, num_shards);
  per_shard_capacity_ = static_cast<size_t>(
      std::max(1, (capacity + num_shards - 1) / num_shards));
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

ResultCache::Value ResultCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(std::string_view(key));
  if (it == shard.by_key.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  // Refresh recency: splice the node to the front (iterators and the
  // string_view key stay valid).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return shard.lru.front().second;
}

void ResultCache::Put(const std::string& key, Value value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(std::string_view(key));
  if (it != shard.by_key.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.by_key.emplace(std::string_view(shard.lru.front().first),
                       shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.by_key.erase(std::string_view(shard.lru.back().first));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->by_key.clear();
    shard->lru.clear();
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace serve
}  // namespace webtab
