#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "search/baseline_search.h"
#include "search/type_relation_search.h"
#include "search/type_search.h"

namespace webtab {
namespace serve {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBaseline:
      return "baseline";
    case EngineKind::kType:
      return "type";
    case EngineKind::kTypeRelation:
      return "type_relation";
    case EngineKind::kJoin:
      return "join";
  }
  return "unknown";
}

Result<EngineKind> ParseEngineKind(std::string_view name) {
  if (name == "baseline") return EngineKind::kBaseline;
  if (name == "type") return EngineKind::kType;
  if (name == "type_relation") return EngineKind::kTypeRelation;
  if (name == "join") return EngineKind::kJoin;
  return Status::InvalidArgument("unknown engine: " + std::string(name));
}

WebTabService::WebTabService(SnapshotManager* manager,
                             ServiceOptions options)
    : manager_(manager),
      options_(options),
      queue_(static_cast<size_t>(std::max(1, options.queue_capacity))) {
  if (options_.result_cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.result_cache_shards,
                                           options_.result_cache_capacity);
  }
}

WebTabService::~WebTabService() { Stop(); }

void WebTabService::Start() {
  if (started_) return;
  started_ = true;
  const int n = std::max(1, options_.num_workers);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void WebTabService::Stop() {
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

Deadline WebTabService::EffectiveDeadline(Deadline deadline) const {
  if (deadline.infinite() && options_.default_deadline_ms > 0) {
    return Deadline::AfterMillis(options_.default_deadline_ms);
  }
  return deadline;
}

bool WebTabService::Enqueue(std::unique_ptr<Request> request) {
  if (queue_.TryPush(std::move(request))) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // TryPush does not consume on failure: `request` still owns the
  // promises, so the rejection travels through the future like any
  // other response (fast fail, nothing dropped silently). A closed
  // queue means the service was stopped — that is not overload and is
  // not counted as such.
  Status rejected;
  if (queue_.closed()) {
    rejected = Status::Unavailable("service stopped");
  } else {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    rejected = Status::Unavailable("request queue full");
  }
  if (request->kind == RequestKind::kAnnotate) {
    AnnotateResponse response;
    response.status = rejected;
    request->annotate_promise.set_value(std::move(response));
  } else {
    SearchResponse response;
    response.status = rejected;
    request->search_promise.set_value(std::move(response));
  }
  return false;
}

std::future<SearchResponse> WebTabService::SubmitSearch(EngineKind engine,
                                                        SelectQuery query,
                                                        TopKOptions topk,
                                                        Deadline deadline) {
  if (engine == EngineKind::kJoin) {
    // Join queries carry a different payload; route through SubmitJoin.
    std::promise<SearchResponse> mistyped;
    SearchResponse response;
    response.status =
        Status::InvalidArgument("join queries go through SubmitJoin");
    mistyped.set_value(std::move(response));
    return mistyped.get_future();
  }
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kSearch;
  request->engine = engine;
  request->select = std::move(query);
  request->topk = topk;
  request->deadline = EffectiveDeadline(deadline);
  std::future<SearchResponse> future = request->search_promise.get_future();
  search_requests_.fetch_add(1, std::memory_order_relaxed);
  Enqueue(std::move(request));
  return future;
}

std::future<SearchResponse> WebTabService::SubmitJoin(JoinQuery query,
                                                      TopKOptions topk,
                                                      Deadline deadline) {
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kJoin;
  request->engine = EngineKind::kJoin;
  request->join = std::move(query);
  request->topk = topk;
  request->deadline = EffectiveDeadline(deadline);
  std::future<SearchResponse> future = request->search_promise.get_future();
  search_requests_.fetch_add(1, std::memory_order_relaxed);
  Enqueue(std::move(request));
  return future;
}

std::future<AnnotateResponse> WebTabService::SubmitAnnotate(
    Table table, Deadline deadline) {
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kAnnotate;
  request->table = std::move(table);
  request->deadline = EffectiveDeadline(deadline);
  std::future<AnnotateResponse> future =
      request->annotate_promise.get_future();
  annotate_requests_.fetch_add(1, std::memory_order_relaxed);
  Enqueue(std::move(request));
  return future;
}

SearchResponse WebTabService::Search(EngineKind engine,
                                     const SelectQuery& query,
                                     TopKOptions topk, Deadline deadline) {
  return SubmitSearch(engine, query, topk, deadline).get();
}

SearchResponse WebTabService::SearchJoin(const JoinQuery& query,
                                         TopKOptions topk,
                                         Deadline deadline) {
  return SubmitJoin(query, topk, deadline).get();
}

AnnotateResponse WebTabService::Annotate(const Table& table,
                                         Deadline deadline) {
  return SubmitAnnotate(table, deadline).get();
}

Status WebTabService::SwapSnapshot(const std::string& path) {
  Result<uint64_t> version = manager_->Load(path);
  if (!version.ok()) return version.status();
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

ServiceStats WebTabService::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.annotate_requests =
      annotate_requests_.load(std::memory_order_relaxed);
  stats.search_requests = search_requests_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) stats.cache = cache_->GetStats();
  return stats;
}

void WebTabService::WorkerLoop() {
  WorkerState state;
  while (auto item = queue_.Pop()) {
    Execute(item->get(), &state);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

/// Fails the request through the right promise.
void Respond(Status status, RequestMetadata meta, bool is_annotate,
             std::promise<SearchResponse>* search_promise,
             std::promise<AnnotateResponse>* annotate_promise) {
  if (is_annotate) {
    AnnotateResponse response;
    response.status = std::move(status);
    response.meta = meta;
    annotate_promise->set_value(std::move(response));
  } else {
    SearchResponse response;
    response.status = std::move(status);
    response.meta = meta;
    search_promise->set_value(std::move(response));
  }
}

}  // namespace

void WebTabService::Execute(Request* request, WorkerState* state) {
  RequestMetadata meta;
  meta.queue_millis = request->queued.ElapsedMillis();
  const bool is_annotate = request->kind == RequestKind::kAnnotate;

  // Shed work whose deadline passed while queued; the client has already
  // timed out, so running it would only delay live requests.
  if (request->deadline.expired()) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    Respond(Status::DeadlineExceeded("deadline expired in queue"), meta,
            is_annotate, &request->search_promise,
            &request->annotate_promise);
    return;
  }

  // One Handle per request: everything below reads exactly this
  // generation, regardless of concurrent swaps.
  SnapshotManager::Handle handle = manager_->Current();
  if (handle.snapshot == nullptr) {
    Respond(Status::FailedPrecondition("no snapshot loaded"), meta,
            is_annotate, &request->search_promise,
            &request->annotate_promise);
    return;
  }
  meta.snapshot_version = handle.version;

  if (is_annotate) {
    ExecuteAnnotate(request, state, handle, meta);
  } else {
    ExecuteSearch(request, state, handle, meta);
  }
}

void WebTabService::ExecuteSearch(Request* request, WorkerState* state,
                                  const SnapshotManager::Handle& handle,
                                  RequestMetadata meta) {
  SearchResponse response;

  const CorpusView* corpus = handle.snapshot->corpus();
  if (corpus == nullptr) {
    response.status = Status::FailedPrecondition(
        "snapshot has no corpus section; search unavailable");
    response.meta = meta;
    request->search_promise.set_value(std::move(response));
    return;
  }

  // Reject out-of-range catalog ids up front (kInvalidArgument echoed
  // to the client) instead of letting per-accessor CHECKs trip deeper
  // in the stack on garbage ids.
  const bool is_join = request->kind == RequestKind::kJoin;
  const CatalogView& catalog = handle.snapshot->catalog();
  Status valid = is_join ? ValidateJoinQuery(request->join, catalog)
                         : ValidateSelectQuery(request->select, catalog);
  if (!valid.ok()) {
    response.status = std::move(valid);
    response.meta = meta;
    request->search_promise.set_value(std::move(response));
    return;
  }

  // One normalization per request, shared by the cache key and the
  // engine (the point of the shared helper in search/query.cc).
  NormalizedSelectQuery normalized;
  if (!is_join) normalized = NormalizeSelectQuery(request->select);

  // Cache key: engine + generation + canonical normalized query + the
  // top-k contract. The version prefix makes hot-swaps
  // self-invalidating; k and prune are part of the key because a
  // pruned top-k ranking is a different payload (shorter, lower-bound
  // scores) than the full ranking.
  std::string key;
  if (cache_ != nullptr) {
    key = std::string(EngineKindName(request->engine)) + "|v" +
          std::to_string(handle.version) + "|k" +
          std::to_string(request->topk.k) +
          (request->topk.prune ? "" : "|noprune") + "|" +
          (is_join ? JoinQueryCacheKey(request->join)
                   : SelectQueryCacheKey(request->select, normalized));
    if (ResultCache::Value hit = cache_->Get(key)) {
      meta.cache_hit = true;
      response.results = *hit;
      response.meta = meta;
      request->search_promise.set_value(std::move(response));
      return;
    }
  }

  WallTimer work;
  std::vector<SearchResult> results;
  SearchWorkspace* ws = &state->search_workspace;
  switch (request->engine) {
    case EngineKind::kBaseline:
      BaselineSearch(*corpus, request->select, normalized, request->topk,
                     ws, &results);
      break;
    case EngineKind::kType:
      TypeSearch(*corpus, request->select, normalized, request->topk, ws,
                 &results);
      break;
    case EngineKind::kTypeRelation:
      TypeRelationSearch(*corpus, request->select, normalized,
                         request->topk, ws, &results);
      break;
    case EngineKind::kJoin:
      JoinSearch(*corpus, request->join, request->topk, ws, &results);
      break;
  }
  meta.work_millis = work.ElapsedMillis();
  response.stats = ws->stats();
  response.has_stats = true;

  if (cache_ != nullptr) {
    auto shared = std::make_shared<const std::vector<SearchResult>>(results);
    cache_->Put(key, shared);
  }
  response.results = std::move(results);
  response.meta = meta;
  request->search_promise.set_value(std::move(response));
}

void WebTabService::ExecuteAnnotate(Request* request, WorkerState* state,
                                    const SnapshotManager::Handle& handle,
                                    RequestMetadata meta) {
  AnnotateResponse response;

  const LemmaIndexView* lemma_index = handle.snapshot->lemma_index();
  if (lemma_index == nullptr) {
    response.status = Status::FailedPrecondition(
        "snapshot has no lemma index section; annotation unavailable");
    response.meta = meta;
    request->annotate_promise.set_value(std::move(response));
    return;
  }

  // First contact with a new generation: rebuild the worker's private
  // mutable state against it. The pin keeps the old generation's views
  // alive exactly as long as something points into them.
  if (state->annotator == nullptr || state->version != handle.version) {
    state->vocab =
        std::make_unique<Vocabulary>(lemma_index->CopyVocabulary());
    state->annotator = std::make_unique<TableAnnotator>(
        &handle.snapshot->catalog(), lemma_index, options_.annotator,
        state->vocab.get());
    state->annotator->closure()->SeedFrom(
        handle.snapshot->closure_prototype());
    state->pinned = handle.snapshot;
    state->version = handle.version;
  }

  WallTimer work;
  response.annotation = state->annotator->Annotate(request->table);
  meta.work_millis = work.ElapsedMillis();
  response.meta = meta;
  request->annotate_promise.set_value(std::move(response));
}

}  // namespace serve
}  // namespace webtab
