#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "search/baseline_search.h"
#include "search/type_relation_search.h"
#include "search/type_search.h"

namespace webtab {
namespace serve {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBaseline:
      return "baseline";
    case EngineKind::kType:
      return "type";
    case EngineKind::kTypeRelation:
      return "type_relation";
    case EngineKind::kJoin:
      return "join";
  }
  return "unknown";
}

Result<EngineKind> ParseEngineKind(std::string_view name) {
  if (name == "baseline") return EngineKind::kBaseline;
  if (name == "type") return EngineKind::kType;
  if (name == "type_relation") return EngineKind::kTypeRelation;
  if (name == "join") return EngineKind::kJoin;
  return Status::InvalidArgument("unknown engine: " + std::string(name));
}

namespace {
/// Derives the store's tick length from the collector cadence so
/// rates/windows stay truthful whatever cadence the caller picks.
obs::TimeSeriesOptions ResolveTimeSeriesOptions(const ServiceOptions& o) {
  obs::TimeSeriesOptions ts = o.timeseries;
  if (o.timeseries_tick_ms > 0) {
    ts.tick_seconds = static_cast<double>(o.timeseries_tick_ms) / 1000.0;
  }
  return ts;
}
}  // namespace

WebTabService::WebTabService(SnapshotManager* manager,
                             ServiceOptions options)
    : manager_(manager),
      options_(options),
      queue_(static_cast<size_t>(std::max(1, options.queue_capacity))),
      timeseries_(ResolveTimeSeriesOptions(options)),
      exemplars_(options.slow_exemplar_capacity) {
  if (options_.result_cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.result_cache_shards,
                                           options_.result_cache_capacity);
  }
}

WebTabService::~WebTabService() { Stop(); }

void WebTabService::Start() {
  if (started_) return;
  started_ = true;
  const int n = std::max(1, options_.num_workers);
  workers_.reserve(n);
  filter_states_.resize(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (options_.timeseries_tick_ms > 0) {
    collector_ = std::thread([this] { CollectorLoop(); });
  }
}

void WebTabService::Stop() {
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(collector_mu_);
    collector_stop_ = true;
  }
  collector_cv_.notify_all();
  if (collector_.joinable()) collector_.join();
}

void WebTabService::CollectorLoop() {
  std::unique_lock<std::mutex> lock(collector_mu_);
  while (!collector_stop_) {
    collector_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.timeseries_tick_ms),
        [this] { return collector_stop_; });
    if (collector_stop_) break;
    lock.unlock();
    CollectTelemetrySample();
    lock.lock();
  }
}

void WebTabService::CollectTelemetrySample() {
  obs::UpdateProcessGauges();
  static obs::Gauge* generation =
      obs::MetricsRegistry::Get().GetGauge("serve.snapshot_generation");
  generation->Set(
      static_cast<int64_t>(manager_->Current().version));
  timeseries_.Tick(obs::MetricsRegistry::Get().Dump());
}

Deadline WebTabService::EffectiveDeadline(Deadline deadline) const {
  if (deadline.infinite() && options_.default_deadline_ms > 0) {
    return Deadline::AfterMillis(options_.default_deadline_ms);
  }
  return deadline;
}

bool WebTabService::Enqueue(std::unique_ptr<Request> request) {
  if (queue_.TryPush(std::move(request))) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // TryPush does not consume on failure: `request` still owns the
  // promises, so the rejection travels through the future like any
  // other response (fast fail, nothing dropped silently). A closed
  // queue means the service was stopped — that is not overload and is
  // not counted as such.
  Status rejected;
  if (queue_.closed()) {
    rejected = Status::Unavailable("service stopped");
  } else {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    rejected = Status::Unavailable("request queue full");
  }
  if (request->kind == RequestKind::kAnnotate) {
    AnnotateResponse response;
    response.status = rejected;
    request->annotate_promise.set_value(std::move(response));
  } else {
    SearchResponse response;
    response.status = rejected;
    request->search_promise.set_value(std::move(response));
  }
  return false;
}

std::future<SearchResponse> WebTabService::SubmitSearch(EngineKind engine,
                                                        SelectQuery query,
                                                        TopKOptions topk,
                                                        Deadline deadline,
                                                        bool want_trace,
                                                        bool want_explain) {
  if (engine == EngineKind::kJoin) {
    // Join queries carry a different payload; route through SubmitJoin.
    std::promise<SearchResponse> mistyped;
    SearchResponse response;
    response.status =
        Status::InvalidArgument("join queries go through SubmitJoin");
    mistyped.set_value(std::move(response));
    return mistyped.get_future();
  }
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kSearch;
  request->engine = engine;
  request->select = std::move(query);
  request->topk = topk;
  request->deadline = EffectiveDeadline(deadline);
  request->want_trace = want_trace;
  request->want_explain = want_explain;
  request->id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<SearchResponse> future = request->search_promise.get_future();
  search_requests_.fetch_add(1, std::memory_order_relaxed);
  Enqueue(std::move(request));
  return future;
}

std::future<SearchResponse> WebTabService::SubmitJoin(JoinQuery query,
                                                      TopKOptions topk,
                                                      Deadline deadline,
                                                      bool want_trace,
                                                      bool want_explain) {
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kJoin;
  request->engine = EngineKind::kJoin;
  request->join = std::move(query);
  request->topk = topk;
  request->deadline = EffectiveDeadline(deadline);
  request->want_trace = want_trace;
  request->want_explain = want_explain;
  request->id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<SearchResponse> future = request->search_promise.get_future();
  search_requests_.fetch_add(1, std::memory_order_relaxed);
  Enqueue(std::move(request));
  return future;
}

std::future<AnnotateResponse> WebTabService::SubmitAnnotate(
    Table table, Deadline deadline, bool want_trace, bool want_explain) {
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kAnnotate;
  request->table = std::move(table);
  request->deadline = EffectiveDeadline(deadline);
  request->want_trace = want_trace;
  request->want_explain = want_explain;
  request->id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<AnnotateResponse> future =
      request->annotate_promise.get_future();
  annotate_requests_.fetch_add(1, std::memory_order_relaxed);
  Enqueue(std::move(request));
  return future;
}

SearchResponse WebTabService::Search(EngineKind engine,
                                     const SelectQuery& query,
                                     TopKOptions topk, Deadline deadline,
                                     bool want_trace, bool want_explain) {
  return SubmitSearch(engine, query, topk, deadline, want_trace,
                      want_explain)
      .get();
}

SearchResponse WebTabService::SearchJoin(const JoinQuery& query,
                                         TopKOptions topk,
                                         Deadline deadline,
                                         bool want_trace,
                                         bool want_explain) {
  return SubmitJoin(query, topk, deadline, want_trace, want_explain).get();
}

AnnotateResponse WebTabService::Annotate(const Table& table,
                                         Deadline deadline,
                                         bool want_trace,
                                         bool want_explain) {
  return SubmitAnnotate(table, deadline, want_trace, want_explain).get();
}

Status WebTabService::SwapSnapshot(const std::string& path) {
  Result<uint64_t> version = manager_->Load(path);
  if (!version.ok()) return version.status();
  swaps_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* swap_counter =
      obs::MetricsRegistry::Get().GetCounter("serve.swaps");
  swap_counter->Add(1);
  return Status::Ok();
}

ServiceStats WebTabService::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.annotate_requests =
      annotate_requests_.load(std::memory_order_relaxed);
  stats.search_requests = search_requests_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) stats.cache = cache_->GetStats();
  {
    std::lock_guard<std::mutex> lock(filter_mu_);
    stats.filter_classes = filter_states_;
  }
  return stats;
}

void WebTabService::WorkerLoop(int worker_index) {
  WorkerState state;
  state.worker_index = worker_index;
  while (auto item = queue_.Pop()) {
    Execute(item->get(), &state);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

/// Fails the request through the right promise.
void Respond(Status status, RequestMetadata meta, bool is_annotate,
             std::promise<SearchResponse>* search_promise,
             std::promise<AnnotateResponse>* annotate_promise) {
  if (is_annotate) {
    AnnotateResponse response;
    response.status = std::move(status);
    response.meta = meta;
    annotate_promise->set_value(std::move(response));
  } else {
    SearchResponse response;
    response.status = std::move(status);
    response.meta = meta;
    search_promise->set_value(std::move(response));
  }
}

/// Per-engine serving latency histogram, resolved once per process.
obs::Histogram* EngineLatencyHistogram(EngineKind engine) {
  static obs::Histogram* histograms[4] = {
      obs::MetricsRegistry::Get().GetHistogram("serve.search.baseline_ms"),
      obs::MetricsRegistry::Get().GetHistogram("serve.search.type_ms"),
      obs::MetricsRegistry::Get().GetHistogram(
          "serve.search.type_relation_ms"),
      obs::MetricsRegistry::Get().GetHistogram("serve.search.join_ms"),
  };
  return histograms[static_cast<int>(engine)];
}

const char* RequestKindName(bool is_annotate, bool is_join) {
  return is_annotate ? "annotate" : is_join ? "join" : "search";
}

}  // namespace

void WebTabService::MaybeLogSlow(const Request& request,
                                 const RequestMetadata& meta,
                                 const obs::RequestTrace& trace) {
  if (options_.slow_request_ms <= 0.0) return;
  const double total = meta.queue_millis + meta.work_millis;
  if (total < options_.slow_request_ms) return;
  static obs::Counter* slow =
      obs::MetricsRegistry::Get().GetCounter("serve.slow_requests");
  slow->Add(1);
  const bool is_annotate = request.kind == RequestKind::kAnnotate;
  const bool is_join = request.kind == RequestKind::kJoin;

  // Retain the full trace for {"op":"debug"} — the log line below is
  // transient, the exemplar buffer is what makes a slow p99 event
  // inspectable minutes later. Allocation is fine here: this is the
  // already-slow path.
  {
    obs::RequestExemplar exemplar;
    exemplar.request_id = meta.request_id;
    exemplar.kind = RequestKindName(is_annotate, is_join);
    if (!is_annotate) {
      exemplar.kind += ":";
      exemplar.kind += EngineKindName(request.engine);
    }
    if (is_annotate) {
      exemplar.detail = std::to_string(request.table.rows()) + "x" +
                        std::to_string(request.table.cols()) + " table";
    } else if (is_join) {
      exemplar.detail = request.join.e3_text;
    } else {
      exemplar.detail = request.select.e2_text;
    }
    exemplar.snapshot_version = meta.snapshot_version;
    exemplar.queue_ms = meta.queue_millis;
    exemplar.work_ms = meta.work_millis;
    exemplar.trace = obs::TraceSummary::From(trace, meta.work_millis);
    exemplars_.Record(std::move(exemplar));
  }
  char buf[64];
  std::string line;
  line.reserve(256);
  line += "slow request id=";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(meta.request_id));
  line += buf;
  line += " kind=";
  line += RequestKindName(is_annotate, is_join);
  if (!is_annotate) {
    line += " engine=";
    line += EngineKindName(request.engine);
  }
  std::snprintf(buf, sizeof(buf),
                " gen=%llu queue_ms=%.3f work_ms=%.3f",
                static_cast<unsigned long long>(meta.snapshot_version),
                meta.queue_millis, meta.work_millis);
  line += buf;
  for (int i = 0; i < trace.num_stages(); ++i) {
    const obs::RequestTrace::Stage& stage = trace.stage(i);
    std::snprintf(buf, sizeof(buf), " %s=%.3f", stage.name, stage.ms);
    line += buf;
  }
  WEBTAB_LOG(Warning) << line;
}

void WebTabService::Execute(Request* request, WorkerState* state) {
  RequestMetadata meta;
  meta.request_id = request->id;
  meta.queue_millis = request->queued.ElapsedMillis();
  static obs::Histogram* queue_wait =
      obs::MetricsRegistry::Get().GetHistogram("serve.queue_wait_ms");
  queue_wait->Record(meta.queue_millis);
  const bool is_annotate = request->kind == RequestKind::kAnnotate;

  // Shed work whose deadline passed while queued; the client has already
  // timed out, so running it would only delay live requests.
  if (request->deadline.expired()) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* expired =
        obs::MetricsRegistry::Get().GetCounter("serve.expired");
    expired->Add(1);
    Respond(Status::DeadlineExceeded("deadline expired in queue"), meta,
            is_annotate, &request->search_promise,
            &request->annotate_promise);
    return;
  }

  // One Handle per request: everything below reads exactly this
  // generation, regardless of concurrent swaps.
  SnapshotManager::Handle handle = manager_->Current();
  if (handle.snapshot == nullptr) {
    Respond(Status::FailedPrecondition("no snapshot loaded"), meta,
            is_annotate, &request->search_promise,
            &request->annotate_promise);
    return;
  }
  meta.snapshot_version = handle.version;

  if (is_annotate) {
    ExecuteAnnotate(request, state, handle, meta);
  } else {
    ExecuteSearch(request, state, handle, meta);
  }
}

void WebTabService::ExecuteSearch(Request* request, WorkerState* state,
                                  const SnapshotManager::Handle& handle,
                                  RequestMetadata meta) {
  SearchResponse response;

  const CorpusView* corpus = handle.snapshot->corpus();
  if (corpus == nullptr) {
    response.status = Status::FailedPrecondition(
        "snapshot has no corpus section; search unavailable");
    response.meta = meta;
    request->search_promise.set_value(std::move(response));
    return;
  }

  // Reject out-of-range catalog ids up front (kInvalidArgument echoed
  // to the client) instead of letting per-accessor CHECKs trip deeper
  // in the stack on garbage ids.
  const bool is_join = request->kind == RequestKind::kJoin;
  const CatalogView& catalog = handle.snapshot->catalog();
  Status valid = is_join ? ValidateJoinQuery(request->join, catalog)
                         : ValidateSelectQuery(request->select, catalog);
  if (!valid.ok()) {
    response.status = std::move(valid);
    response.meta = meta;
    request->search_promise.set_value(std::move(response));
    return;
  }

  // One normalization per request, shared by the cache key and the
  // engine (the point of the shared helper in search/query.cc).
  NormalizedSelectQuery normalized;
  if (!is_join) normalized = NormalizeSelectQuery(request->select);

  // Cache key: engine + generation + canonical normalized query + the
  // top-k contract. The version prefix makes hot-swaps
  // self-invalidating; k and prune are part of the key because a
  // pruned top-k ranking is a different payload (shorter, lower-bound
  // scores) than the full ranking.
  std::string key;
  if (cache_ != nullptr) {
    key = std::string(EngineKindName(request->engine)) + "|v" +
          std::to_string(handle.version) + "|k" +
          std::to_string(request->topk.k) +
          (request->topk.prune ? "" : "|noprune") + "|" +
          (is_join ? JoinQueryCacheKey(request->join)
                   : SelectQueryCacheKey(request->select, normalized));
    // EXPLAIN requests bypass the lookup (never the Put): a cached
    // answer has no decision log, and the point of explain is to watch
    // this execution. The computed result still lands in the cache for
    // the next plain request.
    if (!request->want_explain) {
      if (ResultCache::Value hit = cache_->Get(key)) {
        meta.cache_hit = true;
        static obs::Counter* hits =
            obs::MetricsRegistry::Get().GetCounter("serve.cache_hits");
        hits->Add(1);
        response.results = *hit;
        response.meta = meta;
        if (request->want_trace) {
          // The engine never ran, so the trace is honest about it: no
          // stages, zero traced time — a cached answer is
          // indistinguishable from a computed one except through
          // meta.cache_hit.
          response.trace = obs::TraceSummary{};
          response.has_trace = true;
        }
        request->search_promise.set_value(std::move(response));
        return;
      }
    }
    static obs::Counter* misses =
        obs::MetricsRegistry::Get().GetCounter("serve.cache_misses");
    misses->Add(1);
  }

  // Effective intra-query parallelism: the request's knob, with 0 (or
  // negative) meaning the server default, clamped to the configured
  // ceiling. Parallel and sequential runs return byte-identical
  // payloads (search/parallel_search.h), which is why the cache key
  // above never mentions parallelism.
  int parallelism = request->topk.parallelism;
  if (parallelism <= 0) parallelism = options_.search_shards;
  parallelism = std::min(parallelism, std::max(1, options_.search_shards));
  if (parallelism > 1 && state->parallel == nullptr) {
    // Pool sized one short of the fan-out: the request thread runs one
    // shard itself (parallel_search.cc), so a worker's context adds
    // search_shards - 1 threads rather than search_shards threads plus
    // a spinning request thread.
    state->parallel = std::make_unique<ParallelSearchContext>(
        options_.search_shards, options_.search_shards - 1);
  }
  TopKOptions topk = request->topk;
  topk.parallelism = parallelism;

  WallTimer work;
  std::vector<SearchResult> results;
  SearchWorkspace* ws = &state->search_workspace;
  ws->EnableExplain(request->want_explain);
  state->trace.Clear();
  {
    // Attached for every executed request (not just traced ones): the
    // slow-request log needs stage timings for exactly the requests
    // nobody thought to trace in advance.
    obs::ScopedTraceAttach attach(&state->trace);
    if (parallelism > 1) {
      ParallelSearchContext* ctx = state->parallel.get();
      switch (request->engine) {
        case EngineKind::kBaseline:
          ParallelSelectSearch(SelectEngineKind::kBaseline, *corpus,
                               request->select, normalized, topk, ctx, ws,
                               &results);
          break;
        case EngineKind::kType:
          ParallelSelectSearch(SelectEngineKind::kType, *corpus,
                               request->select, normalized, topk, ctx, ws,
                               &results);
          break;
        case EngineKind::kTypeRelation:
          ParallelSelectSearch(SelectEngineKind::kTypeRelation, *corpus,
                               request->select, normalized, topk, ctx, ws,
                               &results);
          break;
        case EngineKind::kJoin:
          ParallelJoinSearch(*corpus, request->join, topk, ctx, ws,
                             &results);
          break;
      }
    } else {
      switch (request->engine) {
        case EngineKind::kBaseline:
          BaselineSearch(*corpus, request->select, normalized, topk, ws,
                         &results);
          break;
        case EngineKind::kType:
          TypeSearch(*corpus, request->select, normalized, topk, ws,
                     &results);
          break;
        case EngineKind::kTypeRelation:
          TypeRelationSearch(*corpus, request->select, normalized, topk, ws,
                             &results);
          break;
        case EngineKind::kJoin:
          JoinSearch(*corpus, request->join, topk, ws, &results);
          break;
      }
    }
  }
  meta.work_millis = work.ElapsedMillis();
  EngineLatencyHistogram(request->engine)->Record(meta.work_millis);
  response.stats = ws->stats();
  response.has_stats = true;
  if (request->want_explain) {
    // The decision log is the counters' ledger: one entry per planned
    // table, scored entries matching tables_scored. A divergence means
    // the kernel's accounting drifted — surfaced loudly rather than
    // silently shipping a log that contradicts the stats.
    int64_t scored_entries = 0;
    for (const auto& d : ws->decision_log) {
      if (d.verdict == SearchWorkspace::TableDecision::Verdict::kScored) {
        ++scored_entries;
      }
    }
    if (static_cast<int64_t>(ws->decision_log.size()) !=
            response.stats.tables_planned ||
        scored_entries != response.stats.tables_scored) {
      WEBTAB_LOG(Warning)
          << "explain decision log inconsistent with query stats: "
          << ws->decision_log.size() << " entries / " << scored_entries
          << " scored vs planned=" << response.stats.tables_planned
          << " scored=" << response.stats.tables_scored;
    }
    response.explain_log = ws->decision_log;
    response.explain_bounds_valid = ws->decision_bounds_valid;
    response.shard_log = ws->shard_log;
    response.has_explain = true;
    const std::span<const exec::FilterManager::ClassState> classes =
        ws->filter_manager().classes();
    response.filter_classes.assign(classes.begin(), classes.end());
    response.filter_log = ws->filter_log;
  }
  // Publish this worker's reorderer state for {"op":"stats"}: a small
  // trivially-copyable snapshot into the worker's own slot.
  {
    const std::span<const exec::FilterManager::ClassState> classes =
        ws->filter_manager().classes();
    std::lock_guard<std::mutex> lock(filter_mu_);
    filter_states_[state->worker_index].assign(classes.begin(),
                                               classes.end());
  }
  if (request->want_trace) {
    response.trace = obs::TraceSummary::From(state->trace, meta.work_millis);
    response.has_trace = true;
  }
  MaybeLogSlow(*request, meta, state->trace);

  if (cache_ != nullptr) {
    auto shared = std::make_shared<const std::vector<SearchResult>>(results);
    cache_->Put(key, shared);
  }
  response.results = std::move(results);
  response.meta = meta;
  request->search_promise.set_value(std::move(response));
}

namespace {

/// Annotation outputs re-enter the serving path as raw catalog ids (the
/// protocol renders their names; clients may echo them back). Validate
/// them against the generation they will be rendered with: an id minted
/// by a different snapshot generation — or corrupted anywhere along the
/// way — surfaces as kInvalidArgument on the response instead of a
/// CHECK-abort inside a worker thread.
Status ValidateAnnotationIds(const CatalogView& catalog,
                             const TableAnnotation& annotation) {
  for (TypeId t : annotation.column_types) {
    if (t == kNa) continue;
    WEBTAB_RETURN_IF_ERROR(catalog.CheckedTypeName(t).status());
  }
  for (const auto& row : annotation.cell_entities) {
    for (EntityId e : row) {
      if (e == kNa) continue;
      WEBTAB_RETURN_IF_ERROR(catalog.CheckedEntityName(e).status());
    }
  }
  for (const auto& [pair, candidate] : annotation.relations) {
    if (candidate.is_na()) continue;
    WEBTAB_RETURN_IF_ERROR(
        catalog.CheckedRelationName(candidate.relation).status());
  }
  return Status::Ok();
}

}  // namespace

void WebTabService::ExecuteAnnotate(Request* request, WorkerState* state,
                                    const SnapshotManager::Handle& handle,
                                    RequestMetadata meta) {
  AnnotateResponse response;

  const LemmaIndexView* lemma_index = handle.snapshot->lemma_index();
  if (lemma_index == nullptr) {
    response.status = Status::FailedPrecondition(
        "snapshot has no lemma index section; annotation unavailable");
    response.meta = meta;
    request->annotate_promise.set_value(std::move(response));
    return;
  }

  // First contact with a new generation: rebuild the worker's private
  // mutable state against it. The pin keeps the old generation's views
  // alive exactly as long as something points into them.
  if (state->annotator == nullptr || state->version != handle.version) {
    state->vocab =
        std::make_unique<Vocabulary>(lemma_index->CopyVocabulary());
    state->annotator = std::make_unique<TableAnnotator>(
        &handle.snapshot->catalog(), lemma_index, options_.annotator,
        state->vocab.get());
    state->annotator->closure()->SeedFrom(
        handle.snapshot->closure_prototype());
    state->pinned = handle.snapshot;
    state->version = handle.version;
  }

  WallTimer work;
  state->trace.Clear();
  {
    obs::ScopedTraceAttach attach(&state->trace);
    if (request->want_explain) {
      response.annotation = state->annotator->Annotate(
          request->table, /*timing=*/nullptr, &response.explain);
      response.has_explain = true;
    } else {
      response.annotation = state->annotator->Annotate(request->table);
    }
  }
  meta.work_millis = work.ElapsedMillis();
  Status ids_ok =
      ValidateAnnotationIds(handle.snapshot->catalog(), response.annotation);
  if (!ids_ok.ok()) response.status = std::move(ids_ok);
  static obs::Histogram* annotate_ms =
      obs::MetricsRegistry::Get().GetHistogram("serve.annotate_ms");
  annotate_ms->Record(meta.work_millis);
  if (request->want_trace) {
    response.trace = obs::TraceSummary::From(state->trace, meta.work_millis);
    response.has_trace = true;
  }
  MaybeLogSlow(*request, meta, state->trace);
  response.meta = meta;
  request->annotate_promise.set_value(std::move(response));
}

}  // namespace serve
}  // namespace webtab
