#ifndef WEBTAB_SERVE_SERVICE_H_
#define WEBTAB_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "annotate/annotator.h"
#include "common/bounded_queue.h"
#include "common/deadline.h"
#include "common/status.h"
#include "common/timer.h"
#include "obs/exemplar.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "search/join_search.h"
#include "search/parallel_search.h"
#include "search/query.h"
#include "serve/result_cache.h"
#include "serve/snapshot_manager.h"

namespace webtab {
namespace serve {

/// Which ranking engine answers a select query (Figure 9's systems, plus
/// the join extension).
enum class EngineKind { kBaseline, kType, kTypeRelation, kJoin };

std::string_view EngineKindName(EngineKind kind);
/// Parses "baseline" / "type" / "type_relation" / "join".
Result<EngineKind> ParseEngineKind(std::string_view name);

struct ServiceOptions {
  /// Worker threads executing requests. Each worker owns the small
  /// mutable state (annotator, vocabulary copy, seeded closure cache);
  /// the snapshot itself is shared read-only.
  int num_workers = 2;
  /// Bounded request queue; a full queue rejects immediately
  /// (kUnavailable) instead of queueing unboundedly under overload.
  int queue_capacity = 64;
  /// Applied when a request carries no deadline; 0 means none. Expired
  /// requests are shed at dequeue (kDeadlineExceeded) without running.
  int64_t default_deadline_ms = 0;
  /// Result cache entries (0 disables) and shard count.
  int result_cache_capacity = 1024;
  int result_cache_shards = 8;
  /// Upper bound on intra-query parallelism (scatter-gather shard
  /// fan-out; see search/parallel_search.h). 1 keeps every query on the
  /// sequential kernel. > 1 gives each worker a lazily-built
  /// ParallelSearchContext with this many workspace slots and
  /// search_shards - 1 task-pool threads (the request thread runs the
  /// remaining shard itself); a request's own `parallelism` knob (wire field
  /// "parallelism") is clamped to [1, search_shards], with 0/absent
  /// meaning "use the server default" (= search_shards). Results are
  /// byte-identical either way, so the result cache key ignores it.
  int search_shards = 1;
  /// Requests whose queue + work time reaches this many milliseconds
  /// are logged at Warning with their per-stage trace breakdown
  /// (request kind, id, generation, stage timings) and retained in the
  /// slow-request exemplar buffer ({"op":"debug"}). 0 disables both.
  double slow_request_ms = 0.0;
  /// Telemetry collector cadence: every tick the service publishes
  /// process gauges and rolls a MetricsRegistry dump into the
  /// TimeSeriesStore ({"op":"timeseries"}, --dashboard). 0 disables
  /// the collector thread (tests then drive CollectTelemetrySample()
  /// directly).
  int64_t timeseries_tick_ms = 1000;
  /// Ring geometry for the time-series store; tick_seconds is derived
  /// from timeseries_tick_ms when the collector is enabled.
  obs::TimeSeriesOptions timeseries;
  /// Slow-request exemplars retained for {"op":"debug"}.
  int slow_exemplar_capacity = 32;
  AnnotatorOptions annotator;
};

/// Per-request execution metadata returned with every response.
struct RequestMetadata {
  /// Process-unique id assigned at submission; serve_tool tags its
  /// per-request log lines with it so a wire response and the server
  /// log correlate.
  uint64_t request_id = 0;
  uint64_t snapshot_version = 0;
  bool cache_hit = false;
  double queue_millis = 0.0;
  double work_millis = 0.0;
};

struct SearchResponse {
  Status status;
  std::vector<SearchResult> results;
  RequestMetadata meta;
  /// Pruning counters from the engine run that produced `results`.
  /// has_stats is false for cache hits (the engine did not run) and for
  /// error responses; the wire layer only renders stats when the client
  /// opted in, so cached and computed responses stay interchangeable.
  SearchWorkspace::QueryStats stats;
  bool has_stats = false;
  /// Per-stage trace breakdown, filled when the request opted in with
  /// want_trace. Cache hits carry an empty trace (no engine stages ran);
  /// the wire layer renders it only when the client asked.
  obs::TraceSummary trace;
  bool has_trace = false;
  /// EXPLAIN decision log (one entry per planned table, scan order),
  /// filled when the request opted in with want_explain. Explain
  /// requests bypass the cache lookup so the engine really runs and
  /// the log describes *this* execution.
  std::vector<SearchWorkspace::TableDecision> explain_log;
  bool explain_bounds_valid = false;
  bool has_explain = false;
  /// Adaptive screen-reorderer view, filled alongside the decision log:
  /// the worker's per-class FilterManager state after this query
  /// (permutation, measured pass rates, explore/exploit) plus one
  /// FilterDecision per batched bound screen the query ran. The
  /// determinism test replays a fixed query sequence against a fixed
  /// seed and asserts the order trace bit for bit.
  std::vector<exec::FilterManager::ClassState> filter_classes;
  std::vector<SearchWorkspace::FilterDecision> filter_log;
  /// Per-shard scatter-gather summary (EXPLAIN only; empty when the
  /// query ran the sequential kernel or is a join): the table range,
  /// plan size, replayed count and abandoned count of every shard.
  std::vector<SearchWorkspace::ShardSummary> shard_log;
};

struct AnnotateResponse {
  Status status;
  TableAnnotation annotation;
  RequestMetadata meta;
  obs::TraceSummary trace;
  bool has_trace = false;
  /// EXPLAIN payload (per-column candidates, BP convergence, decode
  /// margins), filled when the request opted in with want_explain.
  AnnotateExplain explain;
  bool has_explain = false;
};

struct ServiceStats {
  uint64_t accepted = 0;
  uint64_t rejected_overload = 0;
  uint64_t expired = 0;
  uint64_t completed = 0;
  uint64_t annotate_requests = 0;
  uint64_t search_requests = 0;
  uint64_t swaps = 0;
  ResultCache::Stats cache;
  /// Per-worker adaptive-reorderer state (one entry per worker that has
  /// executed a search; empty slots are workers that have not). Each
  /// worker owns its FilterManager, so permutations and counters are
  /// reported per worker, not merged — two workers may legitimately sit
  /// on different permutations mid-exploration.
  std::vector<std::vector<exec::FilterManager::ClassState>> filter_classes;
};

/// The online serving facade: answers annotate-one-table and all four
/// search query types concurrently over the SnapshotManager's current
/// generation.
///
/// Concurrency model:
///  - Producers (any thread) enqueue into a bounded queue and get a
///    future; a full queue fails fast with kUnavailable.
///  - N workers pop requests. Each request takes one Handle (shared_ptr
///    to the current ServingSnapshot) and uses only that generation, so
///    a concurrent hot-swap never tears a request and in-flight work is
///    never dropped: old requests finish on the old mapping, new
///    requests start on the new one.
///  - Search runs straight off the shared read-only CorpusView (the
///    engines are pure functions of view + query) behind a sharded LRU
///    keyed on (engine, version, normalized query).
///  - Annotation needs per-worker mutable state (vocabulary interning,
///    closure + feature caches, BP workspace); each worker lazily
///    rebuilds that state when it first sees a new generation, seeding
///    its closure cache from the snapshot's precomputed prototype so
///    first-request latency matches steady state.
///
/// Responses are byte-identical to single-threaded engine/annotator runs
/// on the same snapshot — asserted by tests/serve_concurrency_test.cc
/// and bench/serving_bench.cc.
class WebTabService {
 public:
  /// `manager` must outlive the service. Call Start() before submitting.
  WebTabService(SnapshotManager* manager, ServiceOptions options);
  ~WebTabService();

  WebTabService(const WebTabService&) = delete;
  WebTabService& operator=(const WebTabService&) = delete;

  /// Spawns the worker pool. Requests submitted before Start() sit in
  /// the queue (up to its capacity).
  void Start();

  /// Closes the queue, lets workers drain every accepted request, and
  /// joins them. Submissions after Stop() fail with kUnavailable
  /// ("service stopped" — not counted as overload). Idempotent; the
  /// destructor calls it. The service is single-use: a stopped service
  /// cannot be restarted (construct a new one against the same
  /// SnapshotManager instead).
  void Stop();

  // --- Async API (the native shape; one future per request). ---
  // `topk` flows into the engines (bounded selection + safe pruning;
  // see search/query.h); the default asks for the full ranking. The
  // result cache keys on (engine, version, normalized query, k, prune),
  // so differently-truncated rankings never alias.
  // `want_trace` opts the request into the per-stage trace breakdown
  // (SearchResponse::trace / AnnotateResponse::trace); recording costs
  // a handful of clock reads per stage and never allocates.
  // `want_explain` additionally returns the EXPLAIN payload (search:
  // per-table decision log; annotate: candidate counts + BP
  // convergence); explain requests bypass the cache lookup and pay for
  // the capture, so they are a debugging tool, not a serving default.
  std::future<SearchResponse> SubmitSearch(EngineKind engine,
                                           SelectQuery query,
                                           TopKOptions topk = TopKOptions(),
                                           Deadline deadline = Deadline(),
                                           bool want_trace = false,
                                           bool want_explain = false);
  std::future<SearchResponse> SubmitJoin(JoinQuery query,
                                         TopKOptions topk = TopKOptions(),
                                         Deadline deadline = Deadline(),
                                         bool want_trace = false,
                                         bool want_explain = false);
  std::future<AnnotateResponse> SubmitAnnotate(
      Table table, Deadline deadline = Deadline(),
      bool want_trace = false, bool want_explain = false);

  // --- Blocking wrappers for closed-loop callers. ---
  SearchResponse Search(EngineKind engine, const SelectQuery& query,
                        TopKOptions topk = TopKOptions(),
                        Deadline deadline = Deadline(),
                        bool want_trace = false,
                        bool want_explain = false);
  SearchResponse SearchJoin(const JoinQuery& query,
                            TopKOptions topk = TopKOptions(),
                            Deadline deadline = Deadline(),
                            bool want_trace = false,
                            bool want_explain = false);
  AnnotateResponse Annotate(const Table& table,
                            Deadline deadline = Deadline(),
                            bool want_trace = false,
                            bool want_explain = false);

  /// Opens `path` and atomically installs it as the serving generation.
  /// In-flight and queued requests are never dropped (old generation
  /// pins until they finish); on failure the old generation keeps
  /// serving.
  Status SwapSnapshot(const std::string& path);

  SnapshotManager* manager() { return manager_; }
  const ServiceOptions& options() const { return options_; }
  ServiceStats stats() const;

  /// One telemetry tick: publishes process gauges (RSS, uptime, open
  /// fds) and the serving generation, then rolls a full registry dump
  /// into the time-series store. The collector thread calls this every
  /// timeseries_tick_ms; tests and tools may call it directly (it is
  /// safe from any thread).
  void CollectTelemetrySample();

  /// Historical metric rollups ({"op":"timeseries"}, --dashboard).
  const obs::TimeSeriesStore& timeseries() const { return timeseries_; }
  /// Retained slow-request traces ({"op":"debug"}).
  const obs::ExemplarBuffer& exemplars() const { return exemplars_; }

 private:
  enum class RequestKind { kSearch, kJoin, kAnnotate };

  struct Request {
    RequestKind kind;
    EngineKind engine = EngineKind::kTypeRelation;
    SelectQuery select;
    JoinQuery join;
    TopKOptions topk;
    Table table;
    Deadline deadline;
    WallTimer queued;
    uint64_t id = 0;
    bool want_trace = false;
    bool want_explain = false;
    std::promise<SearchResponse> search_promise;
    std::promise<AnnotateResponse> annotate_promise;
  };

  /// Mutable per-worker state, rebuilt when the worker first touches a
  /// new snapshot generation. Holds its own shared_ptr so the views the
  /// annotator points into cannot unmap while the state exists. The
  /// annotator carries the per-worker scratch that amortizes across
  /// requests within a generation: BP workspace, column-probe candidate
  /// workspace, and the similarity scratch memoizing f1/f2 vectors —
  /// repeated cell strings across requests hit warm caches.
  struct WorkerState {
    /// Slot into filter_states_ for this worker's reorderer snapshot.
    int worker_index = 0;
    uint64_t version = 0;
    std::shared_ptr<const ServingSnapshot> pinned;
    std::unique_ptr<Vocabulary> vocab;
    std::unique_ptr<TableAnnotator> annotator;
    /// Search kernel scratch, reused across requests and generations
    /// (its contents are epoch-stamped per query, so a hot-swap needs
    /// no reset — stale corpus string_views are never dereferenced).
    SearchWorkspace search_workspace;
    /// Scatter-gather executor (shard workspaces + task pool), built on
    /// this worker's first parallel query when search_shards > 1 and
    /// reused for every one after — parallel queries allocate nothing
    /// in steady state, same as sequential ones.
    std::unique_ptr<ParallelSearchContext> parallel;
    /// Per-request stage trace, Clear()ed and attached for every
    /// executed request (inline storage — attaching costs nothing when
    /// no span fires). Feeds the slow-request log unconditionally and
    /// the response when the client opted in.
    obs::RequestTrace trace;
  };

  bool Enqueue(std::unique_ptr<Request> request);
  void WorkerLoop(int worker_index);
  void Execute(Request* request, WorkerState* state);
  void ExecuteSearch(Request* request, WorkerState* state,
                     const SnapshotManager::Handle& handle,
                     RequestMetadata meta);
  void ExecuteAnnotate(Request* request, WorkerState* state,
                       const SnapshotManager::Handle& handle,
                       RequestMetadata meta);
  Deadline EffectiveDeadline(Deadline deadline) const;
  /// Emits the threshold-gated slow-request Warning line (request kind,
  /// id, generation, queue/work split, per-stage timings) and records
  /// the trace into the exemplar buffer.
  void MaybeLogSlow(const Request& request, const RequestMetadata& meta,
                    const obs::RequestTrace& trace);
  void CollectorLoop();

  SnapshotManager* manager_;
  ServiceOptions options_;
  BoundedQueue<std::unique_ptr<Request>> queue_;
  /// Per-worker FilterManager snapshots, published by workers after
  /// each executed search and read by stats(). The mutex guards the
  /// copies only; workers never block each other (distinct slots) and
  /// the critical section is a memcpy of a few small trivially-copyable
  /// structs.
  mutable std::mutex filter_mu_;
  std::vector<std::vector<exec::FilterManager::ClassState>> filter_states_;
  std::unique_ptr<ResultCache> cache_;  // null when caching disabled
  obs::TimeSeriesStore timeseries_;
  obs::ExemplarBuffer exemplars_;
  std::vector<std::thread> workers_;
  std::thread collector_;
  std::mutex collector_mu_;
  std::condition_variable collector_cv_;
  bool collector_stop_ = false;
  bool started_ = false;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> annotate_requests_{0};
  std::atomic<uint64_t> search_requests_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> next_request_id_{0};
};

}  // namespace serve
}  // namespace webtab

#endif  // WEBTAB_SERVE_SERVICE_H_
