#ifndef WEBTAB_SERVE_JSON_H_
#define WEBTAB_SERVE_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace webtab {
namespace serve {

/// A minimal JSON value for the serving wire protocol (JSON-lines over
/// stdin/TCP). Dependency-free by design: the container bakes no JSON
/// library and the protocol needs only objects, arrays, strings, numbers,
/// bools and null. Object member order is preserved (stable rendering for
/// tests and log diffing); duplicate keys keep the last value on lookup.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Number(double v) {
    Json j;
    j.kind_ = Kind::kNumber;
    j.number_ = v;
    return j;
  }
  static Json String(std::string_view s) {
    Json j;
    j.kind_ = Kind::kString;
    j.string_ = std::string(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  /// Strict single-document parse; trailing non-whitespace is an error.
  static Result<Json> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object. Last
  /// duplicate wins.
  const Json* Find(std::string_view key) const;

  // Typed member lookups with defaults (missing or wrong type falls
  // back), the common case when reading requests.
  std::string GetString(std::string_view key,
                        std::string_view fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  /// Appends to an array value.
  Json& Append(Json value);
  /// Sets an object member (appends; lookup takes the last duplicate).
  Json& Set(std::string_view key, Json value);

  /// Compact single-line rendering (integers render without exponent or
  /// trailing zeros; strings are escaped).
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Appends `s` JSON-escaped (without surrounding quotes) to `out`.
void JsonEscape(std::string_view s, std::string* out);

}  // namespace serve
}  // namespace webtab

#endif  // WEBTAB_SERVE_JSON_H_
