#ifndef WEBTAB_SERVE_RESULT_CACHE_H_
#define WEBTAB_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/query.h"

namespace webtab {
namespace serve {

/// A sharded LRU cache for ranked search results. Keys are the canonical
/// normalized query strings (SelectQueryCacheKey et al.) prefixed with
/// the engine and snapshot version, so a hot-swap naturally invalidates:
/// new-version requests miss, old entries age out of the LRU. Values are
/// shared_ptr-to-const so a hit hands back the exact vector the engine
/// produced — byte-identical to an uncached run — without copying under
/// the shard lock.
///
/// Sharding bounds contention: each key hashes to one shard with its own
/// mutex and LRU list, so concurrent lookups for different queries never
/// serialize on one lock.
class ResultCache {
 public:
  using Value = std::shared_ptr<const std::vector<SearchResult>>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
  };

  /// `capacity` is the total entry budget, split evenly across shards
  /// (at least one entry per shard).
  ResultCache(int num_shards, int capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// nullptr on miss; refreshes recency on hit.
  Value Get(const std::string& key);

  /// Inserts or refreshes; evicts the shard's least-recent entry at
  /// capacity.
  void Put(const std::string& key, Value value);

  void Clear();

  Stats GetStats() const;

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used. The map's string_view keys point at
    /// the list nodes' strings (std::list nodes never move).
    std::list<std::pair<std::string, Value>> lru;
    std::unordered_map<std::string_view,
                       std::list<std::pair<std::string, Value>>::iterator>
        by_key;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace webtab

#endif  // WEBTAB_SERVE_RESULT_CACHE_H_
