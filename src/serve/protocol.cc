#include "serve/protocol.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "serve/json.h"

namespace webtab {
namespace serve {

namespace {

Result<WireRequest::Op> ParseOp(std::string_view name) {
  using Op = WireRequest::Op;
  if (name == "annotate") return Op::kAnnotate;
  if (name == "search") return Op::kSearch;
  if (name == "join") return Op::kJoin;
  if (name == "swap") return Op::kSwap;
  if (name == "stats") return Op::kStats;
  if (name == "metrics") return Op::kMetrics;
  if (name == "timeseries") return Op::kTimeseries;
  if (name == "debug") return Op::kDebug;
  if (name == "quit") return Op::kQuit;
  return Status::InvalidArgument("unknown op: " + std::string(name));
}

Status ParseTable(const Json& json, WireTable* out) {
  if (!json.is_object()) {
    return Status::InvalidArgument("\"table\" must be an object");
  }
  if (const Json* headers = json.Find("headers");
      headers != nullptr && headers->is_array()) {
    for (const Json& h : headers->items()) {
      out->headers.push_back(h.is_string() ? h.string_value() : "");
    }
  }
  const Json* rows = json.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("\"table.rows\" must be an array");
  }
  for (const Json& row : rows->items()) {
    if (!row.is_array()) {
      return Status::InvalidArgument("table rows must be arrays");
    }
    std::vector<std::string> cells;
    for (const Json& cell : row.items()) {
      cells.push_back(cell.is_string() ? cell.string_value() : "");
    }
    out->rows.push_back(std::move(cells));
  }
  out->context = json.GetString("context");
  out->id = static_cast<int64_t>(json.GetNumber("id", -1));
  return Status::Ok();
}

}  // namespace

Result<WireRequest> ParseWireRequest(std::string_view line) {
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) return parsed.status();
  const Json& json = *parsed;
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  WireRequest request;
  Result<WireRequest::Op> op = ParseOp(json.GetString("op"));
  if (!op.ok()) return op.status();
  request.op = *op;

  // "k" is an opt-in: absent (<= 0) keeps the engines on the exact
  // full ranking (scores and total_results as before; the renderer
  // still truncates the *displayed* list); present, it flows into the
  // engines as a pruned top-k request.
  request.top_k = static_cast<int>(json.GetNumber("k", 0));
  request.deadline_ms =
      static_cast<int64_t>(json.GetNumber("deadline_ms", 0));

  switch (request.op) {
    case WireRequest::Op::kSearch: {
      Result<EngineKind> engine =
          ParseEngineKind(json.GetString("engine", "type_relation"));
      if (!engine.ok()) return engine.status();
      if (*engine == EngineKind::kJoin) {
        return Status::InvalidArgument("use \"op\":\"join\" for joins");
      }
      request.engine = *engine;
      request.select.relation = json.GetString("relation");
      request.select.type1 = json.GetString("type1");
      request.select.type2 = json.GetString("type2");
      request.select.e2 = json.GetString("e2");
      request.want_stats = json.GetBool("stats", false);
      request.want_trace = json.GetBool("trace", false);
      request.want_explain = json.GetBool("explain", false);
      request.parallelism =
          static_cast<int>(json.GetNumber("parallelism", 0));
      break;
    }
    case WireRequest::Op::kJoin:
      request.engine = EngineKind::kJoin;
      request.want_stats = json.GetBool("stats", false);
      request.want_trace = json.GetBool("trace", false);
      request.want_explain = json.GetBool("explain", false);
      request.join.r1 = json.GetString("r1");
      request.join.r2 = json.GetString("r2");
      request.join.e3 = json.GetString("e3");
      request.join.e1_is_subject = json.GetBool("e1_is_subject", true);
      request.join.e2_is_subject = json.GetBool("e2_is_subject", true);
      request.join.max_join_entities =
          static_cast<int>(json.GetNumber("max_join_entities", 20));
      request.parallelism =
          static_cast<int>(json.GetNumber("parallelism", 0));
      break;
    case WireRequest::Op::kAnnotate: {
      request.want_trace = json.GetBool("trace", false);
      request.want_explain = json.GetBool("explain", false);
      const Json* table = json.Find("table");
      if (table == nullptr) {
        return Status::InvalidArgument("annotate requires \"table\"");
      }
      WEBTAB_RETURN_IF_ERROR(ParseTable(*table, &request.table));
      break;
    }
    case WireRequest::Op::kSwap:
      request.path = json.GetString("path");
      if (request.path.empty()) {
        return Status::InvalidArgument("swap requires \"path\"");
      }
      break;
    case WireRequest::Op::kTimeseries:
      request.window_s = json.GetNumber("window_s", 60.0);
      if (request.window_s <= 0.0) {
        return Status::InvalidArgument("\"window_s\" must be > 0");
      }
      break;
    case WireRequest::Op::kStats:
    case WireRequest::Op::kMetrics:
    case WireRequest::Op::kDebug:
    case WireRequest::Op::kQuit:
      break;
  }
  return request;
}

SelectQuery ResolveSelectQuery(const WireSelect& wire,
                               const CatalogView& catalog) {
  SelectQuery query;
  query.relation = catalog.FindRelationByName(wire.relation);
  query.type1 = catalog.FindTypeByName(wire.type1);
  query.type2 = catalog.FindTypeByName(wire.type2);
  query.e2 = catalog.FindEntityByName(wire.e2);
  query.e2_text = wire.e2;
  query.relation_text = wire.relation;
  query.type1_text = wire.type1;
  query.type2_text = wire.type2;
  return query;
}

namespace {

Status UnknownName(const char* field, const char* what,
                   const std::string& name) {
  return Status::InvalidArgument(std::string(field) + ": unknown " + what +
                                 " \"" + name + "\"");
}

}  // namespace

Status ValidateResolvedSelect(EngineKind engine, const WireSelect& wire,
                              const SelectQuery& query) {
  // Only names the chosen engine actually reads are required: the type
  // engine locates columns by type1/type2; the type_relation engine by
  // relation alone (it never reads the type ids); the baseline treats
  // everything as strings.
  if (engine == EngineKind::kType) {
    if (!wire.type1.empty() && query.type1 == kNa) {
      return UnknownName("type1", "type", wire.type1);
    }
    if (!wire.type2.empty() && query.type2 == kNa) {
      return UnknownName("type2", "type", wire.type2);
    }
  }
  if (engine == EngineKind::kTypeRelation && !wire.relation.empty() &&
      query.relation == kNa) {
    return UnknownName("relation", "relation", wire.relation);
  }
  return Status::Ok();
}

Status ValidateResolvedJoin(const WireJoin& wire, const JoinQuery& query) {
  if (!wire.r1.empty() && query.r1 == kNa) {
    return UnknownName("r1", "relation", wire.r1);
  }
  if (!wire.r2.empty() && query.r2 == kNa) {
    return UnknownName("r2", "relation", wire.r2);
  }
  return Status::Ok();
}

JoinQuery ResolveJoinQuery(const WireJoin& wire, const CatalogView& catalog) {
  JoinQuery query;
  query.r1 = catalog.FindRelationByName(wire.r1);
  query.r2 = catalog.FindRelationByName(wire.r2);
  query.e3 = catalog.FindEntityByName(wire.e3);
  query.e3_text = wire.e3;
  query.e1_is_subject = wire.e1_is_subject;
  query.e2_is_subject = wire.e2_is_subject;
  query.max_join_entities = wire.max_join_entities;
  return query;
}

Result<Table> WireToTable(const WireTable& wire) {
  const int rows = static_cast<int>(wire.rows.size());
  const size_t cols = rows > 0 ? wire.rows[0].size()
                               : wire.headers.size();
  if (rows == 0 && cols == 0) {
    return Status::InvalidArgument("table has no rows or headers");
  }
  for (const auto& row : wire.rows) {
    if (row.size() != cols) {
      return Status::InvalidArgument("table rows must be rectangular");
    }
  }
  if (!wire.headers.empty() && wire.headers.size() != cols) {
    return Status::InvalidArgument("header count must match columns");
  }
  Table table(rows, static_cast<int>(cols));
  for (size_t c = 0; c < wire.headers.size(); ++c) {
    table.set_header(static_cast<int>(c), wire.headers[c]);
  }
  for (int r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      table.set_cell(r, static_cast<int>(c), wire.rows[r][c]);
    }
  }
  table.set_context(wire.context);
  table.set_id(wire.id);
  return table;
}

namespace {

Json MetaJson(const RequestMetadata& meta) {
  Json json = Json::Object();
  json.Set("request_id",
           Json::Number(static_cast<double>(meta.request_id)));
  json.Set("version", Json::Number(static_cast<double>(
                          meta.snapshot_version)));
  json.Set("cache_hit", Json::Bool(meta.cache_hit));
  json.Set("queue_ms", Json::Number(meta.queue_millis));
  json.Set("work_ms", Json::Number(meta.work_millis));
  return json;
}

Json TraceJson(const obs::TraceSummary& trace) {
  Json json = Json::Object();
  json.Set("total_ms", Json::Number(trace.total_ms));
  json.Set("balanced", Json::Bool(trace.balanced));
  if (trace.overflowed) json.Set("overflowed", Json::Bool(true));
  Json stages = Json::Array();
  for (const auto& stage : trace.stages) {
    Json item = Json::Object();
    item.Set("name", Json::String(stage.name));
    item.Set("depth", Json::Number(stage.depth));
    item.Set("ms", Json::Number(stage.ms));
    item.Set("count", Json::Number(static_cast<double>(stage.count)));
    stages.Append(std::move(item));
  }
  json.Set("stages", std::move(stages));
  Json counters = Json::Object();
  for (const auto& counter : trace.counters) {
    counters.Set(counter.name,
                 Json::Number(static_cast<double>(counter.value)));
  }
  json.Set("counters", std::move(counters));
  return json;
}

/// Every registered metric: counters/gauges as plain numbers,
/// histograms as {count, sum, mean, p50, p95, p99, buckets:[{le,n}]}
/// with empty buckets elided (they carry no information and the full
/// 64-bucket array would dominate the stats line).
Json MetricsJson() {
  Json metrics = Json::Object();
  for (const obs::MetricDump& dump : obs::MetricsRegistry::Get().Dump()) {
    if (dump.kind != obs::MetricDump::Kind::kHistogram) {
      metrics.Set(dump.name,
                  Json::Number(static_cast<double>(dump.value)));
      continue;
    }
    const obs::HistogramSnapshot& snap = dump.histogram;
    Json h = Json::Object();
    h.Set("count", Json::Number(static_cast<double>(snap.count)));
    h.Set("sum", Json::Number(snap.sum));
    h.Set("mean", Json::Number(snap.Mean()));
    h.Set("p50", Json::Number(snap.Percentile(0.50)));
    h.Set("p95", Json::Number(snap.Percentile(0.95)));
    h.Set("p99", Json::Number(snap.Percentile(0.99)));
    Json buckets = Json::Array();
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      Json bucket = Json::Object();
      bucket.Set("le", Json::Number(obs::Histogram::BucketUpperBound(
                           static_cast<int>(i))));
      bucket.Set("n", Json::Number(static_cast<double>(snap.buckets[i])));
      buckets.Append(std::move(bucket));
    }
    h.Set("buckets", std::move(buckets));
    metrics.Set(dump.name, std::move(h));
  }
  return metrics;
}

const char* VerdictName(SearchWorkspace::TableDecision::Verdict verdict) {
  switch (verdict) {
    case SearchWorkspace::TableDecision::Verdict::kScored:
      return "scored";
    case SearchWorkspace::TableDecision::Verdict::kPrunedZeroBound:
      return "pruned_zero_bound";
    case SearchWorkspace::TableDecision::Verdict::kPrunedSuffix:
      return "pruned_suffix";
  }
  return "unknown";
}

/// One FilterManager class as JSON: the current permutation (condition
/// names, evaluation order), measured per-condition selectivities, and
/// the explore/exploit bookkeeping.
Json FilterClassJson(const exec::FilterManager::ClassState& cls) {
  Json json = Json::Object();
  json.Set("name", Json::String(cls.name != nullptr ? cls.name : ""));
  json.Set("batches", Json::Number(static_cast<double>(cls.batches)));
  json.Set("resamples", Json::Number(static_cast<double>(cls.resamples)));
  json.Set("exploring", Json::Bool(cls.exploring));
  Json order = Json::Array();
  for (int i = 0; i < cls.num_conditions; ++i) {
    const auto& cond = cls.conditions[cls.order[i]];
    order.Append(Json::String(cond.name != nullptr ? cond.name : ""));
  }
  json.Set("order", std::move(order));
  Json conditions = Json::Array();
  for (int i = 0; i < cls.num_conditions; ++i) {
    const auto& cond = cls.conditions[i];
    Json item = Json::Object();
    item.Set("name", Json::String(cond.name != nullptr ? cond.name : ""));
    item.Set("cost", Json::Number(cond.cost));
    item.Set("evaluated",
             Json::Number(static_cast<double>(cond.evaluated)));
    item.Set("passed", Json::Number(static_cast<double>(cond.passed)));
    item.Set("pass_rate", Json::Number(cond.PassRate()));
    conditions.Append(std::move(item));
  }
  json.Set("conditions", std::move(conditions));
  return json;
}

/// The search EXPLAIN payload: one entry per planned table in scan
/// order, plus the counter cross-check (planned/scored/stopped_early
/// recomputed from the log itself must match the engine's stats —
/// "consistent" says whether they did).
Json SearchExplainJson(const SearchResponse& response) {
  using Verdict = SearchWorkspace::TableDecision::Verdict;
  Json explain = Json::Object();
  Json tables = Json::Array();
  int scored = 0;
  for (const SearchWorkspace::TableDecision& d : response.explain_log) {
    Json item = Json::Object();
    item.Set("table", Json::Number(static_cast<double>(d.table)));
    item.Set("verdict", Json::String(VerdictName(d.verdict)));
    if (response.explain_bounds_valid) {
      item.Set("bound", Json::Number(d.bound));
      item.Set("suffix_after", Json::Number(d.suffix_after));
    }
    if (d.verdict == Verdict::kScored) ++scored;
    tables.Append(std::move(item));
  }
  explain.Set("tables", std::move(tables));
  explain.Set("bounds_valid", Json::Bool(response.explain_bounds_valid));
  const int planned = static_cast<int>(response.explain_log.size());
  explain.Set("tables_planned",
              Json::Number(static_cast<double>(planned)));
  explain.Set("tables_scored", Json::Number(static_cast<double>(scored)));
  explain.Set("stopped_early", Json::Bool(scored < planned));
  const bool consistent =
      !response.has_stats ||
      (planned == response.stats.tables_planned &&
       scored == response.stats.tables_scored &&
       (scored < planned) == response.stats.stopped_early);
  explain.Set("consistent", Json::Bool(consistent));

  // The adaptive reorderer's side of the story: which condition order
  // each batched bound screen ran (the determinism test replays this
  // trace), plus the per-class state the orders were derived from.
  Json classes = Json::Array();
  for (const exec::FilterManager::ClassState& cls :
       response.filter_classes) {
    classes.Append(FilterClassJson(cls));
  }
  Json decisions = Json::Array();
  for (const SearchWorkspace::FilterDecision& d : response.filter_log) {
    Json item = Json::Object();
    const size_t cls = static_cast<size_t>(d.cls);
    item.Set("class",
             cls < response.filter_classes.size() &&
                     response.filter_classes[cls].name != nullptr
                 ? Json::String(response.filter_classes[cls].name)
                 : Json::Number(static_cast<double>(d.cls)));
    item.Set("lanes_in", Json::Number(static_cast<double>(d.lanes_in)));
    item.Set("lanes_pass",
             Json::Number(static_cast<double>(d.lanes_pass)));
    item.Set("exploring", Json::Bool(d.exploring));
    Json order = Json::Array();
    for (int i = 0; i < d.num_conditions; ++i) {
      order.Append(Json::Number(static_cast<double>(d.order[i])));
    }
    item.Set("order", std::move(order));
    decisions.Append(std::move(item));
  }
  Json filters = Json::Object();
  filters.Set("classes", std::move(classes));
  filters.Set("screens", std::move(decisions));
  explain.Set("filters", std::move(filters));

  // Scatter-gather section, present only when the query ran sharded:
  // one entry per shard with its table range, plan size, how many of
  // its tables the gather replayed, and how many the shared stop let it
  // abandon mid-flight.
  if (!response.shard_log.empty()) {
    Json shards = Json::Array();
    for (const SearchWorkspace::ShardSummary& s : response.shard_log) {
      Json item = Json::Object();
      item.Set("shard", Json::Number(static_cast<double>(s.shard)));
      item.Set("table_begin",
               Json::Number(static_cast<double>(s.table_begin)));
      item.Set("table_end",
               Json::Number(static_cast<double>(s.table_end)));
      item.Set("planned", Json::Number(static_cast<double>(s.planned)));
      item.Set("replayed", Json::Number(static_cast<double>(s.replayed)));
      item.Set("abandoned",
               Json::Number(static_cast<double>(s.abandoned)));
      shards.Append(std::move(item));
    }
    explain.Set("shards", std::move(shards));
  }
  return explain;
}

/// The annotate EXPLAIN payload: per-column candidate mass and decode
/// margins, the relation pair count, and the BP convergence curve.
Json AnnotateExplainJson(const AnnotateExplain& explain,
                         const CatalogView* catalog) {
  Json json = Json::Object();
  Json columns = Json::Array();
  for (const AnnotateExplain::ColumnExplain& col : explain.columns) {
    Json item = Json::Object();
    item.Set("column", Json::Number(col.column));
    item.Set("entity_candidates",
             Json::Number(static_cast<double>(col.entity_candidates)));
    item.Set("type_candidates", Json::Number(col.type_candidates));
    Json decoded = Json::Null();
    if (col.decoded_type != kNa && catalog != nullptr) {
      Result<std::string_view> name =
          catalog->CheckedTypeName(col.decoded_type);
      if (name.ok()) decoded = Json::String(*name);
    }
    item.Set("decoded_type", std::move(decoded));
    item.Set("decode_margin", Json::Number(col.decode_margin));
    columns.Append(std::move(item));
  }
  json.Set("columns", std::move(columns));
  json.Set("relation_pairs", Json::Number(explain.relation_pairs));
  Json bp = Json::Object();
  bp.Set("iterations", Json::Number(explain.bp_iterations));
  bp.Set("converged", Json::Bool(explain.bp_converged));
  bp.Set("max_residual", Json::Number(explain.bp_max_residual));
  Json trail = Json::Array();
  for (double r : explain.bp_residual_trail) {
    trail.Append(Json::Number(r));
  }
  bp.Set("residual_trail", std::move(trail));
  bp.Set("factor_updates",
         Json::Number(static_cast<double>(explain.bp_factor_updates)));
  bp.Set("factor_skips",
         Json::Number(static_cast<double>(explain.bp_factor_skips)));
  json.Set("bp", std::move(bp));
  return json;
}

}  // namespace

std::string RenderSearchResponse(const SearchResponse& response,
                                 const CatalogView* catalog, int top_k,
                                 bool want_stats) {
  if (!response.status.ok()) return RenderErrorResponse(response.status);
  Json json = Json::Object();
  json.Set("ok", Json::Bool(true));
  Json results = Json::Array();
  int emitted = 0;
  for (const SearchResult& result : response.results) {
    if (top_k > 0 && emitted >= top_k) break;
    Json item = Json::Object();
    Json entity = Json::Null();
    if (result.entity != kNa && catalog != nullptr) {
      Result<std::string_view> name = catalog->CheckedEntityName(result.entity);
      if (name.ok()) entity = Json::String(*name);
    }
    item.Set("entity", std::move(entity));
    item.Set("text", Json::String(result.text));
    item.Set("score", Json::Number(result.score));
    results.Append(std::move(item));
    ++emitted;
  }
  json.Set("results", std::move(results));
  json.Set("total_results",
           Json::Number(static_cast<double>(response.results.size())));
  if (want_stats && response.has_stats) {
    Json stats = Json::Object();
    stats.Set("tables_planned",
              Json::Number(static_cast<double>(
                  response.stats.tables_planned)));
    stats.Set("tables_scored",
              Json::Number(static_cast<double>(
                  response.stats.tables_scored)));
    stats.Set("stopped_early", Json::Bool(response.stats.stopped_early));
    stats.Set("shards_used",
              Json::Number(static_cast<double>(
                  response.stats.shards_used)));
    stats.Set("shard_tables_abandoned",
              Json::Number(static_cast<double>(
                  response.stats.shard_tables_abandoned)));
    json.Set("stats", std::move(stats));
  }
  if (response.has_explain) {
    json.Set("explain", SearchExplainJson(response));
  }
  if (response.has_trace) json.Set("trace", TraceJson(response.trace));
  json.Set("meta", MetaJson(response.meta));
  return json.Dump();
}

std::string RenderAnnotateResponse(const AnnotateResponse& response,
                                   const CatalogView* catalog) {
  if (!response.status.ok()) return RenderErrorResponse(response.status);
  const TableAnnotation& annotation = response.annotation;
  Json json = Json::Object();
  json.Set("ok", Json::Bool(true));

  // Checked accessors: annotation ids normally come from the same
  // generation the names are rendered with, but a hostile or stale id
  // must degrade to null, never CHECK-abort the render path.
  auto type_name = [&](TypeId t) {
    if (t == kNa || catalog == nullptr) return Json::Null();
    Result<std::string_view> name = catalog->CheckedTypeName(t);
    return name.ok() ? Json::String(*name) : Json::Null();
  };
  auto entity_name = [&](EntityId e) {
    if (e == kNa || catalog == nullptr) return Json::Null();
    Result<std::string_view> name = catalog->CheckedEntityName(e);
    return name.ok() ? Json::String(*name) : Json::Null();
  };

  Json column_types = Json::Array();
  for (TypeId t : annotation.column_types) {
    column_types.Append(type_name(t));
  }
  json.Set("column_types", std::move(column_types));

  Json cells = Json::Array();
  for (const auto& row : annotation.cell_entities) {
    Json out_row = Json::Array();
    for (EntityId e : row) out_row.Append(entity_name(e));
    cells.Append(std::move(out_row));
  }
  json.Set("cell_entities", std::move(cells));

  Json relations = Json::Array();
  for (const auto& [pair, candidate] : annotation.relations) {
    if (candidate.is_na()) continue;
    Json rel = Json::Object();
    rel.Set("c1", Json::Number(pair.first));
    rel.Set("c2", Json::Number(pair.second));
    Json rel_name = Json::Null();
    if (catalog != nullptr) {
      Result<std::string_view> name =
          catalog->CheckedRelationName(candidate.relation);
      if (name.ok()) rel_name = Json::String(*name);
    }
    rel.Set("relation", std::move(rel_name));
    rel.Set("swapped", Json::Bool(candidate.swapped));
    relations.Append(std::move(rel));
  }
  json.Set("relations", std::move(relations));
  if (response.has_explain) {
    json.Set("explain", AnnotateExplainJson(response.explain, catalog));
  }
  if (response.has_trace) json.Set("trace", TraceJson(response.trace));
  json.Set("meta", MetaJson(response.meta));
  return json.Dump();
}

std::string RenderErrorResponse(const Status& status) {
  Json json = Json::Object();
  json.Set("ok", Json::Bool(false));
  json.Set("code", Json::String(StatusCodeName(status.code())));
  json.Set("error", Json::String(status.message()));
  return json.Dump();
}

std::string RenderSwapResponse(uint64_t version) {
  Json json = Json::Object();
  json.Set("ok", Json::Bool(true));
  json.Set("version", Json::Number(static_cast<double>(version)));
  return json.Dump();
}

std::string RenderStatsResponse(const ServiceStats& stats,
                                uint64_t snapshot_version,
                                const std::string& snapshot_path) {
  Json json = Json::Object();
  json.Set("ok", Json::Bool(true));
  json.Set("snapshot_version",
           Json::Number(static_cast<double>(snapshot_version)));
  json.Set("snapshot_path", Json::String(snapshot_path));
  json.Set("accepted", Json::Number(static_cast<double>(stats.accepted)));
  json.Set("rejected_overload",
           Json::Number(static_cast<double>(stats.rejected_overload)));
  json.Set("expired", Json::Number(static_cast<double>(stats.expired)));
  json.Set("completed", Json::Number(static_cast<double>(stats.completed)));
  json.Set("annotate_requests",
           Json::Number(static_cast<double>(stats.annotate_requests)));
  json.Set("search_requests",
           Json::Number(static_cast<double>(stats.search_requests)));
  json.Set("swaps", Json::Number(static_cast<double>(stats.swaps)));
  Json cache = Json::Object();
  cache.Set("hits", Json::Number(static_cast<double>(stats.cache.hits)));
  cache.Set("misses",
            Json::Number(static_cast<double>(stats.cache.misses)));
  cache.Set("evictions",
            Json::Number(static_cast<double>(stats.cache.evictions)));
  cache.Set("entries",
            Json::Number(static_cast<double>(stats.cache.entries)));
  json.Set("cache", std::move(cache));
  // Adaptive screen-reorderer state, one entry per worker that has
  // executed a search (workers own their FilterManagers, so
  // permutations are per worker by construction).
  Json filter_workers = Json::Array();
  for (size_t w = 0; w < stats.filter_classes.size(); ++w) {
    if (stats.filter_classes[w].empty()) continue;
    Json worker = Json::Object();
    worker.Set("worker", Json::Number(static_cast<double>(w)));
    Json classes = Json::Array();
    for (const exec::FilterManager::ClassState& cls :
         stats.filter_classes[w]) {
      classes.Append(FilterClassJson(cls));
    }
    worker.Set("classes", std::move(classes));
    filter_workers.Append(std::move(worker));
  }
  json.Set("filter_classes", std::move(filter_workers));
  const obs::ProcessStats process = obs::ReadProcessStats();
  Json proc = Json::Object();
  proc.Set("rss_bytes",
           Json::Number(static_cast<double>(process.rss_bytes)));
  proc.Set("uptime_s", Json::Number(process.uptime_s));
  proc.Set("open_fds",
           Json::Number(static_cast<double>(process.open_fds)));
  proc.Set("generation",
           Json::Number(static_cast<double>(snapshot_version)));
  json.Set("process", std::move(proc));
  json.Set("metrics", MetricsJson());
  return json.Dump();
}

std::string RenderMetricsResponse() {
  Json json = Json::Object();
  json.Set("ok", Json::Bool(true));
  json.Set("content_type", Json::String("text/plain; version=0.0.4"));
  json.Set("metrics",
           Json::String(obs::MetricsRegistry::Get().RenderPrometheus()));
  return json.Dump();
}

std::string RenderTimeseriesResponse(const obs::TimeSeriesStore& store,
                                     double window_s) {
  Json json = Json::Object();
  json.Set("ok", Json::Bool(true));
  json.Set("tick_s", Json::Number(store.options().tick_seconds));
  json.Set("retention_s",
           Json::Number(store.options().tick_seconds *
                        store.options().capacity));
  json.Set("ticks", Json::Number(static_cast<double>(store.ticks())));
  json.Set("series_count",
           Json::Number(static_cast<double>(store.series_count())));
  json.Set("dropped_updates",
           Json::Number(static_cast<double>(store.dropped_updates())));
  json.Set("memory_bytes",
           Json::Number(static_cast<double>(store.MemoryBytes())));
  json.Set("window_s", Json::Number(window_s));
  Json series = Json::Array();
  for (const obs::SeriesRollup& rollup : store.Query(window_s)) {
    Json item = Json::Object();
    item.Set("name", Json::String(rollup.name));
    item.Set("samples", Json::Number(rollup.samples));
    item.Set("covered_s", Json::Number(rollup.window_s));
    switch (rollup.kind) {
      case obs::MetricDump::Kind::kCounter:
        item.Set("kind", Json::String("counter"));
        item.Set("delta",
                 Json::Number(static_cast<double>(rollup.delta)));
        item.Set("rate_per_s", Json::Number(rollup.rate_per_s));
        item.Set("last",
                 Json::Number(static_cast<double>(rollup.last)));
        break;
      case obs::MetricDump::Kind::kGauge:
        item.Set("kind", Json::String("gauge"));
        item.Set("last",
                 Json::Number(static_cast<double>(rollup.last)));
        item.Set("min", Json::Number(static_cast<double>(rollup.min)));
        item.Set("max", Json::Number(static_cast<double>(rollup.max)));
        item.Set("avg", Json::Number(rollup.avg));
        break;
      case obs::MetricDump::Kind::kHistogram: {
        item.Set("kind", Json::String("histogram"));
        item.Set("count", Json::Number(
                              static_cast<double>(rollup.hist.count)));
        item.Set("sum", Json::Number(rollup.hist.sum));
        item.Set("mean", Json::Number(rollup.hist.Mean()));
        item.Set("p50", Json::Number(rollup.hist.Percentile(0.50)));
        item.Set("p95", Json::Number(rollup.hist.Percentile(0.95)));
        item.Set("p99", Json::Number(rollup.hist.Percentile(0.99)));
        break;
      }
    }
    series.Append(std::move(item));
  }
  json.Set("series", std::move(series));
  return json.Dump();
}

std::string RenderDebugResponse(const obs::ExemplarBuffer& exemplars,
                                double threshold_ms) {
  Json json = Json::Object();
  json.Set("ok", Json::Bool(true));
  json.Set("slow_request_threshold_ms", Json::Number(threshold_ms));
  json.Set("capacity", Json::Number(exemplars.capacity()));
  json.Set("total_recorded",
           Json::Number(static_cast<double>(exemplars.total_recorded())));
  Json items = Json::Array();
  for (const obs::RequestExemplar& ex : exemplars.Snapshot()) {
    Json item = Json::Object();
    item.Set("request_id",
             Json::Number(static_cast<double>(ex.request_id)));
    item.Set("kind", Json::String(ex.kind));
    item.Set("detail", Json::String(ex.detail));
    item.Set("version",
             Json::Number(static_cast<double>(ex.snapshot_version)));
    item.Set("queue_ms", Json::Number(ex.queue_ms));
    item.Set("work_ms", Json::Number(ex.work_ms));
    item.Set("age_s", Json::Number(ex.age_s));
    item.Set("trace", TraceJson(ex.trace));
    items.Append(std::move(item));
  }
  json.Set("exemplars", std::move(items));
  return json.Dump();
}

}  // namespace serve
}  // namespace webtab
