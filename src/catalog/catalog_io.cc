#include "catalog/catalog_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "catalog/catalog_builder.h"
#include "common/string_util.h"

namespace webtab {

namespace {
constexpr char kHeader[] = "# webtab-catalog v1";
}  // namespace

Status SaveCatalog(const CatalogView& catalog, std::ostream& os) {
  os << kHeader << "\n";
  for (TypeId t = 0; t < catalog.num_types(); ++t) {
    os << "T\t" << t << "\t" << catalog.TypeName(t) << "\n";
    for (int32_t i = 0; i < catalog.NumTypeLemmas(t); ++i) {
      os << "TL\t" << t << "\t" << catalog.TypeLemma(t, i) << "\n";
    }
  }
  for (TypeId t = 0; t < catalog.num_types(); ++t) {
    for (TypeId p : catalog.TypeParents(t)) {
      os << "TS\t" << t << "\t" << p << "\n";
    }
  }
  for (EntityId e = 0; e < catalog.num_entities(); ++e) {
    os << "E\t" << e << "\t" << catalog.EntityName(e) << "\n";
    for (int32_t i = 0; i < catalog.NumEntityLemmas(e); ++i) {
      os << "EL\t" << e << "\t" << catalog.EntityLemma(e, i) << "\n";
    }
    for (TypeId t : catalog.EntityDirectTypes(e)) {
      os << "ET\t" << e << "\t" << t << "\n";
    }
  }
  for (RelationId b = 0; b < catalog.num_relations(); ++b) {
    os << "R\t" << b << "\t" << catalog.RelationName(b) << "\t"
       << catalog.RelationSubjectType(b) << "\t"
       << catalog.RelationObjectType(b) << "\t"
       << static_cast<int>(catalog.RelationCardinalityOf(b)) << "\n";
    for (const auto& [e1, e2] : catalog.RelationTuples(b)) {
      os << "RT\t" << b << "\t" << e1 << "\t" << e2 << "\n";
    }
  }
  if (!os.good()) return Status::IoError("write failed");
  return Status::Ok();
}

Status SaveCatalogToFile(const CatalogView& catalog,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  return SaveCatalog(catalog, out);
}

Result<Catalog> LoadCatalog(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || StripWhitespace(line) != kHeader) {
    return Status::ParseError("missing catalog header");
  }
  CatalogBuilder builder;
  int line_no = 1;
  auto parse_int = [](const std::string& s, int32_t* out) {
    char* end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') return false;
    *out = static_cast<int32_t>(v);
    return true;
  };
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> f = Split(line, '\t');
    auto fail = [&](const std::string& why) -> Result<Catalog> {
      return Status::ParseError(StrFormat("line %d: %s", line_no,
                                          why.c_str()));
    };
    const std::string& tag = f[0];
    if (tag == "T") {
      if (f.size() != 3) return fail("T needs 2 fields");
      int32_t id;
      if (!parse_int(f[1], &id)) return fail("bad id");
      TypeId got = builder.AddType(f[2]);
      if (got != id) return fail("non-dense type id");
    } else if (tag == "TL") {
      if (f.size() != 3) return fail("TL needs 2 fields");
      int32_t id;
      if (!parse_int(f[1], &id)) return fail("bad id");
      WEBTAB_RETURN_IF_ERROR(builder.AddTypeLemma(id, f[2]));
    } else if (tag == "TS") {
      if (f.size() != 3) return fail("TS needs 2 fields");
      int32_t c, p;
      if (!parse_int(f[1], &c) || !parse_int(f[2], &p)) return fail("bad id");
      WEBTAB_RETURN_IF_ERROR(builder.AddSubtype(c, p));
    } else if (tag == "E") {
      if (f.size() != 3) return fail("E needs 2 fields");
      int32_t id;
      if (!parse_int(f[1], &id)) return fail("bad id");
      EntityId got = builder.AddEntity(f[2]);
      if (got != id) return fail("non-dense entity id");
    } else if (tag == "EL") {
      if (f.size() != 3) return fail("EL needs 2 fields");
      int32_t id;
      if (!parse_int(f[1], &id)) return fail("bad id");
      WEBTAB_RETURN_IF_ERROR(builder.AddEntityLemma(id, f[2]));
    } else if (tag == "ET") {
      if (f.size() != 3) return fail("ET needs 2 fields");
      int32_t e, t;
      if (!parse_int(f[1], &e) || !parse_int(f[2], &t)) return fail("bad id");
      WEBTAB_RETURN_IF_ERROR(builder.AddEntityType(e, t));
    } else if (tag == "R") {
      if (f.size() != 6) return fail("R needs 5 fields");
      int32_t id, t1, t2, card;
      if (!parse_int(f[1], &id) || !parse_int(f[3], &t1) ||
          !parse_int(f[4], &t2) || !parse_int(f[5], &card)) {
        return fail("bad relation fields");
      }
      if (card < 0 || card > 3) return fail("bad cardinality");
      RelationId got = builder.AddRelation(
          f[2], t1, t2, static_cast<RelationCardinality>(card));
      if (got != id) return fail("non-dense relation id");
    } else if (tag == "RT") {
      if (f.size() != 4) return fail("RT needs 3 fields");
      int32_t b, e1, e2;
      if (!parse_int(f[1], &b) || !parse_int(f[2], &e1) ||
          !parse_int(f[3], &e2)) {
        return fail("bad tuple fields");
      }
      WEBTAB_RETURN_IF_ERROR(builder.AddTuple(b, e1, e2));
    } else {
      return fail("unknown record tag '" + tag + "'");
    }
  }
  return builder.Build();
}

Result<Catalog> LoadCatalogFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadCatalog(in);
}

}  // namespace webtab
