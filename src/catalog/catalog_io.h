#ifndef WEBTAB_CATALOG_CATALOG_IO_H_
#define WEBTAB_CATALOG_CATALOG_IO_H_

#include <iosfwd>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"

namespace webtab {

/// Line-oriented text serialization of a catalog:
///   # webtab-catalog v1
///   T  <id> <name>
///   TL <id> <lemma>
///   TS <child-id> <parent-id>
///   E  <id> <name>
///   EL <id> <lemma>
///   ET <entity-id> <type-id>
///   R  <id> <name> <subject-type> <object-type> <cardinality 0..3>
///   RT <relation-id> <e1> <e2>
/// Fields are tab-separated; ids are dense and written in order, so load
/// preserves them exactly.
Status SaveCatalog(const CatalogView& catalog, std::ostream& os);
Status SaveCatalogToFile(const CatalogView& catalog,
                         const std::string& path);

Result<Catalog> LoadCatalog(std::istream& is);
Result<Catalog> LoadCatalogFromFile(const std::string& path);

}  // namespace webtab

#endif  // WEBTAB_CATALOG_CATALOG_IO_H_
