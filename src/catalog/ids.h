#ifndef WEBTAB_CATALOG_IDS_H_
#define WEBTAB_CATALOG_IDS_H_

#include <cstdint>

namespace webtab {

/// Integer identifiers for catalog objects. A negative value is never a
/// valid id; kNa ("no annotation", paper §4.1) doubles as the invalid id.
using EntityId = int32_t;
using TypeId = int32_t;
using RelationId = int32_t;

inline constexpr int32_t kNa = -1;

/// Distance sentinel for "E is not reachable from T" (dist = infinity).
inline constexpr int kUnreachable = 1 << 20;

/// A directed relation label for an ordered column pair (c, c') with
/// c < c'. swapped=false reads relation(cell_c, cell_c'); swapped=true the
/// converse. {kNa, false} is the "no relation" label.
struct RelationCandidate {
  RelationId relation = kNa;
  bool swapped = false;

  bool is_na() const { return relation == kNa; }

  friend bool operator==(const RelationCandidate&,
                         const RelationCandidate&) = default;
  friend auto operator<=>(const RelationCandidate&,
                          const RelationCandidate&) = default;
};

}  // namespace webtab

#endif  // WEBTAB_CATALOG_IDS_H_
