#include "catalog/catalog.h"

#include "common/logging.h"

namespace webtab {

namespace {
uint64_t PairKey(EntityId e1, EntityId e2) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(e1)) << 32) |
         static_cast<uint32_t>(e2);
}
}  // namespace

std::string_view RelationCardinalityName(RelationCardinality c) {
  switch (c) {
    case RelationCardinality::kManyToMany:
      return "many-to-many";
    case RelationCardinality::kOneToMany:
      return "one-to-many";
    case RelationCardinality::kManyToOne:
      return "many-to-one";
    case RelationCardinality::kOneToOne:
      return "one-to-one";
  }
  return "unknown";
}

int64_t Catalog::num_tuples() const {
  int64_t n = 0;
  for (const auto& r : relations_) n += static_cast<int64_t>(r.tuples.size());
  return n;
}

const TypeRecord& Catalog::type(TypeId t) const {
  WEBTAB_CHECK(ValidType(t)) << "bad type id " << t;
  return types_[t];
}

const EntityRecord& Catalog::entity(EntityId e) const {
  WEBTAB_CHECK(ValidEntity(e)) << "bad entity id " << e;
  return entities_[e];
}

const RelationRecord& Catalog::relation(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b)) << "bad relation id " << b;
  return relations_[b];
}

TypeId Catalog::FindTypeByName(std::string_view name) const {
  auto it = type_by_name_.find(std::string(name));
  return it == type_by_name_.end() ? kNa : it->second;
}

EntityId Catalog::FindEntityByName(std::string_view name) const {
  auto it = entity_by_name_.find(std::string(name));
  return it == entity_by_name_.end() ? kNa : it->second;
}

RelationId Catalog::FindRelationByName(std::string_view name) const {
  auto it = relation_by_name_.find(std::string(name));
  return it == relation_by_name_.end() ? kNa : it->second;
}

bool Catalog::HasTuple(RelationId b, EntityId e1, EntityId e2) const {
  if (!ValidRelation(b)) return false;
  auto it = tuples_by_pair_.find(PairKey(e1, e2));
  if (it == tuples_by_pair_.end()) return false;
  for (RelationId r : it->second) {
    if (r == b) return true;
  }
  return false;
}

std::span<const EntityId> Catalog::ObjectsOf(RelationId b,
                                             EntityId e1) const {
  if (!ValidRelation(b)) return {};
  const auto& index = objects_index_[b];
  auto it = index.find(e1);
  return it == index.end() ? std::span<const EntityId>()
                           : std::span<const EntityId>(it->second);
}

std::span<const EntityId> Catalog::SubjectsOf(RelationId b,
                                              EntityId e2) const {
  if (!ValidRelation(b)) return {};
  const auto& index = subjects_index_[b];
  auto it = index.find(e2);
  return it == index.end() ? std::span<const EntityId>()
                           : std::span<const EntityId>(it->second);
}

std::vector<std::pair<RelationId, bool>> Catalog::RelationsBetween(
    EntityId e1, EntityId e2) const {
  std::vector<std::pair<RelationId, bool>> out;
  auto fwd = tuples_by_pair_.find(PairKey(e1, e2));
  if (fwd != tuples_by_pair_.end()) {
    for (RelationId r : fwd->second) out.emplace_back(r, false);
  }
  auto rev = tuples_by_pair_.find(PairKey(e2, e1));
  if (rev != tuples_by_pair_.end()) {
    for (RelationId r : rev->second) out.emplace_back(r, true);
  }
  return out;
}

void Catalog::ForEachRelationBetween(
    EntityId e1, EntityId e2,
    const std::function<void(RelationId, bool)>& fn) const {
  auto fwd = tuples_by_pair_.find(PairKey(e1, e2));
  if (fwd != tuples_by_pair_.end()) {
    for (RelationId r : fwd->second) fn(r, false);
  }
  auto rev = tuples_by_pair_.find(PairKey(e2, e1));
  if (rev != tuples_by_pair_.end()) {
    for (RelationId r : rev->second) fn(r, true);
  }
}

int64_t Catalog::DistinctSubjects(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b));
  return static_cast<int64_t>(objects_index_[b].size());
}

int64_t Catalog::DistinctObjects(RelationId b) const {
  WEBTAB_CHECK(ValidRelation(b));
  return static_cast<int64_t>(subjects_index_[b].size());
}

}  // namespace webtab
