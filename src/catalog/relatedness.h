#ifndef WEBTAB_CATALOG_RELATEDNESS_H_
#define WEBTAB_CATALOG_RELATEDNESS_H_

#include "catalog/closure.h"

namespace webtab {

/// Overlap ratio |E(T') ∩ E(T)| / |E(T')| between two types' extensions
/// (paper §4.2.3, "Missing links"). 0 when E(T') is empty.
double TypeOverlapRatio(ClosureCache* cache, TypeId t_prime, TypeId t);

/// Missing-link compatibility score for an entity E not reachable from T:
///   min_{T' : E ∈ T'} |E(T') ∩ E(T)| / |E(T')|  ×  1 / min_{E'∈E(T)} dist(E',T)
/// Large when most entities sharing E's immediate parent types are also
/// under T, hinting that the ∈ link E ∈+ T was omitted from the catalog.
/// Returns 0 when E has no direct types or E(T) is empty.
double MissingLinkScore(ClosureCache* cache, EntityId e, TypeId t);

/// Relatedness between two types used as a general compatibility hint
/// (Milne-Witten-flavoured over extensions): Jaccard of E(T1), E(T2).
double TypeExtensionJaccard(ClosureCache* cache, TypeId t1, TypeId t2);

}  // namespace webtab

#endif  // WEBTAB_CATALOG_RELATEDNESS_H_
