#ifndef WEBTAB_CATALOG_CATALOG_H_
#define WEBTAB_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/ids.h"

namespace webtab {

/// Paper §3.1: relations may be declared one-to-one / many-to-one etc.;
/// the φ5 cardinality-violation feature (§4.2.5) keys off this.
enum class RelationCardinality {
  kManyToMany = 0,
  kOneToMany = 1,   // One subject, many objects per subject; object unique.
  kManyToOne = 2,   // Each subject has at most one object.
  kOneToOne = 3,
};

std::string_view RelationCardinalityName(RelationCardinality c);

/// A type node in the subtype DAG (§3.1). Parents are supertypes
/// (T ⊆ parent); children are subtypes and direct entity instances hang off
/// `direct_entities`.
struct TypeRecord {
  std::string name;
  std::vector<std::string> lemmas;
  std::vector<TypeId> parents;
  std::vector<TypeId> children;
  std::vector<EntityId> direct_entities;
};

/// An entity with its lemmas L(E) and direct types (∈ links).
struct EntityRecord {
  std::string name;
  std::vector<std::string> lemmas;
  std::vector<TypeId> direct_types;
};

/// A binary relation B(T1, T2) with its extension (tuple store).
struct RelationRecord {
  std::string name;
  TypeId subject_type = kNa;
  TypeId object_type = kNa;
  RelationCardinality cardinality = RelationCardinality::kManyToMany;
  /// Sorted lexicographically by (subject, object); unique.
  std::vector<std::pair<EntityId, EntityId>> tuples;
};

/// Immutable catalog of types, entities and relations (paper §3.1; YAGO in
/// the paper, synthetic world here). Built once by CatalogBuilder; all
/// accessors are const and thread-safe. Reachability/closure queries that
/// need memoization live in ClosureCache.
class Catalog {
 public:
  Catalog() = default;

  // Movable, not copyable (tuple stores can be large).
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  int32_t num_types() const { return static_cast<int32_t>(types_.size()); }
  int32_t num_entities() const {
    return static_cast<int32_t>(entities_.size());
  }
  int32_t num_relations() const {
    return static_cast<int32_t>(relations_.size());
  }
  int64_t num_tuples() const;

  bool ValidType(TypeId t) const { return t >= 0 && t < num_types(); }
  bool ValidEntity(EntityId e) const { return e >= 0 && e < num_entities(); }
  bool ValidRelation(RelationId b) const {
    return b >= 0 && b < num_relations();
  }

  const TypeRecord& type(TypeId t) const;
  const EntityRecord& entity(EntityId e) const;
  const RelationRecord& relation(RelationId b) const;

  /// The synthetic root type reaching all others (§3.1: "we can create a
  /// root type"). Always id 0 in catalogs produced by CatalogBuilder.
  TypeId root_type() const { return root_type_; }

  /// Name lookups; kNa when absent.
  TypeId FindTypeByName(std::string_view name) const;
  EntityId FindEntityByName(std::string_view name) const;
  RelationId FindRelationByName(std::string_view name) const;

  /// True if relation `b` contains tuple (e1, e2).
  bool HasTuple(RelationId b, EntityId e1, EntityId e2) const;

  /// Objects E2 with b(e1, E2); empty if none.
  std::vector<EntityId> ObjectsOf(RelationId b, EntityId e1) const;

  /// Subjects E1 with b(E1, e2); empty if none.
  std::vector<EntityId> SubjectsOf(RelationId b, EntityId e2) const;

  /// All relations containing (e1, e2) as a tuple, in either role order:
  /// result pairs are (relation, swapped) where swapped=true means the
  /// tuple is b(e2, e1).
  std::vector<std::pair<RelationId, bool>> RelationsBetween(
      EntityId e1, EntityId e2) const;

  /// Number of distinct subjects / objects appearing in relation `b`.
  int64_t DistinctSubjects(RelationId b) const;
  int64_t DistinctObjects(RelationId b) const;

 private:
  friend class CatalogBuilder;

  std::vector<TypeRecord> types_;
  std::vector<EntityRecord> entities_;
  std::vector<RelationRecord> relations_;
  TypeId root_type_ = kNa;

  std::unordered_map<std::string, TypeId> type_by_name_;
  std::unordered_map<std::string, EntityId> entity_by_name_;
  std::unordered_map<std::string, RelationId> relation_by_name_;

  // Tuple lookup indexes, built by CatalogBuilder::Build.
  // Key: (e1 << 32) | e2 for pair lookup across all relations.
  std::unordered_map<uint64_t, std::vector<RelationId>> tuples_by_pair_;
  // Per relation: forward (subject -> objects) and reverse indexes.
  std::vector<std::unordered_map<EntityId, std::vector<EntityId>>>
      objects_index_;
  std::vector<std::unordered_map<EntityId, std::vector<EntityId>>>
      subjects_index_;
};

}  // namespace webtab

#endif  // WEBTAB_CATALOG_CATALOG_H_
