#ifndef WEBTAB_CATALOG_CATALOG_H_
#define WEBTAB_CATALOG_CATALOG_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog_view.h"
#include "catalog/ids.h"

namespace webtab {

/// A type node in the subtype DAG (§3.1). Parents are supertypes
/// (T ⊆ parent); children are subtypes and direct entity instances hang off
/// `direct_entities`.
struct TypeRecord {
  std::string name;
  std::vector<std::string> lemmas;
  std::vector<TypeId> parents;
  std::vector<TypeId> children;
  std::vector<EntityId> direct_entities;
};

/// An entity with its lemmas L(E) and direct types (∈ links).
struct EntityRecord {
  std::string name;
  std::vector<std::string> lemmas;
  std::vector<TypeId> direct_types;
};

/// A binary relation B(T1, T2) with its extension (tuple store).
struct RelationRecord {
  std::string name;
  TypeId subject_type = kNa;
  TypeId object_type = kNa;
  RelationCardinality cardinality = RelationCardinality::kManyToMany;
  /// Sorted lexicographically by (subject, object); unique.
  std::vector<std::pair<EntityId, EntityId>> tuples;
};

/// Immutable in-memory catalog of types, entities and relations (paper
/// §3.1; YAGO in the paper, synthetic world here). Built once by
/// CatalogBuilder; all accessors are const and thread-safe. Implements
/// CatalogView so it is interchangeable with the zero-copy snapshot
/// backend. Reachability/closure queries that need memoization live in
/// ClosureCache.
class Catalog : public CatalogView {
 public:
  Catalog() = default;

  // Movable, not copyable (tuple stores can be large).
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  int32_t num_types() const override {
    return static_cast<int32_t>(types_.size());
  }
  int32_t num_entities() const override {
    return static_cast<int32_t>(entities_.size());
  }
  int32_t num_relations() const override {
    return static_cast<int32_t>(relations_.size());
  }
  int64_t num_tuples() const override;

  const TypeRecord& type(TypeId t) const;
  const EntityRecord& entity(EntityId e) const;
  const RelationRecord& relation(RelationId b) const;

  TypeId root_type() const override { return root_type_; }

  // --- CatalogView record accessors (zero-cost over the records). ---
  std::string_view TypeName(TypeId t) const override { return type(t).name; }
  int32_t NumTypeLemmas(TypeId t) const override {
    return static_cast<int32_t>(type(t).lemmas.size());
  }
  std::string_view TypeLemma(TypeId t, int32_t i) const override {
    return type(t).lemmas[i];
  }
  std::span<const TypeId> TypeParents(TypeId t) const override {
    return type(t).parents;
  }
  std::span<const TypeId> TypeChildren(TypeId t) const override {
    return type(t).children;
  }
  std::span<const EntityId> TypeDirectEntities(TypeId t) const override {
    return type(t).direct_entities;
  }

  std::string_view EntityName(EntityId e) const override {
    return entity(e).name;
  }
  int32_t NumEntityLemmas(EntityId e) const override {
    return static_cast<int32_t>(entity(e).lemmas.size());
  }
  std::string_view EntityLemma(EntityId e, int32_t i) const override {
    return entity(e).lemmas[i];
  }
  std::span<const TypeId> EntityDirectTypes(EntityId e) const override {
    return entity(e).direct_types;
  }

  std::string_view RelationName(RelationId b) const override {
    return relation(b).name;
  }
  TypeId RelationSubjectType(RelationId b) const override {
    return relation(b).subject_type;
  }
  TypeId RelationObjectType(RelationId b) const override {
    return relation(b).object_type;
  }
  RelationCardinality RelationCardinalityOf(RelationId b) const override {
    return relation(b).cardinality;
  }
  std::span<const EntityPair> RelationTuples(RelationId b) const override {
    return relation(b).tuples;
  }

  TypeId FindTypeByName(std::string_view name) const override;
  EntityId FindEntityByName(std::string_view name) const override;
  RelationId FindRelationByName(std::string_view name) const override;

  bool HasTuple(RelationId b, EntityId e1, EntityId e2) const override;

  std::span<const EntityId> ObjectsOf(RelationId b,
                                      EntityId e1) const override;
  std::span<const EntityId> SubjectsOf(RelationId b,
                                       EntityId e2) const override;

  std::vector<std::pair<RelationId, bool>> RelationsBetween(
      EntityId e1, EntityId e2) const override;
  void ForEachRelationBetween(
      EntityId e1, EntityId e2,
      const std::function<void(RelationId, bool)>& fn) const override;

  int64_t DistinctSubjects(RelationId b) const override;
  int64_t DistinctObjects(RelationId b) const override;

 private:
  friend class CatalogBuilder;

  std::vector<TypeRecord> types_;
  std::vector<EntityRecord> entities_;
  std::vector<RelationRecord> relations_;
  TypeId root_type_ = kNa;

  std::unordered_map<std::string, TypeId> type_by_name_;
  std::unordered_map<std::string, EntityId> entity_by_name_;
  std::unordered_map<std::string, RelationId> relation_by_name_;

  // Tuple lookup indexes, built by CatalogBuilder::Build.
  // Key: (e1 << 32) | e2 for pair lookup across all relations.
  std::unordered_map<uint64_t, std::vector<RelationId>> tuples_by_pair_;
  // Per relation: forward (subject -> objects) and reverse indexes.
  std::vector<std::unordered_map<EntityId, std::vector<EntityId>>>
      objects_index_;
  std::vector<std::unordered_map<EntityId, std::vector<EntityId>>>
      subjects_index_;
};

}  // namespace webtab

#endif  // WEBTAB_CATALOG_CATALOG_H_
