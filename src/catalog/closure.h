#ifndef WEBTAB_CATALOG_CLOSURE_H_
#define WEBTAB_CATALOG_CLOSURE_H_

#include <unordered_map>
#include <vector>

#include "catalog/catalog_view.h"

namespace webtab {

/// Memoized reachability queries over a Catalog (paper §3.1 notation):
///   T(E)        — all type ancestors of entity E,
///   E(T)        — all entities transitively reachable from type T,
///   dist(E, T)  — shortest ∈-then-⊆* path length (paper §4.2.3),
///   |E|/|E(T)|  — IDF-style type specificity.
///
/// The catalog is large and each table touches a small slice of it, so
/// closures are computed lazily and cached (mirrors the paper's cost
/// profile where index probes dominate, §6.1.2). Not thread-safe; use one
/// instance per worker.
class ClosureCache {
 public:
  /// `catalog` must outlive this cache. Works against any CatalogView
  /// backend (in-memory build or mmap'd snapshot).
  explicit ClosureCache(const CatalogView* catalog);

  ClosureCache(const ClosureCache&) = delete;
  ClosureCache& operator=(const ClosureCache&) = delete;

  const CatalogView& catalog() const { return *catalog_; }

  /// Eagerly fills the type-level caches for every type in the catalog:
  /// ancestor sets (TypeAncestorsOfType) and min entity distances, plus —
  /// when `include_entity_extents` — the E(T) extents and counts. The
  /// serving layer runs this once per loaded snapshot so first-request
  /// latency matches steady state, then clones the result into each
  /// worker via SeedFrom (ROADMAP: closures were rebuilt lazily per
  /// worker). Entity-keyed caches stay lazy: tables touch a small slice
  /// of the entity set.
  void PrecomputeTypeClosures(bool include_entity_extents = false);

  /// Copies every cached closure from `prototype` into this cache,
  /// replacing same-key entries. Both caches must wrap the SAME catalog
  /// view object (checked), so the copied vectors are exactly what this
  /// cache would have computed. Lazy fills continue on top of the seed.
  void SeedFrom(const ClosureCache& prototype);

  /// All type ancestors of E (every T with E ∈+ T), unsorted but stable.
  const std::vector<TypeId>& TypeAncestors(EntityId e);

  /// Map from ancestor type to min edge distance from E (the ∈ edge counts
  /// as 1). Types not present are unreachable.
  const std::unordered_map<TypeId, int>& AncestorDistances(EntityId e);

  /// dist(E, T); kUnreachable when E ∉+ T.
  int Dist(EntityId e, TypeId t);

  /// E(T): sorted entity ids transitively under T.
  const std::vector<EntityId>& EntitiesOf(TypeId t);

  /// |E(T)|, without materializing when already cached.
  int64_t EntityCount(TypeId t);

  /// IDF-style specificity |E| / |E(T)| (≥ 1 for nonempty types); returns
  /// |E| + 1 for empty types (maximally specific, per the convention that
  /// rarer is more specific).
  double TypeSpecificity(TypeId t);

  /// True iff descendant ⊆* ancestor in the type DAG (reflexive).
  bool IsSubtypeOf(TypeId descendant, TypeId ancestor);

  /// All supertypes of t including t itself.
  const std::vector<TypeId>& TypeAncestorsOfType(TypeId t);

  /// min over E' ∈ E(T) of dist(E', T); kUnreachable for empty types.
  /// (Denominator of the missing-link feature, §4.2.3.)
  int MinEntityDist(TypeId t);

  /// True iff e ∈+ t.
  bool EntityHasType(EntityId e, TypeId t);

 private:
  const CatalogView* catalog_;

  std::unordered_map<EntityId, std::unordered_map<TypeId, int>>
      ancestor_dists_;
  std::unordered_map<EntityId, std::vector<TypeId>> ancestors_;
  std::unordered_map<TypeId, std::vector<EntityId>> entities_of_;
  std::unordered_map<TypeId, std::vector<TypeId>> type_ancestors_;
  std::unordered_map<TypeId, int> min_entity_dist_;
};

}  // namespace webtab

#endif  // WEBTAB_CATALOG_CLOSURE_H_
