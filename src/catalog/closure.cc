#include "catalog/closure.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/logging.h"

namespace webtab {

ClosureCache::ClosureCache(const CatalogView* catalog)
    : catalog_(catalog) {
  WEBTAB_CHECK(catalog != nullptr);
}

void ClosureCache::PrecomputeTypeClosures(bool include_entity_extents) {
  const int32_t num_types = catalog_->num_types();
  for (TypeId t = 0; t < num_types; ++t) {
    TypeAncestorsOfType(t);
    MinEntityDist(t);
    if (include_entity_extents) EntitiesOf(t);
  }
}

void ClosureCache::SeedFrom(const ClosureCache& prototype) {
  WEBTAB_CHECK(catalog_ == prototype.catalog_)
      << "SeedFrom requires the same catalog view";
  for (const auto& [e, dists] : prototype.ancestor_dists_) {
    ancestor_dists_[e] = dists;
  }
  for (const auto& [e, anc] : prototype.ancestors_) ancestors_[e] = anc;
  for (const auto& [t, es] : prototype.entities_of_) entities_of_[t] = es;
  for (const auto& [t, anc] : prototype.type_ancestors_) {
    type_ancestors_[t] = anc;
  }
  for (const auto& [t, d] : prototype.min_entity_dist_) {
    min_entity_dist_[t] = d;
  }
}

const std::unordered_map<TypeId, int>& ClosureCache::AncestorDistances(
    EntityId e) {
  auto it = ancestor_dists_.find(e);
  if (it != ancestor_dists_.end()) return it->second;

  // BFS upward: the ∈ edge to each direct type costs 1, then ⊆ edges cost
  // 1 each. Shortest distance wins when the DAG offers multiple paths.
  std::unordered_map<TypeId, int> dists;
  std::deque<std::pair<TypeId, int>> frontier;
  for (TypeId t : catalog_->EntityDirectTypes(e)) {
    if (!dists.count(t)) {
      dists[t] = 1;
      frontier.emplace_back(t, 1);
    }
  }
  while (!frontier.empty()) {
    auto [t, d] = frontier.front();
    frontier.pop_front();
    for (TypeId p : catalog_->TypeParents(t)) {
      auto found = dists.find(p);
      if (found == dists.end() || found->second > d + 1) {
        dists[p] = d + 1;
        frontier.emplace_back(p, d + 1);
      }
    }
  }
  return ancestor_dists_.emplace(e, std::move(dists)).first->second;
}

const std::vector<TypeId>& ClosureCache::TypeAncestors(EntityId e) {
  auto it = ancestors_.find(e);
  if (it != ancestors_.end()) return it->second;
  const auto& dists = AncestorDistances(e);
  std::vector<TypeId> out;
  out.reserve(dists.size());
  for (const auto& [t, d] : dists) out.push_back(t);
  std::sort(out.begin(), out.end());
  return ancestors_.emplace(e, std::move(out)).first->second;
}

int ClosureCache::Dist(EntityId e, TypeId t) {
  const auto& dists = AncestorDistances(e);
  auto it = dists.find(t);
  return it == dists.end() ? kUnreachable : it->second;
}

const std::vector<EntityId>& ClosureCache::EntitiesOf(TypeId t) {
  auto it = entities_of_.find(t);
  if (it != entities_of_.end()) return it->second;

  // DFS down over subtype edges collecting direct entities.
  std::unordered_set<TypeId> seen_types;
  std::unordered_set<EntityId> seen_entities;
  std::vector<TypeId> stack{t};
  seen_types.insert(t);
  while (!stack.empty()) {
    TypeId cur = stack.back();
    stack.pop_back();
    for (EntityId e : catalog_->TypeDirectEntities(cur)) {
      seen_entities.insert(e);
    }
    for (TypeId c : catalog_->TypeChildren(cur)) {
      if (seen_types.insert(c).second) stack.push_back(c);
    }
  }
  std::vector<EntityId> out(seen_entities.begin(), seen_entities.end());
  std::sort(out.begin(), out.end());
  return entities_of_.emplace(t, std::move(out)).first->second;
}

int64_t ClosureCache::EntityCount(TypeId t) {
  return static_cast<int64_t>(EntitiesOf(t).size());
}

double ClosureCache::TypeSpecificity(TypeId t) {
  int64_t total = catalog_->num_entities();
  int64_t under = EntityCount(t);
  if (under == 0) return static_cast<double>(total) + 1.0;
  return static_cast<double>(total) / static_cast<double>(under);
}

const std::vector<TypeId>& ClosureCache::TypeAncestorsOfType(TypeId t) {
  auto it = type_ancestors_.find(t);
  if (it != type_ancestors_.end()) return it->second;
  std::unordered_set<TypeId> seen{t};
  std::vector<TypeId> stack{t};
  while (!stack.empty()) {
    TypeId cur = stack.back();
    stack.pop_back();
    for (TypeId p : catalog_->TypeParents(cur)) {
      if (seen.insert(p).second) stack.push_back(p);
    }
  }
  std::vector<TypeId> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return type_ancestors_.emplace(t, std::move(out)).first->second;
}

bool ClosureCache::IsSubtypeOf(TypeId descendant, TypeId ancestor) {
  const auto& ancestors = TypeAncestorsOfType(descendant);
  return std::binary_search(ancestors.begin(), ancestors.end(), ancestor);
}

int ClosureCache::MinEntityDist(TypeId t) {
  auto it = min_entity_dist_.find(t);
  if (it != min_entity_dist_.end()) return it->second;
  int best = kUnreachable;
  // BFS down from t; the first level with a direct entity gives the min.
  std::unordered_set<TypeId> seen{t};
  std::deque<std::pair<TypeId, int>> frontier{{t, 0}};
  while (!frontier.empty()) {
    auto [cur, depth] = frontier.front();
    frontier.pop_front();
    if (depth + 1 >= best) continue;
    if (!catalog_->TypeDirectEntities(cur).empty()) {
      best = std::min(best, depth + 1);
      continue;
    }
    for (TypeId c : catalog_->TypeChildren(cur)) {
      if (seen.insert(c).second) frontier.emplace_back(c, depth + 1);
    }
  }
  min_entity_dist_[t] = best;
  return best;
}

bool ClosureCache::EntityHasType(EntityId e, TypeId t) {
  return Dist(e, t) != kUnreachable;
}

}  // namespace webtab
