#ifndef WEBTAB_CATALOG_CATALOG_BUILDER_H_
#define WEBTAB_CATALOG_CATALOG_BUILDER_H_

#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "common/status.h"

namespace webtab {

/// Incrementally assembles a Catalog and validates it at Build() time:
/// the subtype graph must be a DAG, relation schemas must name existing
/// types, tuples must reference existing entities. A root type named
/// "entity" (id 0) is created automatically and every parentless type is
/// attached to it (§3.1).
class CatalogBuilder {
 public:
  CatalogBuilder();

  /// Adds a type; name must be unique. Returns its id.
  TypeId AddType(std::string_view name);

  /// Adds a lemma string for the type (duplicates ignored).
  Status AddTypeLemma(TypeId t, std::string_view lemma);

  /// Declares child ⊆ parent.
  Status AddSubtype(TypeId child, TypeId parent);

  /// Adds an entity; name must be unique. Returns its id.
  EntityId AddEntity(std::string_view name);

  Status AddEntityLemma(EntityId e, std::string_view lemma);

  /// Declares e ∈ t (direct instance link).
  Status AddEntityType(EntityId e, TypeId t);

  /// Declares relation B(subject_type, object_type). Returns its id.
  RelationId AddRelation(std::string_view name, TypeId subject_type,
                         TypeId object_type,
                         RelationCardinality cardinality =
                             RelationCardinality::kManyToMany);

  /// Adds tuple b(e1, e2); duplicates are deduplicated at Build().
  Status AddTuple(RelationId b, EntityId e1, EntityId e2);

  /// Removes a direct ∈ link if present (used to simulate incomplete
  /// catalogs, §4.2.3 "missing links"). Returns true if removed.
  bool RemoveEntityType(EntityId e, TypeId t);

  /// Removes a ⊆ link if present. Returns true if removed.
  bool RemoveSubtype(TypeId child, TypeId parent);

  /// Validates and finalizes. On success the builder is left empty.
  Result<Catalog> Build();

 private:
  Catalog catalog_;
  bool built_ = false;
};

}  // namespace webtab

#endif  // WEBTAB_CATALOG_CATALOG_BUILDER_H_
