#include "catalog/catalog_builder.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "common/string_util.h"

namespace webtab {

namespace {
uint64_t PairKey(EntityId e1, EntityId e2) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(e1)) << 32) |
         static_cast<uint32_t>(e2);
}

bool Contains(const std::vector<int32_t>& v, int32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
}  // namespace

CatalogBuilder::CatalogBuilder() {
  TypeId root = AddType("entity");
  WEBTAB_CHECK(root == 0);
  catalog_.root_type_ = root;
}

TypeId CatalogBuilder::AddType(std::string_view name) {
  WEBTAB_CHECK(!built_);
  std::string key(name);
  auto it = catalog_.type_by_name_.find(key);
  if (it != catalog_.type_by_name_.end()) return it->second;
  TypeId id = catalog_.num_types();
  catalog_.types_.push_back(TypeRecord{.name = key,
                                       .lemmas = {},
                                       .parents = {},
                                       .children = {},
                                       .direct_entities = {}});
  catalog_.type_by_name_.emplace(std::move(key), id);
  return id;
}

Status CatalogBuilder::AddTypeLemma(TypeId t, std::string_view lemma) {
  if (!catalog_.ValidType(t)) {
    return Status::InvalidArgument("no such type: " + std::to_string(t));
  }
  auto& lemmas = catalog_.types_[t].lemmas;
  std::string s(lemma);
  if (std::find(lemmas.begin(), lemmas.end(), s) == lemmas.end()) {
    lemmas.push_back(std::move(s));
  }
  return Status::Ok();
}

Status CatalogBuilder::AddSubtype(TypeId child, TypeId parent) {
  if (!catalog_.ValidType(child) || !catalog_.ValidType(parent)) {
    return Status::InvalidArgument("no such type in subtype edge");
  }
  if (child == parent) {
    return Status::InvalidArgument("self-loop subtype: " +
                                   catalog_.types_[child].name);
  }
  if (!Contains(catalog_.types_[child].parents, parent)) {
    catalog_.types_[child].parents.push_back(parent);
    catalog_.types_[parent].children.push_back(child);
  }
  return Status::Ok();
}

EntityId CatalogBuilder::AddEntity(std::string_view name) {
  WEBTAB_CHECK(!built_);
  std::string key(name);
  auto it = catalog_.entity_by_name_.find(key);
  if (it != catalog_.entity_by_name_.end()) return it->second;
  EntityId id = catalog_.num_entities();
  catalog_.entities_.push_back(
      EntityRecord{.name = key, .lemmas = {}, .direct_types = {}});
  catalog_.entity_by_name_.emplace(std::move(key), id);
  return id;
}

Status CatalogBuilder::AddEntityLemma(EntityId e, std::string_view lemma) {
  if (!catalog_.ValidEntity(e)) {
    return Status::InvalidArgument("no such entity: " + std::to_string(e));
  }
  auto& lemmas = catalog_.entities_[e].lemmas;
  std::string s(lemma);
  if (std::find(lemmas.begin(), lemmas.end(), s) == lemmas.end()) {
    lemmas.push_back(std::move(s));
  }
  return Status::Ok();
}

Status CatalogBuilder::AddEntityType(EntityId e, TypeId t) {
  if (!catalog_.ValidEntity(e)) {
    return Status::InvalidArgument("no such entity: " + std::to_string(e));
  }
  if (!catalog_.ValidType(t)) {
    return Status::InvalidArgument("no such type: " + std::to_string(t));
  }
  if (!Contains(catalog_.entities_[e].direct_types, t)) {
    catalog_.entities_[e].direct_types.push_back(t);
    catalog_.types_[t].direct_entities.push_back(e);
  }
  return Status::Ok();
}

RelationId CatalogBuilder::AddRelation(std::string_view name,
                                       TypeId subject_type,
                                       TypeId object_type,
                                       RelationCardinality cardinality) {
  WEBTAB_CHECK(!built_);
  std::string key(name);
  auto it = catalog_.relation_by_name_.find(key);
  if (it != catalog_.relation_by_name_.end()) return it->second;
  RelationId id = catalog_.num_relations();
  catalog_.relations_.push_back(RelationRecord{.name = key,
                                               .subject_type = subject_type,
                                               .object_type = object_type,
                                               .cardinality = cardinality,
                                               .tuples = {}});
  catalog_.relation_by_name_.emplace(std::move(key), id);
  return id;
}

Status CatalogBuilder::AddTuple(RelationId b, EntityId e1, EntityId e2) {
  if (!catalog_.ValidRelation(b)) {
    return Status::InvalidArgument("no such relation: " + std::to_string(b));
  }
  if (!catalog_.ValidEntity(e1) || !catalog_.ValidEntity(e2)) {
    return Status::InvalidArgument("tuple references unknown entity");
  }
  catalog_.relations_[b].tuples.emplace_back(e1, e2);
  return Status::Ok();
}

bool CatalogBuilder::RemoveEntityType(EntityId e, TypeId t) {
  if (!catalog_.ValidEntity(e) || !catalog_.ValidType(t)) return false;
  auto& types = catalog_.entities_[e].direct_types;
  auto it = std::find(types.begin(), types.end(), t);
  if (it == types.end()) return false;
  types.erase(it);
  auto& ents = catalog_.types_[t].direct_entities;
  ents.erase(std::find(ents.begin(), ents.end(), e));
  return true;
}

bool CatalogBuilder::RemoveSubtype(TypeId child, TypeId parent) {
  if (!catalog_.ValidType(child) || !catalog_.ValidType(parent)) return false;
  auto& parents = catalog_.types_[child].parents;
  auto it = std::find(parents.begin(), parents.end(), parent);
  if (it == parents.end()) return false;
  parents.erase(it);
  auto& children = catalog_.types_[parent].children;
  children.erase(std::find(children.begin(), children.end(), child));
  return true;
}

Result<Catalog> CatalogBuilder::Build() {
  WEBTAB_CHECK(!built_) << "Build() called twice";

  // Attach parentless types (other than root) to the root type.
  for (TypeId t = 1; t < catalog_.num_types(); ++t) {
    if (catalog_.types_[t].parents.empty()) {
      catalog_.types_[t].parents.push_back(catalog_.root_type_);
      catalog_.types_[catalog_.root_type_].children.push_back(t);
    }
  }

  // Validate acyclicity with Kahn's algorithm over subtype edges
  // (parent -> child).
  std::vector<int32_t> indegree(catalog_.num_types(), 0);
  for (TypeId t = 0; t < catalog_.num_types(); ++t) {
    indegree[t] = static_cast<int32_t>(catalog_.types_[t].parents.size());
  }
  std::queue<TypeId> frontier;
  for (TypeId t = 0; t < catalog_.num_types(); ++t) {
    if (indegree[t] == 0) frontier.push(t);
  }
  int32_t visited = 0;
  while (!frontier.empty()) {
    TypeId t = frontier.front();
    frontier.pop();
    ++visited;
    for (TypeId c : catalog_.types_[t].children) {
      if (--indegree[c] == 0) frontier.push(c);
    }
  }
  if (visited != catalog_.num_types()) {
    return Status::FailedPrecondition("subtype graph contains a cycle");
  }

  // Every entity must have at least one lemma and, per §3.1, a type; we
  // tolerate typeless entities (incomplete catalogs) but give them a name
  // lemma so the index can still find them.
  for (EntityId e = 0; e < catalog_.num_entities(); ++e) {
    if (catalog_.entities_[e].lemmas.empty()) {
      catalog_.entities_[e].lemmas.push_back(catalog_.entities_[e].name);
    }
  }
  for (TypeId t = 0; t < catalog_.num_types(); ++t) {
    if (catalog_.types_[t].lemmas.empty()) {
      catalog_.types_[t].lemmas.push_back(
          ReplaceAll(catalog_.types_[t].name, "_", " "));
    }
  }

  // Sort and dedup tuples; build lookup indexes.
  catalog_.objects_index_.resize(catalog_.num_relations());
  catalog_.subjects_index_.resize(catalog_.num_relations());
  for (RelationId b = 0; b < catalog_.num_relations(); ++b) {
    auto& rel = catalog_.relations_[b];
    if (!catalog_.ValidType(rel.subject_type) ||
        !catalog_.ValidType(rel.object_type)) {
      return Status::FailedPrecondition("relation " + rel.name +
                                        " has an invalid schema type");
    }
    std::sort(rel.tuples.begin(), rel.tuples.end());
    rel.tuples.erase(std::unique(rel.tuples.begin(), rel.tuples.end()),
                     rel.tuples.end());
    for (const auto& [e1, e2] : rel.tuples) {
      catalog_.tuples_by_pair_[PairKey(e1, e2)].push_back(b);
      catalog_.objects_index_[b][e1].push_back(e2);
      catalog_.subjects_index_[b][e2].push_back(e1);
    }
  }

  built_ = true;
  return std::move(catalog_);
}

}  // namespace webtab
