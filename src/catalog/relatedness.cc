#include "catalog/relatedness.h"

#include <algorithm>

namespace webtab {

namespace {
// Size of intersection of two sorted vectors.
int64_t SortedIntersectionSize(const std::vector<EntityId>& a,
                               const std::vector<EntityId>& b) {
  int64_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++n;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}
}  // namespace

double TypeOverlapRatio(ClosureCache* cache, TypeId t_prime, TypeId t) {
  const auto& ext_prime = cache->EntitiesOf(t_prime);
  if (ext_prime.empty()) return 0.0;
  const auto& ext = cache->EntitiesOf(t);
  int64_t inter = SortedIntersectionSize(ext_prime, ext);
  return static_cast<double>(inter) / static_cast<double>(ext_prime.size());
}

double MissingLinkScore(ClosureCache* cache, EntityId e, TypeId t) {
  const auto direct = cache->catalog().EntityDirectTypes(e);
  if (direct.empty()) return 0.0;
  int min_dist = cache->MinEntityDist(t);
  if (min_dist >= kUnreachable) return 0.0;
  double min_ratio = 1.0;
  for (TypeId t_prime : direct) {
    min_ratio = std::min(min_ratio, TypeOverlapRatio(cache, t_prime, t));
  }
  return min_ratio / static_cast<double>(min_dist);
}

double TypeExtensionJaccard(ClosureCache* cache, TypeId t1, TypeId t2) {
  const auto& a = cache->EntitiesOf(t1);
  const auto& b = cache->EntitiesOf(t2);
  if (a.empty() && b.empty()) return 0.0;
  int64_t inter = SortedIntersectionSize(a, b);
  int64_t uni = static_cast<int64_t>(a.size() + b.size()) - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace webtab
