#ifndef WEBTAB_CATALOG_CATALOG_VIEW_H_
#define WEBTAB_CATALOG_CATALOG_VIEW_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/ids.h"
#include "common/status.h"

namespace webtab {

/// Cardinality declarations live with the catalog records (§3.1); shared
/// between the in-memory catalog and snapshot views.
enum class RelationCardinality {
  kManyToMany = 0,
  kOneToMany = 1,   // One subject, many objects per subject; object unique.
  kManyToOne = 2,   // Each subject has at most one object.
  kOneToOne = 3,
};

std::string_view RelationCardinalityName(RelationCardinality c);

/// A relation tuple (subject, object). Layout-compatible with the
/// std::pair<EntityId, EntityId> the in-memory catalog stores, so both
/// backends can expose tuple spans without copying.
using EntityPair = std::pair<EntityId, EntityId>;
static_assert(sizeof(EntityPair) == 2 * sizeof(EntityId),
              "EntityPair must be two packed ids for zero-copy snapshots");

/// Read-only access to a catalog of types, entities and relations
/// (paper §3.1). Two implementations exist: the in-memory `Catalog`
/// produced by CatalogBuilder / the synthetic world generator, and the
/// zero-copy `SnapshotCatalogView` over an mmap'd snapshot file. Every
/// consumer of catalog data (closure cache, feature computer, factor
/// builder, candidate generation, search) works against this interface so
/// the two backends are interchangeable and provably equivalent.
///
/// Accessors return spans / string_views into backing storage that lives
/// as long as the view. All methods are const and thread-safe.
class CatalogView {
 public:
  virtual ~CatalogView() = default;

  virtual int32_t num_types() const = 0;
  virtual int32_t num_entities() const = 0;
  virtual int32_t num_relations() const = 0;
  virtual int64_t num_tuples() const = 0;

  /// The synthetic root type reaching all others (§3.1). Always id 0 in
  /// catalogs produced by CatalogBuilder.
  virtual TypeId root_type() const = 0;

  bool ValidType(TypeId t) const { return t >= 0 && t < num_types(); }
  bool ValidEntity(EntityId e) const { return e >= 0 && e < num_entities(); }
  bool ValidRelation(RelationId b) const {
    return b >= 0 && b < num_relations();
  }

  // --- Types ---
  virtual std::string_view TypeName(TypeId t) const = 0;
  virtual int32_t NumTypeLemmas(TypeId t) const = 0;
  virtual std::string_view TypeLemma(TypeId t, int32_t i) const = 0;
  virtual std::span<const TypeId> TypeParents(TypeId t) const = 0;
  virtual std::span<const TypeId> TypeChildren(TypeId t) const = 0;
  virtual std::span<const EntityId> TypeDirectEntities(TypeId t) const = 0;

  // --- Entities ---
  virtual std::string_view EntityName(EntityId e) const = 0;
  virtual int32_t NumEntityLemmas(EntityId e) const = 0;
  virtual std::string_view EntityLemma(EntityId e, int32_t i) const = 0;
  virtual std::span<const TypeId> EntityDirectTypes(EntityId e) const = 0;

  // --- Relations ---
  virtual std::string_view RelationName(RelationId b) const = 0;
  virtual TypeId RelationSubjectType(RelationId b) const = 0;
  virtual TypeId RelationObjectType(RelationId b) const = 0;
  virtual RelationCardinality RelationCardinalityOf(RelationId b) const = 0;
  /// Tuples sorted lexicographically by (subject, object); unique.
  virtual std::span<const EntityPair> RelationTuples(RelationId b) const = 0;
  /// Number of distinct subjects / objects appearing in relation `b`.
  virtual int64_t DistinctSubjects(RelationId b) const = 0;
  virtual int64_t DistinctObjects(RelationId b) const = 0;

  // --- Name lookups; kNa when absent. ---
  virtual TypeId FindTypeByName(std::string_view name) const = 0;
  virtual EntityId FindEntityByName(std::string_view name) const = 0;
  virtual RelationId FindRelationByName(std::string_view name) const = 0;

  // --- Tuple queries ---
  /// True if relation `b` contains tuple (e1, e2).
  virtual bool HasTuple(RelationId b, EntityId e1, EntityId e2) const = 0;

  /// Objects E2 with b(e1, E2), sorted ascending; empty if none.
  virtual std::span<const EntityId> ObjectsOf(RelationId b,
                                              EntityId e1) const = 0;

  /// Subjects E1 with b(E1, e2), sorted ascending; empty if none.
  virtual std::span<const EntityId> SubjectsOf(RelationId b,
                                               EntityId e2) const = 0;

  /// All relations containing (e1, e2) as a tuple, in either role order:
  /// result pairs are (relation, swapped) where swapped=true means the
  /// tuple is b(e2, e1). Relations listed in ascending id order per
  /// direction (forward first), matching the in-memory build order.
  virtual std::vector<std::pair<RelationId, bool>> RelationsBetween(
      EntityId e1, EntityId e2) const = 0;

  /// Visits each (relation, swapped) of RelationsBetween(e1, e2) in the
  /// same order without materializing a vector — the hot-path form the
  /// candidate relation-vote sweep batches over. Backends override to
  /// walk their tuple indexes directly.
  virtual void ForEachRelationBetween(
      EntityId e1, EntityId e2,
      const std::function<void(RelationId, bool)>& fn) const {
    for (const auto& [rel, swapped] : RelationsBetween(e1, e2)) {
      fn(rel, swapped);
    }
  }

  // --- Checked accessors (hostile-id safe) ---
  // The raw accessors above CHECK-abort on an out-of-range id. That is
  // the right contract for kernels whose ids come from this same view,
  // and fatal for a serving worker handed an id from a request payload
  // or from an annotation computed against a different snapshot
  // generation. These validate first and surface kInvalidArgument
  // instead of taking the process down. Both backends inherit them.
  Result<std::string_view> CheckedTypeName(TypeId t) const {
    if (!ValidType(t)) return BadId("type", t);
    return TypeName(t);
  }
  Result<std::string_view> CheckedTypeLemma(TypeId t, int32_t i) const {
    if (!ValidType(t)) return BadId("type", t);
    if (i < 0 || i >= NumTypeLemmas(t)) return BadId("type lemma", i);
    return TypeLemma(t, i);
  }
  Result<std::string_view> CheckedEntityName(EntityId e) const {
    if (!ValidEntity(e)) return BadId("entity", e);
    return EntityName(e);
  }
  Result<std::string_view> CheckedEntityLemma(EntityId e, int32_t i) const {
    if (!ValidEntity(e)) return BadId("entity", e);
    if (i < 0 || i >= NumEntityLemmas(e)) return BadId("entity lemma", i);
    return EntityLemma(e, i);
  }
  Result<std::string_view> CheckedRelationName(RelationId b) const {
    if (!ValidRelation(b)) return BadId("relation", b);
    return RelationName(b);
  }
  Result<std::span<const EntityPair>> CheckedRelationTuples(
      RelationId b) const {
    if (!ValidRelation(b)) return BadId("relation", b);
    return RelationTuples(b);
  }

 private:
  static Status BadId(std::string_view kind, int64_t id) {
    return Status::InvalidArgument(std::string(kind) + " id " +
                                   std::to_string(id) + " out of range");
  }
};

}  // namespace webtab

#endif  // WEBTAB_CATALOG_CATALOG_VIEW_H_
