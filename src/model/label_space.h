#ifndef WEBTAB_MODEL_LABEL_SPACE_H_
#define WEBTAB_MODEL_LABEL_SPACE_H_

#include <map>
#include <utility>
#include <vector>

#include "index/candidates.h"
#include "table/annotation.h"
#include "table/table.h"

namespace webtab {

/// Per-table variable domains for inference (§4.3): every domain's first
/// entry (index 0) is the na label; the rest come from candidate
/// generation. During training the gold labels are injected so the
/// learner can always reach the ground truth.
class TableLabelSpace {
 public:
  /// Builds domains from candidates. If `gold` is non-null its labels are
  /// appended to the corresponding domains when missing.
  static TableLabelSpace Build(const Table& table,
                               const TableCandidates& candidates,
                               const TableAnnotation* gold = nullptr);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Entity domain of cell (r,c); [0] == kNa.
  const std::vector<EntityId>& EntityDomain(int r, int c) const {
    return entity_domains_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Type domain of column c; [0] == kNa.
  const std::vector<TypeId>& TypeDomain(int c) const {
    return type_domains_[c];
  }

  /// Ordered column pairs that carry a relation variable (non-trivial
  /// domain), ascending.
  const std::vector<std::pair<int, int>>& column_pairs() const {
    return pairs_;
  }

  /// Relation domain of pair (c1,c2); [0] == na. Empty for absent pairs.
  const std::vector<RelationCandidate>& RelationDomain(int c1, int c2) const;

  /// Index of a label within a domain; -1 when absent.
  static int IndexOfEntity(const std::vector<EntityId>& domain, EntityId e);
  static int IndexOfType(const std::vector<TypeId>& domain, TypeId t);
  static int IndexOfRelation(const std::vector<RelationCandidate>& domain,
                             const RelationCandidate& b);

  /// Summary statistics used by bench/candidate_stats.
  double MeanEntityDomainSize() const;
  double MeanTypeDomainSize() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::vector<EntityId>> entity_domains_;  // row-major.
  std::vector<std::vector<TypeId>> type_domains_;
  std::vector<std::pair<int, int>> pairs_;
  std::map<std::pair<int, int>, std::vector<RelationCandidate>>
      relation_domains_;
};

}  // namespace webtab

#endif  // WEBTAB_MODEL_LABEL_SPACE_H_
