#ifndef WEBTAB_MODEL_WEIGHTS_H_
#define WEBTAB_MODEL_WEIGHTS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace webtab {

/// Which type-entity compatibility feature drives φ3 (paper §4.2.3 and
/// the Figure 8 study).
enum class CompatMode {
  kRecipSqrtDist = 0,  // 1/sqrt(dist(E,T)) — the paper's robust default.
  kRecipDist = 1,      // 1/dist(E,T).
  kIdfOnly = 2,        // Only the |E|/|E(T)| specificity signal.
};

std::string_view CompatModeName(CompatMode mode);

/// Feature vector dimensions. Every family carries a trailing bias that
/// fires on any non-na label, letting training learn how strong a signal
/// must be to beat "no annotation".
inline constexpr int kF1Size = 6;  // cosine, jaccard, dice, soft, exact, bias
inline constexpr int kF2Size = 6;  // same measures on header vs type lemmas
inline constexpr int kF3Size = 4;  // dist-feature, idf-specificity,
                                   // missing-link, bias
inline constexpr int kF4Size = 4;  // schema-match, particip-subj,
                                   // particip-obj, bias
inline constexpr int kF5Size = 3;  // tuple-exists, cardinality-violation,
                                   // bias

/// Model parameters w1..w5 of the five potential families (§4.2). The
/// joint score of a labeling is Σ_k w_k · Σ f_k over the assignment.
struct Weights {
  std::vector<double> w1;
  std::vector<double> w2;
  std::vector<double> w3;
  std::vector<double> w4;
  std::vector<double> w5;

  /// Correctly-sized zero weights.
  static Weights Zero();

  /// Hand-tuned starting point that behaves sensibly untrained: positive
  /// similarity weights, negative biases, negative cardinality-violation.
  static Weights Default();

  int64_t TotalSize() const;

  /// Concatenation [w1|w2|w3|w4|w5] used by the learners.
  std::vector<double> Flatten() const;
  static Weights FromFlat(const std::vector<double>& flat);

  /// Text round-trip for persisting trained models.
  Status Save(std::ostream& os) const;
  static Result<Weights> Load(std::istream& is);

  std::string DebugString() const;
};

}  // namespace webtab

#endif  // WEBTAB_MODEL_WEIGHTS_H_
