#include "model/features.h"

#include <algorithm>
#include <cmath>

#include "catalog/relatedness.h"
#include "common/logging.h"
#include "text/similarity.h"
#include "text/soft_tfidf.h"

namespace webtab {

namespace {

template <size_t N>
double Dot(const std::vector<double>& w, const std::array<double, N>& f) {
  WEBTAB_CHECK(w.size() == N);
  double s = 0.0;
  for (size_t i = 0; i < N; ++i) s += w[i] * f[i];
  return s;
}

/// Max over lemmas of each similarity measure, packed as
/// [cosine, jaccard, dice, soft-tfidf, exact, bias]. `lemma_at(i)` yields
/// the i-th lemma as a string_view so both catalog backends (heap records
/// and mmap'd string arenas) feed the same code.
template <size_t N, typename LemmaAt>
void TextSimilarityFeatures(std::string_view text, int32_t num_lemmas,
                            LemmaAt lemma_at, Vocabulary* vocab,
                            std::array<double, N>* out) {
  static_assert(N >= 6);
  for (int32_t i = 0; i < num_lemmas; ++i) {
    std::string_view lemma = lemma_at(i);
    (*out)[0] = std::max((*out)[0], TfIdfCosine(text, lemma, vocab));
    (*out)[1] = std::max((*out)[1], JaccardSimilarity(text, lemma));
    (*out)[2] = std::max((*out)[2], DiceSimilarity(text, lemma));
    (*out)[3] = std::max((*out)[3], SoftTfIdfSimilarity(text, lemma, vocab));
    if (ExactNormalizedMatch(text, lemma)) (*out)[4] = 1.0;
  }
  (*out)[5] = 1.0;  // Bias: fires on any non-na label.
}

}  // namespace

FeatureComputer::FeatureComputer(ClosureCache* closure, Vocabulary* vocab,
                                 FeatureOptions options)
    : closure_(closure),
      vocab_(vocab),
      options_(options),
      similarity_(vocab) {
  WEBTAB_CHECK(closure != nullptr);
  WEBTAB_CHECK(vocab != nullptr);
}

void FeatureComputer::SyncScratch() const {
  similarity_.MaybeCompact();
  if (similarity_.epoch() != similarity_epoch_) {
    f1_cache_.clear();
    f2_cache_.clear();
    similarity_epoch_ = similarity_.epoch();
  }
}

namespace {

/// Max over lemma measure bundles — the scratch-backed twin of
/// TextSimilarityFeatures, consuming memoized per-(string, lemma)
/// bundles instead of recomputing each measure. Streaming max over the
/// same per-lemma values in the same order gives identical doubles.
template <size_t N, typename LemmaAt>
void BundleSimilarityFeatures(SimilarityScratch* scratch, int32_t query,
                              int32_t num_lemmas, LemmaAt lemma_at,
                              std::array<double, N>* out) {
  static_assert(N >= 6);
  for (int32_t i = 0; i < num_lemmas; ++i) {
    int32_t lemma = scratch->Prepare(lemma_at(i));
    const auto& m = scratch->Measures(query, lemma);
    (*out)[0] = std::max((*out)[0], m[SimilarityScratch::kCosine]);
    (*out)[1] = std::max((*out)[1], m[SimilarityScratch::kJaccard]);
    (*out)[2] = std::max((*out)[2], m[SimilarityScratch::kDice]);
    (*out)[3] = std::max((*out)[3], m[SimilarityScratch::kSoftTfIdf]);
    if (m[SimilarityScratch::kExact] == 1.0) (*out)[4] = 1.0;
  }
  (*out)[5] = 1.0;  // Bias: fires on any non-na label.
}

}  // namespace

std::array<double, kF1Size> FeatureComputer::F1(std::string_view cell_text,
                                                EntityId e) const {
  std::array<double, kF1Size> f{};
  if (e == kNa) return f;
  const CatalogView& cat = catalog();
  if (!options_.use_similarity_scratch) {
    TextSimilarityFeatures(
        cell_text, cat.NumEntityLemmas(e),
        [&](int32_t i) { return cat.EntityLemma(e, i); }, vocab_, &f);
    return f;
  }
  const int32_t n = cat.NumEntityLemmas(e);
  if (n == 0) {
    // No lemmas: only the bias fires — and no query tokens are interned,
    // matching the streaming path's no-op loop.
    f[5] = 1.0;
    return f;
  }
  SyncScratch();
  const int32_t query = similarity_.Prepare(cell_text);
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(query)) << 32) |
      static_cast<uint32_t>(e);
  auto it = f1_cache_.find(key);
  if (it != f1_cache_.end()) return it->second;
  BundleSimilarityFeatures(
      &similarity_, query, n,
      [&](int32_t i) { return cat.EntityLemma(e, i); }, &f);
  f1_cache_.emplace(key, f);
  return f;
}

std::array<double, kF2Size> FeatureComputer::F2(std::string_view header_text,
                                                TypeId t) const {
  std::array<double, kF2Size> f{};
  if (t == kNa) return f;
  if (header_text.empty()) {
    // Headers may be omitted (§4.2.2): only the bias fires so that a type
    // label is still possible on headerless tables.
    f[5] = 1.0;
    return f;
  }
  const CatalogView& cat = catalog();
  if (!options_.use_similarity_scratch) {
    TextSimilarityFeatures(
        header_text, cat.NumTypeLemmas(t),
        [&](int32_t i) { return cat.TypeLemma(t, i); }, vocab_, &f);
    return f;
  }
  const int32_t n = cat.NumTypeLemmas(t);
  if (n == 0) {
    f[5] = 1.0;
    return f;
  }
  SyncScratch();
  const int32_t query = similarity_.Prepare(header_text);
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(query)) << 32) |
      static_cast<uint32_t>(t);
  auto it = f2_cache_.find(key);
  if (it != f2_cache_.end()) return it->second;
  BundleSimilarityFeatures(
      &similarity_, query, n,
      [&](int32_t i) { return cat.TypeLemma(t, i); }, &f);
  f2_cache_.emplace(key, f);
  return f;
}

std::array<double, kF3Size> FeatureComputer::F3(TypeId t, EntityId e) {
  std::array<double, kF3Size> f{};
  if (t == kNa || e == kNa) return f;
  int dist = closure_->Dist(e, t);
  if (dist != kUnreachable) {
    switch (options_.compat_mode) {
      case CompatMode::kRecipSqrtDist:
        f[0] = 1.0 / std::sqrt(static_cast<double>(dist));
        break;
      case CompatMode::kRecipDist:
        f[0] = 1.0 / static_cast<double>(dist);
        break;
      case CompatMode::kIdfOnly:
        f[0] = 0.0;  // Distance signal disabled; IDF carries φ3.
        break;
    }
    // Specificity |E|/|E(T)| on log scale, normalized to [0,1] by the
    // maximum possible specificity log |E|.
    double total = static_cast<double>(catalog().num_entities());
    if (total > 1.0) {
      f[1] = std::log(closure_->TypeSpecificity(t)) / std::log(total + 1.0);
    }
    f[3] = 1.0;  // Bias (compatible pair).
  } else if (options_.use_missing_link) {
    // §4.2.3 "Missing links": indirect evidence that E ∈+ T was omitted.
    f[2] = MissingLinkScore(closure_, e, t);
    if (f[2] > 0.0) f[3] = 1.0;
  }
  return f;
}

std::array<double, kF4Size> FeatureComputer::F4(const RelationCandidate& b,
                                                TypeId t1, TypeId t2) {
  std::array<double, kF4Size> f{};
  if (b.is_na() || t1 == kNa || t2 == kNa) return f;
  TypeId subject_col_type = b.swapped ? t2 : t1;
  TypeId object_col_type = b.swapped ? t1 : t2;
  // Schema feature: 1 when the column types are sub-types of the declared
  // schema B(T1, T2) (exact-id equality is too brittle under a DAG).
  if (closure_->IsSubtypeOf(subject_col_type,
                            catalog().RelationSubjectType(b.relation)) &&
      closure_->IsSubtypeOf(object_col_type,
                            catalog().RelationObjectType(b.relation))) {
    f[0] = 1.0;
  }
  // Participation: fraction of entities under each column type occupying
  // the corresponding role in B (§4.2.4, second feature).
  f[1] = Participation(b.relation, subject_col_type, /*object_role=*/false);
  f[2] = Participation(b.relation, object_col_type, /*object_role=*/true);
  f[3] = 1.0;
  return f;
}

std::array<double, kF5Size> FeatureComputer::F5(const RelationCandidate& b,
                                                EntityId e1,
                                                EntityId e2) const {
  std::array<double, kF5Size> f{};
  if (b.is_na() || e1 == kNa || e2 == kNa) return f;
  EntityId subject = b.swapped ? e2 : e1;
  EntityId object = b.swapped ? e1 : e2;
  const CatalogView& cat = catalog();
  if (cat.HasTuple(b.relation, subject, object)) {
    f[0] = 1.0;
  } else {
    // Cardinality violation (§4.2.5, second feature): a functional
    // relation already maps this subject to a *different* object (or
    // inverse-functional maps this object to a different subject).
    RelationCardinality card = cat.RelationCardinalityOf(b.relation);
    bool functional = card == RelationCardinality::kManyToOne ||
                      card == RelationCardinality::kOneToOne;
    bool inv_functional = card == RelationCardinality::kOneToMany ||
                          card == RelationCardinality::kOneToOne;
    if (functional && !cat.ObjectsOf(b.relation, subject).empty()) {
      f[1] = 1.0;
    }
    if (inv_functional && !cat.SubjectsOf(b.relation, object).empty()) {
      f[1] = 1.0;
    }
  }
  f[2] = 1.0;
  return f;
}

double FeatureComputer::Participation(RelationId rel, TypeId t,
                                      bool object_role) {
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(rel)) << 33) |
                 (static_cast<uint64_t>(static_cast<uint32_t>(t)) << 1) |
                 (object_role ? 1 : 0);
  auto it = participation_cache_.find(key);
  if (it != participation_cache_.end()) return it->second;

  const std::vector<EntityId>& extension = closure_->EntitiesOf(t);
  double value = 0.0;
  if (!extension.empty()) {
    // Count extension entities occupying the role. Tuples are sorted by
    // subject; for the object role we use the reverse index per entity.
    int64_t hits = 0;
    for (EntityId e : extension) {
      bool present = object_role ? !catalog().SubjectsOf(rel, e).empty()
                                 : !catalog().ObjectsOf(rel, e).empty();
      if (present) ++hits;
    }
    value = static_cast<double>(hits) / static_cast<double>(extension.size());
  }
  participation_cache_[key] = value;
  return value;
}

double FeatureComputer::Phi1Log(const Weights& w, std::string_view cell_text,
                                EntityId e) const {
  if (e == kNa) return 0.0;
  return Dot(w.w1, F1(cell_text, e));
}

double FeatureComputer::Phi2Log(const Weights& w,
                                std::string_view header_text,
                                TypeId t) const {
  if (t == kNa) return 0.0;
  return Dot(w.w2, F2(header_text, t));
}

double FeatureComputer::Phi3Log(const Weights& w, TypeId t, EntityId e) {
  if (t == kNa || e == kNa) return 0.0;
  return Dot(w.w3, F3(t, e));
}

double FeatureComputer::Phi4Log(const Weights& w, const RelationCandidate& b,
                                TypeId t1, TypeId t2) {
  if (b.is_na() || t1 == kNa || t2 == kNa) return 0.0;
  return Dot(w.w4, F4(b, t1, t2));
}

double FeatureComputer::Phi5Log(const Weights& w, const RelationCandidate& b,
                                EntityId e1, EntityId e2) const {
  if (b.is_na() || e1 == kNa || e2 == kNa) return 0.0;
  return Dot(w.w5, F5(b, e1, e2));
}

}  // namespace webtab
