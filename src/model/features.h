#ifndef WEBTAB_MODEL_FEATURES_H_
#define WEBTAB_MODEL_FEATURES_H_

#include <array>
#include <string_view>
#include <unordered_map>

#include "catalog/closure.h"
#include "model/weights.h"
#include "table/table.h"
#include "text/similarity_scratch.h"
#include "text/vocabulary.h"

namespace webtab {

/// Options shared by feature computation.
struct FeatureOptions {
  CompatMode compat_mode = CompatMode::kRecipSqrtDist;
  /// Disables the φ3 missing-link hint (ablation A3 in DESIGN.md).
  bool use_missing_link = true;
  /// Memoize f1/f2 similarity vectors per distinct (string, label) via
  /// a SimilarityScratch, reused across rows, BP feature evaluation and
  /// training epochs. Results are bit-identical either way (asserted in
  /// tests/candidate_equivalence_test.cc); disabling exists for
  /// ablation and the before/after numbers in bench/candidate_bench.cc.
  bool use_similarity_scratch = true;
};

/// Computes the feature families f1..f5 of §4.2 and their weighted scores
/// (log-potentials log φ_k = w_k · f_k). Per the paper, *no feature fires
/// when any involved label is na*, so na always scores exactly 0; the
/// trailing bias in each family lets training calibrate real labels
/// against that fixed baseline.
///
/// Holds memoization caches; not thread-safe. Use one per worker.
class FeatureComputer {
 public:
  /// `closure` and `vocab` must outlive this object. The vocabulary is
  /// the lemma index's so IDF statistics match candidate generation.
  FeatureComputer(ClosureCache* closure, Vocabulary* vocab,
                  FeatureOptions options = FeatureOptions());

  FeatureComputer(const FeatureComputer&) = delete;
  FeatureComputer& operator=(const FeatureComputer&) = delete;

  const CatalogView& catalog() const { return closure_->catalog(); }
  ClosureCache* closure() { return closure_; }
  const FeatureOptions& options() const { return options_; }

  /// f1(r,c,E): similarities between cell text and the entity's lemmas
  /// (max over lemmas per measure, §4.2.1). Zero vector when e == kNa.
  std::array<double, kF1Size> F1(std::string_view cell_text,
                                 EntityId e) const;

  /// f2(c,T): similarities between header text and the type's lemmas.
  std::array<double, kF2Size> F2(std::string_view header_text,
                                 TypeId t) const;

  /// f3(T,E): type-entity compatibility (§4.2.3). When E ∈+ T, fires the
  /// distance feature per CompatMode and the IDF specificity; otherwise
  /// only the missing-link hint can fire.
  std::array<double, kF3Size> F3(TypeId t, EntityId e);

  /// f4(B,T1,T2): relation-schema compatibility (§4.2.4) for the relation
  /// candidate applied to column types (t1, t2) in pair order.
  std::array<double, kF4Size> F4(const RelationCandidate& b, TypeId t1,
                                 TypeId t2);

  /// f5(B,E1,E2): tuple evidence and cardinality violations (§4.2.5).
  std::array<double, kF5Size> F5(const RelationCandidate& b, EntityId e1,
                                 EntityId e2) const;

  // Weighted log-potentials.
  double Phi1Log(const Weights& w, std::string_view cell_text, EntityId e)
      const;
  double Phi2Log(const Weights& w, std::string_view header_text, TypeId t)
      const;
  double Phi3Log(const Weights& w, TypeId t, EntityId e);
  double Phi4Log(const Weights& w, const RelationCandidate& b, TypeId t1,
                 TypeId t2);
  double Phi5Log(const Weights& w, const RelationCandidate& b, EntityId e1,
                 EntityId e2) const;

  /// Fraction of E(t) that occupies the given role in relation `rel`
  /// (memoized). Public so the structured φ4 factor builder can reuse
  /// the same cached values the dense path reads through F4.
  double Participation(RelationId rel, TypeId t, bool object_role);

 private:
  /// Reconciles the f1/f2 memos with the scratch's epoch (the scratch
  /// drops prepared ids when it compacts) — called before any Prepare.
  void SyncScratch() const;

  ClosureCache* closure_;
  Vocabulary* vocab_;
  FeatureOptions options_;

  // Cache: (rel, t, role) -> participation fraction.
  std::unordered_map<uint64_t, double> participation_cache_;

  /// Shared prepared-string + pair-measure memo behind F1/F2. Mutable:
  /// F1/F2 are logically const lookups (the computer is documented
  /// single-worker, not thread-safe).
  mutable SimilarityScratch similarity_;
  mutable int64_t similarity_epoch_ = 0;
  /// (prepared text id << 32 | label id) -> feature vector, valid for
  /// the scratch epoch above.
  mutable std::unordered_map<uint64_t, std::array<double, kF1Size>>
      f1_cache_;
  mutable std::unordered_map<uint64_t, std::array<double, kF2Size>>
      f2_cache_;
};

}  // namespace webtab

#endif  // WEBTAB_MODEL_FEATURES_H_
