#include "model/weights.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace webtab {

std::string_view CompatModeName(CompatMode mode) {
  switch (mode) {
    case CompatMode::kRecipSqrtDist:
      return "1/sqrt(dist)";
    case CompatMode::kRecipDist:
      return "1/dist";
    case CompatMode::kIdfOnly:
      return "IDF";
  }
  return "unknown";
}

Weights Weights::Zero() {
  Weights w;
  w.w1.assign(kF1Size, 0.0);
  w.w2.assign(kF2Size, 0.0);
  w.w3.assign(kF3Size, 0.0);
  w.w4.assign(kF4Size, 0.0);
  w.w5.assign(kF5Size, 0.0);
  return w;
}

Weights Weights::Default() {
  Weights w = Zero();
  // φ1: similarities push toward matching entities; the bias makes weak
  // matches lose to na.
  w.w1 = {2.0, 1.0, 0.5, 1.0, 1.5, -1.8};
  // φ2: headers are a weaker signal (§4.2.2) — smaller magnitudes.
  w.w2 = {1.0, 0.5, 0.25, 0.5, 0.75, -0.4};
  // φ3: distance feature, specificity, missing-link hint, bias.
  w.w3 = {2.0, 0.3, 1.0, -0.5};
  // φ4: schema match, subject/object participation, bias.
  w.w4 = {1.5, 1.0, 1.0, -1.0};
  // φ5: tuple hit strongly positive, cardinality violation negative.
  w.w5 = {3.0, -1.5, -0.8};
  return w;
}

int64_t Weights::TotalSize() const {
  return static_cast<int64_t>(w1.size() + w2.size() + w3.size() +
                              w4.size() + w5.size());
}

std::vector<double> Weights::Flatten() const {
  std::vector<double> flat;
  flat.reserve(TotalSize());
  for (const auto* v : {&w1, &w2, &w3, &w4, &w5}) {
    flat.insert(flat.end(), v->begin(), v->end());
  }
  return flat;
}

Weights Weights::FromFlat(const std::vector<double>& flat) {
  WEBTAB_CHECK(static_cast<int>(flat.size()) ==
               kF1Size + kF2Size + kF3Size + kF4Size + kF5Size);
  Weights w = Zero();
  size_t pos = 0;
  for (auto* v : {&w.w1, &w.w2, &w.w3, &w.w4, &w.w5}) {
    for (double& x : *v) x = flat[pos++];
  }
  return w;
}

Status Weights::Save(std::ostream& os) const {
  os << "# webtab-weights v1\n";
  for (const auto* v : {&w1, &w2, &w3, &w4, &w5}) {
    for (size_t i = 0; i < v->size(); ++i) {
      if (i) os << ' ';
      os << (*v)[i];
    }
    os << "\n";
  }
  if (!os.good()) return Status::IoError("write failed");
  return Status::Ok();
}

Result<Weights> Weights::Load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      StripWhitespace(line) != "# webtab-weights v1") {
    return Status::ParseError("missing weights header");
  }
  Weights w = Zero();
  for (auto* v : {&w.w1, &w.w2, &w.w3, &w.w4, &w.w5}) {
    if (!std::getline(is, line)) {
      return Status::ParseError("truncated weights file");
    }
    std::istringstream ss(line);
    for (double& x : *v) {
      if (!(ss >> x)) return Status::ParseError("bad weight row: " + line);
    }
  }
  return w;
}

std::string Weights::DebugString() const {
  std::string out;
  const char* names[] = {"w1", "w2", "w3", "w4", "w5"};
  int i = 0;
  for (const auto* v : {&w1, &w2, &w3, &w4, &w5}) {
    out += names[i++];
    out += " = [";
    for (size_t j = 0; j < v->size(); ++j) {
      if (j) out += ", ";
      out += StrFormat("%.3f", (*v)[j]);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace webtab
