#include "model/label_space.h"

#include <algorithm>

#include "common/logging.h"

namespace webtab {

namespace {
const std::vector<RelationCandidate> kEmptyRelationDomain;
}  // namespace

TableLabelSpace TableLabelSpace::Build(const Table& table,
                                       const TableCandidates& candidates,
                                       const TableAnnotation* gold) {
  TableLabelSpace space;
  space.rows_ = table.rows();
  space.cols_ = table.cols();
  space.entity_domains_.resize(static_cast<size_t>(table.rows()) *
                               table.cols());
  space.type_domains_.resize(table.cols());

  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      auto& domain =
          space.entity_domains_[static_cast<size_t>(r) * table.cols() + c];
      domain.push_back(kNa);
      for (const LemmaHit& hit : candidates.cells[r][c]) {
        domain.push_back(hit.id);
      }
      if (gold != nullptr) {
        EntityId g = gold->EntityOf(r, c);
        if (g != kNa &&
            std::find(domain.begin(), domain.end(), g) == domain.end()) {
          domain.push_back(g);
        }
      }
    }
  }

  for (int c = 0; c < table.cols(); ++c) {
    auto& domain = space.type_domains_[c];
    domain.push_back(kNa);
    for (TypeId t : candidates.column_types[c]) domain.push_back(t);
    if (gold != nullptr) {
      TypeId g = gold->TypeOf(c);
      if (g != kNa &&
          std::find(domain.begin(), domain.end(), g) == domain.end()) {
        domain.push_back(g);
      }
    }
  }

  // Relation domains: from candidates, plus gold pairs during training.
  std::map<std::pair<int, int>, std::vector<RelationCandidate>> domains;
  for (const auto& [pair, rels] : candidates.relations) {
    auto& domain = domains[pair];
    domain.push_back(RelationCandidate{});  // na.
    for (const RelationCandidate& b : rels) domain.push_back(b);
  }
  if (gold != nullptr) {
    for (const auto& [pair, rel] : gold->relations) {
      if (rel.is_na()) continue;
      auto& domain = domains[pair];
      if (domain.empty()) domain.push_back(RelationCandidate{});
      if (std::find(domain.begin(), domain.end(), rel) == domain.end()) {
        domain.push_back(rel);
      }
    }
  }
  for (auto& [pair, domain] : domains) {
    if (domain.size() <= 1) continue;  // na-only pairs carry no variable.
    space.pairs_.push_back(pair);
    space.relation_domains_[pair] = std::move(domain);
  }
  return space;
}

const std::vector<RelationCandidate>& TableLabelSpace::RelationDomain(
    int c1, int c2) const {
  auto it = relation_domains_.find({c1, c2});
  return it == relation_domains_.end() ? kEmptyRelationDomain : it->second;
}

int TableLabelSpace::IndexOfEntity(const std::vector<EntityId>& domain,
                                   EntityId e) {
  auto it = std::find(domain.begin(), domain.end(), e);
  return it == domain.end() ? -1 : static_cast<int>(it - domain.begin());
}

int TableLabelSpace::IndexOfType(const std::vector<TypeId>& domain,
                                 TypeId t) {
  auto it = std::find(domain.begin(), domain.end(), t);
  return it == domain.end() ? -1 : static_cast<int>(it - domain.begin());
}

int TableLabelSpace::IndexOfRelation(
    const std::vector<RelationCandidate>& domain,
    const RelationCandidate& b) {
  auto it = std::find(domain.begin(), domain.end(), b);
  return it == domain.end() ? -1 : static_cast<int>(it - domain.begin());
}

double TableLabelSpace::MeanEntityDomainSize() const {
  if (entity_domains_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& d : entity_domains_) {
    total += static_cast<double>(d.size()) - 1;  // Exclude na.
  }
  return total / static_cast<double>(entity_domains_.size());
}

double TableLabelSpace::MeanTypeDomainSize() const {
  if (type_domains_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& d : type_domains_) {
    total += static_cast<double>(d.size()) - 1;
  }
  return total / static_cast<double>(type_domains_.size());
}

}  // namespace webtab
