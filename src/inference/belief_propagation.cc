#include "inference/belief_propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace webtab {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Subtracts the max so the largest element becomes 0. Safe on empty
/// messages (degenerate zero-size domains leave nothing to normalize).
void NormalizeInPlace(double* msg, int n) {
  if (n == 0) return;
  double mx = msg[0];
  for (int i = 1; i < n; ++i) mx = std::max(mx, msg[i]);
  for (int i = 0; i < n; ++i) msg[i] -= mx;
}

double MaxOf(const double* v, int n) {
  double mx = kNegInf;
  for (int i = 0; i < n; ++i) mx = std::max(mx, v[i]);
  return mx;
}

/// Dense max-marginalization for arity 1-3 factors: direct exclusion
/// sums, one pass over the table.
void DenseKernel(const FactorGraph::Factor& factor, const int* dims,
                 const double* const* in, double* const* out) {
  const double* table = factor.table.data();
  switch (factor.vars.size()) {
    case 1: {
      for (int l0 = 0; l0 < dims[0]; ++l0) {
        out[0][l0] = table[l0];
      }
      return;
    }
    case 2: {
      int64_t idx = 0;
      for (int l0 = 0; l0 < dims[0]; ++l0) {
        const double in0 = in[0][l0];
        for (int l1 = 0; l1 < dims[1]; ++l1, ++idx) {
          const double t = table[idx];
          out[0][l0] = std::max(out[0][l0], t + in[1][l1]);
          out[1][l1] = std::max(out[1][l1], t + in0);
        }
      }
      return;
    }
    case 3: {
      int64_t idx = 0;
      for (int l0 = 0; l0 < dims[0]; ++l0) {
        const double in0 = in[0][l0];
        for (int l1 = 0; l1 < dims[1]; ++l1) {
          const double in1 = in[1][l1];
          for (int l2 = 0; l2 < dims[2]; ++l2, ++idx) {
            const double t = table[idx];
            out[0][l0] = std::max(out[0][l0], (t + in1) + in[2][l2]);
            out[1][l1] = std::max(out[1][l1], (t + in0) + in[2][l2]);
            out[2][l2] = std::max(out[2][l2], (t + in0) + in1);
          }
        }
      }
      return;
    }
    default:
      break;
  }
  // Generic arity: odometer enumeration with total-minus-own exclusion.
  const size_t arity = factor.vars.size();
  std::vector<int> label(arity, 0);
  const int64_t table_size = static_cast<int64_t>(factor.table.size());
  for (int64_t idx = 0; idx < table_size; ++idx) {
    int64_t rem = idx;
    for (size_t i = arity; i-- > 0;) {
      label[i] = static_cast<int>(rem % dims[i]);
      rem /= dims[i];
    }
    double total_in = 0.0;
    for (size_t i = 0; i < arity; ++i) total_in += in[i][label[i]];
    const double base = table[idx];
    for (size_t i = 0; i < arity; ++i) {
      double excl = base + total_in - in[i][label[i]];
      out[i][label[i]] = std::max(out[i][label[i]], excl);
    }
  }
}

/// One direction of the sparse pairwise kernel: the max over the other
/// variable of (value + in_other), per self label. `all` must be
/// grouped by self label (major axis) — the factor's `entries` for
/// direction 0, its precomputed transpose `entries_t` for direction 1.
///
/// Every self label starts at the default candidate (default + global
/// best of the other side, one vectorizable fill); only labels that
/// carry entries are revisited, via one sweep over the entry groups.
/// Such a row marks its cells and, when the global argmax happens to be
/// overridden, rescans the other side once — so entries below the
/// default never overstate the marginal. Expected cost
/// O(d_self + d_other + nnz); the rescan degenerates only at densities
/// where emission already prefers the dense table.
void SparsePairDirection(const std::vector<FactorGraph::SparseEntry>& all,
                         double def, int d_self, int d_other,
                         const double* in_other, double* out,
                         std::vector<uint8_t>* marks_scratch) {
  double best_other = kNegInf;
  int32_t best_other_idx = 0;
  for (int32_t k = 0; k < d_other; ++k) {
    if (in_other[k] > best_other) {
      best_other = in_other[k];
      best_other_idx = k;
    }
  }
  const double default_cand = def + best_other;
  for (int l = 0; l < d_self; ++l) out[l] = default_cand;
  if (all.empty()) return;

  marks_scratch->assign(d_other, 0);
  uint8_t* marks = marks_scratch->data();
  const auto* entries = all.data();
  const int nnz = static_cast<int>(all.size());
  int pos = 0;
  while (pos < nnz) {
    const int32_t l = entries[pos].l0;
    const int begin = pos;
    while (pos < nnz && entries[pos].l0 == l) ++pos;
    double m = kNegInf;
    for (int k = begin; k < pos; ++k) {
      marks[entries[k].l1] = 1;
      m = std::max(m, entries[k].value + in_other[entries[k].l1]);
    }
    // Default-valued candidate: the global best unless this row
    // overrides it, then the best unmarked label.
    if (!marks[best_other_idx]) {
      m = std::max(m, default_cand);
    } else {
      double best_free = kNegInf;
      for (int k = 0; k < d_other; ++k) {
        if (!marks[k] && in_other[k] > best_free) best_free = in_other[k];
      }
      m = std::max(m, def + best_free);
    }
    for (int k = begin; k < pos; ++k) marks[entries[k].l1] = 0;
    out[l] = m;
  }
}

/// Implicit ternary max-marginalization via per-slab class maxima; see
/// factor_graph.h for the representation. O(B*(Dx+Dy) + nnz) total.
void ImplicitTernaryKernel(const FactorGraph::Factor& factor,
                           const int* dims, const double* const* in,
                           double* const* out,
                           std::vector<double>* ax_on_s,
                           std::vector<double>* ax_off_s,
                           std::vector<double>* by_on_s,
                           std::vector<double>* by_off_s,
                           std::vector<double>* term_on_s,
                           std::vector<double>* term_off_s) {
  const auto& sp = factor.implicit;
  const int B = dims[0], Dx = dims[1], Dy = dims[2];
  const double* ins = in[0];
  const double* inx = in[1];
  const double* iny = in[2];

  const double best_s_all = MaxOf(ins, B);
  const double best_x_all = MaxOf(inx, Dx);
  const double best_y_all = MaxOf(iny, Dy);

  ax_on_s->assign(B, kNegInf);
  ax_off_s->assign(B, kNegInf);
  by_on_s->assign(B, kNegInf);
  by_off_s->assign(B, kNegInf);
  double* ax_on = ax_on_s->data();
  double* ax_off = ax_off_s->data();
  double* by_on = by_on_s->data();
  double* by_off = by_off_s->data();
  for (int ls = 1; ls < B; ++ls) {
    const double* ux = &sp.unary_x[static_cast<size_t>(ls) * Dx];
    const uint8_t* gx = &sp.gate_x[static_cast<size_t>(ls) * Dx];
    double on = kNegInf, off = kNegInf;
    for (int lx = 1; lx < Dx; ++lx) {
      const double c = ux[lx] + inx[lx];
      if (gx[lx]) {
        on = std::max(on, c);
      } else {
        off = std::max(off, c);
      }
    }
    ax_on[ls] = on;
    ax_off[ls] = off;
    const double* uy = &sp.unary_y[static_cast<size_t>(ls) * Dy];
    const uint8_t* gy = &sp.gate_y[static_cast<size_t>(ls) * Dy];
    on = kNegInf;
    off = kNegInf;
    for (int ly = 1; ly < Dy; ++ly) {
      const double c = uy[ly] + iny[ly];
      if (gy[ly]) {
        on = std::max(on, c);
      } else {
        off = std::max(off, c);
      }
    }
    by_on[ls] = on;
    by_off[ls] = off;
  }

  // Direction s. Slab 0 (na) sees value 0 everywhere; other slabs
  // combine the na strip (any x/y na) with the four gate classes.
  out[0][0] = best_x_all + best_y_all;
  const double na_strip_s =
      std::max(inx[0] + best_y_all, best_x_all + iny[0]);
  // Candidate sums are grouped as ((base + x-side) + y-side) to mirror
  // the dense kernel's (table + in1) + in2 evaluation order: factors with
  // zero unaries (φ5 shape) then produce bitwise-identical messages to
  // their dense equivalents.
  for (int ls = 1; ls < B; ++ls) {
    double m = na_strip_s;
    m = std::max(m, (sp.base_on[ls] + ax_on[ls]) + by_on[ls]);
    m = std::max(m, (sp.base_off[ls] + ax_on[ls]) + by_off[ls]);
    m = std::max(m, (sp.base_off[ls] + ax_off[ls]) + by_on[ls]);
    m = std::max(m, (sp.base_off[ls] + ax_off[ls]) + by_off[ls]);
    out[0][ls] = m;
  }

  // Direction x: fold in_s and the bases into per-slab terms, then scan
  // (slab, x) pairs against the y-side class maxima.
  term_on_s->assign(B, kNegInf);
  term_off_s->assign(B, kNegInf);
  double* s_on = term_on_s->data();    // base_on[ls] + in_s[ls]
  double* s_off = term_off_s->data();  // base_off[ls] + in_s[ls]
  for (int ls = 1; ls < B; ++ls) {
    s_on[ls] = sp.base_on[ls] + ins[ls];
    s_off[ls] = sp.base_off[ls] + ins[ls];
  }
  out[1][0] = best_s_all + best_y_all;
  const double na_strip_x =
      std::max(ins[0] + best_y_all, best_s_all + iny[0]);
  for (int lx = 1; lx < Dx; ++lx) {
    double m = na_strip_x;
    for (int ls = 1; ls < B; ++ls) {
      const double ux = sp.unary_x[static_cast<size_t>(ls) * Dx + lx];
      if (sp.gate_x[static_cast<size_t>(ls) * Dx + lx]) {
        m = std::max(m, (s_on[ls] + ux) + by_on[ls]);
        m = std::max(m, (s_off[ls] + ux) + by_off[ls]);
      } else {
        m = std::max(m, (s_off[ls] + ux) + std::max(by_on[ls], by_off[ls]));
      }
    }
    out[1][lx] = m;
  }

  // Direction y, symmetric with the x-side class maxima.
  out[2][0] = best_s_all + best_x_all;
  const double na_strip_y =
      std::max(ins[0] + best_x_all, best_s_all + inx[0]);
  for (int ly = 1; ly < Dy; ++ly) {
    double m = na_strip_y;
    for (int ls = 1; ls < B; ++ls) {
      const double uy = sp.unary_y[static_cast<size_t>(ls) * Dy + ly];
      if (sp.gate_y[static_cast<size_t>(ls) * Dy + ly]) {
        m = std::max(m, (s_on[ls] + uy) + ax_on[ls]);
        m = std::max(m, (s_off[ls] + uy) + ax_off[ls]);
      } else {
        m = std::max(m, (s_off[ls] + uy) + std::max(ax_on[ls], ax_off[ls]));
      }
    }
    out[2][ly] = m;
  }

  // Overrides dominate the implicit values they shadow, so a plain sweep
  // (without excising them from the class maxima) stays exact.
  for (const auto& o : sp.overrides) {
    out[0][o.ls] =
        std::max(out[0][o.ls], (o.value + inx[o.lx]) + iny[o.ly]);
    out[1][o.lx] =
        std::max(out[1][o.lx], (o.value + ins[o.ls]) + iny[o.ly]);
    out[2][o.ly] =
        std::max(out[2][o.ly], (o.value + ins[o.ls]) + inx[o.lx]);
  }
}

}  // namespace

void BpWorkspace::Prepare(const FactorGraph& graph) {
  const int num_vars = graph.num_variables();
  const int num_factors = graph.num_factors();

  var_off_.assign(num_vars + 1, 0);
  for (int v = 0; v < num_vars; ++v) {
    var_off_[v + 1] = var_off_[v] + graph.domain_size(v);
  }
  belief_.assign(var_off_[num_vars], 0.0);
  for (int v = 0; v < num_vars; ++v) {
    const auto& pot = graph.node_log_potential(v);
    std::copy(pot.begin(), pot.end(), belief_.begin() + var_off_[v]);
  }

  adj_start_.assign(num_factors + 1, 0);
  for (int f = 0; f < num_factors; ++f) {
    adj_start_[f + 1] =
        adj_start_[f] + static_cast<int64_t>(graph.factor(f).vars.size());
  }
  const int64_t num_adj = adj_start_[num_factors];
  msg_off_.assign(num_adj + 1, 0);
  for (int f = 0; f < num_factors; ++f) {
    const auto& vars = graph.factor(f).vars;
    for (size_t i = 0; i < vars.size(); ++i) {
      const int64_t slot = adj_start_[f] + static_cast<int64_t>(i);
      msg_off_[slot + 1] = msg_off_[slot] + graph.domain_size(vars[i]);
    }
  }
  msg_.assign(msg_off_[num_adj], 0.0);

  order_.resize(num_factors);
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
    return graph.factor(a).group < graph.factor(b).group;
  });

  version_.assign(num_vars, 1);
  last_seen_.assign(num_adj, 0);
  last_zero_.assign(num_factors, 0);

  int max_dom = 1;
  for (int v = 0; v < num_vars; ++v) {
    max_dom = std::max(max_dom, graph.domain_size(v));
  }
  max_dom_ = max_dom;
  size_t max_arity = 1;
  for (int f = 0; f < num_factors; ++f) {
    max_arity = std::max(max_arity, graph.factor(f).vars.size());
  }
  WEBTAB_CHECK(max_arity <= 8) << "factor arity above 8 unsupported";
  in_scratch_.resize(max_arity * static_cast<size_t>(max_dom));
  new_scratch_.resize(max_arity * static_cast<size_t>(max_dom));
  // marks_ and the slab/term scratch are sized on demand inside the
  // kernels (resize/assign reuse capacity and do not allocate in steady
  // state).
}

BpResult RunBeliefPropagation(const FactorGraph& graph,
                              const BpOptions& options,
                              BpWorkspace* workspace) {
  BpWorkspace local;
  BpWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.Prepare(graph);

  const int num_vars = graph.num_variables();
  const int max_dom = ws.max_dom_;

  BpResult result;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double residual = 0.0;
    for (int f : ws.order_) {
      const auto& factor = graph.factor(f);
      const int arity = static_cast<int>(factor.vars.size());
      const int64_t adj0 = ws.adj_start_[f];

      // Residual-based scheduling: if this factor's last sweep changed
      // nothing and no neighbor's belief moved since, its messages are
      // already at their fixed point for the current inputs.
      if (options.residual_scheduling && ws.last_zero_[f]) {
        bool unchanged = true;
        for (int i = 0; i < arity; ++i) {
          if (ws.last_seen_[adj0 + i] != ws.version_[factor.vars[i]]) {
            unchanged = false;
            break;
          }
        }
        if (unchanged) {
          ++result.factor_skips;
          continue;
        }
      }
      ++result.factor_updates;

      // Gather var->factor messages (belief minus own contribution).
      int dims[8];
      const double* in[8];
      double* out[8];
      for (int i = 0; i < arity; ++i) {
        const int v = factor.vars[i];
        const int d = graph.domain_size(v);
        dims[i] = d;
        double* in_i = ws.in_scratch_.data() +
                       static_cast<size_t>(i) * max_dom;
        const double* bel = ws.belief_.data() + ws.var_off_[v];
        const double* to_var = ws.msg_.data() + ws.msg_off_[adj0 + i];
        for (int l = 0; l < d; ++l) in_i[l] = bel[l] - to_var[l];
        NormalizeInPlace(in_i, d);
        in[i] = in_i;
        double* out_i = ws.new_scratch_.data() +
                        static_cast<size_t>(i) * max_dom;
        std::fill(out_i, out_i + d, kNegInf);
        out[i] = out_i;
      }

      switch (factor.rep) {
        case FactorGraph::FactorRep::kDense:
          DenseKernel(factor, dims, in, out);
          break;
        case FactorGraph::FactorRep::kSparsePair:
          SparsePairDirection(factor.entries, factor.default_log, dims[0],
                              dims[1], in[1], out[0], &ws.marks_);
          SparsePairDirection(factor.entries_t, factor.default_log,
                              dims[1], dims[0], in[0], out[1], &ws.marks_);
          break;
        case FactorGraph::FactorRep::kImplicitTernary:
          ImplicitTernaryKernel(factor, dims, in, out, &ws.slab_a_on_,
                                &ws.slab_a_off_, &ws.slab_b_on_,
                                &ws.slab_b_off_, &ws.term_on_,
                                &ws.term_off_);
          break;
      }

      // Apply damping, normalize, track residual, update beliefs.
      bool factor_changed = false;
      for (int i = 0; i < arity; ++i) {
        const int v = factor.vars[i];
        const int d = dims[i];
        double* msg = out[i];
        NormalizeInPlace(msg, d);
        double* to_var = ws.msg_.data() + ws.msg_off_[adj0 + i];
        if (options.damping > 0.0) {
          for (int l = 0; l < d; ++l) {
            msg[l] = options.damping * to_var[l] +
                     (1.0 - options.damping) * msg[l];
          }
          NormalizeInPlace(msg, d);
        }
        double* bel = ws.belief_.data() + ws.var_off_[v];
        bool changed = false;
        for (int l = 0; l < d; ++l) {
          const double delta = msg[l] - to_var[l];
          if (delta != 0.0) changed = true;
          residual = std::max(residual, std::fabs(delta));
          bel[l] += delta;
          to_var[l] = msg[l];
        }
        if (changed) {
          ++ws.version_[v];
          factor_changed = true;
        }
        ws.last_seen_[adj0 + i] = ws.version_[v];
      }
      ws.last_zero_[f] = factor_changed ? 0 : 1;
    }
    result.iterations = iter;
    result.max_residual = residual;
    if (options.capture_convergence) result.residual_trail.push_back(residual);
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Decode: argmax belief per variable; ties break toward the lowest
  // label index (na first) for determinism. Empty domains decode to -1.
  result.assignment.resize(num_vars);
  if (options.capture_convergence) {
    result.decode_margins.assign(num_vars, 0.0);
  }
  for (int v = 0; v < num_vars; ++v) {
    const int d = graph.domain_size(v);
    if (d == 0) {
      result.assignment[v] = -1;
      continue;
    }
    const double* bel = ws.belief_.data() + ws.var_off_[v];
    int best = 0;
    for (int l = 1; l < d; ++l) {
      if (bel[l] > bel[best]) best = l;
    }
    result.assignment[v] = best;
    if (options.capture_convergence && d > 1) {
      // Decode margin: distance from the winner to the runner-up.
      double second = kNegInf;
      for (int l = 0; l < d; ++l) {
        if (l != best) second = std::max(second, bel[l]);
      }
      result.decode_margins[v] = bel[best] - second;
    }
  }
  result.score = graph.ScoreAssignment(result.assignment);

  // Sweep/update accounting: cheap (once per BP run, not per sweep) and
  // the substrate for verifying residual scheduling keeps paying off as
  // corpora grow. Trace counters land in the per-request breakdown.
  static obs::Counter* bp_runs =
      obs::MetricsRegistry::Get().GetCounter("bp.runs");
  static obs::Counter* bp_sweeps =
      obs::MetricsRegistry::Get().GetCounter("bp.sweeps");
  static obs::Counter* bp_factor_updates =
      obs::MetricsRegistry::Get().GetCounter("bp.factor_updates");
  static obs::Counter* bp_factor_skips =
      obs::MetricsRegistry::Get().GetCounter("bp.factor_skips");
  bp_runs->Add(1);
  bp_sweeps->Add(result.iterations);
  bp_factor_updates->Add(result.factor_updates);
  bp_factor_skips->Add(result.factor_skips);
  obs::TraceAddCounter("bp_sweeps", result.iterations);
  obs::TraceAddCounter("bp_factor_updates", result.factor_updates);
  return result;
}

}  // namespace webtab
