#include "inference/belief_propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace webtab {

namespace {

/// Per-factor message state: one message vector per adjacent variable in
/// each direction.
struct FactorMessages {
  // to_factor[i][l]  : message var_i -> factor, label l.
  // to_var[i][l]     : message factor -> var_i, label l.
  std::vector<std::vector<double>> to_factor;
  std::vector<std::vector<double>> to_var;
};

void NormalizeInPlace(std::vector<double>* msg) {
  double mx = *std::max_element(msg->begin(), msg->end());
  for (double& x : *msg) x -= mx;
}

}  // namespace

BpResult RunBeliefPropagation(const FactorGraph& graph,
                              const BpOptions& options) {
  const int num_vars = graph.num_variables();
  const int num_factors = graph.num_factors();

  // belief[v] = node potential + sum of factor->var messages; var->factor
  // messages are formed by subtracting the factor's own contribution.
  std::vector<std::vector<double>> belief(num_vars);
  for (int v = 0; v < num_vars; ++v) {
    belief[v] = graph.node_log_potential(v);
  }

  std::vector<FactorMessages> messages(num_factors);
  for (int f = 0; f < num_factors; ++f) {
    const auto& factor = graph.factor(f);
    messages[f].to_factor.resize(factor.vars.size());
    messages[f].to_var.resize(factor.vars.size());
    for (size_t i = 0; i < factor.vars.size(); ++i) {
      int d = graph.domain_size(factor.vars[i]);
      messages[f].to_factor[i].assign(d, 0.0);
      messages[f].to_var[i].assign(d, 0.0);
    }
  }

  // Process factors in ascending group order (paper's schedule).
  std::vector<int> order(num_factors);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.factor(a).group < graph.factor(b).group;
  });

  BpResult result;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double residual = 0.0;
    for (int f : order) {
      const auto& factor = graph.factor(f);
      auto& fm = messages[f];
      const size_t arity = factor.vars.size();

      // Refresh var->factor messages from current beliefs.
      for (size_t i = 0; i < arity; ++i) {
        int v = factor.vars[i];
        auto& msg = fm.to_factor[i];
        for (size_t l = 0; l < msg.size(); ++l) {
          msg[l] = belief[v][l] - fm.to_var[i][l];
        }
        NormalizeInPlace(&msg);
      }

      // Compute factor->var messages by max-marginalizing the table plus
      // the other variables' messages. Enumerate the full table once.
      std::vector<int> dims(arity);
      for (size_t i = 0; i < arity; ++i) {
        dims[i] = graph.domain_size(factor.vars[i]);
      }
      std::vector<std::vector<double>> new_to_var(arity);
      for (size_t i = 0; i < arity; ++i) {
        new_to_var[i].assign(dims[i],
                             -std::numeric_limits<double>::infinity());
      }
      std::vector<int> label(arity, 0);
      const int64_t table_size = static_cast<int64_t>(factor.table.size());
      for (int64_t idx = 0; idx < table_size; ++idx) {
        // Decode the row-major index into labels.
        int64_t rem = idx;
        for (size_t i = arity; i-- > 0;) {
          label[i] = static_cast<int>(rem % dims[i]);
          rem /= dims[i];
        }
        double base = factor.table[idx];
        double total_in = 0.0;
        for (size_t i = 0; i < arity; ++i) {
          total_in += fm.to_factor[i][label[i]];
        }
        for (size_t i = 0; i < arity; ++i) {
          double excl = base + total_in - fm.to_factor[i][label[i]];
          if (excl > new_to_var[i][label[i]]) {
            new_to_var[i][label[i]] = excl;
          }
        }
      }

      // Apply damping, normalize, track residual, update beliefs.
      for (size_t i = 0; i < arity; ++i) {
        int v = factor.vars[i];
        auto& msg = new_to_var[i];
        NormalizeInPlace(&msg);
        if (options.damping > 0.0) {
          for (size_t l = 0; l < msg.size(); ++l) {
            msg[l] = options.damping * fm.to_var[i][l] +
                     (1.0 - options.damping) * msg[l];
          }
          NormalizeInPlace(&msg);
        }
        for (size_t l = 0; l < msg.size(); ++l) {
          double delta = msg[l] - fm.to_var[i][l];
          residual = std::max(residual, std::fabs(delta));
          belief[v][l] += delta;
        }
        fm.to_var[i] = msg;
      }
    }
    result.iterations = iter;
    result.max_residual = residual;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Decode: argmax belief per variable; ties break toward the lowest
  // label index (na first) for determinism.
  result.assignment.resize(num_vars);
  for (int v = 0; v < num_vars; ++v) {
    int best = 0;
    for (int l = 1; l < graph.domain_size(v); ++l) {
      if (belief[v][l] > belief[v][best]) best = l;
    }
    result.assignment[v] = best;
  }
  result.score = graph.ScoreAssignment(result.assignment);
  return result;
}

}  // namespace webtab
