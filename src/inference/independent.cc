#include "inference/independent.h"

namespace webtab {

TableAnnotation SolveIndependent(const Table& table,
                                 const TableLabelSpace& space,
                                 FeatureComputer* features,
                                 const Weights& w) {
  TableAnnotation out = TableAnnotation::Empty(table.rows(), table.cols());

  for (int c = 0; c < table.cols(); ++c) {
    const auto& types = space.TypeDomain(c);
    double best_score = 0.0;  // Score of t_c = na (all features silent
                              // for φ2/φ3; cells still free via φ1).
    int best_type = 0;
    std::vector<EntityId> best_cells(table.rows(), kNa);

    // Evaluate each type label (index 0 = na).
    for (size_t lt = 0; lt < types.size(); ++lt) {
      TypeId t = types[lt];
      double a_t = t == kNa ? 0.0 : features->Phi2Log(w, table.header(c), t);
      std::vector<EntityId> cells(table.rows(), kNa);
      for (int r = 0; r < table.rows(); ++r) {
        const auto& ents = space.EntityDomain(r, c);
        double best_cell = 0.0;  // e = na.
        EntityId best_e = kNa;
        for (size_t le = 1; le < ents.size(); ++le) {
          double s = features->Phi1Log(w, table.cell(r, c), ents[le]);
          if (t != kNa) s += features->Phi3Log(w, t, ents[le]);
          if (s > best_cell) {
            best_cell = s;
            best_e = ents[le];
          }
        }
        a_t += best_cell;
        cells[r] = best_e;
      }
      if (lt == 0 || a_t > best_score) {
        best_score = a_t;
        best_type = static_cast<int>(lt);
        best_cells = std::move(cells);
      }
    }

    out.column_types[c] = types[best_type];
    for (int r = 0; r < table.rows(); ++r) {
      out.cell_entities[r][c] = best_cells[r];
    }
  }
  return out;
}

double IndependentObjective(const Table& table, const TableLabelSpace& space,
                            FeatureComputer* features, const Weights& w,
                            const TableAnnotation& annotation) {
  double score = 0.0;
  for (int c = 0; c < table.cols(); ++c) {
    TypeId t = annotation.TypeOf(c);
    if (t != kNa) score += features->Phi2Log(w, table.header(c), t);
    for (int r = 0; r < table.rows(); ++r) {
      EntityId e = annotation.EntityOf(r, c);
      if (e == kNa) continue;
      score += features->Phi1Log(w, table.cell(r, c), e);
      if (t != kNa) score += features->Phi3Log(w, t, e);
    }
  }
  (void)space;
  return score;
}

}  // namespace webtab
