#include "inference/table_graph.h"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/logging.h"

namespace webtab {

namespace {

/// Emits one φ3 factor. Structured mode collects the nonzero
/// type-entity scores into a sparse pairwise factor (φ3 is 0 whenever a
/// label is na or the pair is incompatible with no missing-link hint),
/// but only when the sparse kernel is the cheaper one: the dense
/// pairwise sweep costs ~cells ops while the sparse sweep costs
/// ~2.5·(L0+L1) + 5·nnz (measured constants), so small or dense factors
/// keep the plain table. Large type domains (the paper runs them
/// uncapped, in the hundreds) are where the sparse form pays off.
void EmitPhi3(const std::vector<TypeId>& types,
              const std::vector<EntityId>& ents, int type_var,
              int entity_var, FeatureComputer* features, const Weights& w,
              FactorRepChoice rep, FactorGraph* graph) {
  if (rep == FactorRepChoice::kDense) {
    std::vector<double> tab(types.size() * ents.size(), 0.0);
    for (size_t lt = 1; lt < types.size(); ++lt) {
      for (size_t le = 1; le < ents.size(); ++le) {
        tab[lt * ents.size() + le] = features->Phi3Log(w, types[lt], ents[le]);
      }
    }
    graph->AddFactor({type_var, entity_var}, std::move(tab), kGroupPhi3);
    return;
  }
  std::vector<FactorGraph::SparseEntry> entries;
  for (size_t lt = 1; lt < types.size(); ++lt) {
    for (size_t le = 1; le < ents.size(); ++le) {
      double v = features->Phi3Log(w, types[lt], ents[le]);
      if (v != 0.0) {
        entries.push_back({static_cast<int32_t>(lt),
                           static_cast<int32_t>(le), v});
      }
    }
  }
  const size_t cells = types.size() * ents.size();
  const size_t sparse_cost =
      5 * (types.size() + ents.size()) + 10 * entries.size();
  if (2 * cells <= sparse_cost) {
    std::vector<double> tab(cells, 0.0);
    for (const auto& e : entries) tab[e.l0 * ents.size() + e.l1] = e.value;
    graph->AddFactor({type_var, entity_var}, std::move(tab), kGroupPhi3);
    return;
  }
  graph->AddSparsePairFactor({type_var, entity_var}, 0.0,
                             std::move(entries), kGroupPhi3);
}

/// Emits one φ5 factor for a row of a column pair. The structured form
/// exploits §4.2.5's shape: every non-na triple scores the bias unless a
/// cardinality violation fires (decidable per (relation, side entity) —
/// the gates) or the tuple actually holds in the catalog (the sparse
/// overrides). Build cost drops from O(B·E1·E2) feature probes to
/// O(B·(E1+E2) + matched tuples).
void EmitPhi5(const std::vector<RelationCandidate>& rels,
              const std::vector<EntityId>& d1,
              const std::vector<EntityId>& d2, int rel_var, int v1, int v2,
              FeatureComputer* features, const Weights& w,
              FactorRepChoice rep, FactorGraph* graph) {
  // Class values, matching FeatureComputer::Phi5Log's dot-product
  // arithmetic exactly (feature components are 0/1).
  const double hit_value = w.w5[0] + w.w5[2];
  const double plain_value = w.w5[2];
  const double viol_value = w.w5[1] + w.w5[2];
  // The class-wise kernel requires overrides (tuple hits) to dominate
  // the implicit value they shadow; default and any sanely trained
  // weights satisfy this (tuple evidence positive, violations punished).
  const bool structured = rep == FactorRepChoice::kStructured &&
                          hit_value >= plain_value &&
                          hit_value >= viol_value;
  if (!structured) {
    std::vector<double> tab(rels.size() * d1.size() * d2.size(), 0.0);
    for (size_t lb = 1; lb < rels.size(); ++lb) {
      for (size_t l1 = 1; l1 < d1.size(); ++l1) {
        for (size_t l2 = 1; l2 < d2.size(); ++l2) {
          tab[(lb * d1.size() + l1) * d2.size() + l2] =
              features->Phi5Log(w, rels[lb], d1[l1], d2[l2]);
        }
      }
    }
    graph->AddFactor({rel_var, v1, v2}, std::move(tab), kGroupPhi5);
    return;
  }

  const CatalogView& catalog = features->catalog();
  const size_t B = rels.size();
  FactorGraph::ImplicitTernarySpec spec;
  spec.base_on.assign(B, 0.0);
  spec.base_off.assign(B, 0.0);
  spec.unary_x.assign(B * d1.size(), 0.0);
  spec.unary_y.assign(B * d2.size(), 0.0);
  spec.gate_x.assign(B * d1.size(), 1);
  spec.gate_y.assign(B * d2.size(), 1);

  // Label index of each candidate entity on the right side, for mapping
  // catalog tuples to overrides.
  std::unordered_map<EntityId, int32_t> l2_of;
  l2_of.reserve(d2.size());
  for (size_t l2 = 1; l2 < d2.size(); ++l2) {
    l2_of.emplace(d2[l2], static_cast<int32_t>(l2));
  }

  for (size_t lb = 1; lb < B; ++lb) {
    const RelationCandidate& b = rels[lb];
    // gate == 1 means "this side raises no cardinality violation".
    spec.base_on[lb] = plain_value;
    spec.base_off[lb] = viol_value;
    const RelationCardinality card = catalog.RelationCardinalityOf(b.relation);
    const bool functional = card == RelationCardinality::kManyToOne ||
                            card == RelationCardinality::kOneToOne;
    const bool inv_functional = card == RelationCardinality::kOneToMany ||
                                card == RelationCardinality::kOneToOne;
    // Side x (= e1) plays subject unless swapped; side y (= e2) the
    // converse (§4.2.5's subject/object mapping).
    for (size_t l1 = 1; l1 < d1.size(); ++l1) {
      const EntityId e1 = d1[l1];
      bool viol;
      if (!b.swapped) {
        viol = functional && !catalog.ObjectsOf(b.relation, e1).empty();
      } else {
        viol = inv_functional && !catalog.SubjectsOf(b.relation, e1).empty();
      }
      if (viol) spec.gate_x[lb * d1.size() + l1] = 0;
      // Tuple hits with e1 on this side become overrides.
      const std::span<const EntityId> partners =
          b.swapped ? catalog.SubjectsOf(b.relation, e1)
                    : catalog.ObjectsOf(b.relation, e1);
      for (EntityId partner : partners) {
        auto it = l2_of.find(partner);
        if (it != l2_of.end()) {
          spec.overrides.push_back({static_cast<int32_t>(lb),
                                    static_cast<int32_t>(l1), it->second,
                                    hit_value});
        }
      }
    }
    for (size_t l2 = 1; l2 < d2.size(); ++l2) {
      const EntityId e2 = d2[l2];
      bool viol;
      if (!b.swapped) {
        viol = inv_functional && !catalog.SubjectsOf(b.relation, e2).empty();
      } else {
        viol = functional && !catalog.ObjectsOf(b.relation, e2).empty();
      }
      if (viol) spec.gate_y[lb * d2.size() + l2] = 0;
    }
  }
  std::sort(spec.overrides.begin(), spec.overrides.end(),
            [](const FactorGraph::TernaryOverride& a,
               const FactorGraph::TernaryOverride& b) {
              if (a.ls != b.ls) return a.ls < b.ls;
              if (a.lx != b.lx) return a.lx < b.lx;
              return a.ly < b.ly;
            });
  spec.overrides.erase(
      std::unique(spec.overrides.begin(), spec.overrides.end(),
                  [](const FactorGraph::TernaryOverride& a,
                     const FactorGraph::TernaryOverride& b) {
                    return a.ls == b.ls && a.lx == b.lx && a.ly == b.ly;
                  }),
      spec.overrides.end());
  graph->AddImplicitTernaryFactor({rel_var, v1, v2}, std::move(spec),
                                  kGroupPhi5);
}

/// Emits one φ4 factor for a column pair. §4.2.4's features decompose
/// per relation candidate into participation unaries (one per side) and
/// an AND of per-side subtype gates carrying the schema-match weight —
/// exactly the implicit ternary form, with no overrides (so any weights
/// are representable).
void EmitPhi4(const std::vector<RelationCandidate>& rels,
              const std::vector<TypeId>& types1,
              const std::vector<TypeId>& types2, int rel_var, int tv1,
              int tv2, FeatureComputer* features, const Weights& w,
              FactorRepChoice rep, FactorGraph* graph) {
  if (rep == FactorRepChoice::kDense) {
    std::vector<double> tab(rels.size() * types1.size() * types2.size(),
                            0.0);
    for (size_t lb = 1; lb < rels.size(); ++lb) {
      for (size_t l1 = 1; l1 < types1.size(); ++l1) {
        for (size_t l2 = 1; l2 < types2.size(); ++l2) {
          tab[(lb * types1.size() + l1) * types2.size() + l2] =
              features->Phi4Log(w, rels[lb], types1[l1], types2[l2]);
        }
      }
    }
    graph->AddFactor({rel_var, tv1, tv2}, std::move(tab), kGroupPhi4);
    return;
  }

  const CatalogView& catalog = features->catalog();
  ClosureCache* closure = features->closure();
  const size_t B = rels.size();
  FactorGraph::ImplicitTernarySpec spec;
  spec.base_on.assign(B, 0.0);
  spec.base_off.assign(B, 0.0);
  spec.unary_x.assign(B * types1.size(), 0.0);
  spec.unary_y.assign(B * types2.size(), 0.0);
  spec.gate_x.assign(B * types1.size(), 0);
  spec.gate_y.assign(B * types2.size(), 0);
  for (size_t lb = 1; lb < B; ++lb) {
    const RelationCandidate& b = rels[lb];
    const TypeId rel_subject = catalog.RelationSubjectType(b.relation);
    const TypeId rel_object = catalog.RelationObjectType(b.relation);
    spec.base_on[lb] = w.w4[0] + w.w4[3];
    spec.base_off[lb] = w.w4[3];
    // Column 1 plays subject unless swapped (then object), mirroring
    // FeatureComputer::F4's role assignment; the participation weight
    // follows the role.
    const TypeId x_role_type = b.swapped ? rel_object : rel_subject;
    const TypeId y_role_type = b.swapped ? rel_subject : rel_object;
    const double wx = b.swapped ? w.w4[2] : w.w4[1];
    const double wy = b.swapped ? w.w4[1] : w.w4[2];
    for (size_t l1 = 1; l1 < types1.size(); ++l1) {
      spec.gate_x[lb * types1.size() + l1] =
          closure->IsSubtypeOf(types1[l1], x_role_type) ? 1 : 0;
      spec.unary_x[lb * types1.size() + l1] =
          wx * features->Participation(b.relation, types1[l1],
                                       /*object_role=*/b.swapped);
    }
    for (size_t l2 = 1; l2 < types2.size(); ++l2) {
      spec.gate_y[lb * types2.size() + l2] =
          closure->IsSubtypeOf(types2[l2], y_role_type) ? 1 : 0;
      spec.unary_y[lb * types2.size() + l2] =
          wy * features->Participation(b.relation, types2[l2],
                                       /*object_role=*/!b.swapped);
    }
  }
  graph->AddImplicitTernaryFactor({rel_var, tv1, tv2}, std::move(spec),
                                  kGroupPhi4);
}

}  // namespace

TableGraph BuildTableGraph(const Table& table, const TableLabelSpace& space,
                           FeatureComputer* features, const Weights& w,
                           const TableGraphOptions& options) {
  TableGraph tg;
  tg.entity_var.assign(table.rows(), std::vector<int>(table.cols(), -1));
  tg.type_var.assign(table.cols(), -1);

  // --- Variables + node potentials. ---
  for (int c = 0; c < table.cols(); ++c) {
    const auto& domain = space.TypeDomain(c);
    if (domain.size() <= 1) continue;
    int v = tg.graph.AddVariable(static_cast<int>(domain.size()));
    tg.type_var[c] = v;
    std::vector<double> pot(domain.size(), 0.0);
    for (size_t l = 1; l < domain.size(); ++l) {
      pot[l] = features->Phi2Log(w, table.header(c), domain[l]);
    }
    tg.graph.SetNodeLogPotential(v, std::move(pot));
  }
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      const auto& domain = space.EntityDomain(r, c);
      if (domain.size() <= 1) continue;
      int v = tg.graph.AddVariable(static_cast<int>(domain.size()));
      tg.entity_var[r][c] = v;
      std::vector<double> pot(domain.size(), 0.0);
      for (size_t l = 1; l < domain.size(); ++l) {
        pot[l] = features->Phi1Log(w, table.cell(r, c), domain[l]);
      }
      tg.graph.SetNodeLogPotential(v, std::move(pot));
    }
  }

  // --- φ3 factors: (type_c, entity_rc). ---
  for (int c = 0; c < table.cols(); ++c) {
    if (tg.type_var[c] < 0) continue;
    const auto& types = space.TypeDomain(c);
    for (int r = 0; r < table.rows(); ++r) {
      if (tg.entity_var[r][c] < 0) continue;
      EmitPhi3(types, space.EntityDomain(r, c), tg.type_var[c],
               tg.entity_var[r][c], features, w, options.factor_rep,
               &tg.graph);
    }
  }

  if (!options.use_relations) return tg;

  // --- Relation variables + φ5 + φ4. ---
  for (const std::pair<int, int>& pair : space.column_pairs()) {
    const auto& domain = space.RelationDomain(pair.first, pair.second);
    if (domain.size() <= 1) continue;
    int v = tg.graph.AddVariable(static_cast<int>(domain.size()));
    tg.relation_var[pair] = v;
  }

  for (const auto& [pair, rel_var] : tg.relation_var) {
    auto [c1, c2] = pair;
    const auto& rels = space.RelationDomain(c1, c2);

    // φ5(b, e_{r,c1}, e_{r,c2}) per row.
    for (int r = 0; r < table.rows(); ++r) {
      int v1 = tg.entity_var[r][c1];
      int v2 = tg.entity_var[r][c2];
      if (v1 < 0 || v2 < 0) continue;
      EmitPhi5(rels, space.EntityDomain(r, c1), space.EntityDomain(r, c2),
               rel_var, v1, v2, features, w, options.factor_rep, &tg.graph);
    }

    // φ4(b, t_{c1}, t_{c2}).
    int tv1 = tg.type_var[c1];
    int tv2 = tg.type_var[c2];
    if (tv1 >= 0 && tv2 >= 0) {
      EmitPhi4(rels, space.TypeDomain(c1), space.TypeDomain(c2), rel_var,
               tv1, tv2, features, w, options.factor_rep, &tg.graph);
    }
  }
  return tg;
}

TableAnnotation TableGraph::DecodeAssignment(
    const std::vector<int>& assignment, const TableLabelSpace& space) const {
  int rows = static_cast<int>(entity_var.size());
  int cols = static_cast<int>(type_var.size());
  TableAnnotation out = TableAnnotation::Empty(rows, cols);
  for (int c = 0; c < cols; ++c) {
    if (type_var[c] >= 0) {
      out.column_types[c] = space.TypeDomain(c)[assignment[type_var[c]]];
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (entity_var[r][c] >= 0) {
        out.cell_entities[r][c] =
            space.EntityDomain(r, c)[assignment[entity_var[r][c]]];
      }
    }
  }
  for (const auto& [pair, v] : relation_var) {
    RelationCandidate rel =
        space.RelationDomain(pair.first, pair.second)[assignment[v]];
    if (!rel.is_na()) out.relations[pair] = rel;
  }
  return out;
}

std::vector<int> TableGraph::EncodeAnnotation(
    const TableAnnotation& annotation, const TableLabelSpace& space) const {
  std::vector<int> assignment(graph.num_variables(), 0);
  int rows = static_cast<int>(entity_var.size());
  int cols = static_cast<int>(type_var.size());
  for (int c = 0; c < cols; ++c) {
    if (type_var[c] < 0) continue;
    int idx = TableLabelSpace::IndexOfType(space.TypeDomain(c),
                                           annotation.TypeOf(c));
    assignment[type_var[c]] = idx >= 0 ? idx : 0;
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (entity_var[r][c] < 0) continue;
      int idx = TableLabelSpace::IndexOfEntity(space.EntityDomain(r, c),
                                               annotation.EntityOf(r, c));
      assignment[entity_var[r][c]] = idx >= 0 ? idx : 0;
    }
  }
  for (const auto& [pair, v] : relation_var) {
    int idx = TableLabelSpace::IndexOfRelation(
        space.RelationDomain(pair.first, pair.second),
        annotation.RelationOf(pair.first, pair.second));
    assignment[v] = idx >= 0 ? idx : 0;
  }
  return assignment;
}

}  // namespace webtab
