#include "inference/table_graph.h"

#include "common/logging.h"

namespace webtab {

TableGraph BuildTableGraph(const Table& table, const TableLabelSpace& space,
                           FeatureComputer* features, const Weights& w,
                           const TableGraphOptions& options) {
  TableGraph tg;
  tg.entity_var.assign(table.rows(), std::vector<int>(table.cols(), -1));
  tg.type_var.assign(table.cols(), -1);

  // --- Variables + node potentials. ---
  for (int c = 0; c < table.cols(); ++c) {
    const auto& domain = space.TypeDomain(c);
    if (domain.size() <= 1) continue;
    int v = tg.graph.AddVariable(static_cast<int>(domain.size()));
    tg.type_var[c] = v;
    std::vector<double> pot(domain.size(), 0.0);
    for (size_t l = 1; l < domain.size(); ++l) {
      pot[l] = features->Phi2Log(w, table.header(c), domain[l]);
    }
    tg.graph.SetNodeLogPotential(v, std::move(pot));
  }
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      const auto& domain = space.EntityDomain(r, c);
      if (domain.size() <= 1) continue;
      int v = tg.graph.AddVariable(static_cast<int>(domain.size()));
      tg.entity_var[r][c] = v;
      std::vector<double> pot(domain.size(), 0.0);
      for (size_t l = 1; l < domain.size(); ++l) {
        pot[l] = features->Phi1Log(w, table.cell(r, c), domain[l]);
      }
      tg.graph.SetNodeLogPotential(v, std::move(pot));
    }
  }

  // --- φ3 factors: (type_c, entity_rc). ---
  for (int c = 0; c < table.cols(); ++c) {
    if (tg.type_var[c] < 0) continue;
    const auto& types = space.TypeDomain(c);
    for (int r = 0; r < table.rows(); ++r) {
      if (tg.entity_var[r][c] < 0) continue;
      const auto& ents = space.EntityDomain(r, c);
      std::vector<double> tab(types.size() * ents.size(), 0.0);
      for (size_t lt = 1; lt < types.size(); ++lt) {
        for (size_t le = 1; le < ents.size(); ++le) {
          tab[lt * ents.size() + le] =
              features->Phi3Log(w, types[lt], ents[le]);
        }
      }
      tg.graph.AddFactor({tg.type_var[c], tg.entity_var[r][c]},
                         std::move(tab), kGroupPhi3);
    }
  }

  if (!options.use_relations) return tg;

  // --- Relation variables + φ5 + φ4. ---
  for (const std::pair<int, int>& pair : space.column_pairs()) {
    const auto& domain = space.RelationDomain(pair.first, pair.second);
    if (domain.size() <= 1) continue;
    int v = tg.graph.AddVariable(static_cast<int>(domain.size()));
    tg.relation_var[pair] = v;
  }

  for (const auto& [pair, rel_var] : tg.relation_var) {
    auto [c1, c2] = pair;
    const auto& rels = space.RelationDomain(c1, c2);

    // φ5(b, e_{r,c1}, e_{r,c2}) per row.
    for (int r = 0; r < table.rows(); ++r) {
      int v1 = tg.entity_var[r][c1];
      int v2 = tg.entity_var[r][c2];
      if (v1 < 0 || v2 < 0) continue;
      const auto& d1 = space.EntityDomain(r, c1);
      const auto& d2 = space.EntityDomain(r, c2);
      std::vector<double> tab(rels.size() * d1.size() * d2.size(), 0.0);
      for (size_t lb = 1; lb < rels.size(); ++lb) {
        for (size_t l1 = 1; l1 < d1.size(); ++l1) {
          for (size_t l2 = 1; l2 < d2.size(); ++l2) {
            tab[(lb * d1.size() + l1) * d2.size() + l2] =
                features->Phi5Log(w, rels[lb], d1[l1], d2[l2]);
          }
        }
      }
      tg.graph.AddFactor({rel_var, v1, v2}, std::move(tab), kGroupPhi5);
    }

    // φ4(b, t_{c1}, t_{c2}).
    int tv1 = tg.type_var[c1];
    int tv2 = tg.type_var[c2];
    if (tv1 >= 0 && tv2 >= 0) {
      const auto& types1 = space.TypeDomain(c1);
      const auto& types2 = space.TypeDomain(c2);
      std::vector<double> tab(rels.size() * types1.size() * types2.size(),
                              0.0);
      for (size_t lb = 1; lb < rels.size(); ++lb) {
        for (size_t l1 = 1; l1 < types1.size(); ++l1) {
          for (size_t l2 = 1; l2 < types2.size(); ++l2) {
            tab[(lb * types1.size() + l1) * types2.size() + l2] =
                features->Phi4Log(w, rels[lb], types1[l1], types2[l2]);
          }
        }
      }
      tg.graph.AddFactor({rel_var, tv1, tv2}, std::move(tab), kGroupPhi4);
    }
  }
  return tg;
}

TableAnnotation TableGraph::DecodeAssignment(
    const std::vector<int>& assignment, const TableLabelSpace& space) const {
  int rows = static_cast<int>(entity_var.size());
  int cols = static_cast<int>(type_var.size());
  TableAnnotation out = TableAnnotation::Empty(rows, cols);
  for (int c = 0; c < cols; ++c) {
    if (type_var[c] >= 0) {
      out.column_types[c] = space.TypeDomain(c)[assignment[type_var[c]]];
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (entity_var[r][c] >= 0) {
        out.cell_entities[r][c] =
            space.EntityDomain(r, c)[assignment[entity_var[r][c]]];
      }
    }
  }
  for (const auto& [pair, v] : relation_var) {
    RelationCandidate rel =
        space.RelationDomain(pair.first, pair.second)[assignment[v]];
    if (!rel.is_na()) out.relations[pair] = rel;
  }
  return out;
}

std::vector<int> TableGraph::EncodeAnnotation(
    const TableAnnotation& annotation, const TableLabelSpace& space) const {
  std::vector<int> assignment(graph.num_variables(), 0);
  int rows = static_cast<int>(entity_var.size());
  int cols = static_cast<int>(type_var.size());
  for (int c = 0; c < cols; ++c) {
    if (type_var[c] < 0) continue;
    int idx = TableLabelSpace::IndexOfType(space.TypeDomain(c),
                                           annotation.TypeOf(c));
    assignment[type_var[c]] = idx >= 0 ? idx : 0;
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (entity_var[r][c] < 0) continue;
      int idx = TableLabelSpace::IndexOfEntity(space.EntityDomain(r, c),
                                               annotation.EntityOf(r, c));
      assignment[entity_var[r][c]] = idx >= 0 ? idx : 0;
    }
  }
  for (const auto& [pair, v] : relation_var) {
    int idx = TableLabelSpace::IndexOfRelation(
        space.RelationDomain(pair.first, pair.second),
        annotation.RelationOf(pair.first, pair.second));
    assignment[v] = idx >= 0 ? idx : 0;
  }
  return assignment;
}

}  // namespace webtab
