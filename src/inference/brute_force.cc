#include "inference/brute_force.h"

#include <limits>

namespace webtab {

Result<BruteForceResult> SolveBruteForce(const FactorGraph& graph,
                                         int64_t max_assignments) {
  // Empty-domain variables admit no label; they are fixed at -1 (the
  // same convention BP decodes) and excluded from enumeration.
  int64_t total = 1;
  for (int v = 0; v < graph.num_variables(); ++v) {
    if (graph.domain_size(v) == 0) continue;
    total *= graph.domain_size(v);
    if (total > max_assignments) {
      return Status::OutOfRange("assignment space too large for brute force");
    }
  }

  BruteForceResult best;
  best.score = -std::numeric_limits<double>::infinity();
  std::vector<int> labels(graph.num_variables(), 0);
  for (int v = 0; v < graph.num_variables(); ++v) {
    if (graph.domain_size(v) == 0) labels[v] = -1;
  }
  for (int64_t i = 0; i < total; ++i) {
    double score = graph.ScoreAssignment(labels);
    ++best.assignments_scanned;
    if (score > best.score) {
      best.score = score;
      best.assignment = labels;
    }
    // Odometer increment over non-empty domains.
    for (int v = graph.num_variables() - 1; v >= 0; --v) {
      if (graph.domain_size(v) == 0) continue;
      if (++labels[v] < graph.domain_size(v)) break;
      labels[v] = 0;
    }
  }
  return best;
}

}  // namespace webtab
