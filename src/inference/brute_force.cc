#include "inference/brute_force.h"

#include <limits>

namespace webtab {

Result<BruteForceResult> SolveBruteForce(const FactorGraph& graph,
                                         int64_t max_assignments) {
  int64_t total = 1;
  for (int v = 0; v < graph.num_variables(); ++v) {
    total *= graph.domain_size(v);
    if (total > max_assignments) {
      return Status::OutOfRange("assignment space too large for brute force");
    }
  }

  BruteForceResult best;
  best.score = -std::numeric_limits<double>::infinity();
  std::vector<int> labels(graph.num_variables(), 0);
  for (int64_t i = 0; i < total; ++i) {
    double score = graph.ScoreAssignment(labels);
    ++best.assignments_scanned;
    if (score > best.score) {
      best.score = score;
      best.assignment = labels;
    }
    // Odometer increment.
    for (int v = graph.num_variables() - 1; v >= 0; --v) {
      if (++labels[v] < graph.domain_size(v)) break;
      labels[v] = 0;
    }
  }
  if (graph.num_variables() == 0) {
    best.score = 0.0;
    best.assignment.clear();
    best.assignments_scanned = 1;
  }
  return best;
}

}  // namespace webtab
