#include "inference/factor_graph.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace webtab {

namespace {

/// Implicit (pre-override) value of a kImplicitTernary factor at
/// non-na labels (ls, lx, ly).
double ImplicitValueAt(const FactorGraph::ImplicitTernarySpec& spec, int dx,
                       int dy, int ls, int lx, int ly) {
  bool on = spec.gate_x[ls * dx + lx] != 0 && spec.gate_y[ls * dy + ly] != 0;
  double base = on ? spec.base_on[ls] : spec.base_off[ls];
  return base + spec.unary_x[ls * dx + lx] + spec.unary_y[ls * dy + ly];
}

}  // namespace

int FactorGraph::AddVariable(int domain_size) {
  WEBTAB_CHECK(domain_size >= 0);
  domains_.push_back(domain_size);
  node_potentials_.emplace_back(domain_size, 0.0);
  return num_variables() - 1;
}

void FactorGraph::SetNodeLogPotential(int var,
                                      std::vector<double> log_potential) {
  WEBTAB_CHECK(var >= 0 && var < num_variables());
  WEBTAB_CHECK(static_cast<int>(log_potential.size()) == domains_[var]);
  node_potentials_[var] = std::move(log_potential);
}

void FactorGraph::AddToNodeLogPotential(int var, int label, double delta) {
  WEBTAB_CHECK(var >= 0 && var < num_variables());
  WEBTAB_CHECK(label >= 0 && label < domains_[var]);
  node_potentials_[var][label] += delta;
}

int FactorGraph::AddFactor(std::vector<int> vars, std::vector<double> table,
                           int group) {
  int64_t expected = 1;
  for (int v : vars) {
    WEBTAB_CHECK(v >= 0 && v < num_variables());
    WEBTAB_CHECK(domains_[v] >= 1) << "factor over empty-domain variable";
    expected *= domains_[v];
  }
  WEBTAB_CHECK(static_cast<int64_t>(table.size()) == expected)
      << "factor table size mismatch";
  Factor f;
  f.vars = std::move(vars);
  f.rep = FactorRep::kDense;
  f.group = group;
  f.table = std::move(table);
  factors_.push_back(std::move(f));
  return num_factors() - 1;
}

int FactorGraph::AddSparsePairFactor(std::vector<int> vars,
                                     double default_log,
                                     std::vector<SparseEntry> entries,
                                     int group) {
  WEBTAB_CHECK(vars.size() == 2);
  for (int v : vars) {
    WEBTAB_CHECK(v >= 0 && v < num_variables());
    WEBTAB_CHECK(domains_[v] >= 1) << "factor over empty-domain variable";
  }
  const int d0 = domains_[vars[0]];
  const int d1 = domains_[vars[1]];
  for (size_t i = 0; i < entries.size(); ++i) {
    const SparseEntry& e = entries[i];
    WEBTAB_CHECK(e.l0 >= 0 && e.l0 < d0 && e.l1 >= 0 && e.l1 < d1)
        << "sparse entry out of range";
    if (i > 0) {
      const SparseEntry& p = entries[i - 1];
      WEBTAB_CHECK(p.l0 < e.l0 || (p.l0 == e.l0 && p.l1 < e.l1))
          << "sparse entries must be sorted and unique";
    }
  }
  Factor f;
  f.vars = std::move(vars);
  f.rep = FactorRep::kSparsePair;
  f.group = group;
  f.default_log = default_log;
  f.entries = std::move(entries);
  f.entries_t.reserve(f.entries.size());
  for (const SparseEntry& e : f.entries) {
    f.entries_t.push_back({e.l1, e.l0, e.value});
  }
  std::sort(f.entries_t.begin(), f.entries_t.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.l0 < b.l0 || (a.l0 == b.l0 && a.l1 < b.l1);
            });
  factors_.push_back(std::move(f));
  return num_factors() - 1;
}

int FactorGraph::AddImplicitTernaryFactor(std::vector<int> vars,
                                          ImplicitTernarySpec spec,
                                          int group) {
  WEBTAB_CHECK(vars.size() == 3);
  for (int v : vars) {
    WEBTAB_CHECK(v >= 0 && v < num_variables());
    WEBTAB_CHECK(domains_[v] >= 1) << "factor over empty-domain variable";
  }
  const int b = domains_[vars[0]];
  const int dx = domains_[vars[1]];
  const int dy = domains_[vars[2]];
  WEBTAB_CHECK(static_cast<int>(spec.base_on.size()) == b);
  WEBTAB_CHECK(static_cast<int>(spec.base_off.size()) == b);
  WEBTAB_CHECK(static_cast<int>(spec.unary_x.size()) == b * dx);
  WEBTAB_CHECK(static_cast<int>(spec.unary_y.size()) == b * dy);
  WEBTAB_CHECK(static_cast<int>(spec.gate_x.size()) == b * dx);
  WEBTAB_CHECK(static_cast<int>(spec.gate_y.size()) == b * dy);
  for (size_t i = 0; i < spec.overrides.size(); ++i) {
    const TernaryOverride& o = spec.overrides[i];
    WEBTAB_CHECK(o.ls >= 1 && o.ls < b && o.lx >= 1 && o.lx < dx &&
                 o.ly >= 1 && o.ly < dy)
        << "ternary override must be in the non-na block";
    if (i > 0) {
      const TernaryOverride& p = spec.overrides[i - 1];
      bool ordered = p.ls < o.ls || (p.ls == o.ls && p.lx < o.lx) ||
                     (p.ls == o.ls && p.lx == o.lx && p.ly < o.ly);
      WEBTAB_CHECK(ordered) << "ternary overrides must be sorted and unique";
    }
    // Exactness of the class-wise kernel requires overrides to dominate
    // the implicit value they shadow (understating a cell is safe only
    // when an explicit candidate covers it).
    WEBTAB_CHECK(o.value >=
                 ImplicitValueAt(spec, dx, dy, o.ls, o.lx, o.ly))
        << "ternary override below implicit value";
  }
  Factor f;
  f.vars = std::move(vars);
  f.rep = FactorRep::kImplicitTernary;
  f.group = group;
  f.implicit = std::move(spec);
  factors_.push_back(std::move(f));
  return num_factors() - 1;
}

int64_t FactorGraph::TableIndex(const Factor& factor,
                                const std::vector<int>& domain_sizes,
                                const std::vector<int>& labels) {
  int64_t idx = 0;
  for (size_t i = 0; i < factor.vars.size(); ++i) {
    idx = idx * domain_sizes[factor.vars[i]] + labels[factor.vars[i]];
  }
  return idx;
}

double FactorGraph::FactorLogValue(int f,
                                   const std::vector<int>& labels) const {
  const Factor& factor = factors_[f];
  switch (factor.rep) {
    case FactorRep::kDense:
      return factor.table[TableIndex(factor, domains_, labels)];
    case FactorRep::kSparsePair: {
      const int32_t l0 = labels[factor.vars[0]];
      const int32_t l1 = labels[factor.vars[1]];
      auto it = std::lower_bound(
          factor.entries.begin(), factor.entries.end(),
          std::make_pair(l0, l1),
          [](const SparseEntry& e, const std::pair<int32_t, int32_t>& key) {
            return e.l0 < key.first ||
                   (e.l0 == key.first && e.l1 < key.second);
          });
      if (it != factor.entries.end() && it->l0 == l0 && it->l1 == l1) {
        return it->value;
      }
      return factor.default_log;
    }
    case FactorRep::kImplicitTernary: {
      const int32_t ls = labels[factor.vars[0]];
      const int32_t lx = labels[factor.vars[1]];
      const int32_t ly = labels[factor.vars[2]];
      if (ls == 0 || lx == 0 || ly == 0) return 0.0;
      const auto& spec = factor.implicit;
      auto it = std::lower_bound(
          spec.overrides.begin(), spec.overrides.end(),
          std::make_tuple(ls, lx, ly),
          [](const TernaryOverride& o,
             const std::tuple<int32_t, int32_t, int32_t>& key) {
            if (o.ls != std::get<0>(key)) return o.ls < std::get<0>(key);
            if (o.lx != std::get<1>(key)) return o.lx < std::get<1>(key);
            return o.ly < std::get<2>(key);
          });
      if (it != spec.overrides.end() && it->ls == ls && it->lx == lx &&
          it->ly == ly) {
        return it->value;
      }
      return ImplicitValueAt(spec, domains_[factor.vars[1]],
                             domains_[factor.vars[2]], ls, lx, ly);
    }
  }
  return 0.0;
}

double FactorGraph::ScoreAssignment(const std::vector<int>& labels) const {
  WEBTAB_CHECK(static_cast<int>(labels.size()) == num_variables());
  double score = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    if (domains_[v] == 0) {
      WEBTAB_CHECK(labels[v] == -1)
          << "empty-domain variable must carry label -1";
      continue;
    }
    WEBTAB_CHECK(labels[v] >= 0 && labels[v] < domains_[v]);
    score += node_potentials_[v][labels[v]];
  }
  for (int f = 0; f < num_factors(); ++f) {
    score += FactorLogValue(f, labels);
  }
  return score;
}

int64_t FactorGraph::FactorMemoryBytes() const {
  int64_t bytes = 0;
  for (const Factor& f : factors_) {
    bytes += static_cast<int64_t>(f.table.capacity()) * sizeof(double);
    bytes += static_cast<int64_t>(f.entries.capacity() +
                                  f.entries_t.capacity()) *
             sizeof(SparseEntry);
    const ImplicitTernarySpec& s = f.implicit;
    bytes += static_cast<int64_t>(s.base_on.capacity() +
                                  s.base_off.capacity() +
                                  s.unary_x.capacity() +
                                  s.unary_y.capacity()) *
             sizeof(double);
    bytes += static_cast<int64_t>(s.gate_x.capacity() + s.gate_y.capacity());
    bytes += static_cast<int64_t>(s.overrides.capacity()) *
             sizeof(TernaryOverride);
  }
  return bytes;
}

}  // namespace webtab
