#include "inference/factor_graph.h"

#include "common/logging.h"

namespace webtab {

int FactorGraph::AddVariable(int domain_size) {
  WEBTAB_CHECK(domain_size >= 1);
  domains_.push_back(domain_size);
  node_potentials_.emplace_back(domain_size, 0.0);
  return num_variables() - 1;
}

void FactorGraph::SetNodeLogPotential(int var,
                                      std::vector<double> log_potential) {
  WEBTAB_CHECK(var >= 0 && var < num_variables());
  WEBTAB_CHECK(static_cast<int>(log_potential.size()) == domains_[var]);
  node_potentials_[var] = std::move(log_potential);
}

void FactorGraph::AddToNodeLogPotential(int var, int label, double delta) {
  WEBTAB_CHECK(var >= 0 && var < num_variables());
  WEBTAB_CHECK(label >= 0 && label < domains_[var]);
  node_potentials_[var][label] += delta;
}

int FactorGraph::AddFactor(std::vector<int> vars, std::vector<double> table,
                           int group) {
  int64_t expected = 1;
  for (int v : vars) {
    WEBTAB_CHECK(v >= 0 && v < num_variables());
    expected *= domains_[v];
  }
  WEBTAB_CHECK(static_cast<int64_t>(table.size()) == expected)
      << "factor table size mismatch";
  factors_.push_back(Factor{std::move(vars), std::move(table), group});
  return num_factors() - 1;
}

int64_t FactorGraph::TableIndex(const Factor& factor,
                                const std::vector<int>& domain_sizes,
                                const std::vector<int>& labels) {
  int64_t idx = 0;
  for (size_t i = 0; i < factor.vars.size(); ++i) {
    idx = idx * domain_sizes[factor.vars[i]] + labels[factor.vars[i]];
  }
  return idx;
}

double FactorGraph::ScoreAssignment(const std::vector<int>& labels) const {
  WEBTAB_CHECK(static_cast<int>(labels.size()) == num_variables());
  double score = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    WEBTAB_CHECK(labels[v] >= 0 && labels[v] < domains_[v]);
    score += node_potentials_[v][labels[v]];
  }
  for (const Factor& f : factors_) {
    score += f.table[TableIndex(f, domains_, labels)];
  }
  return score;
}

}  // namespace webtab
