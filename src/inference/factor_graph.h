#ifndef WEBTAB_INFERENCE_FACTOR_GRAPH_H_
#define WEBTAB_INFERENCE_FACTOR_GRAPH_H_

#include <cstdint>
#include <vector>

namespace webtab {

/// A discrete factor graph in log domain (Appendix B). Variables carry
/// node log-potentials; factors couple 2-3 variables. Factor "groups" let
/// callers impose the paper's message schedule (φ3 then φ5 then φ4,
/// Appendix D).
///
/// # Factor representations
///
/// The paper's factors have exploitable structure: every potential family
/// scores exactly 0 when any participating label is na (index 0), and the
/// non-na block is either sparse (φ3: most type-entity pairs score 0) or
/// near-separable (φ4/φ5: a per-relation base plus per-(relation, side)
/// unary terms, an AND-gated class bonus, and a short list of overrides
/// for catalog tuple hits). Three representations capture this:
///
///  * kDense — row-major log table, arbitrary arity ≤ 3. Fallback for
///    unstructured factors and for structured factors whose density makes
///    enumeration cheaper. Max-marginalization: O(Π domain sizes).
///
///  * kSparsePair — arity 2; value(l0,l1) = `default_log` everywhere
///    except an explicit (sorted, unique) entry list. Entries may be
///    smaller than the default; the BP kernel excises overridden cells
///    exactly. Max-marginalization: expected O(L0 + L1 + nnz) per
///    direction (worst case adds an O(L1) rescan per row whose entries
///    cover the global argmax). Storage: O(nnz) instead of O(L0·L1).
///
///  * kImplicitTernary — arity 3 over (s, x, y) with domains (B, Dx, Dy);
///        value = 0                      when any label is 0 (na),
///        value = base_on[ls]  + unary_x[ls,lx] + unary_y[ls,ly]
///                               when gate_x[ls,lx] && gate_y[ls,ly],
///        value = base_off[ls] + unary_x[ls,lx] + unary_y[ls,ly]
///                               otherwise,
///    replaced by explicit overrides (each override value must be ≥ the
///    implicit value it shadows, so class-wise maxima never overstate).
///    This is exactly the shape of φ4 (schema AND-match over subtype
///    gates, participation unaries) and φ5 (violation classes from
///    per-side functional-cardinality gates, tuple hits as overrides).
///    Max-marginalization: O(B·(Dx+Dy) + nnz) per direction instead of
///    O(B·Dx·Dy). Storage: O(B·(Dx+Dy) + nnz).
///
/// ScoreAssignment and SolveBruteForce evaluate all representations
/// through FactorLogValue, so structured and dense builds of the same
/// model are interchangeable (see tests/factor_rep_equivalence_test.cc).
class FactorGraph {
 public:
  enum class FactorRep : uint8_t {
    kDense = 0,
    kSparsePair = 1,
    kImplicitTernary = 2,
  };

  /// One explicit cell of a kSparsePair factor. Sorted by (l0, l1).
  struct SparseEntry {
    int32_t l0 = 0;
    int32_t l1 = 0;
    double value = 0.0;  // Absolute log-potential replacing default_log.
  };

  /// One explicit cell of a kImplicitTernary factor. Sorted by
  /// (ls, lx, ly); all labels ≥ 1 and value ≥ the implicit value there.
  struct TernaryOverride {
    int32_t ls = 0;
    int32_t lx = 0;
    int32_t ly = 0;
    double value = 0.0;
  };

  /// The implicit part of a kImplicitTernary factor; see class comment
  /// for semantics. Slot 0 of each unary/gate row corresponds to na and
  /// is never read.
  struct ImplicitTernarySpec {
    std::vector<double> base_on;    // [B]
    std::vector<double> base_off;   // [B]
    std::vector<double> unary_x;    // [B*Dx], row-major by slab.
    std::vector<double> unary_y;    // [B*Dy]
    std::vector<uint8_t> gate_x;    // [B*Dx]
    std::vector<uint8_t> gate_y;    // [B*Dy]
    std::vector<TernaryOverride> overrides;  // Sorted, unique.
  };

  struct Factor {
    std::vector<int> vars;     // Variable ids, in table axis order.
    FactorRep rep = FactorRep::kDense;
    int group = 0;             // Schedule group (ascending order).

    // kDense: row-major log-potential table.
    std::vector<double> table;

    // kSparsePair. `entries_t` is the transposed copy (l0/l1 swapped,
    // re-sorted), precomputed so both BP directions stream contiguous
    // row-grouped entries.
    double default_log = 0.0;
    std::vector<SparseEntry> entries;
    std::vector<SparseEntry> entries_t;

    // kImplicitTernary.
    ImplicitTernarySpec implicit;
  };

  /// Adds a variable with `domain_size` labels (all-zero node potential).
  /// A domain size of 0 is permitted for degenerate graphs; such
  /// variables admit no assignment and may not participate in factors.
  int AddVariable(int domain_size);

  void SetNodeLogPotential(int var, std::vector<double> log_potential);
  void AddToNodeLogPotential(int var, int label, double delta);

  /// Adds a dense factor over `vars` with a row-major log table whose
  /// size must be the product of the variables' domain sizes; axis order
  /// == vars order.
  int AddFactor(std::vector<int> vars, std::vector<double> table,
                int group = 0);

  /// Adds a pairwise sparse factor: `default_log` everywhere except
  /// `entries`, which must be sorted by (l0, l1), unique, and in range.
  int AddSparsePairFactor(std::vector<int> vars, double default_log,
                          std::vector<SparseEntry> entries, int group = 0);

  /// Adds an implicit ternary factor (see class comment). Checks that
  /// spec dimensions match the domains, overrides are sorted / unique /
  /// non-na, and each override dominates the implicit value it replaces.
  int AddImplicitTernaryFactor(std::vector<int> vars,
                               ImplicitTernarySpec spec, int group = 0);

  int num_variables() const { return static_cast<int>(domains_.size()); }
  int num_factors() const { return static_cast<int>(factors_.size()); }
  int domain_size(int var) const { return domains_[var]; }
  const std::vector<double>& node_log_potential(int var) const {
    return node_potentials_[var];
  }
  const Factor& factor(int f) const { return factors_[f]; }

  /// Log-potential of factor `f` at the given labels of its variables
  /// (any representation).
  double FactorLogValue(int f, const std::vector<int>& labels) const;

  /// Total log-score of a complete assignment (label index per variable).
  /// Variables with empty domains must carry label -1.
  double ScoreAssignment(const std::vector<int>& labels) const;

  /// Approximate heap footprint of the factor tables/entries, for memory
  /// accounting in benchmarks.
  int64_t FactorMemoryBytes() const;

  /// Flat index into a dense factor table for the given labels of its
  /// vars.
  static int64_t TableIndex(const Factor& factor,
                            const std::vector<int>& domain_sizes,
                            const std::vector<int>& labels);

 private:
  std::vector<int> domains_;
  std::vector<std::vector<double>> node_potentials_;
  std::vector<Factor> factors_;
};

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_FACTOR_GRAPH_H_
