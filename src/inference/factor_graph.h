#ifndef WEBTAB_INFERENCE_FACTOR_GRAPH_H_
#define WEBTAB_INFERENCE_FACTOR_GRAPH_H_

#include <cstdint>
#include <vector>

namespace webtab {

/// A discrete factor graph in log domain (Appendix B). Variables carry
/// node log-potentials; factors couple 2-3 variables through dense
/// row-major log tables. Factor "groups" let callers impose the paper's
/// message schedule (φ3 then φ5 then φ4, Appendix D).
class FactorGraph {
 public:
  struct Factor {
    std::vector<int> vars;        // Variable ids, in table axis order.
    std::vector<double> table;    // Row-major log-potential table.
    int group = 0;                // Schedule group (ascending order).
  };

  /// Adds a variable with `domain_size` labels (all-zero node potential).
  int AddVariable(int domain_size);

  void SetNodeLogPotential(int var, std::vector<double> log_potential);
  void AddToNodeLogPotential(int var, int label, double delta);

  /// Adds a factor over `vars` with a dense log table whose size must be
  /// the product of the variables' domain sizes; axis order == vars order.
  int AddFactor(std::vector<int> vars, std::vector<double> table,
                int group = 0);

  int num_variables() const { return static_cast<int>(domains_.size()); }
  int num_factors() const { return static_cast<int>(factors_.size()); }
  int domain_size(int var) const { return domains_[var]; }
  const std::vector<double>& node_log_potential(int var) const {
    return node_potentials_[var];
  }
  const Factor& factor(int f) const { return factors_[f]; }

  /// Total log-score of a complete assignment (label index per variable).
  double ScoreAssignment(const std::vector<int>& labels) const;

  /// Flat index into a factor table for the given labels of its vars.
  static int64_t TableIndex(const Factor& factor,
                            const std::vector<int>& domain_sizes,
                            const std::vector<int>& labels);

 private:
  std::vector<int> domains_;
  std::vector<std::vector<double>> node_potentials_;
  std::vector<Factor> factors_;
};

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_FACTOR_GRAPH_H_
