#ifndef WEBTAB_INFERENCE_MIN_COST_FLOW_H_
#define WEBTAB_INFERENCE_MIN_COST_FLOW_H_

#include <cstdint>
#include <vector>

namespace webtab {

/// Successive-shortest-path min-cost max-flow (Ahuja et al. [1], the
/// reference the paper cites for unique-column constraints, §4.4.1).
/// Handles negative edge costs via an initial Bellman-Ford potential.
class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// Adds a directed edge; returns its id for FlowOn queries.
  int AddEdge(int from, int to, int64_t capacity, double cost);

  struct Solution {
    int64_t flow = 0;
    double cost = 0.0;
  };

  /// Sends up to `max_flow` units from s to t at minimum total cost.
  Solution Solve(int s, int t, int64_t max_flow);

  /// Flow currently routed on edge `id` (after Solve).
  int64_t FlowOn(int edge_id) const;

 private:
  struct Edge {
    int to;
    int64_t capacity;
    double cost;
    int rev;  // Index of the reverse edge in graph_[to].
  };

  int num_nodes_;
  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_refs_;  // (node, offset) per id.
};

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_MIN_COST_FLOW_H_
