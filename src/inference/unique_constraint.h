#ifndef WEBTAB_INFERENCE_UNIQUE_CONSTRAINT_H_
#define WEBTAB_INFERENCE_UNIQUE_CONSTRAINT_H_

#include <vector>

#include "catalog/ids.h"

namespace webtab {

/// Decodes a primary-key column under a uniqueness constraint (§4.4.1:
/// "Primary key or unique constraints on a column can be handled using a
/// min cost flow formulation"): every cell picks one label from its
/// domain, no two cells may pick the same non-na entity, total score is
/// maximized. na (assumed at domain index 0 with score 0) may repeat.
///
/// `domains[r]` lists cell r's candidate entities (index 0 must be kNa);
/// `scores[r][l]` is the log-score of assigning domains[r][l].
/// Returns the chosen label index per cell.
std::vector<int> AssignUniqueEntities(
    const std::vector<std::vector<EntityId>>& domains,
    const std::vector<std::vector<double>>& scores);

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_UNIQUE_CONSTRAINT_H_
