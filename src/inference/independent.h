#ifndef WEBTAB_INFERENCE_INDEPENDENT_H_
#define WEBTAB_INFERENCE_INDEPENDENT_H_

#include "model/features.h"
#include "model/label_space.h"
#include "table/annotation.h"
#include "table/table.h"

namespace webtab {

/// Exact polynomial-time inference for the relation-free objective (2),
/// implementing Figure 2: for every candidate column type T, pick each
/// cell's best entity under φ1·φ3, accumulate A_T = φ2 Π φ1 φ3, keep the
/// argmax type, then finalize cell labels. Columns are independent.
TableAnnotation SolveIndependent(const Table& table,
                                 const TableLabelSpace& space,
                                 FeatureComputer* features,
                                 const Weights& w);

/// Log-score of the relation-free objective for a full annotation; the
/// quantity maximized by SolveIndependent.
double IndependentObjective(const Table& table, const TableLabelSpace& space,
                            FeatureComputer* features, const Weights& w,
                            const TableAnnotation& annotation);

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_INDEPENDENT_H_
