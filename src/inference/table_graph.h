#ifndef WEBTAB_INFERENCE_TABLE_GRAPH_H_
#define WEBTAB_INFERENCE_TABLE_GRAPH_H_

#include <map>
#include <utility>
#include <vector>

#include "inference/factor_graph.h"
#include "model/features.h"
#include "model/label_space.h"
#include "table/annotation.h"

namespace webtab {

/// Schedule groups matching Appendix D's message order.
inline constexpr int kGroupPhi3 = 1;
inline constexpr int kGroupPhi5 = 2;
inline constexpr int kGroupPhi4 = 3;

/// Which FactorGraph representation BuildTableGraph emits.
enum class FactorRepChoice {
  /// Structure-aware: φ3 as sparse pairwise factors (nonzero scores
  /// only), φ4/φ5 as implicit ternary factors (per-relation bases,
  /// per-side unaries/gates, tuple hits as overrides). Falls back to
  /// dense per factor when the weights break the override-dominance
  /// precondition or when a sparse factor would be denser than its
  /// table. This is both faster to build (φ5 drops from O(B·E1·E2) to
  /// O(B·(E1+E2)+tuples) feature probes per row) and faster to run BP
  /// over (see belief_propagation.h).
  kStructured = 0,
  /// Dense log tables for every factor (the legacy representation);
  /// used by equivalence tests and as the before-side of benchmarks.
  kDense = 1,
};

struct TableGraphOptions {
  /// When false, relation variables and φ4/φ5 factors are omitted,
  /// reducing the model to Eq. (2) (§4.4.1 special case).
  bool use_relations = true;
  FactorRepChoice factor_rep = FactorRepChoice::kStructured;
};

/// The factor graph for one table plus the bookkeeping to translate
/// between graph variables and table coordinates (Figure 10's structure).
/// Variables with trivial (na-only) domains are not materialized; their
/// label is implicitly na.
struct TableGraph {
  FactorGraph graph;
  /// entity_var[r][c]: variable id or -1.
  std::vector<std::vector<int>> entity_var;
  /// type_var[c]: variable id or -1.
  std::vector<int> type_var;
  /// Relation variable per ordered column pair.
  std::map<std::pair<int, int>, int> relation_var;

  /// Decodes a BP/brute-force assignment into a TableAnnotation.
  TableAnnotation DecodeAssignment(const std::vector<int>& assignment,
                                   const TableLabelSpace& space) const;

  /// Encodes an annotation as a full assignment (for scoring / training).
  /// Labels missing from a domain map to na (index 0).
  std::vector<int> EncodeAnnotation(const TableAnnotation& annotation,
                                    const TableLabelSpace& space) const;
};

/// Materializes node potentials (φ1, φ2) and factors (φ3, φ4, φ5) from the
/// feature computer under weights `w`.
TableGraph BuildTableGraph(const Table& table, const TableLabelSpace& space,
                           FeatureComputer* features, const Weights& w,
                           const TableGraphOptions& options =
                               TableGraphOptions());

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_TABLE_GRAPH_H_
