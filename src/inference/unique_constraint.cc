#include "inference/unique_constraint.h"

#include <unordered_map>

#include "common/logging.h"
#include "inference/min_cost_flow.h"

namespace webtab {

std::vector<int> AssignUniqueEntities(
    const std::vector<std::vector<EntityId>>& domains,
    const std::vector<std::vector<double>>& scores) {
  const int cells = static_cast<int>(domains.size());
  WEBTAB_CHECK(scores.size() == domains.size());

  // Collect the distinct non-na entities across all domains.
  std::unordered_map<EntityId, int> entity_node;
  for (const auto& domain : domains) {
    WEBTAB_CHECK(!domain.empty() && domain[0] == kNa);
    for (size_t l = 1; l < domain.size(); ++l) {
      entity_node.emplace(domain[l], 0);
    }
  }
  // Node layout: 0 = source, 1..cells = cells, then entities, last = sink.
  int next = 1 + cells;
  for (auto& [e, node] : entity_node) node = next++;
  int sink = next++;
  MinCostFlow flow(next);

  for (int r = 0; r < cells; ++r) {
    flow.AddEdge(0, 1 + r, 1, 0.0);
  }
  // Cell -> entity edges carry negative score (min-cost == max-score);
  // cell -> sink is the na option at the na score.
  std::vector<std::vector<int>> choice_edges(cells);
  std::vector<int> na_edges(cells);
  for (int r = 0; r < cells; ++r) {
    const auto& domain = domains[r];
    WEBTAB_CHECK(scores[r].size() == domain.size());
    na_edges[r] = flow.AddEdge(1 + r, sink, 1, -scores[r][0]);
    choice_edges[r].resize(domain.size(), -1);
    for (size_t l = 1; l < domain.size(); ++l) {
      choice_edges[r][l] =
          flow.AddEdge(1 + r, entity_node[domain[l]], 1, -scores[r][l]);
    }
  }
  for (const auto& [e, node] : entity_node) {
    flow.AddEdge(node, sink, 1, 0.0);
  }

  MinCostFlow::Solution sol = flow.Solve(0, sink, cells);
  WEBTAB_CHECK(sol.flow == cells) << "unique assignment infeasible";

  std::vector<int> labels(cells, 0);
  for (int r = 0; r < cells; ++r) {
    for (size_t l = 1; l < domains[r].size(); ++l) {
      if (flow.FlowOn(choice_edges[r][l]) > 0) {
        labels[r] = static_cast<int>(l);
        break;
      }
    }
  }
  return labels;
}

}  // namespace webtab
