#ifndef WEBTAB_INFERENCE_BELIEF_PROPAGATION_H_
#define WEBTAB_INFERENCE_BELIEF_PROPAGATION_H_

#include <vector>

#include "inference/factor_graph.h"

namespace webtab {

struct BpOptions {
  /// The paper reports convergence "within three iterations" (§4.4.2);
  /// we allow a few more as safety margin.
  int max_iterations = 10;
  /// Convergence threshold on the max absolute message change.
  double tolerance = 1e-6;
  /// 0 = no damping; d in (0,1) mixes d*old + (1-d)*new messages.
  double damping = 0.0;
};

struct BpResult {
  std::vector<int> assignment;  // Label index per variable.
  int iterations = 0;
  bool converged = false;
  double score = 0.0;           // Log-score of the decoded assignment.
  double max_residual = 0.0;    // Last iteration's message change.
};

/// Sequential max-product belief propagation in log domain. Within each
/// iteration, factors are processed in ascending group order, which
/// realizes the schedule of Appendix D when table graphs assign
/// φ3 < φ5 < φ4 groups: messages flow entities→types, entities→relations,
/// types→relations and back, repeated to convergence. On factor trees
/// (e.g. the relation-free model of §4.4.1) the result is exact.
BpResult RunBeliefPropagation(const FactorGraph& graph,
                              const BpOptions& options = BpOptions());

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_BELIEF_PROPAGATION_H_
