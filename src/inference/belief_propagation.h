#ifndef WEBTAB_INFERENCE_BELIEF_PROPAGATION_H_
#define WEBTAB_INFERENCE_BELIEF_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "inference/factor_graph.h"

namespace webtab {

struct BpOptions {
  /// The paper reports convergence "within three iterations" (§4.4.2);
  /// we allow a few more as safety margin.
  int max_iterations = 10;
  /// Convergence threshold on the max absolute message change.
  double tolerance = 1e-6;
  /// 0 = no damping; d in (0,1) mixes d*old + (1-d)*new messages.
  double damping = 0.0;
  /// Residual-based factor scheduling: a factor whose last update changed
  /// nothing and whose adjacent beliefs are untouched since is skipped in
  /// later sweeps. The skip criterion is exact (inputs bitwise unchanged,
  /// previous delta exactly zero), so results are identical to running
  /// every factor every sweep — only converged work is elided.
  bool residual_scheduling = true;
  /// EXPLAIN support: record the per-iteration max residual
  /// (BpResult::residual_trail) and per-variable decode margins
  /// (BpResult::decode_margins). Off by default — capturing fills two
  /// vectors per run, which the zero-steady-state-allocation paths must
  /// not pay for. Messages, schedule, and the decoded assignment are
  /// unaffected either way.
  bool capture_convergence = false;
};

struct BpResult {
  std::vector<int> assignment;  // Label index per variable (-1 if domain 0).
  int iterations = 0;
  bool converged = false;
  double score = 0.0;           // Log-score of the decoded assignment.
  double max_residual = 0.0;    // Last iteration's message change.
  int64_t factor_updates = 0;   // Kernel executions across all sweeps.
  int64_t factor_skips = 0;     // Factors elided by residual scheduling.

  // Filled only when BpOptions::capture_convergence:
  /// Max message residual after each iteration (size == iterations) —
  /// the convergence curve EXPLAIN reports.
  std::vector<double> residual_trail;
  /// Per-variable decode margin: best belief minus runner-up belief
  /// (0 for domains of size <= 1, where decoding is trivial). Small
  /// margins flag near-tie decodes.
  std::vector<double> decode_margins;
};

/// Reusable scratch for RunBeliefPropagation: message arena, beliefs,
/// schedule, and all per-factor kernel scratch live here, so repeated
/// runs (e.g. one per table in a corpus) perform no per-iteration heap
/// allocation and amortize setup allocations across tables. A workspace
/// may be reused freely across graphs of different shapes; buffers only
/// grow. Not thread-safe; use one per worker.
class BpWorkspace {
 public:
  BpWorkspace() = default;
  BpWorkspace(const BpWorkspace&) = delete;
  BpWorkspace& operator=(const BpWorkspace&) = delete;

 private:
  friend BpResult RunBeliefPropagation(const FactorGraph& graph,
                                       const BpOptions& options,
                                       BpWorkspace* workspace);

  void Prepare(const FactorGraph& graph);

  // Flat arenas. belief_ holds per-variable beliefs at var_off_[v];
  // msg_ holds factor->var messages at msg_off_[adj_start_[f] + i].
  std::vector<double> belief_;
  std::vector<int64_t> var_off_;
  std::vector<double> msg_;
  std::vector<int64_t> msg_off_;
  std::vector<int64_t> adj_start_;

  // Schedule (factor ids in ascending group order) and residual-skip
  // state: per-variable belief versions, per-adjacency last-seen
  // versions, per-factor "last update was a no-op" flags.
  std::vector<int> order_;
  std::vector<uint32_t> version_;
  std::vector<uint32_t> last_seen_;
  std::vector<uint8_t> last_zero_;

  // Largest variable domain, computed in Prepare; scratch slot stride.
  int max_dom_ = 1;

  // Kernel scratch, sized to the largest domain / entry list.
  std::vector<double> in_scratch_;    // var->factor messages, 3 slots.
  std::vector<double> new_scratch_;   // new factor->var messages, 3 slots.
  std::vector<uint8_t> marks_;        // per-label excision marks.
  std::vector<double> slab_a_on_, slab_a_off_;  // per-slab class maxima.
  std::vector<double> slab_b_on_, slab_b_off_;
  std::vector<double> term_on_, term_off_;      // per-slab merged terms.
};

/// Sequential max-product belief propagation in log domain. Within each
/// iteration, factors are processed in ascending group order, which
/// realizes the schedule of Appendix D when table graphs assign
/// φ3 < φ5 < φ4 groups: messages flow entities→types, entities→relations,
/// types→relations and back, repeated to convergence. On factor trees
/// (e.g. the relation-free model of §4.4.1) the result is exact.
///
/// Max-marginalization dispatches on the factor representation: dense
/// tables are enumerated once per sweep; kSparsePair factors run in
/// expected O(L0 + L1 + nnz); kImplicitTernary factors run in
/// O(B·(Dx+Dy) + nnz) via class-wise maxima (see factor_graph.h). All
/// representations compute exact max-marginals, so mixing them changes
/// cost, not results.
///
/// `workspace` is optional; passing one reuses its buffers so repeated
/// calls allocate nothing in steady state.
BpResult RunBeliefPropagation(const FactorGraph& graph,
                              const BpOptions& options = BpOptions(),
                              BpWorkspace* workspace = nullptr);

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_BELIEF_PROPAGATION_H_
