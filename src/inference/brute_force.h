#ifndef WEBTAB_INFERENCE_BRUTE_FORCE_H_
#define WEBTAB_INFERENCE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "inference/factor_graph.h"

namespace webtab {

struct BruteForceResult {
  std::vector<int> assignment;
  double score = 0.0;
  int64_t assignments_scanned = 0;
};

/// Exhaustive MAP over a factor graph. Fails when the assignment-space
/// size exceeds `max_assignments`. Test oracle only — inference in the
/// general model is NP-hard (Appendix C).
Result<BruteForceResult> SolveBruteForce(const FactorGraph& graph,
                                         int64_t max_assignments = 2000000);

}  // namespace webtab

#endif  // WEBTAB_INFERENCE_BRUTE_FORCE_H_
