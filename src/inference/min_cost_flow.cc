#include "inference/min_cost_flow.h"

#include <limits>
#include <queue>

#include "common/logging.h"

namespace webtab {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MinCostFlow::MinCostFlow(int num_nodes)
    : num_nodes_(num_nodes), graph_(num_nodes) {}

int MinCostFlow::AddEdge(int from, int to, int64_t capacity, double cost) {
  WEBTAB_CHECK(from >= 0 && from < num_nodes_);
  WEBTAB_CHECK(to >= 0 && to < num_nodes_);
  graph_[from].push_back(
      Edge{to, capacity, cost, static_cast<int>(graph_[to].size())});
  graph_[to].push_back(
      Edge{from, 0, -cost, static_cast<int>(graph_[from].size()) - 1});
  edge_refs_.emplace_back(from, static_cast<int>(graph_[from].size()) - 1);
  return static_cast<int>(edge_refs_.size()) - 1;
}

MinCostFlow::Solution MinCostFlow::Solve(int s, int t, int64_t max_flow) {
  Solution result;
  std::vector<double> potential(num_nodes_, 0.0);

  // Bellman-Ford to initialize potentials (graph may have negative costs).
  for (int pass = 0; pass < num_nodes_; ++pass) {
    bool changed = false;
    for (int u = 0; u < num_nodes_; ++u) {
      for (const Edge& e : graph_[u]) {
        if (e.capacity > 0 && potential[u] + e.cost < potential[e.to]) {
          potential[e.to] = potential[u] + e.cost;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  while (result.flow < max_flow) {
    // Dijkstra with reduced costs.
    std::vector<double> dist(num_nodes_, kInf);
    std::vector<int> prev_node(num_nodes_, -1);
    std::vector<int> prev_edge(num_nodes_, -1);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    dist[s] = 0.0;
    heap.emplace(0.0, s);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u] + 1e-12) continue;
      for (size_t i = 0; i < graph_[u].size(); ++i) {
        const Edge& e = graph_[u][i];
        if (e.capacity <= 0) continue;
        double nd = dist[u] + e.cost + potential[u] - potential[e.to];
        if (nd < dist[e.to] - 1e-12) {
          dist[e.to] = nd;
          prev_node[e.to] = u;
          prev_edge[e.to] = static_cast<int>(i);
          heap.emplace(nd, e.to);
        }
      }
    }
    if (dist[t] == kInf) break;  // No augmenting path.
    for (int u = 0; u < num_nodes_; ++u) {
      if (dist[u] < kInf) potential[u] += dist[u];
    }
    // Bottleneck along the path.
    int64_t push = max_flow - result.flow;
    for (int u = t; u != s; u = prev_node[u]) {
      push = std::min(push, graph_[prev_node[u]][prev_edge[u]].capacity);
    }
    for (int u = t; u != s; u = prev_node[u]) {
      Edge& e = graph_[prev_node[u]][prev_edge[u]];
      e.capacity -= push;
      graph_[u][e.rev].capacity += push;
      result.cost += e.cost * static_cast<double>(push);
    }
    result.flow += push;
  }
  return result;
}

int64_t MinCostFlow::FlowOn(int edge_id) const {
  WEBTAB_CHECK(edge_id >= 0 &&
               edge_id < static_cast<int>(edge_refs_.size()));
  auto [node, offset] = edge_refs_[edge_id];
  const Edge& e = graph_[node][offset];
  // Flow equals the reverse edge's residual capacity.
  return graph_[e.to][e.rev].capacity;
}

}  // namespace webtab
