#ifndef WEBTAB_ANNOTATE_ANNOTATION_H_
#define WEBTAB_ANNOTATE_ANNOTATION_H_

#include <string>

#include "catalog/catalog_view.h"
#include "table/annotation.h"
#include "table/table.h"

namespace webtab {

/// Human-readable rendering of an annotation with catalog names — used by
/// the examples and debugging.
std::string AnnotationToString(const CatalogView& catalog, const Table& table,
                               const TableAnnotation& annotation);

/// Short label helpers ("na" for missing ids).
std::string TypeName(const CatalogView& catalog, TypeId t);
std::string EntityName(const CatalogView& catalog, EntityId e);
std::string RelationName(const CatalogView& catalog,
                         const RelationCandidate& rel);

}  // namespace webtab

#endif  // WEBTAB_ANNOTATE_ANNOTATION_H_
