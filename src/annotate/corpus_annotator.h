#ifndef WEBTAB_ANNOTATE_CORPUS_ANNOTATOR_H_
#define WEBTAB_ANNOTATE_CORPUS_ANNOTATOR_H_

#include <vector>

#include "annotate/annotator.h"

namespace webtab {

/// A table with its system annotation — the unit stored in the search
/// index (§5).
struct AnnotatedTable {
  Table table;
  TableAnnotation annotation;
};

/// Aggregate timing over a corpus run (drives Figure 7).
struct CorpusTimingStats {
  std::vector<double> per_table_millis;
  double total_seconds = 0.0;
  double candidate_seconds = 0.0;
  double graph_seconds = 0.0;
  double inference_seconds = 0.0;
  int64_t converged_tables = 0;
  std::vector<int> bp_iteration_counts;

  double MeanMillisPerTable() const;
  /// Fraction of total time spent probing the index / computing text
  /// similarity (candidate + potential materialization) vs inference.
  double ProbeFraction() const;
  double InferenceFraction() const;
};

/// Annotates every table, returning annotated tables and timing stats.
std::vector<AnnotatedTable> AnnotateCorpus(TableAnnotator* annotator,
                                           const std::vector<Table>& tables,
                                           CorpusTimingStats* stats =
                                               nullptr);

}  // namespace webtab

#endif  // WEBTAB_ANNOTATE_CORPUS_ANNOTATOR_H_
