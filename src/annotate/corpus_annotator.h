#ifndef WEBTAB_ANNOTATE_CORPUS_ANNOTATOR_H_
#define WEBTAB_ANNOTATE_CORPUS_ANNOTATOR_H_

#include <vector>

#include "annotate/annotator.h"

namespace webtab {

/// A table with its system annotation — the unit stored in the search
/// index (§5).
struct AnnotatedTable {
  Table table;
  TableAnnotation annotation;
};

/// Aggregate timing over a corpus run (drives Figure 7).
struct CorpusTimingStats {
  std::vector<double> per_table_millis;
  /// Sum of per-table annotation time across workers (CPU cost).
  double total_seconds = 0.0;
  /// Elapsed wall-clock for the whole corpus; equals total_seconds for
  /// single-threaded runs, smaller under the thread pool.
  double wall_seconds = 0.0;
  double candidate_seconds = 0.0;
  double graph_seconds = 0.0;
  double inference_seconds = 0.0;
  int64_t converged_tables = 0;
  std::vector<int> bp_iteration_counts;

  double MeanMillisPerTable() const;
  /// Fraction of total time spent probing the index / computing text
  /// similarity (candidate + potential materialization) vs inference.
  double ProbeFraction() const;
  double InferenceFraction() const;
};

/// Annotates every table, returning annotated tables and timing stats.
std::vector<AnnotatedTable> AnnotateCorpus(TableAnnotator* annotator,
                                           const std::vector<Table>& tables,
                                           CorpusTimingStats* stats =
                                               nullptr);

struct CorpusAnnotatorOptions {
  AnnotatorOptions annotator;
  /// Worker threads; <= 1 annotates inline on the calling thread.
  /// Tables are independent (§6.1.2 annotates a 250k-table stream), so
  /// each worker owns a private TableAnnotator (closure + feature
  /// caches, similarity scratch, BP + column-probe workspaces) and a
  /// private Vocabulary copy — similarity probes intern query tokens,
  /// so sharing the index's vocabulary across threads would race. The
  /// shared Catalog and LemmaIndex are only read. Output order and
  /// annotations are identical regardless of thread count.
  int num_threads = 1;
};

/// Annotates a corpus on a pool of worker threads, constructing one
/// annotator per worker. `stats` (optional) aggregates across workers;
/// per_table_millis stays in table order. Both backends work: in-memory
/// builds, or snapshot views — in which case every worker reads the same
/// shared read-only mapping (one physical copy of the catalog and
/// postings across the pool) and only the small mutable state (closure
/// caches, BP workspace, vocabulary copy) is per-worker.
std::vector<AnnotatedTable> AnnotateCorpusParallel(
    const CatalogView* catalog, const LemmaIndexView* index,
    const CorpusAnnotatorOptions& options, const std::vector<Table>& tables,
    CorpusTimingStats* stats = nullptr);

}  // namespace webtab

#endif  // WEBTAB_ANNOTATE_CORPUS_ANNOTATOR_H_
