#ifndef WEBTAB_ANNOTATE_ANNOTATOR_H_
#define WEBTAB_ANNOTATE_ANNOTATOR_H_

#include <memory>

#include "catalog/catalog_view.h"
#include "catalog/closure.h"
#include "index/candidates.h"
#include "inference/belief_propagation.h"
#include "inference/table_graph.h"
#include "model/features.h"
#include "model/weights.h"
#include "table/annotation.h"
#include "table/table.h"

namespace webtab {

class TableLabelSpace;  // model/label_space.h

/// Everything configurable about the collective annotator.
struct AnnotatorOptions {
  CandidateOptions candidates;
  FeatureOptions features;
  BpOptions bp;
  Weights weights = Weights::Default();
  /// false reduces to the exact relation-free model (§4.4.1).
  bool use_relations = true;
  /// Factor representation emitted for inference (see table_graph.h).
  /// kStructured exploits the φ3/φ4/φ5 shapes for faster graph builds
  /// and BP sweeps with identical results; kDense keeps full log tables.
  FactorRepChoice factor_rep = FactorRepChoice::kStructured;
  /// Extension (§4.4.1): decode entity columns under a uniqueness
  /// constraint via min-cost flow after BP fixes column types.
  bool unique_column_constraint = false;
};

/// EXPLAIN payload for one annotate request: what the pipeline had to
/// choose from (per-column candidate counts) and how certain inference
/// was (BP convergence curve, per-column decode margins). Filled only
/// on request — capturing allocates, so the serving fast path never
/// pays for it.
struct AnnotateExplain {
  struct ColumnExplain {
    int column = 0;
    /// Σ over rows of the cell's scored entity candidates (Erc sizes).
    int64_t entity_candidates = 0;
    /// Candidate types for the column (∪ T(E), §4.3).
    int type_candidates = 0;
    TypeId decoded_type = kNa;
    /// Best-minus-runner-up belief of the column's type variable; 0
    /// when the domain was trivial or the column had no type variable.
    /// Small margins flag near-tie type decisions.
    double decode_margin = 0.0;
  };
  std::vector<ColumnExplain> columns;
  /// Column pairs with at least one candidate relation.
  int relation_pairs = 0;
  int bp_iterations = 0;
  bool bp_converged = false;
  double bp_max_residual = 0.0;
  /// Max message residual after each BP iteration (the convergence
  /// curve; size == bp_iterations).
  std::vector<double> bp_residual_trail;
  int64_t bp_factor_updates = 0;
  int64_t bp_factor_skips = 0;
};

/// Per-table cost breakdown backing Figure 7 / §6.1.2 (the paper: ~80% of
/// time in lemma probes + similarity, <1% in inference).
struct AnnotationTiming {
  double candidate_seconds = 0.0;  // Index probes (Erc, Tc, Bcc').
  double graph_seconds = 0.0;      // Feature/potential materialization.
  double inference_seconds = 0.0;  // Message passing.
  double total_seconds = 0.0;
  int bp_iterations = 0;
  bool bp_converged = true;
};

/// The paper's collective annotator: candidate generation → factor graph
/// (φ1..φ5) → max-product BP → decoded TableAnnotation. One instance per
/// worker (owns per-worker caches); the catalog and index are shared,
/// read-only.
class TableAnnotator {
 public:
  /// `vocabulary` overrides the index's vocabulary for feature
  /// similarity (which interns query tokens); pass a private copy per
  /// worker for lock-free parallel annotation. nullptr uses the index's
  /// shared vocabulary when the backend has one (in-memory build), or a
  /// private materialized copy for immutable snapshot backends. The
  /// override must outlive the annotator. Both `catalog` and `index` may
  /// be in-memory builds or mmap'd snapshot views.
  TableAnnotator(const CatalogView* catalog, const LemmaIndexView* index,
                 AnnotatorOptions options = AnnotatorOptions(),
                 Vocabulary* vocabulary = nullptr);

  TableAnnotator(const TableAnnotator&) = delete;
  TableAnnotator& operator=(const TableAnnotator&) = delete;

  /// Annotates one table. `timing` and `explain` are optional; passing
  /// `explain` turns on BP convergence capture for this run only.
  TableAnnotation Annotate(const Table& table,
                           AnnotationTiming* timing = nullptr,
                           AnnotateExplain* explain = nullptr);

  /// Like Annotate but also returns the label space / candidates, for
  /// evaluation drivers that need the baselines on identical candidates.
  TableAnnotation AnnotateWithCandidates(const Table& table,
                                         TableCandidates* candidates_out,
                                         AnnotationTiming* timing = nullptr,
                                         AnnotateExplain* explain = nullptr);

  const AnnotatorOptions& options() const { return options_; }
  /// Mutable so experiment drivers can swap trained weights in place.
  AnnotatorOptions* mutable_options() { return &options_; }

  ClosureCache* closure() { return &closure_; }
  FeatureComputer* features() { return &features_; }
  const LemmaIndexView& index() const { return *index_; }

 private:
  /// Optional §4.4.1 min-cost-flow re-decode (no-op unless
  /// options_.unique_column_constraint); runs inside the decode span.
  void ApplyUniqueConstraint(const Table& table,
                             const TableLabelSpace& space,
                             TableAnnotation* annotation);

  const CatalogView* catalog_;
  const LemmaIndexView* index_;
  AnnotatorOptions options_;
  ClosureCache closure_;
  /// Private vocabulary copy, materialized only when the index backend
  /// has no mutable vocabulary (snapshot views) and none was injected.
  std::unique_ptr<Vocabulary> owned_vocab_;
  FeatureComputer features_;
  /// Reused across tables so steady-state BP performs no allocations.
  BpWorkspace bp_workspace_;
  /// Column-probe batch + candidate scratch, reused across tables like
  /// the BP workspace (and, through the annotator, across serving
  /// requests and corpus-annotation work items).
  CandidateWorkspace candidate_workspace_;
};

}  // namespace webtab

#endif  // WEBTAB_ANNOTATE_ANNOTATOR_H_
