#include "annotate/corpus_annotator.h"

namespace webtab {

double CorpusTimingStats::MeanMillisPerTable() const {
  if (per_table_millis.empty()) return 0.0;
  double total = 0.0;
  for (double t : per_table_millis) total += t;
  return total / static_cast<double>(per_table_millis.size());
}

double CorpusTimingStats::ProbeFraction() const {
  if (total_seconds <= 0.0) return 0.0;
  return (candidate_seconds + graph_seconds) / total_seconds;
}

double CorpusTimingStats::InferenceFraction() const {
  if (total_seconds <= 0.0) return 0.0;
  return inference_seconds / total_seconds;
}

std::vector<AnnotatedTable> AnnotateCorpus(TableAnnotator* annotator,
                                           const std::vector<Table>& tables,
                                           CorpusTimingStats* stats) {
  std::vector<AnnotatedTable> out;
  out.reserve(tables.size());
  for (const Table& table : tables) {
    AnnotationTiming timing;
    TableAnnotation annotation = annotator->Annotate(table, &timing);
    if (stats != nullptr) {
      stats->per_table_millis.push_back(timing.total_seconds * 1e3);
      stats->total_seconds += timing.total_seconds;
      stats->candidate_seconds += timing.candidate_seconds;
      stats->graph_seconds += timing.graph_seconds;
      stats->inference_seconds += timing.inference_seconds;
      stats->bp_iteration_counts.push_back(timing.bp_iterations);
      if (timing.bp_converged) ++stats->converged_tables;
    }
    out.push_back(AnnotatedTable{table, std::move(annotation)});
  }
  return out;
}

}  // namespace webtab
