#include "annotate/corpus_annotator.h"

#include <atomic>
#include <memory>
#include <thread>

#include "common/timer.h"

namespace webtab {

namespace {

/// Per-worker accumulator, merged into CorpusTimingStats at join time.
struct WorkerStats {
  double total_seconds = 0.0;
  double candidate_seconds = 0.0;
  double graph_seconds = 0.0;
  double inference_seconds = 0.0;
  int64_t converged_tables = 0;
};

void RecordTiming(const AnnotationTiming& timing, int index,
                  CorpusTimingStats* stats, WorkerStats* local) {
  stats->per_table_millis[index] = timing.total_seconds * 1e3;
  stats->bp_iteration_counts[index] = timing.bp_iterations;
  local->total_seconds += timing.total_seconds;
  local->candidate_seconds += timing.candidate_seconds;
  local->graph_seconds += timing.graph_seconds;
  local->inference_seconds += timing.inference_seconds;
  if (timing.bp_converged) ++local->converged_tables;
}

void MergeWorkerStats(const WorkerStats& local, CorpusTimingStats* stats) {
  stats->total_seconds += local.total_seconds;
  stats->candidate_seconds += local.candidate_seconds;
  stats->graph_seconds += local.graph_seconds;
  stats->inference_seconds += local.inference_seconds;
  stats->converged_tables += local.converged_tables;
}

}  // namespace

double CorpusTimingStats::MeanMillisPerTable() const {
  if (per_table_millis.empty()) return 0.0;
  double total = 0.0;
  for (double t : per_table_millis) total += t;
  return total / static_cast<double>(per_table_millis.size());
}

double CorpusTimingStats::ProbeFraction() const {
  if (total_seconds <= 0.0) return 0.0;
  return (candidate_seconds + graph_seconds) / total_seconds;
}

double CorpusTimingStats::InferenceFraction() const {
  if (total_seconds <= 0.0) return 0.0;
  return inference_seconds / total_seconds;
}

std::vector<AnnotatedTable> AnnotateCorpus(TableAnnotator* annotator,
                                           const std::vector<Table>& tables,
                                           CorpusTimingStats* stats) {
  WallTimer wall;
  std::vector<AnnotatedTable> out;
  out.reserve(tables.size());
  for (const Table& table : tables) {
    AnnotationTiming timing;
    TableAnnotation annotation = annotator->Annotate(table, &timing);
    if (stats != nullptr) {
      stats->per_table_millis.push_back(timing.total_seconds * 1e3);
      stats->total_seconds += timing.total_seconds;
      stats->candidate_seconds += timing.candidate_seconds;
      stats->graph_seconds += timing.graph_seconds;
      stats->inference_seconds += timing.inference_seconds;
      stats->bp_iteration_counts.push_back(timing.bp_iterations);
      if (timing.bp_converged) ++stats->converged_tables;
    }
    out.push_back(AnnotatedTable{table, std::move(annotation)});
  }
  if (stats != nullptr) stats->wall_seconds += wall.ElapsedSeconds();
  return out;
}

std::vector<AnnotatedTable> AnnotateCorpusParallel(
    const CatalogView* catalog, const LemmaIndexView* index,
    const CorpusAnnotatorOptions& options, const std::vector<Table>& tables,
    CorpusTimingStats* stats) {
  const int num_threads =
      std::max(1, std::min(options.num_threads,
                           static_cast<int>(tables.size())));
  if (num_threads <= 1) {
    TableAnnotator annotator(catalog, index, options.annotator);
    return AnnotateCorpus(&annotator, tables, stats);
  }

  WallTimer wall;
  std::vector<AnnotatedTable> out(tables.size());
  CorpusTimingStats collected;
  collected.per_table_millis.assign(tables.size(), 0.0);
  collected.bp_iteration_counts.assign(tables.size(), 0);
  std::vector<WorkerStats> worker_stats(num_threads);

  std::atomic<size_t> next{0};
  auto worker = [&](int worker_id) {
    // Private vocabulary: similarity features intern query tokens, and
    // interning never changes existing IDF statistics, so per-worker
    // copies produce identical scores to a shared instance. For snapshot
    // backends this is the only materialization; catalog and postings
    // stay in the shared mapping.
    Vocabulary vocab = index->CopyVocabulary();
    TableAnnotator annotator(catalog, index, options.annotator, &vocab);
    WorkerStats* local = &worker_stats[worker_id];
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tables.size()) break;
      AnnotationTiming timing;
      TableAnnotation annotation = annotator.Annotate(tables[i], &timing);
      out[i] = AnnotatedTable{tables[i], std::move(annotation)};
      if (stats != nullptr) {
        RecordTiming(timing, static_cast<int>(i), &collected, local);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  if (stats != nullptr) {
    stats->per_table_millis.insert(stats->per_table_millis.end(),
                                   collected.per_table_millis.begin(),
                                   collected.per_table_millis.end());
    stats->bp_iteration_counts.insert(stats->bp_iteration_counts.end(),
                                      collected.bp_iteration_counts.begin(),
                                      collected.bp_iteration_counts.end());
    for (const WorkerStats& local : worker_stats) {
      MergeWorkerStats(local, stats);
    }
    stats->wall_seconds += wall.ElapsedSeconds();
  }
  return out;
}

}  // namespace webtab
