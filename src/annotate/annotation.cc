#include "annotate/annotation.h"

#include "common/string_util.h"

namespace webtab {

std::string TypeName(const Catalog& catalog, TypeId t) {
  return catalog.ValidType(t) ? catalog.type(t).name : "na";
}

std::string EntityName(const Catalog& catalog, EntityId e) {
  return catalog.ValidEntity(e) ? catalog.entity(e).name : "na";
}

std::string RelationName(const Catalog& catalog,
                         const RelationCandidate& rel) {
  if (rel.is_na() || !catalog.ValidRelation(rel.relation)) return "na";
  std::string name = catalog.relation(rel.relation).name;
  if (rel.swapped) name += "^-1";
  return name;
}

std::string AnnotationToString(const Catalog& catalog, const Table& table,
                               const TableAnnotation& annotation) {
  std::string out;
  for (int c = 0; c < table.cols(); ++c) {
    out += StrFormat("column %d (%s): type=%s\n", c,
                     table.header(c).c_str(),
                     TypeName(catalog, annotation.TypeOf(c)).c_str());
  }
  for (const auto& [pair, rel] : annotation.relations) {
    out += StrFormat("columns (%d,%d): relation=%s\n", pair.first,
                     pair.second, RelationName(catalog, rel).c_str());
  }
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      EntityId e = annotation.EntityOf(r, c);
      if (e == kNa) continue;
      out += StrFormat("cell (%d,%d) \"%s\" -> %s\n", r, c,
                       table.cell(r, c).c_str(),
                       EntityName(catalog, e).c_str());
    }
  }
  return out;
}

}  // namespace webtab
