#include "annotate/annotation.h"

#include "common/string_util.h"

namespace webtab {

std::string TypeName(const CatalogView& catalog, TypeId t) {
  return catalog.ValidType(t) ? std::string(catalog.TypeName(t)) : "na";
}

std::string EntityName(const CatalogView& catalog, EntityId e) {
  return catalog.ValidEntity(e) ? std::string(catalog.EntityName(e)) : "na";
}

std::string RelationName(const CatalogView& catalog,
                         const RelationCandidate& rel) {
  if (rel.is_na() || !catalog.ValidRelation(rel.relation)) return "na";
  std::string name(catalog.RelationName(rel.relation));
  if (rel.swapped) name += "^-1";
  return name;
}

std::string AnnotationToString(const CatalogView& catalog, const Table& table,
                               const TableAnnotation& annotation) {
  std::string out;
  for (int c = 0; c < table.cols(); ++c) {
    out += StrFormat("column %d (%s): type=%s\n", c,
                     table.header(c).c_str(),
                     TypeName(catalog, annotation.TypeOf(c)).c_str());
  }
  for (const auto& [pair, rel] : annotation.relations) {
    out += StrFormat("columns (%d,%d): relation=%s\n", pair.first,
                     pair.second, RelationName(catalog, rel).c_str());
  }
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      EntityId e = annotation.EntityOf(r, c);
      if (e == kNa) continue;
      out += StrFormat("cell (%d,%d) \"%s\" -> %s\n", r, c,
                       table.cell(r, c).c_str(),
                       EntityName(catalog, e).c_str());
    }
  }
  return out;
}

}  // namespace webtab
