#include "annotate/annotator.h"

#include "common/timer.h"
#include "inference/unique_constraint.h"
#include "model/label_space.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace webtab {

TableAnnotator::TableAnnotator(const CatalogView* catalog,
                               const LemmaIndexView* index,
                               AnnotatorOptions options,
                               Vocabulary* vocabulary)
    : catalog_(catalog),
      index_(index),
      options_(std::move(options)),
      closure_(catalog),
      owned_vocab_(vocabulary == nullptr &&
                           index->mutable_vocabulary() == nullptr
                       ? std::make_unique<Vocabulary>(index->CopyVocabulary())
                       : nullptr),
      features_(&closure_,
                vocabulary != nullptr       ? vocabulary
                : owned_vocab_ != nullptr   ? owned_vocab_.get()
                                            : index->mutable_vocabulary(),
                options_.features) {}

TableAnnotation TableAnnotator::Annotate(const Table& table,
                                         AnnotationTiming* timing,
                                         AnnotateExplain* explain) {
  TableCandidates candidates;
  return AnnotateWithCandidates(table, &candidates, timing, explain);
}

TableAnnotation TableAnnotator::AnnotateWithCandidates(
    const Table& table, TableCandidates* candidates_out,
    AnnotationTiming* timing, AnnotateExplain* explain) {
  WallTimer total;
  WallTimer stage;

  TableAnnotation annotation;
  {
    obs::TraceSpan span("annotate.candidates");
    *candidates_out = GenerateCandidates(table, *index_, &closure_,
                                         options_.candidates,
                                         &candidate_workspace_);
  }
  const double candidate_seconds = stage.ElapsedSeconds();

  stage.Restart();
  obs::TraceSpan graph_span("annotate.graph_build");
  TableLabelSpace space = TableLabelSpace::Build(table, *candidates_out);
  TableGraphOptions graph_options;
  graph_options.use_relations = options_.use_relations;
  graph_options.factor_rep = options_.factor_rep;
  TableGraph graph = BuildTableGraph(table, space, &features_,
                                     options_.weights, graph_options);
  graph_span.End();
  const double graph_seconds = stage.ElapsedSeconds();

  stage.Restart();
  BpResult bp;
  {
    obs::TraceSpan bp_span("annotate.bp");
    BpOptions bp_options = options_.bp;
    if (explain != nullptr) bp_options.capture_convergence = true;
    bp = RunBeliefPropagation(graph.graph, bp_options, &bp_workspace_);
  }
  {
    obs::TraceSpan decode_span("annotate.decode");
    annotation = graph.DecodeAssignment(bp.assignment, space);
    ApplyUniqueConstraint(table, space, &annotation);
  }
  const double inference_seconds = stage.ElapsedSeconds();

  static obs::Counter* tables_annotated =
      obs::MetricsRegistry::Get().GetCounter("annotate.tables");
  static obs::Counter* bp_iterations_total =
      obs::MetricsRegistry::Get().GetCounter("annotate.bp_iterations");
  tables_annotated->Add(1);
  bp_iterations_total->Add(bp.iterations);
  obs::TraceAddCounter("bp_iterations", bp.iterations);

  if (explain != nullptr) {
    explain->columns.clear();
    explain->columns.reserve(table.cols());
    for (int c = 0; c < table.cols(); ++c) {
      AnnotateExplain::ColumnExplain col;
      col.column = c;
      col.type_candidates =
          static_cast<int>(candidates_out->column_types[c].size());
      for (int r = 0; r < table.rows(); ++r) {
        col.entity_candidates +=
            static_cast<int64_t>(candidates_out->cells[r][c].size());
      }
      col.decoded_type = annotation.column_types[c];
      const int tv = graph.type_var[c];
      if (tv >= 0 &&
          tv < static_cast<int>(bp.decode_margins.size())) {
        col.decode_margin = bp.decode_margins[tv];
      }
      explain->columns.push_back(col);
    }
    explain->relation_pairs =
        static_cast<int>(candidates_out->relations.size());
    explain->bp_iterations = bp.iterations;
    explain->bp_converged = bp.converged;
    explain->bp_max_residual = bp.max_residual;
    explain->bp_residual_trail = std::move(bp.residual_trail);
    explain->bp_factor_updates = bp.factor_updates;
    explain->bp_factor_skips = bp.factor_skips;
  }

  if (timing != nullptr) {
    timing->candidate_seconds = candidate_seconds;
    timing->graph_seconds = graph_seconds;
    timing->inference_seconds = inference_seconds;
    timing->total_seconds = total.ElapsedSeconds();
    timing->bp_iterations = bp.iterations;
    timing->bp_converged = bp.converged;
  }
  return annotation;
}

void TableAnnotator::ApplyUniqueConstraint(const Table& table,
                                           const TableLabelSpace& space,
                                           TableAnnotation* annotation) {
  if (!options_.unique_column_constraint) return;
  // Re-decode each column's entities under a uniqueness constraint,
  // keeping the BP-chosen column type fixed (min-cost-flow extension).
  for (int c = 0; c < table.cols(); ++c) {
    TypeId t = annotation->column_types[c];
    std::vector<std::vector<EntityId>> domains(table.rows());
    std::vector<std::vector<double>> scores(table.rows());
    for (int r = 0; r < table.rows(); ++r) {
      const auto& domain = space.EntityDomain(r, c);
      domains[r] = domain;
      scores[r].resize(domain.size(), 0.0);
      for (size_t l = 1; l < domain.size(); ++l) {
        scores[r][l] =
            features_.Phi1Log(options_.weights, table.cell(r, c),
                              domain[l]) +
            (t != kNa
                 ? features_.Phi3Log(options_.weights, t, domain[l])
                 : 0.0);
      }
    }
    std::vector<int> labels = AssignUniqueEntities(domains, scores);
    for (int r = 0; r < table.rows(); ++r) {
      annotation->cell_entities[r][c] = domains[r][labels[r]];
    }
  }
}

}  // namespace webtab
