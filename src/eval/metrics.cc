#include "eval/metrics.h"

#include <cstddef>

namespace webtab {

double PrecisionRecallF1::Precision() const {
  return predicted > 0 ? static_cast<double>(true_positives) /
                             static_cast<double>(predicted)
                       : 0.0;
}

double PrecisionRecallF1::Recall() const {
  return gold > 0 ? static_cast<double>(true_positives) /
                        static_cast<double>(gold)
                  : 0.0;
}

double PrecisionRecallF1::F1() const {
  double p = Precision();
  double r = Recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

void PrecisionRecallF1::Add(int64_t tp, int64_t pred, int64_t gold_count) {
  true_positives += tp;
  predicted += pred;
  gold += gold_count;
}

double AccuracyCounter::Accuracy() const {
  return total > 0 ? static_cast<double>(correct) /
                         static_cast<double>(total)
                   : 0.0;
}

void AccuracyCounter::Add(bool is_correct) {
  if (is_correct) ++correct;
  ++total;
}

double AveragePrecision(const std::vector<bool>& relevance_at_rank,
                        int64_t relevant_total) {
  if (relevant_total <= 0) return 0.0;
  double ap = 0.0;
  int64_t hits = 0;
  for (size_t k = 0; k < relevance_at_rank.size(); ++k) {
    if (relevance_at_rank[k]) {
      ++hits;
      ap += static_cast<double>(hits) / static_cast<double>(k + 1);
    }
  }
  return ap / static_cast<double>(relevant_total);
}

double MeanAveragePrecision(const std::vector<double>& average_precisions) {
  if (average_precisions.empty()) return 0.0;
  double total = 0.0;
  for (double ap : average_precisions) total += ap;
  return total / static_cast<double>(average_precisions.size());
}

}  // namespace webtab
