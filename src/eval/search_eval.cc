#include "eval/search_eval.h"

#include <string>
#include <unordered_map>

#include "eval/metrics.h"
#include "text/tokenizer.h"

namespace webtab {

double JudgeAveragePrecision(const std::vector<SearchResult>& results,
                             const std::unordered_set<EntityId>& relevant,
                             const CatalogView& catalog, int depth) {
  if (relevant.empty()) return 0.0;

  // Map normalized lemma -> relevant entities carrying it.
  std::unordered_map<std::string, std::vector<EntityId>> lemma_to_entity;
  for (EntityId e : relevant) {
    for (int32_t i = 0; i < catalog.NumEntityLemmas(e); ++i) {
      lemma_to_entity[NormalizeText(catalog.EntityLemma(e, i))].push_back(e);
    }
  }

  std::unordered_set<EntityId> already_found;
  std::vector<bool> relevance;
  for (const SearchResult& result : results) {
    if (static_cast<int>(relevance.size()) >= depth) break;
    bool hit = false;
    if (result.entity != kNa) {
      if (relevant.count(result.entity) &&
          already_found.insert(result.entity).second) {
        hit = true;
      }
    } else {
      auto it = lemma_to_entity.find(NormalizeText(result.text));
      if (it != lemma_to_entity.end()) {
        for (EntityId e : it->second) {
          if (already_found.insert(e).second) {
            hit = true;
            break;
          }
        }
      }
    }
    relevance.push_back(hit);
  }
  return AveragePrecision(relevance,
                          static_cast<int64_t>(relevant.size()));
}

}  // namespace webtab
