#ifndef WEBTAB_EVAL_METRICS_H_
#define WEBTAB_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace webtab {

/// Micro-averaged precision/recall/F1 accumulator.
struct PrecisionRecallF1 {
  int64_t true_positives = 0;
  int64_t predicted = 0;  // |prediction set|.
  int64_t gold = 0;       // |gold set|.

  double Precision() const;
  double Recall() const;
  double F1() const;

  void Add(int64_t tp, int64_t pred, int64_t gold_count);
};

/// 0/1 accuracy accumulator.
struct AccuracyCounter {
  int64_t correct = 0;
  int64_t total = 0;

  double Accuracy() const;
  void Add(bool is_correct);
};

/// Average precision of one ranked binary-relevance list:
/// AP = (Σ_k Precision@k · rel_k) / |relevant|. `relevant_total` may
/// exceed the number of relevant items retrieved.
double AveragePrecision(const std::vector<bool>& relevance_at_rank,
                        int64_t relevant_total);

/// Mean of per-query APs.
double MeanAveragePrecision(const std::vector<double>& average_precisions);

}  // namespace webtab

#endif  // WEBTAB_EVAL_METRICS_H_
