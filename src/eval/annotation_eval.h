#ifndef WEBTAB_EVAL_ANNOTATION_EVAL_H_
#define WEBTAB_EVAL_ANNOTATION_EVAL_H_

#include <optional>
#include <vector>

#include "eval/metrics.h"
#include "table/annotation.h"

namespace webtab {

/// §6.1.1 scoring: 0/1 loss per cell for entities ("we lose a point if we
/// get a cell wrong, including choosing na when ground truth was not
/// na"), micro-F1 for column types and relations. Annotations whose
/// ground truth is missing are dropped from their task; datasets marked
/// entities_only / relations_only restrict which tasks a table feeds.
class AnnotationEvaluator {
 public:
  /// `type_sets`, when provided, is the baseline's per-column predicted
  /// type *set* (LCA/Majority report sets); otherwise the single type in
  /// `predicted` forms a singleton set.
  void Add(const LabeledTable& gold, const TableAnnotation& predicted,
           const std::vector<std::vector<TypeId>>* type_sets = nullptr);

  double EntityAccuracy() const { return entities_.Accuracy(); }
  const AccuracyCounter& entity_counter() const { return entities_; }
  const PrecisionRecallF1& type_prf() const { return types_; }
  const PrecisionRecallF1& relation_prf() const { return relations_; }

 private:
  AccuracyCounter entities_;
  PrecisionRecallF1 types_;
  PrecisionRecallF1 relations_;
};

}  // namespace webtab

#endif  // WEBTAB_EVAL_ANNOTATION_EVAL_H_
