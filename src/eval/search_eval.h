#ifndef WEBTAB_EVAL_SEARCH_EVAL_H_
#define WEBTAB_EVAL_SEARCH_EVAL_H_

#include <unordered_set>
#include <vector>

#include "catalog/catalog_view.h"
#include "search/query.h"

namespace webtab {

/// Judges one ranked result list against the relevant entity set (the
/// paper scores against DBPedia triples; here the world's hidden truth).
/// A result is relevant when its resolved entity is in the set, or — for
/// unresolved string results — when its normalized text equals a lemma of
/// a relevant entity. Each relevant entity counts at most once (first
/// hit); duplicates are irrelevant, penalizing unclustered baselines.
double JudgeAveragePrecision(
    const std::vector<SearchResult>& results,
    const std::unordered_set<EntityId>& relevant,
    const CatalogView& catalog, int depth = 50);

}  // namespace webtab

#endif  // WEBTAB_EVAL_SEARCH_EVAL_H_
