#include "eval/annotation_eval.h"

#include <algorithm>

namespace webtab {

void AnnotationEvaluator::Add(
    const LabeledTable& gold_table, const TableAnnotation& predicted,
    const std::vector<std::vector<TypeId>>* type_sets) {
  const TableAnnotation& gold = gold_table.gold;
  int rows = static_cast<int>(gold.cell_entities.size());
  int cols = static_cast<int>(gold.column_types.size());

  // --- Entities (skipped for relations-only datasets). ---
  if (!gold_table.relations_only) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        // Cells in columns with no gold type *and* gold na entity on a
        // numeric-like column are still counted: the generator labels
        // every cell it created, kNa meaning "truly not an entity".
        entities_.Add(gold.EntityOf(r, c) == predicted.EntityOf(r, c));
      }
    }
  }

  // --- Column types (skipped when the dataset doesn't label them). ---
  if (!gold_table.relations_only && !gold_table.entities_only) {
    for (int c = 0; c < cols; ++c) {
      TypeId g = gold.TypeOf(c);
      if (g == kNa) continue;  // Missing ground truth: dropped (§6.1.1).
      std::vector<TypeId> pred_set;
      if (type_sets != nullptr) {
        pred_set = (*type_sets)[c];
      } else if (predicted.TypeOf(c) != kNa) {
        pred_set.push_back(predicted.TypeOf(c));
      }
      int64_t tp = std::count(pred_set.begin(), pred_set.end(), g);
      types_.Add(tp, static_cast<int64_t>(pred_set.size()), 1);
    }

    // --- Relations over gold-labeled pairs. ---
    for (const auto& [pair, gold_rel] : gold.relations) {
      if (gold_rel.is_na()) continue;
      RelationCandidate pred_rel =
          predicted.RelationOf(pair.first, pair.second);
      relations_.Add(pred_rel == gold_rel ? 1 : 0,
                     pred_rel.is_na() ? 0 : 1, 1);
    }
  } else if (gold_table.relations_only) {
    for (const auto& [pair, gold_rel] : gold.relations) {
      if (gold_rel.is_na()) continue;
      RelationCandidate pred_rel =
          predicted.RelationOf(pair.first, pair.second);
      relations_.Add(pred_rel == gold_rel ? 1 : 0,
                     pred_rel.is_na() ? 0 : 1, 1);
    }
  }
}

}  // namespace webtab
