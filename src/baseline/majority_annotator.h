#ifndef WEBTAB_BASELINE_MAJORITY_ANNOTATOR_H_
#define WEBTAB_BASELINE_MAJORITY_ANNOTATOR_H_

#include "baseline/lca_annotator.h"

namespace webtab {

/// Majority baseline (§4.5.2): a type qualifies when more than F% of the
/// (candidate-bearing) cells can reach it; qualifying types are pruned to
/// the most specific ones. F=100 recovers LCA; the paper sweeps F between
/// 50 and 100 (best type accuracy at 60). Entities are assigned
/// independently per cell by φ1 alone; relations by per-row tuple voting
/// with the same threshold.
struct MajorityOptions {
  double threshold_percent = 50.0;
  /// When true, also emit relation predictions by tuple voting.
  bool predict_relations = true;
};

BaselineResult AnnotateMajority(const Table& table,
                                const TableCandidates& candidates,
                                ClosureCache* closure,
                                FeatureComputer* features,
                                const Weights& weights,
                                const MajorityOptions& options =
                                    MajorityOptions());

/// Exposed for reuse: local entity assignment under a fixed type
/// (Figure 2 inner loop). Defined in lca_annotator.cc.
EntityId AssignEntityGivenType(const Table& table, int r, int c,
                               const std::vector<LemmaHit>& hits, TypeId t,
                               FeatureComputer* features,
                               const Weights& weights);

}  // namespace webtab

#endif  // WEBTAB_BASELINE_MAJORITY_ANNOTATOR_H_
