#include "baseline/majority_annotator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace webtab {

namespace {

std::vector<TypeId> MostSpecific(const std::vector<TypeId>& types,
                                 ClosureCache* closure) {
  std::vector<TypeId> out;
  for (TypeId t : types) {
    bool has_descendant = false;
    for (TypeId other : types) {
      if (other != t && closure->IsSubtypeOf(other, t)) {
        has_descendant = true;
        break;
      }
    }
    if (!has_descendant) out.push_back(t);
  }
  return out;
}

TypeId PickRepresentative(const std::vector<TypeId>& types,
                          ClosureCache* closure) {
  TypeId best = kNa;
  double best_spec = -1.0;
  for (TypeId t : types) {
    double spec = closure->TypeSpecificity(t);
    if (spec > best_spec || (spec == best_spec && t < best)) {
      best_spec = spec;
      best = t;
    }
  }
  return best;
}

}  // namespace

BaselineResult AnnotateMajority(const Table& table,
                                const TableCandidates& candidates,
                                ClosureCache* closure,
                                FeatureComputer* features,
                                const Weights& weights,
                                const MajorityOptions& options) {
  BaselineResult result;
  result.column_type_sets.resize(table.cols());
  result.annotation = TableAnnotation::Empty(table.rows(), table.cols());

  // --- Column types by thresholded vote. ---
  for (int c = 0; c < table.cols(); ++c) {
    std::unordered_map<TypeId, int> votes;
    int non_empty = 0;
    for (int r = 0; r < table.rows(); ++r) {
      const auto& hits = candidates.cells[r][c];
      if (hits.empty()) continue;
      ++non_empty;
      std::unordered_set<TypeId> cell_union;
      for (const LemmaHit& hit : hits) {
        for (TypeId t : closure->TypeAncestors(hit.id)) {
          cell_union.insert(t);
        }
      }
      for (TypeId t : cell_union) ++votes[t];
    }
    std::vector<TypeId> qualified;
    double needed = options.threshold_percent / 100.0 *
                    static_cast<double>(non_empty);
    for (const auto& [t, v] : votes) {
      // "More than a threshold F% vote"; at F=100 require the full count
      // so the method degenerates to LCA as the paper states.
      bool passes = options.threshold_percent >= 100.0
                        ? v >= non_empty
                        : static_cast<double>(v) > needed;
      if (passes && non_empty > 0) qualified.push_back(t);
    }
    std::sort(qualified.begin(), qualified.end());
    result.column_type_sets[c] = MostSpecific(qualified, closure);
    result.annotation.column_types[c] =
        PickRepresentative(result.column_type_sets[c], closure);
  }

  // --- Entities: independent per cell (φ1 only). ---
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      result.annotation.cell_entities[r][c] = AssignEntityGivenType(
          table, r, c, candidates.cells[r][c], kNa, features, weights);
    }
  }

  // --- Relations: per-row tuple voting. ---
  if (options.predict_relations) {
    const CatalogView& catalog = closure->catalog();
    for (const auto& [pair, rels] : candidates.relations) {
      auto [c1, c2] = pair;
      std::map<RelationCandidate, int> votes;
      int support_rows = 0;
      for (int r = 0; r < table.rows(); ++r) {
        std::set<RelationCandidate> row_rels;
        for (const LemmaHit& h1 : candidates.cells[r][c1]) {
          for (const LemmaHit& h2 : candidates.cells[r][c2]) {
            for (const auto& [rel, swapped] :
                 catalog.RelationsBetween(h1.id, h2.id)) {
              row_rels.insert(RelationCandidate{rel, swapped});
            }
          }
        }
        if (!candidates.cells[r][c1].empty() &&
            !candidates.cells[r][c2].empty()) {
          ++support_rows;
        }
        for (const RelationCandidate& b : row_rels) ++votes[b];
      }
      RelationCandidate best;
      int best_votes = 0;
      for (const auto& [b, v] : votes) {
        if (v > best_votes || (v == best_votes && b < best)) {
          best = b;
          best_votes = v;
        }
      }
      double needed = options.threshold_percent / 100.0 *
                      static_cast<double>(support_rows);
      if (best_votes > 0 && static_cast<double>(best_votes) > needed) {
        result.annotation.relations[pair] = best;
      }
      (void)rels;
    }
  }
  return result;
}

}  // namespace webtab
