#ifndef WEBTAB_BASELINE_LCA_ANNOTATOR_H_
#define WEBTAB_BASELINE_LCA_ANNOTATOR_H_

#include <vector>

#include "catalog/closure.h"
#include "index/candidates.h"
#include "model/features.h"
#include "model/weights.h"
#include "table/annotation.h"
#include "table/table.h"

namespace webtab {

/// Output of a baseline column-typing method: the *set* of types reported
/// per column (baselines report every qualifying type and are scored with
/// F1, §4.5.1) plus a single-label annotation for the unified pipeline.
struct BaselineResult {
  std::vector<std::vector<TypeId>> column_type_sets;
  TableAnnotation annotation;
};

/// Least-common-ancestor baseline (§4.5.1): a column's types are those in
/// ∩_r ∪_{E ∈ Erc} T(E) with no descendant in the same set. Cells with no
/// candidates are skipped (else the intersection is always empty).
/// Entities are then assigned per Figure 2 given the chosen type. Known
/// failure mode: over-generalization under missing links (Appendix F).
BaselineResult AnnotateLca(const Table& table,
                           const TableCandidates& candidates,
                           ClosureCache* closure, FeatureComputer* features,
                           const Weights& weights);

}  // namespace webtab

#endif  // WEBTAB_BASELINE_LCA_ANNOTATOR_H_
