#include "baseline/lca_annotator.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace webtab {

namespace {

/// Keeps only the most specific types: drops any type with a strict
/// descendant in the set.
std::vector<TypeId> MostSpecific(const std::vector<TypeId>& types,
                                 ClosureCache* closure) {
  std::vector<TypeId> out;
  for (TypeId t : types) {
    bool has_descendant = false;
    for (TypeId other : types) {
      if (other != t && closure->IsSubtypeOf(other, t)) {
        has_descendant = true;
        break;
      }
    }
    if (!has_descendant) out.push_back(t);
  }
  return out;
}

/// Picks the column's single representative type: most specific first,
/// then lowest id for determinism.
TypeId PickRepresentative(const std::vector<TypeId>& types,
                          ClosureCache* closure) {
  TypeId best = kNa;
  double best_spec = -1.0;
  for (TypeId t : types) {
    double spec = closure->TypeSpecificity(t);
    if (spec > best_spec || (spec == best_spec && t < best)) {
      best_spec = spec;
      best = t;
    }
  }
  return best;
}

}  // namespace

/// Shared with the Majority baseline: per-cell local entity assignment
/// under a fixed column type (Figure 2, lines 5-7).
EntityId AssignEntityGivenType(const Table& table, int r, int c,
                               const std::vector<LemmaHit>& hits, TypeId t,
                               FeatureComputer* features,
                               const Weights& weights) {
  double best = 0.0;  // na score.
  EntityId best_e = kNa;
  for (const LemmaHit& hit : hits) {
    double s = features->Phi1Log(weights, table.cell(r, c), hit.id);
    if (t != kNa) s += features->Phi3Log(weights, t, hit.id);
    if (s > best) {
      best = s;
      best_e = hit.id;
    }
  }
  return best_e;
}

BaselineResult AnnotateLca(const Table& table,
                           const TableCandidates& candidates,
                           ClosureCache* closure, FeatureComputer* features,
                           const Weights& weights) {
  BaselineResult result;
  result.column_type_sets.resize(table.cols());
  result.annotation = TableAnnotation::Empty(table.rows(), table.cols());

  for (int c = 0; c < table.cols(); ++c) {
    // Intersect the per-cell ancestor unions over non-empty cells.
    std::unordered_map<TypeId, int> counts;
    int non_empty = 0;
    for (int r = 0; r < table.rows(); ++r) {
      const auto& hits = candidates.cells[r][c];
      if (hits.empty()) continue;
      ++non_empty;
      std::unordered_set<TypeId> cell_union;
      for (const LemmaHit& hit : hits) {
        for (TypeId t : closure->TypeAncestors(hit.id)) {
          cell_union.insert(t);
        }
      }
      for (TypeId t : cell_union) ++counts[t];
    }
    std::vector<TypeId> intersection;
    for (const auto& [t, n] : counts) {
      if (n == non_empty && non_empty > 0) intersection.push_back(t);
    }
    std::sort(intersection.begin(), intersection.end());
    result.column_type_sets[c] = MostSpecific(intersection, closure);
    TypeId chosen = PickRepresentative(result.column_type_sets[c], closure);
    result.annotation.column_types[c] = chosen;

    for (int r = 0; r < table.rows(); ++r) {
      result.annotation.cell_entities[r][c] = AssignEntityGivenType(
          table, r, c, candidates.cells[r][c], chosen, features, weights);
    }
  }
  return result;
}

}  // namespace webtab
