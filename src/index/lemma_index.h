#ifndef WEBTAB_INDEX_LEMMA_INDEX_H_
#define WEBTAB_INDEX_LEMMA_INDEX_H_

#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "text/vocabulary.h"

namespace webtab {

/// A scored hit from the lemma index.
struct LemmaHit {
  int32_t id = kNa;       // EntityId or TypeId depending on the probe.
  int32_t lemma_ord = 0;  // Which lemma of that object matched best.
  double score = 0.0;     // IDF-weighted token-overlap cosine, in [0,1].
};

/// Inverted index over catalog lemma tokens — the paper's Lucene stand-in
/// ("use a text index to collect candidate entities based on overlap
/// between cell and lemma tokens", §4.3/Fig 2). One index serves both
/// entity and type lemmas; the vocabulary accumulates document frequencies
/// over all lemmas, backing every TF-IDF computation downstream.
class LemmaIndex {
 public:
  /// Builds postings for `catalog` (which must outlive the index).
  explicit LemmaIndex(const Catalog* catalog);

  LemmaIndex(const LemmaIndex&) = delete;
  LemmaIndex& operator=(const LemmaIndex&) = delete;

  /// Top-k entities whose lemmas overlap `text`, best first.
  std::vector<LemmaHit> ProbeEntities(std::string_view text, int k) const;

  /// Top-k types whose lemmas overlap `text`, best first.
  std::vector<LemmaHit> ProbeTypes(std::string_view text, int k) const;

  /// Shared vocabulary (IDF source). Mutable because similarity probes
  /// intern query tokens; interning does not change existing statistics.
  Vocabulary* vocabulary() const { return &vocab_; }

  const Catalog& catalog() const { return *catalog_; }

  int64_t num_postings() const { return num_postings_; }

 private:
  struct Posting {
    int32_t id;         // Entity or type id.
    int32_t lemma_ord;  // Ordinal of the lemma within the object.
    int32_t lemma_len;  // Token count of that lemma.
  };

  // One postings table per object kind.
  struct PostingsTable {
    // Indexed by TokenId; parallel to vocab ids (grown on build only).
    std::vector<std::vector<Posting>> by_token;
  };

  void AddLemma(PostingsTable* table, int32_t id, int32_t lemma_ord,
                std::string_view lemma);
  std::vector<LemmaHit> Probe(const PostingsTable& table,
                              std::string_view text, int k) const;

  const Catalog* catalog_;
  mutable Vocabulary vocab_;
  PostingsTable entity_postings_;
  PostingsTable type_postings_;
  int64_t num_postings_ = 0;
};

}  // namespace webtab

#endif  // WEBTAB_INDEX_LEMMA_INDEX_H_
