#ifndef WEBTAB_INDEX_LEMMA_INDEX_H_
#define WEBTAB_INDEX_LEMMA_INDEX_H_

#include <span>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "text/vocabulary.h"

namespace webtab {

/// A scored hit from the lemma index. Hit lists are ordered by
/// (score desc, id asc); within one object the reported lemma is the
/// best-scoring one, ties broken toward the lowest lemma ordinal — the
/// documented tie-break that keeps per-cell probes, the batched column
/// prober, and reruns stably identical.
struct LemmaHit {
  int32_t id = kNa;       // EntityId or TypeId depending on the probe.
  int32_t lemma_ord = 0;  // Which lemma of that object matched best.
  double score = 0.0;     // IDF-weighted token-overlap cosine, in [0,1].

  friend bool operator==(const LemmaHit&, const LemmaHit&) = default;
};

/// One posting: a (object, lemma) pair carrying the lemma's token count.
/// Fixed 12-byte layout shared verbatim by the in-memory postings lists
/// and the snapshot file's CSR arrays.
struct LemmaPosting {
  int32_t id;         // Entity or type id.
  int32_t lemma_ord;  // Ordinal of the lemma within the object.
  int32_t lemma_len;  // Token count of that lemma.
};
static_assert(sizeof(LemmaPosting) == 12, "postings are mmap'd verbatim");

/// One query token resolved against a lemma-index backend: its IDF (the
/// maximum IDF when the token is unseen, matching Vocabulary::Idf on
/// df=0) and its entity postings. The span points into backend storage
/// (heap postings or the mmap'd CSR arrays) and stays valid for the
/// view's lifetime, so batched probes can hold resolved tokens across a
/// whole column without copying.
struct ResolvedToken {
  double idf = 0.0;
  std::span<const LemmaPosting> postings;
};

/// Read-only probe interface over catalog lemma postings — the paper's
/// Lucene stand-in ("use a text index to collect candidate entities based
/// on overlap between cell and lemma tokens", §4.3/Fig 2). Backed either
/// by an in-memory LemmaIndex build or by a zero-copy snapshot view;
/// probes produce bit-identical results on both.
class LemmaIndexView {
 public:
  virtual ~LemmaIndexView() = default;

  /// Top-k entities whose lemmas overlap `text`, best first.
  virtual std::vector<LemmaHit> ProbeEntities(std::string_view text,
                                              int k) const = 0;

  /// Top-k types whose lemmas overlap `text`, best first.
  virtual std::vector<LemmaHit> ProbeTypes(std::string_view text,
                                           int k) const = 0;

  /// Resolves one normalized token against the entity postings table —
  /// the batched building block behind ColumnProbeBatch, which fetches
  /// each distinct token of a column exactly once and reuses the span
  /// for every cell containing the token. Scoring from these postings
  /// is bit-identical to ProbeEntities on both backends.
  virtual ResolvedToken ResolveEntityToken(
      std::string_view token) const = 0;

  virtual const CatalogView& catalog() const = 0;

  virtual int64_t num_postings() const = 0;

  /// Shared mutable vocabulary when the backend owns one (in-memory
  /// build); nullptr for immutable snapshot views. Feature similarity
  /// interns query tokens, so consumers that need a mutable vocabulary
  /// against a snapshot must materialize a copy via CopyVocabulary().
  virtual Vocabulary* mutable_vocabulary() const = 0;

  /// Deep copy of the vocabulary statistics (token texts, document
  /// frequencies, document count) — identical IDF values to the backing
  /// store. Used for per-worker private vocabularies.
  virtual Vocabulary CopyVocabulary() const = 0;
};

/// Returns a usable mutable vocabulary for `index`: the backend's shared
/// instance when it has one (in-memory build), otherwise materializes a
/// private copy into `*storage` and returns that. Shared by the trainers
/// and any consumer that needs token interning against a snapshot.
inline Vocabulary* EnsureMutableVocabulary(const LemmaIndexView& index,
                                           Vocabulary* storage) {
  Vocabulary* vocab = index.mutable_vocabulary();
  if (vocab != nullptr) return vocab;
  *storage = index.CopyVocabulary();
  return storage;
}

/// Inverted index over catalog lemma tokens, built in memory from a
/// catalog. One index serves both entity and type lemmas; the vocabulary
/// accumulates document frequencies over all lemmas, backing every TF-IDF
/// computation downstream.
class LemmaIndex : public LemmaIndexView {
 public:
  /// Builds postings for `catalog` (which must outlive the index).
  explicit LemmaIndex(const CatalogView* catalog);

  LemmaIndex(const LemmaIndex&) = delete;
  LemmaIndex& operator=(const LemmaIndex&) = delete;

  std::vector<LemmaHit> ProbeEntities(std::string_view text,
                                      int k) const override;
  std::vector<LemmaHit> ProbeTypes(std::string_view text,
                                   int k) const override;
  ResolvedToken ResolveEntityToken(std::string_view token) const override;

  /// Shared vocabulary (IDF source). Mutable because similarity probes
  /// intern query tokens; interning does not change existing statistics.
  Vocabulary* vocabulary() const { return &vocab_; }
  Vocabulary* mutable_vocabulary() const override { return &vocab_; }
  Vocabulary CopyVocabulary() const override { return vocab_; }

  const CatalogView& catalog() const override { return *catalog_; }

  int64_t num_postings() const override { return num_postings_; }

  // --- Serialization access (snapshot writer). ---
  /// Token-id range covered by each postings table; tokens at or past the
  /// table's size have no postings.
  int64_t num_token_slots() const {
    return static_cast<int64_t>(vocab_.size());
  }
  std::span<const LemmaPosting> EntityPostingsForToken(TokenId t) const;
  std::span<const LemmaPosting> TypePostingsForToken(TokenId t) const;

 private:
  // One postings table per object kind.
  struct PostingsTable {
    // Indexed by TokenId; parallel to vocab ids (grown on build only).
    std::vector<std::vector<LemmaPosting>> by_token;
  };

  void AddLemma(PostingsTable* table, int32_t id, int32_t lemma_ord,
                std::string_view lemma);

  const CatalogView* catalog_;
  mutable Vocabulary vocab_;
  PostingsTable entity_postings_;
  PostingsTable type_postings_;
  int64_t num_postings_ = 0;
};

}  // namespace webtab

#endif  // WEBTAB_INDEX_LEMMA_INDEX_H_
