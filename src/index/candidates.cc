#include "index/candidates.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"

namespace webtab {

namespace {

/// The flag used to toggle per-cell probe memoization; the batch probe
/// dedupes structurally, so a caller turning it off gets the same
/// (deduped) results. Logged once per process so old configs keep
/// working without silent surprises.
void WarnMemoizeDeprecatedOnce() {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    WEBTAB_LOG(Warning)
        << "CandidateOptions::memoize_cell_probes is deprecated and "
           "ignored: the column-major batch probe dedupes repeated cell "
           "strings unconditionally";
  }
}

/// Dense distinct-pair multiplicity counting is quadratic in distinct
/// cells; past this bound fall back to a hash map (huge tables only).
constexpr int64_t kDensePairLimit = int64_t{1} << 20;

}  // namespace

TableCandidates GenerateCandidates(const Table& table,
                                   const LemmaIndexView& index,
                                   ClosureCache* closure,
                                   const CandidateOptions& options,
                                   CandidateWorkspace* workspace) {
  CandidateWorkspace transient;
  CandidateWorkspace* ws = workspace != nullptr ? workspace : &transient;
  if (!options.memoize_cell_probes) WarnMemoizeDeprecatedOnce();

  TableCandidates out;
  out.cells.assign(table.rows(),
                   std::vector<std::vector<LemmaHit>>(table.cols()));
  out.column_types.assign(table.cols(), {});

  // --- Entity candidates per cell: one batched probe per column (§4.3).
  // The batch dedupes repeated cell strings, fetches each distinct
  // token's postings once, and scores every distinct cell in one sweep;
  // the distinct structure is retained per column so the type and
  // relation phases below work over distinct cells instead of rows.
  ws->columns.resize(table.cols());
  const int64_t walked_before = ws->batch.postings_walked();
  const int64_t pruned_before = ws->batch.postings_pruned();
  for (int c = 0; c < table.cols(); ++c) {
    CandidateWorkspace::ColumnDistincts& col = ws->columns[c];
    col.num_distinct = 0;
    col.row_distinct.clear();
    col.row_count.clear();
    col.first_row.clear();
    bool numeric_column =
        table.NumericFraction(c) > options.numeric_column_threshold;
    if (numeric_column) {
      col.row_distinct.assign(table.rows(), -1);
      continue;
    }
    ws->batch.ProbeColumn(table, c, index, options.max_entities_per_cell,
                          options.min_entity_score,
                          options.idf_upper_bound_prune);
    col.num_distinct = ws->batch.num_distinct();
    col.row_count.assign(col.num_distinct, 0);
    col.first_row.assign(col.num_distinct, -1);
    col.row_distinct.resize(table.rows());
    for (int r = 0; r < table.rows(); ++r) {
      const int d = ws->batch.DistinctOfRow(r);
      col.row_distinct[r] = d;
      ++col.row_count[d];
      if (col.first_row[d] < 0) {
        col.first_row[d] = r;
        out.cells[r][c] = ws->batch.Hits(d);
      } else {
        out.cells[r][c] = out.cells[col.first_row[d]][c];
      }
    }
  }

  // --- Type candidates per column: ∪_{E ∈ Erc} T(E), scored. Support
  // counts rows, computed once per distinct cell and weighted by its
  // multiplicity — integer-identical to the per-row accumulation.
  // Accumulation is a dense per-TypeId array with two stamp lanes: the
  // column epoch validates support entries, the per-cell seq dedupes a
  // type within one distinct cell. Integer adds commute and the final
  // sort is a total order, so the output matches the old set+hash-map
  // path exactly.
  const CatalogView& catalog = closure->catalog();
  const int32_t num_types = catalog.num_types();
  if (static_cast<int32_t>(ws->type_support.size()) < num_types) {
    ws->type_support.resize(num_types, 0);
    ws->type_sup_stamp.resize(num_types, 0);
    ws->type_cell_stamp.resize(num_types, 0);
  }
  for (int c = 0; c < table.cols(); ++c) {
    const CandidateWorkspace::ColumnDistincts& col = ws->columns[c];
    if (++ws->type_epoch == 0) {
      std::fill(ws->type_sup_stamp.begin(), ws->type_sup_stamp.end(), 0u);
      ws->type_epoch = 1;
    }
    ws->type_touched.clear();
    for (int d = 0; d < col.num_distinct; ++d) {
      if (++ws->type_cell_seq == 0) {
        std::fill(ws->type_cell_stamp.begin(), ws->type_cell_stamp.end(),
                  0u);
        ws->type_cell_seq = 1;
      }
      for (const LemmaHit& hit : out.cells[col.first_row[d]][c]) {
        for (TypeId t : closure->TypeAncestors(hit.id)) {
          if (ws->type_cell_stamp[t] == ws->type_cell_seq) continue;
          ws->type_cell_stamp[t] = ws->type_cell_seq;
          if (ws->type_sup_stamp[t] != ws->type_epoch) {
            ws->type_sup_stamp[t] = ws->type_epoch;
            ws->type_support[t] = 0;
            ws->type_touched.push_back(t);
          }
          ws->type_support[t] += col.row_count[d];
        }
      }
    }
    ws->type_scored.clear();
    for (TypeId t : ws->type_touched) {
      ws->type_scored.push_back(CandidateWorkspace::ScoredType{
          t, ws->type_support[t], closure->TypeSpecificity(t)});
    }
    std::sort(ws->type_scored.begin(), ws->type_scored.end(),
              [](const CandidateWorkspace::ScoredType& a,
                 const CandidateWorkspace::ScoredType& b) {
                if (a.support != b.support) return a.support > b.support;
                if (a.specificity != b.specificity) {
                  return a.specificity > b.specificity;
                }
                return a.type < b.type;
              });
    int keep = std::min<int>(static_cast<int>(ws->type_scored.size()),
                             options.max_types_per_column);
    out.column_types[c].reserve(keep);
    for (int i = 0; i < keep; ++i) {
      out.column_types[c].push_back(ws->type_scored[i].type);
    }
  }

  // --- Relation candidates per column pair (catalog tuple probes).
  // Votes run over distinct row-pairs weighted by how many rows carry
  // the pair, so the tuple index is probed once per distinct entity
  // pairing instead of once per row. ForEachRelationBetween visits the
  // backend's index in place (no per-call vector), and votes accumulate
  // in a dense rel*2+swapped array under the stamp discipline; the
  // ranked sort is a total order, so output matches the std::map path.
  const int32_t num_rel_keys = catalog.num_relations() * 2;
  if (static_cast<int32_t>(ws->rel_votes.size()) < num_rel_keys) {
    ws->rel_votes.resize(num_rel_keys, 0);
    ws->rel_stamp.resize(num_rel_keys, 0);
  }
  for (int c1 = 0; c1 < table.cols(); ++c1) {
    const CandidateWorkspace::ColumnDistincts& col1 = ws->columns[c1];
    if (col1.num_distinct == 0) continue;
    for (int c2 = c1 + 1; c2 < table.cols(); ++c2) {
      const CandidateWorkspace::ColumnDistincts& col2 = ws->columns[c2];
      if (col2.num_distinct == 0) continue;
      const int nd2 = col2.num_distinct;
      const int64_t cells =
          static_cast<int64_t>(col1.num_distinct) * nd2;

      if (++ws->rel_epoch == 0) {
        std::fill(ws->rel_stamp.begin(), ws->rel_stamp.end(), 0u);
        ws->rel_epoch = 1;
      }
      ws->rel_touched.clear();
      int vote_multiplicity = 0;
      const std::function<void(RelationId, bool)> vote_fn =
          [&](RelationId rel, bool swapped) {
            const int32_t key =
                static_cast<int32_t>(rel) * 2 + (swapped ? 1 : 0);
            if (ws->rel_stamp[key] != ws->rel_epoch) {
              ws->rel_stamp[key] = ws->rel_epoch;
              ws->rel_votes[key] = 0;
              ws->rel_touched.push_back(key);
            }
            ws->rel_votes[key] += vote_multiplicity;
          };
      auto vote_pair = [&](int d1, int d2, int multiplicity) {
        vote_multiplicity = multiplicity;
        for (const LemmaHit& h1 : out.cells[col1.first_row[d1]][c1]) {
          for (const LemmaHit& h2 : out.cells[col2.first_row[d2]][c2]) {
            catalog.ForEachRelationBetween(h1.id, h2.id, vote_fn);
          }
        }
      };
      if (cells <= kDensePairLimit) {
        // The count matrix stays all-zero between pairs (entries are
        // reset as they are consumed below), so growing it is the only
        // initialization and each pair costs O(rows + distinct pairs).
        if (static_cast<int64_t>(ws->pair_count.size()) < cells) {
          ws->pair_count.resize(cells, 0);
        }
        ws->pair_touched.clear();
        for (int r = 0; r < table.rows(); ++r) {
          const int32_t key =
              col1.row_distinct[r] * nd2 + col2.row_distinct[r];
          if (ws->pair_count[key]++ == 0) ws->pair_touched.push_back(key);
        }
        for (const int32_t key : ws->pair_touched) {
          const int m = ws->pair_count[key];
          ws->pair_count[key] = 0;
          vote_pair(key / nd2, key % nd2, m);
        }
      } else {
        std::unordered_map<int64_t, int> sparse_pairs;
        for (int r = 0; r < table.rows(); ++r) {
          ++sparse_pairs[static_cast<int64_t>(col1.row_distinct[r]) * nd2 +
                         col2.row_distinct[r]];
        }
        for (const auto& [key, m] : sparse_pairs) {
          vote_pair(static_cast<int>(key / nd2),
                    static_cast<int>(key % nd2), m);
        }
      }

      if (ws->rel_touched.empty()) continue;
      ws->rel_ranked.clear();
      for (const int32_t key : ws->rel_touched) {
        ws->rel_ranked.emplace_back(
            RelationCandidate{key / 2, (key & 1) != 0}, ws->rel_votes[key]);
      }
      std::sort(ws->rel_ranked.begin(), ws->rel_ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      std::vector<RelationCandidate>& list = out.relations[{c1, c2}];
      int keep = std::min<int>(static_cast<int>(ws->rel_ranked.size()),
                               options.max_relations_per_pair);
      list.reserve(keep);
      for (int i = 0; i < keep; ++i) list.push_back(ws->rel_ranked[i].first);
    }
  }

  // Per-table accounting (the candidate stage dominates annotation cost
  // — the paper's Figure 7); shard-local adds, once per table, so the
  // batched probe loop itself stays untouched.
  static obs::Counter* tables =
      obs::MetricsRegistry::Get().GetCounter("candidates.tables");
  static obs::Counter* cells =
      obs::MetricsRegistry::Get().GetCounter("candidates.cells");
  static obs::Counter* postings_walked =
      obs::MetricsRegistry::Get().GetCounter("candidates.postings_walked");
  static obs::Counter* postings_pruned =
      obs::MetricsRegistry::Get().GetCounter("candidates.postings_pruned");
  tables->Add(1);
  cells->Add(static_cast<int64_t>(table.rows()) * table.cols());
  postings_walked->Add(ws->batch.postings_walked() - walked_before);
  postings_pruned->Add(ws->batch.postings_pruned() - pruned_before);
  return out;
}

}  // namespace webtab
