#include "index/column_probe.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "exec/tid_list.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {

/// Below this postings width a token can never be worth Low-classifying:
/// the bookkeeping would cost more than the walk it avoids.
constexpr size_t kLowMinPostings = 32;

/// Heterogeneous comparator for binary-searching a postings list (sorted
/// by (id, lemma_ord) by construction — verified before use) with an
/// (id, ord) key.
struct PostingKeyLess {
  bool operator()(const LemmaPosting& p,
                  std::pair<int32_t, int32_t> k) const {
    if (p.id != k.first) return p.id < k.first;
    return p.lemma_ord < k.second;
  }
  bool operator()(std::pair<int32_t, int32_t> k,
                  const LemmaPosting& p) const {
    if (p.id != k.first) return k.first < p.id;
    return k.second < p.lemma_ord;
  }
};

bool PostingsSortedByIdOrd(std::span<const LemmaPosting> ps) {
  for (size_t i = 1; i < ps.size(); ++i) {
    if (ps[i - 1].id > ps[i].id ||
        (ps[i - 1].id == ps[i].id &&
         ps[i - 1].lemma_ord > ps[i].lemma_ord)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ColumnProbeBatch::EnsureDenseAccumulator(const LemmaIndexView& index) {
  const CatalogView* cat = &index.catalog();
  if (cat == dense_catalog_) return;
  dense_catalog_ = cat;
  const int32_t n = cat->num_entities();
  entity_lemma_start_.assign(static_cast<size_t>(n) + 1, 0);
  low_lane_sound_ = true;
  for (int32_t e = 0; e < n; ++e) {
    const int32_t nl = cat->NumEntityLemmas(e);
    // Ordinals past 16 bits collide under the kernel's packed-key
    // truncation. The dense slot merges those aliases identically, but
    // the Low lane's (id, ord) binary search would miss them — disable
    // the Low lane (never the accumulator) in that regime.
    if (nl > (1 << 16)) low_lane_sound_ = false;
    entity_lemma_start_[e + 1] =
        entity_lemma_start_[e] + std::min(nl, 1 << 16);
  }
  const size_t total =
      static_cast<size_t>(entity_lemma_start_[static_cast<size_t>(n)]);
  acc_.assign(total, 0.0);
  stamp_.assign(total, 0);
  len_.assign(total, 0);
  epoch_ = 0;
  object_stamp_.assign(static_cast<size_t>(n), 0);
  object_best_.assign(static_cast<size_t>(n), 0);
  object_epoch_ = 0;
}

int ColumnProbeBatch::InternToken(const std::string& token,
                                  const LemmaIndexView& index) {
  auto [it, inserted] =
      token_local_.try_emplace(token, static_cast<int>(tokens_.size()));
  if (!inserted) return it->second;

  // First sighting in this column: one lookup + IDF + postings fetch.
  // No per-posting work happens here — postings map to dense slots by
  // arithmetic during scoring.
  ResolvedToken resolved = index.ResolveEntityToken(token);
  tokens_.push_back(LocalToken{resolved.idf, resolved.postings});
  return it->second;
}

void ColumnProbeBatch::ProbeColumn(const Table& table, int c,
                                   const LemmaIndexView& index, int max_hits,
                                   double min_score, bool idf_upper_bound) {
  EnsureDenseAccumulator(index);
  num_distinct_ = 0;
  row_distinct_.clear();
  distinct_of_text_.clear();
  cell_tokens_.clear();
  cell_token_begin_.assign(1, 0);
  token_local_.clear();
  tokens_.clear();

  // Pass 1: dedupe cells, tokenize each distinct string once, resolve
  // each distinct token once.
  const int rows = table.rows();
  row_distinct_.reserve(rows);
  for (int r = 0; r < rows; ++r) {
    const std::string& text = table.cell(r, c);
    auto [it, inserted] =
        distinct_of_text_.try_emplace(std::string_view(text), num_distinct_);
    if (inserted) {
      ++num_distinct_;
      const size_t ntok = TokenizeInto(text, &tokenize_scratch_);
      for (size_t i = 0; i < ntok; ++i) {
        cell_tokens_.push_back(InternToken(tokenize_scratch_[i], index));
      }
      cell_token_begin_.push_back(cell_tokens_.size());
    }
    row_distinct_.push_back(it->second);
  }

  // Per-column classification scratch over the column's local tokens.
  tok_seen_.assign(tokens_.size(), 0);
  tok_low_.assign(tokens_.size(), 0);
  tok_sorted_.assign(tokens_.size(), -1);
  cell_seq_ = 0;

  // Pass 2: score each distinct cell in one sweep.
  if (static_cast<int>(hits_.size()) < num_distinct_) {
    hits_.resize(num_distinct_);
  }
  for (int d = 0; d < num_distinct_; ++d) {
    ScoreDistinct(d, max_hits, min_score, idf_upper_bound);
  }
}

void ColumnProbeBatch::ScoreDistinct(int d, int max_hits, double min_score,
                                     bool idf_upper_bound) {
  std::vector<LemmaHit>& out = hits_[d];
  out.clear();
  const size_t begin = cell_token_begin_[d];
  const size_t end = cell_token_begin_[d + 1];
  const size_t ntokens = end - begin;
  if (ntokens == 0 || max_hits <= 0) return;

  // Query norm in token-occurrence order — the exact FP sum the
  // per-cell kernel accumulates interleaved with its postings walk.
  double query_norm_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double idf = tokens_[cell_tokens_[i]].idf;
    query_norm_sq += idf * idf;
  }
  const double query_norm = std::sqrt(query_norm_sq);

  // Distinct tokens of this cell (stamped, allocation-free).
  ++cell_seq_;
  cell_tok_.clear();
  for (size_t i = begin; i < end; ++i) {
    const int t = cell_tokens_[i];
    if (tok_seen_[t] != cell_seq_) {
      tok_seen_[t] = cell_seq_;
      tok_low_[t] = 0;
      cell_tok_.push_back(t);
    }
  }

  // --- IDF-upper-bound classification. A lemma touched only by tokens
  // of the Low set has, in the kernel's own expression tree,
  //   score = min(num / (qn * lemma_norm), 1.0),
  //   lemma_norm = sqrt(len) * qn / sqrt(ntokens),
  // with num a subsequence sum of the Low occurrences' idf^2 (so
  // num <= S_low under round-to-nearest — nonnegative terms, same
  // relative order) and len >= 1. Evaluating the bound with S_low and
  // len = 1 through the same tree therefore dominates the computed
  // double, and bound < min_score proves the hit would be erased by the
  // final min-score filter; sub-threshold hits sort after every
  // surviving hit, so truncate-then-erase equals filter-then-truncate
  // and skipping the lemma entirely is exact. Greedy: widest postings
  // first, keep a token Low only while the bound still clears.
  const bool try_low = idf_upper_bound && min_score > 0.0 &&
                       query_norm > 0.0 && cell_tok_.size() > 1;
  if (try_low) {
    std::sort(cell_tok_.begin(), cell_tok_.end(), [&](int a, int b) {
      const size_t na = tokens_[a].postings.size();
      const size_t nb = tokens_[b].postings.size();
      if (na != nb) return na > nb;
      return a < b;  // Deterministic order.
    });
    const double lemma_norm_lb = std::sqrt(1.0) * query_norm /
                                 std::sqrt(static_cast<double>(ntokens));
    for (int t : cell_tok_) {
      if (tokens_[t].postings.size() < kLowMinPostings) break;  // Sorted.
      tok_low_[t] = 1;
      double s_low = 0.0;
      for (size_t i = begin; i < end; ++i) {
        const int u = cell_tokens_[i];
        if (tok_low_[u] != 0) {
          const double idf = tokens_[u].idf;
          s_low += idf * idf;
        }
      }
      const double bound = s_low / (query_norm * lemma_norm_lb);
      if (!(bound < min_score)) tok_low_[t] = 0;  // Keep High.
    }
  }

  bool has_low = false;
  for (int t : cell_tok_) {
    if (tok_low_[t] != 0) {
      has_low = true;
      break;
    }
  }

  ++epoch_;
  touched_g_.clear();
  touched_id_.clear();
  touched_ord_.clear();

  if (!has_low) {
    // No Low tokens: a single occurrence-order walk stamps and
    // accumulates at once — the kernel's exact add order, at half the
    // posting traffic of the two-phase form below.
    for (size_t i = begin; i < end; ++i) {
      const LocalToken& tok = tokens_[cell_tokens_[i]];
      if (tok.postings.empty()) continue;
      const double idf2 = tok.idf * tok.idf;
      for (const LemmaPosting& p : tok.postings) {
        const int64_t g =
            entity_lemma_start_[p.id] + (p.lemma_ord & 0xFFFF);
        if (stamp_[g] != epoch_) {
          stamp_[g] = epoch_;
          acc_[g] = idf2;  // 0.0 + idf2 is exact.
          touched_g_.push_back(g);
          touched_id_.push_back(p.id);
          touched_ord_.push_back(p.lemma_ord & 0xFFFF);
        } else {
          acc_[g] += idf2;
        }
        len_[g] = p.lemma_len;  // Last-write-wins, as in the kernel.
      }
      postings_walked_ += static_cast<int64_t>(tok.postings.size());
    }
    if (touched_g_.empty()) return;
    ReduceTouched(d, max_hits, min_score, idf_upper_bound, query_norm,
                  ntokens);
    return;
  }

  // --- Phase A: stamp the candidate lemma batch from High tokens. No
  // accumulation here — adds must interleave with Low contributions in
  // occurrence order, which phase B replays.
  for (int t : cell_tok_) {
    if (tok_low_[t] != 0) continue;
    const LocalToken& tok = tokens_[t];
    for (const LemmaPosting& p : tok.postings) {
      const int64_t g =
          entity_lemma_start_[p.id] + (p.lemma_ord & 0xFFFF);
      if (stamp_[g] != epoch_) {
        stamp_[g] = epoch_;
        acc_[g] = 0.0;
        touched_g_.push_back(g);
        touched_id_.push_back(p.id);
        touched_ord_.push_back(p.lemma_ord & 0xFFFF);
      }
    }
  }
  if (touched_g_.empty()) {
    // Either no token has postings, or every posting-bearing token is
    // Low — in which case every reachable lemma is provably
    // sub-threshold and the kernel's output would be fully erased.
    for (size_t i = begin; i < end; ++i) {
      const int t = cell_tokens_[i];
      if (tok_low_[t] != 0) {
        postings_pruned_ +=
            static_cast<int64_t>(tokens_[t].postings.size());
      }
    }
    return;
  }

  // --- Phase B: accumulate in token-occurrence order — the kernel's
  // exact FP addition order per lemma. High tokens walk their postings;
  // Low tokens contribute only to the stamped batch, by (id, ord)
  // binary search when the batch is much narrower than the postings
  // (requires a verified-sorted list and no ordinal truncation),
  // otherwise by a stamp-filtered walk. Both replay the same adds.
  const size_t num_touched = touched_g_.size();
  for (size_t i = begin; i < end; ++i) {
    const int t = cell_tokens_[i];
    const LocalToken& tok = tokens_[t];
    if (tok.postings.empty()) continue;
    const double idf2 = tok.idf * tok.idf;
    if (tok_low_[t] == 0) {
      for (const LemmaPosting& p : tok.postings) {
        const int64_t g =
            entity_lemma_start_[p.id] + (p.lemma_ord & 0xFFFF);
        acc_[g] += idf2;
        len_[g] = p.lemma_len;  // Last-write-wins, as in the kernel.
      }
      postings_walked_ += static_cast<int64_t>(tok.postings.size());
      continue;
    }
    if (tok_sorted_[t] < 0) {
      tok_sorted_[t] = PostingsSortedByIdOrd(tok.postings) ? 1 : 0;
    }
    const bool use_binary = low_lane_sound_ && tok_sorted_[t] == 1 &&
                            num_touched * 8 < tok.postings.size();
    if (use_binary) {
      for (size_t j = 0; j < num_touched; ++j) {
        auto [lo, hi] = std::equal_range(
            tok.postings.begin(), tok.postings.end(),
            std::make_pair(touched_id_[j], touched_ord_[j]),
            PostingKeyLess{});
        const int64_t g = touched_g_[j];
        for (auto it = lo; it != hi; ++it) {
          acc_[g] += idf2;  // Duplicates add once each, kernel order.
          len_[g] = it->lemma_len;
        }
      }
      postings_pruned_ += static_cast<int64_t>(tok.postings.size());
    } else {
      for (const LemmaPosting& p : tok.postings) {
        const int64_t g =
            entity_lemma_start_[p.id] + (p.lemma_ord & 0xFFFF);
        if (stamp_[g] == epoch_) {
          acc_[g] += idf2;
          len_[g] = p.lemma_len;
        }
      }
      postings_walked_ += static_cast<int64_t>(tok.postings.size());
    }
  }

  ReduceTouched(d, max_hits, min_score, idf_upper_bound, query_norm,
                ntokens);
}

// Reduction over the touched batch, in selection-vector chunks: score
// lane, then a branch-free keep of hits that can survive the min-score
// filter (exact — sub-threshold hits sort last and are erased
// regardless, see the classification note), then the canonical
// per-object best fold (max score, ties toward the lowest lemma
// ordinal). The reference path keeps every hit so it exercises the
// original reduction.
void ColumnProbeBatch::ReduceTouched(int d, int max_hits, double min_score,
                                     bool idf_upper_bound,
                                     double query_norm, size_t ntokens) {
  std::vector<LemmaHit>& out = hits_[d];
  const size_t num_touched = touched_g_.size();
  ++object_epoch_;
  best_.clear();
  const double keep_threshold = idf_upper_bound ? min_score : -1.0;

  // The kernel's per-hit expression
  //   s = min(fl(num / fl(qn * ln)), 1),
  //   ln = fl(fl(sqrt(len) * qn) / sqrt(nt)),
  // depends on the lemma only through (num, len), and len takes few
  // distinct values per cell — so ln, the denominator fl(qn * ln), and
  // a prescreen threshold are cached per len under the cell's epoch
  // (pure reuse of identical subexpressions: every cached double is the
  // value the kernel would compute in place). The prescreen is a
  // conservative bound on the raw overlap sum: s >= num / (qn * ln) *
  // (1 - 2u)^2 under round-to-nearest (unit roundoff u), so
  //   T(len) = fl(fl(fl(min_score * qn) * ln) * (1 - 16u))
  //          <= min_score * qn * ln * (1 - 8u)
  // and num < T(len) proves s < min_score: the hit would be erased by
  // the final filter regardless (sub-threshold hits sort last), so the
  // element skips the divide and the fold without changing any output
  // bit. Screening is off on the reference path, which keeps every hit.
  const double sqrt_ntokens = std::sqrt(static_cast<double>(ntokens));
  const bool screen = keep_threshold > 0.0 && query_norm > 0.0;
  const double mq = min_score * query_norm;
  constexpr double kScreenSlack =
      1.0 - 16.0 * std::numeric_limits<double>::epsilon();
  if (len_cache_.empty()) {
    len_cache_.assign(kLenCacheSize, LenCache{});
  }

  exec::TidList sel;
  std::array<double, exec::kBatchSize> score_lane;
  for (size_t cb = 0; cb < num_touched; cb += exec::kBatchSize) {
    const uint32_t n = static_cast<uint32_t>(
        std::min<size_t>(exec::kBatchSize, num_touched - cb));
    for (uint32_t j = 0; j < n; ++j) {
      const int64_t g = touched_g_[cb + j];
      const double num = acc_[g];
      const int32_t len = len_[g];
      double score;
      if (len < kLenCacheSize) {
        LenCache& lc = len_cache_[len];
        if (lc.stamp != epoch_) {
          lc.stamp = epoch_;
          lc.ln = std::sqrt(static_cast<double>(len)) * query_norm /
                  sqrt_ntokens;
          lc.denom = query_norm * lc.ln;
          lc.screen = screen ? mq * lc.ln * kScreenSlack : -1.0;
        }
        if (num < lc.screen) {
          score_lane[j] = -1.0;  // Provably below keep_threshold.
          continue;
        }
        score = lc.ln > 0 ? num / lc.denom : 0.0;
      } else {
        const double lemma_norm = std::sqrt(static_cast<double>(len)) *
                                  query_norm / sqrt_ntokens;
        score = lemma_norm > 0 ? num / (query_norm * lemma_norm) : 0.0;
      }
      score_lane[j] = std::min(score, 1.0);
    }
    uint32_t* keep = sel.mutable_data();
    uint32_t m = 0;
    for (uint32_t j = 0; j < n; ++j) {
      keep[m] = j;
      m += static_cast<uint32_t>(score_lane[j] >= keep_threshold);
    }
    sel.SetSize(m);
    for (uint32_t jj = 0; jj < m; ++jj) {
      const uint32_t j = keep[jj];
      const double score = score_lane[j];
      const int32_t id = touched_id_[cb + j];
      const int32_t ord = touched_ord_[cb + j];
      if (object_stamp_[id] != object_epoch_) {
        object_stamp_[id] = object_epoch_;
        object_best_[id] = static_cast<int32_t>(best_.size());
        best_.push_back(LemmaHit{id, ord, score});
      } else {
        LemmaHit& cur = best_[object_best_[id]];
        if (cur.score < score ||
            (cur.score == score && ord < cur.lemma_ord)) {
          cur = LemmaHit{id, ord, score};
        }
      }
    }
  }

  // best_ holds one hit per object (unique ids), so (score desc, id asc)
  // is a total order and a partial top-max_hits copy is identical to the
  // kernel's full sort + truncate.
  out.resize(std::min<size_t>(best_.size(), static_cast<size_t>(max_hits)));
  std::partial_sort_copy(best_.begin(), best_.end(), out.begin(), out.end(),
                         [](const LemmaHit& a, const LemmaHit& b) {
                           if (a.score != b.score) return a.score > b.score;
                           return a.id < b.id;  // Deterministic tie-break.
                         });
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const LemmaHit& h) {
                             return h.score < min_score;
                           }),
            out.end());
}

}  // namespace webtab
