#include "index/column_probe.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace webtab {

int ColumnProbeBatch::InternToken(const std::string& token,
                                  const LemmaIndexView& index) {
  auto [it, inserted] =
      token_local_.try_emplace(token, static_cast<int>(tokens_.size()));
  if (!inserted) return it->second;

  // First sighting in this column: one lookup + IDF + postings fetch,
  // and one slot assignment per posting so scoring never hashes.
  LocalToken local;
  ResolvedToken resolved = index.ResolveEntityToken(token);
  local.idf = resolved.idf;
  local.postings = resolved.postings;
  local.slots_begin = slot_of_posting_.size();
  for (const LemmaPosting& p : resolved.postings) {
    // Same (id, ord) key layout as the per-cell probe kernel, so the
    // recovered id/ord (and any truncation of oversized ordinals) match
    // it exactly.
    int64_t key = (static_cast<int64_t>(p.id) << 16) |
                  static_cast<int64_t>(p.lemma_ord & 0xFFFF);
    auto [sit, fresh] =
        slot_of_key_.try_emplace(key, static_cast<int32_t>(slot_id_.size()));
    if (fresh) {
      slot_id_.push_back(static_cast<int32_t>(key >> 16));
      slot_ord_.push_back(static_cast<int32_t>(key & 0xFFFF));
      slot_len_.push_back(p.lemma_len);
    }
    slot_of_posting_.push_back(sit->second);
    posting_len_.push_back(p.lemma_len);
  }
  tokens_.push_back(local);
  return it->second;
}

void ColumnProbeBatch::ProbeColumn(const Table& table, int c,
                                   const LemmaIndexView& index, int max_hits,
                                   double min_score) {
  num_distinct_ = 0;
  row_distinct_.clear();
  distinct_of_text_.clear();
  cell_tokens_.clear();
  cell_token_begin_.assign(1, 0);
  token_local_.clear();
  tokens_.clear();
  slot_of_key_.clear();
  slot_of_posting_.clear();
  posting_len_.clear();
  slot_id_.clear();
  slot_ord_.clear();
  slot_len_.clear();

  // Pass 1: dedupe cells, tokenize each distinct string once, resolve
  // each distinct token once.
  const int rows = table.rows();
  row_distinct_.reserve(rows);
  for (int r = 0; r < rows; ++r) {
    const std::string& text = table.cell(r, c);
    auto [it, inserted] =
        distinct_of_text_.try_emplace(std::string_view(text), num_distinct_);
    if (inserted) {
      ++num_distinct_;
      for (const std::string& token : Tokenize(text)) {
        cell_tokens_.push_back(InternToken(token, index));
      }
      cell_token_begin_.push_back(cell_tokens_.size());
    }
    row_distinct_.push_back(it->second);
  }

  // Grow the stamped scratch to cover this column's slots and objects.
  // Epochs only increase, so stale stamps from earlier columns can never
  // collide with a fresh epoch.
  if (acc_.size() < slot_id_.size()) {
    acc_.resize(slot_id_.size(), 0.0);
    stamp_.resize(slot_id_.size(), 0);
  }
  int32_t max_object = -1;
  for (int32_t id : slot_id_) max_object = std::max(max_object, id);
  if (static_cast<int64_t>(object_stamp_.size()) <= max_object) {
    object_stamp_.resize(max_object + 1, 0);
    object_best_.resize(max_object + 1, 0);
  }

  // Pass 2: score each distinct cell in one sweep.
  if (static_cast<int>(hits_.size()) < num_distinct_) {
    hits_.resize(num_distinct_);
  }
  for (int d = 0; d < num_distinct_; ++d) {
    ScoreDistinct(d, max_hits, min_score);
  }
}

void ColumnProbeBatch::ScoreDistinct(int d, int max_hits, double min_score) {
  std::vector<LemmaHit>& out = hits_[d];
  out.clear();
  const size_t begin = cell_token_begin_[d];
  const size_t end = cell_token_begin_[d + 1];
  const size_t ntokens = end - begin;
  if (ntokens == 0 || max_hits <= 0) return;

  // Accumulate the IDF-weighted overlap per lemma slot, visiting token
  // occurrences and postings in exactly the order the per-cell kernel
  // does, so every floating-point sum is bit-identical. slot_len_ is
  // refreshed per visit to mirror the kernel's last-write-wins map.
  double query_norm_sq = 0.0;
  ++epoch_;
  touched_.clear();
  for (size_t i = begin; i < end; ++i) {
    const LocalToken& tok = tokens_[cell_tokens_[i]];
    const double idf = tok.idf;
    query_norm_sq += idf * idf;
    const size_t n = tok.postings.size();
    for (size_t j = 0; j < n; ++j) {
      const size_t p = tok.slots_begin + j;
      const int32_t slot = slot_of_posting_[p];
      if (stamp_[slot] != epoch_) {
        stamp_[slot] = epoch_;
        acc_[slot] = 0.0;
        touched_.push_back(slot);
      }
      acc_[slot] += idf * idf;
      slot_len_[slot] = posting_len_[p];
    }
  }
  if (touched_.empty()) return;

  // Reduce slots to the canonical best hit per object (max score, then
  // lowest lemma ordinal — the documented LemmaHit tie-break), then rank
  // by (score desc, id asc) and apply the top-k + min-score policy of
  // candidate generation. Formula identical to the per-cell kernel.
  ++object_epoch_;
  best_.clear();
  const double query_norm = std::sqrt(query_norm_sq);
  for (int32_t slot : touched_) {
    const double num = acc_[slot];
    const int32_t id = slot_id_[slot];
    const int32_t ord = slot_ord_[slot];
    double lemma_norm =
        std::sqrt(static_cast<double>(slot_len_[slot])) * query_norm /
        std::sqrt(static_cast<double>(ntokens));
    double score = lemma_norm > 0 ? num / (query_norm * lemma_norm) : 0.0;
    score = std::min(score, 1.0);
    if (object_stamp_[id] != object_epoch_) {
      object_stamp_[id] = object_epoch_;
      object_best_[id] = static_cast<int32_t>(best_.size());
      best_.push_back(LemmaHit{id, ord, score});
    } else {
      LemmaHit& cur = best_[object_best_[id]];
      if (cur.score < score ||
          (cur.score == score && ord < cur.lemma_ord)) {
        cur = LemmaHit{id, ord, score};
      }
    }
  }

  out.assign(best_.begin(), best_.end());
  std::sort(out.begin(), out.end(), [](const LemmaHit& a,
                                       const LemmaHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;  // Deterministic tie-break.
  });
  if (static_cast<int>(out.size()) > max_hits) out.resize(max_hits);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const LemmaHit& h) {
                             return h.score < min_score;
                           }),
            out.end());
}

}  // namespace webtab
