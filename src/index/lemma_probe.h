#ifndef WEBTAB_INDEX_LEMMA_PROBE_H_
#define WEBTAB_INDEX_LEMMA_PROBE_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/lemma_index.h"
#include "text/tokenizer.h"

namespace webtab {
namespace lemma_probe_internal {

/// The shared probe kernel: IDF-weighted token-overlap cosine over a
/// postings table, identical for the in-memory index and the snapshot
/// view so both backends rank bit-identically. The backend supplies two
/// callables:
///   lookup(token) -> TokenId (kInvalidToken when unseen),
///   idf(TokenId)  -> double (must handle kInvalidToken as df=0),
///   postings(TokenId) -> std::span<const LemmaPosting> (empty when the
///                        token has none).
template <typename LookupFn, typename IdfFn, typename PostingsFn>
std::vector<LemmaHit> ProbePostings(std::string_view text, int k,
                                    LookupFn&& lookup, IdfFn&& idf_of,
                                    PostingsFn&& postings_of) {
  std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty() || k <= 0) return {};

  // Accumulate IDF-weighted overlap per (object, lemma). The score is a
  // binary-TF cosine: sum of idf^2 over common tokens, normalized by the
  // two vectors' norms.
  double query_norm_sq = 0.0;
  std::unordered_map<int64_t, double> overlap;  // (id<<16|ord) -> idf^2 sum
  std::unordered_map<int64_t, int32_t> lemma_len;
  for (const std::string& token : tokens) {
    TokenId tid = lookup(token);
    double idf = idf_of(tid);
    query_norm_sq += idf * idf;
    if (tid < 0) continue;
    for (const LemmaPosting& p : postings_of(tid)) {
      int64_t key = (static_cast<int64_t>(p.id) << 16) |
                    static_cast<int64_t>(p.lemma_ord & 0xFFFF);
      overlap[key] += idf * idf;
      lemma_len[key] = p.lemma_len;
    }
  }
  if (overlap.empty()) return {};

  // Approximate the lemma norm by len * avg-idf^2 of the overlap; exact
  // norms would need per-lemma storage. Using sqrt(len) keeps ranking
  // faithful for short lemmas.
  //
  // Per object, the reported lemma is the canonical argmax: highest
  // score, ties broken toward the lowest lemma ordinal. The tie-break
  // makes the result independent of the hash-map iteration order here,
  // so reruns, backends, and the batched column prober all agree.
  std::unordered_map<int32_t, LemmaHit> best_per_object;
  double query_norm = std::sqrt(query_norm_sq);
  for (const auto& [key, num] : overlap) {
    int32_t id = static_cast<int32_t>(key >> 16);
    int32_t ord = static_cast<int32_t>(key & 0xFFFF);
    double lemma_norm =
        std::sqrt(static_cast<double>(lemma_len[key])) * query_norm /
        std::sqrt(static_cast<double>(tokens.size()));
    double score = lemma_norm > 0 ? num / (query_norm * lemma_norm) : 0.0;
    score = std::min(score, 1.0);
    auto it = best_per_object.find(id);
    if (it == best_per_object.end() || it->second.score < score ||
        (it->second.score == score && ord < it->second.lemma_ord)) {
      best_per_object[id] = LemmaHit{id, ord, score};
    }
  }

  std::vector<LemmaHit> hits;
  hits.reserve(best_per_object.size());
  for (const auto& [id, hit] : best_per_object) hits.push_back(hit);
  std::sort(hits.begin(), hits.end(), [](const LemmaHit& a,
                                         const LemmaHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;  // Deterministic tie-break.
  });
  if (static_cast<int>(hits.size()) > k) hits.resize(k);
  return hits;
}

}  // namespace lemma_probe_internal
}  // namespace webtab

#endif  // WEBTAB_INDEX_LEMMA_PROBE_H_
