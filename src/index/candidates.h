#ifndef WEBTAB_INDEX_CANDIDATES_H_
#define WEBTAB_INDEX_CANDIDATES_H_

#include <map>
#include <utility>
#include <vector>

#include "catalog/closure.h"
#include "index/column_probe.h"
#include "index/lemma_index.h"
#include "table/table.h"

namespace webtab {

/// Knobs for the candidate generation of §4.3. The paper reports typical
/// ambiguity of 7-8 entities per cell and hundreds of types per column;
/// the caps keep factor tables bounded while preserving that regime.
struct CandidateOptions {
  int max_entities_per_cell = 8;  // Paper §6.1.1: typically 7-8 per cell.
  int max_types_per_column = 48;
  int max_relations_per_pair = 16;
  double min_entity_score = 0.15;
  /// Columns whose numeric fraction exceeds this get no entity candidates
  /// (the paper annotates non-numeric columns; §6.1.2).
  double numeric_column_threshold = 0.7;
  /// Deprecated: the column-major batch probe dedupes repeated cell
  /// strings unconditionally (the memoization this flag toggled is now
  /// structural). The value is ignored; setting it to false logs once.
  bool memoize_cell_probes = true;
  /// Enables the probe's IDF-upper-bound elimination lane: (cell, lemma)
  /// pairs whose best-possible score provably cannot reach
  /// min_entity_score are skipped before any scoring work runs. Exact —
  /// candidates are bit-identical with the lane on or off (the off
  /// setting is the retained equivalence reference; asserted by
  /// tests/candidate_equivalence_test.cc).
  bool idf_upper_bound_prune = true;
};

/// Candidate label sets for one table (before adding the `na` option).
/// RelationCandidate lives in catalog/ids.h.
struct TableCandidates {
  /// cells[r][c]: scored entity candidates for cell (r,c), best first.
  std::vector<std::vector<std::vector<LemmaHit>>> cells;
  /// column_types[c]: candidate types, from ∪_{E ∈ Erc} T(E) (§4.3),
  /// scored by support and specificity, best first.
  std::vector<std::vector<TypeId>> column_types;
  /// Candidate relations per column pair (c < c'); pairs with no
  /// candidates are absent.
  std::map<std::pair<int, int>, std::vector<RelationCandidate>> relations;
};

/// Reusable scratch for GenerateCandidates: the column probe batch plus
/// the per-column distinct structure that the type-space and relation
/// phases consume, and flat vote/support scratch. One per worker
/// (annotators, trainers and serving workers each own one); reuse across
/// tables keeps steady-state candidate generation free of per-cell
/// allocations. A default-constructed instance is ready to use.
struct CandidateWorkspace {
  ColumnProbeBatch batch;

  /// Distinct-cell structure of each probed column, retained for the
  /// type and relation phases. Columns without entity candidates
  /// (numeric) have num_distinct == 0.
  struct ColumnDistincts {
    int num_distinct = 0;
    std::vector<int> row_distinct;   // Row -> distinct index, or -1.
    std::vector<int> row_count;      // Distinct -> multiplicity.
    std::vector<int> first_row;      // Distinct -> first row carrying it.
  };
  std::vector<ColumnDistincts> columns;

  /// Relation phase: pair-multiplicity matrix over distinct indices of
  /// the two columns plus the touched keys, reused across pairs. The
  /// matrix is kept all-zero between uses so only touched entries are
  /// ever written or read.
  std::vector<int> pair_count;
  std::vector<int32_t> pair_touched;

  /// Type phase: dense per-TypeId support with epoch stamps instead of a
  /// per-cell std::set + per-column hash map. `type_sup_stamp` validates
  /// `type_support` entries for the current column epoch; `type_cell_stamp`
  /// dedupes a type within one distinct cell (the set's old job). Stamps
  /// never equal 0, so freshly grown entries read as untouched.
  std::vector<int> type_support;
  std::vector<uint32_t> type_sup_stamp;
  std::vector<uint32_t> type_cell_stamp;
  uint32_t type_epoch = 0;
  uint32_t type_cell_seq = 0;
  std::vector<TypeId> type_touched;
  struct ScoredType {
    TypeId type;
    int support;
    double specificity;
  };
  std::vector<ScoredType> type_scored;

  /// Relation-vote phase: dense votes indexed rel*2+swapped with the same
  /// stamping discipline, replacing the std::map accumulator.
  std::vector<int> rel_votes;
  std::vector<uint32_t> rel_stamp;
  uint32_t rel_epoch = 0;
  std::vector<int32_t> rel_touched;
  std::vector<std::pair<RelationCandidate, int>> rel_ranked;
};

/// Runs the §4.3 candidate generation as a column-major batched
/// pipeline: each column's cells are deduped and probed in one
/// ColumnProbeBatch sweep (each distinct token's postings fetched once),
/// the type space is scored over distinct cells weighted by multiplicity,
/// and relation discovery votes over distinct row-pairs. Results are
/// identical to probing every cell independently (asserted against a
/// reference per-cell prober in tests/candidate_equivalence_test.cc).
/// Works against any LemmaIndexView backend (in-memory or snapshot).
/// `workspace` may be null (a transient one is used); passing a
/// persistent workspace avoids rebuilding scratch per table.
TableCandidates GenerateCandidates(const Table& table,
                                   const LemmaIndexView& index,
                                   ClosureCache* closure,
                                   const CandidateOptions& options,
                                   CandidateWorkspace* workspace = nullptr);

}  // namespace webtab

#endif  // WEBTAB_INDEX_CANDIDATES_H_
