#ifndef WEBTAB_INDEX_CANDIDATES_H_
#define WEBTAB_INDEX_CANDIDATES_H_

#include <map>
#include <utility>
#include <vector>

#include "catalog/closure.h"
#include "index/lemma_index.h"
#include "table/table.h"

namespace webtab {

/// Knobs for the candidate generation of §4.3. The paper reports typical
/// ambiguity of 7-8 entities per cell and hundreds of types per column;
/// the caps keep factor tables bounded while preserving that regime.
struct CandidateOptions {
  int max_entities_per_cell = 8;  // Paper §6.1.1: typically 7-8 per cell.
  int max_types_per_column = 48;
  int max_relations_per_pair = 16;
  double min_entity_score = 0.15;
  /// Columns whose numeric fraction exceeds this get no entity candidates
  /// (the paper annotates non-numeric columns; §6.1.2).
  double numeric_column_threshold = 0.7;
  /// Reuse probe results for repeated cell strings within a table (web
  /// tables repeat values heavily: countries, clubs, languages). Probes
  /// are pure functions of the cell text, so memoization is exact.
  bool memoize_cell_probes = true;
};

/// Candidate label sets for one table (before adding the `na` option).
/// RelationCandidate lives in catalog/ids.h.
struct TableCandidates {
  /// cells[r][c]: scored entity candidates for cell (r,c), best first.
  std::vector<std::vector<std::vector<LemmaHit>>> cells;
  /// column_types[c]: candidate types, from ∪_{E ∈ Erc} T(E) (§4.3),
  /// scored by support and specificity, best first.
  std::vector<std::vector<TypeId>> column_types;
  /// Candidate relations per column pair (c < c'); pairs with no
  /// candidates are absent.
  std::map<std::pair<int, int>, std::vector<RelationCandidate>> relations;
};

/// Runs the §4.3 candidate generation: index probes per cell, type-space
/// construction from entity ancestors plus header probes, and relation
/// discovery from catalog tuples over candidate entity pairs. Works
/// against any LemmaIndexView backend (in-memory or snapshot).
TableCandidates GenerateCandidates(const Table& table,
                                   const LemmaIndexView& index,
                                   ClosureCache* closure,
                                   const CandidateOptions& options);

}  // namespace webtab

#endif  // WEBTAB_INDEX_CANDIDATES_H_
