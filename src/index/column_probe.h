#ifndef WEBTAB_INDEX_COLUMN_PROBE_H_
#define WEBTAB_INDEX_COLUMN_PROBE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/lemma_index.h"
#include "table/table.h"

namespace webtab {

/// Column-major batched lemma probe — the §4.3 entity probe restructured
/// around the redundancy real web tables exhibit (cells in a column
/// repeat values heavily, and distinct cells of one column share tokens):
///
///   1. every cell of the column is deduped to a distinct string,
///   2. every distinct string is tokenized exactly once,
///   3. every distinct token is resolved against the LemmaIndexView
///      exactly once (one lookup + IDF + postings fetch per token,
///      shared by all cells containing it),
///   4. every distinct cell is scored in one sweep over its token
///      occurrences into a dense global-lemma accumulator: each posting
///      maps to g = entity_lemma_start[id] + lemma_ord by arithmetic
///      alone, so the hot loop never hashes.
///
/// The sweep carries an IDF-upper-bound elimination lane (enabled by
/// the `idf_upper_bound` argument): per cell, the widest-posting tokens
/// are classified Low while the provable best score of a lemma touched
/// *only* by Low tokens stays under `min_score`. High tokens stamp the
/// candidate lemma set; Low tokens then contribute to stamped lemmas by
/// binary search instead of walking their (large) postings lists, and
/// Low-only lemmas — which cannot reach the candidate threshold — are
/// never materialized. The bound is evaluated with the same expression
/// tree as the real score with conservative operands, so it dominates
/// the computed double under round-to-nearest and elimination is exact,
/// not approximate.
///
/// Scores, ranking and tie-breaks are bit-identical to per-cell
/// LemmaIndexView::ProbeEntities on both backends and with the
/// elimination lane on or off (asserted by
/// tests/candidate_equivalence_test.cc). All storage lives in the batch
/// and is reused across columns and tables; the dense accumulator is
/// sized once per catalog. Not thread-safe; use one per worker.
class ColumnProbeBatch {
 public:
  ColumnProbeBatch() = default;
  ColumnProbeBatch(const ColumnProbeBatch&) = delete;
  ColumnProbeBatch& operator=(const ColumnProbeBatch&) = delete;

  /// Probes column `c` of `table`: top-`max_hits` entity hits per
  /// distinct cell string, then drops hits scoring below `min_score`
  /// (the ProbeEntities-then-filter order of candidate generation).
  /// `idf_upper_bound` toggles the elimination lane; both settings
  /// produce identical results (the exact path is the equivalence
  /// reference). Results stay valid until the next ProbeColumn call.
  void ProbeColumn(const Table& table, int c, const LemmaIndexView& index,
                   int max_hits, double min_score,
                   bool idf_upper_bound = true);

  /// Distinct cell strings seen in the probed column.
  int num_distinct() const { return num_distinct_; }

  /// Distinct index of row `r`'s cell.
  int DistinctOfRow(int r) const { return row_distinct_[r]; }

  /// Scored hits for distinct cell `d`, best first.
  const std::vector<LemmaHit>& Hits(int d) const { return hits_[d]; }

  /// Lifetime postings-walk accounting: postings actually visited vs
  /// postings the Low lane proved irrelevant and skipped. The ratio is
  /// the elimination lane's measured win (reported by candidate_bench).
  int64_t postings_walked() const { return postings_walked_; }
  int64_t postings_pruned() const { return postings_pruned_; }

 private:
  /// One distinct token of the column, resolved once against the index.
  struct LocalToken {
    double idf = 0.0;
    std::span<const LemmaPosting> postings;
  };

  /// Sizes the dense accumulator for `index`'s catalog (no-op when the
  /// catalog is unchanged since the last call).
  void EnsureDenseAccumulator(const LemmaIndexView& index);

  /// Interns `token`, resolving it against `index` when first seen.
  int InternToken(const std::string& token, const LemmaIndexView& index);

  /// Scores distinct cell `d` into hits_[d].
  void ScoreDistinct(int d, int max_hits, double min_score,
                     bool idf_upper_bound);

  /// Folds the touched-lemma batch into hits_[d]: chunked score lane,
  /// branch-free min-score keep, per-object best, final ranking.
  void ReduceTouched(int d, int max_hits, double min_score,
                     bool idf_upper_bound, double query_norm,
                     size_t ntokens);

  // --- Per-column state (cleared by ProbeColumn). ---
  int num_distinct_ = 0;
  std::vector<int> row_distinct_;
  /// Keys view the table's cell storage, which outlives the probe.
  std::unordered_map<std::string_view, int> distinct_of_text_;

  /// Token occurrences per distinct cell, flattened: distinct `d` owns
  /// cell_tokens_[cell_token_begin_[d] .. cell_token_begin_[d+1]).
  std::vector<int> cell_tokens_;
  std::vector<size_t> cell_token_begin_;

  /// Column-local token table. Map keys own their text (tokens are
  /// transient Tokenize output).
  std::unordered_map<std::string, int> token_local_;
  std::vector<LocalToken> tokens_;
  /// TokenizeInto buffer; element capacities persist across cells.
  std::vector<std::string> tokenize_scratch_;

  // --- Dense global-lemma accumulator (sized per catalog). ---
  /// CSR base: lemma (id, ord) lives at entity_lemma_start_[id] + ord.
  /// Ordinals use the same 16-bit truncation as the per-cell kernel's
  /// packed key, so any collision merges exactly the same pairs; the
  /// Low lane's binary search is disabled when truncation could fire.
  const CatalogView* dense_catalog_ = nullptr;
  std::vector<int64_t> entity_lemma_start_;
  bool low_lane_sound_ = true;
  int64_t epoch_ = 0;
  std::vector<double> acc_;       // Per global lemma: idf^2 overlap sum.
  std::vector<int64_t> stamp_;    // Per global lemma: epoch of last touch.
  std::vector<int32_t> len_;      // Per global lemma: last-seen token count.
  /// Lemmas stamped by the current cell's High tokens, as parallel
  /// (global, id, ord) lanes — the batch the scoring sweep runs over.
  std::vector<int64_t> touched_g_;
  std::vector<int32_t> touched_id_;
  std::vector<int32_t> touched_ord_;

  // --- Per-cell High/Low classification scratch. ---
  int32_t cell_seq_ = 0;
  std::vector<int32_t> tok_seen_;  // Per local token: cell_seq_ stamp.
  std::vector<uint8_t> tok_low_;   // Valid only when tok_seen_ is current.
  std::vector<int8_t> tok_sorted_;  // Lazy (id, ord)-sortedness verdicts.
  std::vector<int32_t> cell_tok_;  // Distinct local tokens of the cell.

  /// Per-len scoring cache (see ReduceTouched): lemma norm, the exact
  /// kernel denominator fl(qn * ln), and a conservative prescreen
  /// threshold, stamped by the scoring epoch so entries lazily refresh
  /// per cell. Lens past the cache take the uncached exact path.
  struct LenCache {
    int64_t stamp = 0;
    double ln = 0.0;
    double denom = 0.0;
    double screen = -1.0;
  };
  static constexpr int32_t kLenCacheSize = 160;
  std::vector<LenCache> len_cache_;

  // --- Per-object reduction scratch (sized per catalog). ---
  int64_t object_epoch_ = 0;
  std::vector<int64_t> object_stamp_;  // Per object id.
  std::vector<int32_t> object_best_;   // Per object id: index into best_.
  std::vector<LemmaHit> best_;         // Per-cell best hit per object.

  std::vector<std::vector<LemmaHit>> hits_;

  int64_t postings_walked_ = 0;
  int64_t postings_pruned_ = 0;
};

}  // namespace webtab

#endif  // WEBTAB_INDEX_COLUMN_PROBE_H_
