#ifndef WEBTAB_INDEX_COLUMN_PROBE_H_
#define WEBTAB_INDEX_COLUMN_PROBE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/lemma_index.h"
#include "table/table.h"

namespace webtab {

/// Column-major batched lemma probe — the §4.3 entity probe restructured
/// around the redundancy real web tables exhibit (cells in a column
/// repeat values heavily, and distinct cells of one column share tokens):
///
///   1. every cell of the column is deduped to a distinct string,
///   2. every distinct string is tokenized exactly once,
///   3. every distinct token is resolved against the LemmaIndexView
///      exactly once (one lookup + IDF + postings fetch per token,
///      shared by all cells containing it), with each posting mapped to
///      a column-local lemma slot up front,
///   4. every distinct cell is scored in one sweep over its token
///      occurrences using epoch-stamped flat accumulators.
///
/// Scores, ranking and tie-breaks are bit-identical to per-cell
/// LemmaIndexView::ProbeEntities on both backends (asserted by
/// tests/candidate_equivalence_test.cc). All storage lives in the batch
/// and is reused across columns and tables, so steady-state probing
/// performs no per-cell allocations — the flat-workspace style of the
/// BP kernel applied to candidate generation. Not thread-safe; use one
/// per worker.
class ColumnProbeBatch {
 public:
  ColumnProbeBatch() = default;
  ColumnProbeBatch(const ColumnProbeBatch&) = delete;
  ColumnProbeBatch& operator=(const ColumnProbeBatch&) = delete;

  /// Probes column `c` of `table`: top-`max_hits` entity hits per
  /// distinct cell string, then drops hits scoring below `min_score`
  /// (the ProbeEntities-then-filter order of candidate generation).
  /// Results stay valid until the next ProbeColumn call.
  void ProbeColumn(const Table& table, int c, const LemmaIndexView& index,
                   int max_hits, double min_score);

  /// Distinct cell strings seen in the probed column.
  int num_distinct() const { return num_distinct_; }

  /// Distinct index of row `r`'s cell.
  int DistinctOfRow(int r) const { return row_distinct_[r]; }

  /// Scored hits for distinct cell `d`, best first.
  const std::vector<LemmaHit>& Hits(int d) const { return hits_[d]; }

 private:
  /// One distinct token of the column, resolved once against the index.
  struct LocalToken {
    double idf = 0.0;
    std::span<const LemmaPosting> postings;
    size_t slots_begin = 0;  // Into slot_of_posting_, |postings| entries.
  };

  /// Interns `token`, resolving it against `index` when first seen.
  int InternToken(const std::string& token, const LemmaIndexView& index);

  /// Scores distinct cell `d` into hits_[d].
  void ScoreDistinct(int d, int max_hits, double min_score);

  // --- Per-column state (cleared by ProbeColumn). ---
  int num_distinct_ = 0;
  std::vector<int> row_distinct_;
  /// Keys view the table's cell storage, which outlives the probe.
  std::unordered_map<std::string_view, int> distinct_of_text_;

  /// Token occurrences per distinct cell, flattened: distinct `d` owns
  /// cell_tokens_[cell_token_begin_[d] .. cell_token_begin_[d+1]).
  std::vector<int> cell_tokens_;
  std::vector<size_t> cell_token_begin_;

  /// Column-local token table. Map keys own their text (tokens are
  /// transient Tokenize output).
  std::unordered_map<std::string, int> token_local_;
  std::vector<LocalToken> tokens_;

  /// Column-local lemma slots: one per distinct (object, lemma) pair
  /// reachable from the column's tokens. slot_of_posting_ and
  /// posting_len_ parallel the concatenated postings of tokens_, so the
  /// scoring inner loop is a flat gather with no hashing.
  std::unordered_map<int64_t, int32_t> slot_of_key_;
  std::vector<int32_t> slot_of_posting_;
  std::vector<int32_t> posting_len_;
  std::vector<int32_t> slot_id_;
  std::vector<int32_t> slot_ord_;
  std::vector<int32_t> slot_len_;

  // --- Scoring scratch (epoch-stamped; grows monotonically). ---
  int64_t epoch_ = 0;
  std::vector<double> acc_;        // Per slot: idf^2 overlap sum.
  std::vector<int64_t> stamp_;     // Per slot: epoch of last touch.
  std::vector<int32_t> touched_;   // Slots touched by the current cell.
  int64_t object_epoch_ = 0;
  std::vector<int64_t> object_stamp_;  // Per object id.
  std::vector<int32_t> object_best_;   // Per object id: index into best_.
  std::vector<LemmaHit> best_;         // Per-cell best hit per object.

  std::vector<std::vector<LemmaHit>> hits_;
};

}  // namespace webtab

#endif  // WEBTAB_INDEX_COLUMN_PROBE_H_
