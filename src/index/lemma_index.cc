#include "index/lemma_index.h"

#include <string>

#include "index/lemma_probe.h"
#include "text/tokenizer.h"

namespace webtab {

LemmaIndex::LemmaIndex(const CatalogView* catalog) : catalog_(catalog) {
  // Register every lemma as a "document" first so IDF values are stable,
  // then build postings.
  for (EntityId e = 0; e < catalog_->num_entities(); ++e) {
    for (int32_t i = 0; i < catalog_->NumEntityLemmas(e); ++i) {
      vocab_.AddDocument(Tokenize(catalog_->EntityLemma(e, i)));
    }
  }
  for (TypeId t = 0; t < catalog_->num_types(); ++t) {
    for (int32_t i = 0; i < catalog_->NumTypeLemmas(t); ++i) {
      vocab_.AddDocument(Tokenize(catalog_->TypeLemma(t, i)));
    }
  }
  for (EntityId e = 0; e < catalog_->num_entities(); ++e) {
    const int32_t n = catalog_->NumEntityLemmas(e);
    for (int32_t i = 0; i < n; ++i) {
      AddLemma(&entity_postings_, e, i, catalog_->EntityLemma(e, i));
    }
  }
  for (TypeId t = 0; t < catalog_->num_types(); ++t) {
    const int32_t n = catalog_->NumTypeLemmas(t);
    for (int32_t i = 0; i < n; ++i) {
      AddLemma(&type_postings_, t, i, catalog_->TypeLemma(t, i));
    }
  }
}

void LemmaIndex::AddLemma(PostingsTable* table, int32_t id,
                          int32_t lemma_ord, std::string_view lemma) {
  std::vector<std::string> tokens = Tokenize(lemma);
  if (tokens.empty()) return;
  for (const std::string& token : tokens) {
    TokenId tid = vocab_.Intern(token);
    if (static_cast<size_t>(tid) >= table->by_token.size()) {
      table->by_token.resize(tid + 1);
    }
    table->by_token[tid].push_back(
        LemmaPosting{id, lemma_ord, static_cast<int32_t>(tokens.size())});
  }
  ++num_postings_;
}

namespace {

std::vector<LemmaHit> ProbeTable(
    const std::vector<std::vector<LemmaPosting>>& by_token,
    const Vocabulary& vocab, std::string_view text, int k) {
  return lemma_probe_internal::ProbePostings(
      text, k, [&](const std::string& token) { return vocab.Lookup(token); },
      [&](TokenId tid) { return vocab.Idf(tid); },
      [&](TokenId tid) -> std::span<const LemmaPosting> {
        if (static_cast<size_t>(tid) >= by_token.size()) return {};
        return by_token[tid];
      });
}

}  // namespace

std::vector<LemmaHit> LemmaIndex::ProbeEntities(std::string_view text,
                                                int k) const {
  return ProbeTable(entity_postings_.by_token, vocab_, text, k);
}

std::vector<LemmaHit> LemmaIndex::ProbeTypes(std::string_view text,
                                             int k) const {
  return ProbeTable(type_postings_.by_token, vocab_, text, k);
}

ResolvedToken LemmaIndex::ResolveEntityToken(std::string_view token) const {
  TokenId tid = vocab_.Lookup(token);
  return ResolvedToken{vocab_.Idf(tid), EntityPostingsForToken(tid)};
}

std::span<const LemmaPosting> LemmaIndex::EntityPostingsForToken(
    TokenId t) const {
  if (t < 0 || static_cast<size_t>(t) >= entity_postings_.by_token.size()) {
    return {};
  }
  return entity_postings_.by_token[t];
}

std::span<const LemmaPosting> LemmaIndex::TypePostingsForToken(
    TokenId t) const {
  if (t < 0 || static_cast<size_t>(t) >= type_postings_.by_token.size()) {
    return {};
  }
  return type_postings_.by_token[t];
}

}  // namespace webtab
