#include "index/lemma_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/tokenizer.h"

namespace webtab {

LemmaIndex::LemmaIndex(const Catalog* catalog) : catalog_(catalog) {
  // Register every lemma as a "document" first so IDF values are stable,
  // then build postings.
  for (EntityId e = 0; e < catalog_->num_entities(); ++e) {
    for (const std::string& lemma : catalog_->entity(e).lemmas) {
      vocab_.AddDocument(Tokenize(lemma));
    }
  }
  for (TypeId t = 0; t < catalog_->num_types(); ++t) {
    for (const std::string& lemma : catalog_->type(t).lemmas) {
      vocab_.AddDocument(Tokenize(lemma));
    }
  }
  for (EntityId e = 0; e < catalog_->num_entities(); ++e) {
    const auto& lemmas = catalog_->entity(e).lemmas;
    for (size_t i = 0; i < lemmas.size(); ++i) {
      AddLemma(&entity_postings_, e, static_cast<int32_t>(i), lemmas[i]);
    }
  }
  for (TypeId t = 0; t < catalog_->num_types(); ++t) {
    const auto& lemmas = catalog_->type(t).lemmas;
    for (size_t i = 0; i < lemmas.size(); ++i) {
      AddLemma(&type_postings_, t, static_cast<int32_t>(i), lemmas[i]);
    }
  }
}

void LemmaIndex::AddLemma(PostingsTable* table, int32_t id,
                          int32_t lemma_ord, std::string_view lemma) {
  std::vector<std::string> tokens = Tokenize(lemma);
  if (tokens.empty()) return;
  for (const std::string& token : tokens) {
    TokenId tid = vocab_.Intern(token);
    if (static_cast<size_t>(tid) >= table->by_token.size()) {
      table->by_token.resize(tid + 1);
    }
    table->by_token[tid].push_back(
        Posting{id, lemma_ord, static_cast<int32_t>(tokens.size())});
  }
  ++num_postings_;
}

std::vector<LemmaHit> LemmaIndex::Probe(const PostingsTable& table,
                                        std::string_view text, int k) const {
  std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty() || k <= 0) return {};

  // Accumulate IDF-weighted overlap per (object, lemma). The score is a
  // binary-TF cosine: sum of idf^2 over common tokens, normalized by the
  // two vectors' norms.
  double query_norm_sq = 0.0;
  std::unordered_map<int64_t, double> overlap;  // (id<<16|ord) -> idf^2 sum
  std::unordered_map<int64_t, int32_t> lemma_len;
  for (const std::string& token : tokens) {
    TokenId tid = vocab_.Lookup(token);
    double idf = vocab_.Idf(tid);
    query_norm_sq += idf * idf;
    if (tid < 0 ||
        static_cast<size_t>(tid) >= table.by_token.size()) {
      continue;
    }
    for (const Posting& p : table.by_token[tid]) {
      int64_t key = (static_cast<int64_t>(p.id) << 16) |
                    static_cast<int64_t>(p.lemma_ord & 0xFFFF);
      overlap[key] += idf * idf;
      lemma_len[key] = p.lemma_len;
    }
  }
  if (overlap.empty()) return {};

  // Approximate the lemma norm by len * avg-idf^2 of the overlap; exact
  // norms would need per-lemma storage. Using sqrt(len) keeps ranking
  // faithful for short lemmas.
  std::unordered_map<int32_t, LemmaHit> best_per_object;
  double query_norm = std::sqrt(query_norm_sq);
  for (const auto& [key, num] : overlap) {
    int32_t id = static_cast<int32_t>(key >> 16);
    int32_t ord = static_cast<int32_t>(key & 0xFFFF);
    double avg_idf_sq = num;  // Upper bound proxy for matched-token mass.
    (void)avg_idf_sq;
    double lemma_norm =
        std::sqrt(static_cast<double>(lemma_len[key])) * query_norm /
        std::sqrt(static_cast<double>(tokens.size()));
    double score = lemma_norm > 0 ? num / (query_norm * lemma_norm) : 0.0;
    score = std::min(score, 1.0);
    auto it = best_per_object.find(id);
    if (it == best_per_object.end() || it->second.score < score) {
      best_per_object[id] = LemmaHit{id, ord, score};
    }
  }

  std::vector<LemmaHit> hits;
  hits.reserve(best_per_object.size());
  for (const auto& [id, hit] : best_per_object) hits.push_back(hit);
  std::sort(hits.begin(), hits.end(), [](const LemmaHit& a,
                                         const LemmaHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;  // Deterministic tie-break.
  });
  if (static_cast<int>(hits.size()) > k) hits.resize(k);
  return hits;
}

std::vector<LemmaHit> LemmaIndex::ProbeEntities(std::string_view text,
                                                int k) const {
  return Probe(entity_postings_, text, k);
}

std::vector<LemmaHit> LemmaIndex::ProbeTypes(std::string_view text,
                                             int k) const {
  return Probe(type_postings_, text, k);
}

}  // namespace webtab
