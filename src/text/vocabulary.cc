#include "text/vocabulary.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace webtab {

TokenId Vocabulary::Intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(texts_.size());
  ids_.emplace(std::string(token), id);
  texts_.emplace_back(token);
  doc_freq_.push_back(0);
  return id;
}

TokenId Vocabulary::Lookup(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kInvalidToken : it->second;
}

const std::string& Vocabulary::TokenText(TokenId id) const {
  WEBTAB_CHECK(id >= 0 && id < size());
  return texts_[id];
}

void Vocabulary::AddDocument(const std::vector<std::string>& tokens) {
  std::unordered_set<TokenId> distinct;
  for (const std::string& t : tokens) distinct.insert(Intern(t));
  for (TokenId id : distinct) ++doc_freq_[id];
  ++num_documents_;
}

double Vocabulary::Idf(TokenId id) const {
  int64_t df = (id >= 0 && id < size()) ? doc_freq_[id] : 0;
  return std::log((1.0 + static_cast<double>(num_documents_)) /
                  (1.0 + static_cast<double>(df))) +
         1.0;
}

double Vocabulary::IdfOf(std::string_view token) const {
  return Idf(Lookup(token));
}

int64_t Vocabulary::DocumentFrequency(TokenId id) const {
  if (id < 0 || id >= size()) return 0;
  return doc_freq_[id];
}

}  // namespace webtab
