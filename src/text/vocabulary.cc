#include "text/vocabulary.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace webtab {

Vocabulary Vocabulary::FromParts(std::vector<std::string> texts,
                                 std::vector<int64_t> doc_freq,
                                 int64_t num_documents) {
  WEBTAB_CHECK(texts.size() == doc_freq.size());
  Vocabulary v;
  v.texts_ = std::move(texts);
  v.doc_freq_ = std::move(doc_freq);
  v.num_documents_ = num_documents;
  v.ids_.reserve(v.texts_.size());
  for (size_t i = 0; i < v.texts_.size(); ++i) {
    v.ids_.emplace(v.texts_[i], static_cast<TokenId>(i));
  }
  return v;
}

TokenId Vocabulary::Intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(texts_.size());
  ids_.emplace(std::string(token), id);
  texts_.emplace_back(token);
  doc_freq_.push_back(0);
  return id;
}

TokenId Vocabulary::Lookup(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kInvalidToken : it->second;
}

const std::string& Vocabulary::TokenText(TokenId id) const {
  WEBTAB_CHECK(id >= 0 && id < size());
  return texts_[id];
}

void Vocabulary::AddDocument(const std::vector<std::string>& tokens) {
  std::unordered_set<TokenId> distinct;
  for (const std::string& t : tokens) distinct.insert(Intern(t));
  for (TokenId id : distinct) ++doc_freq_[id];
  ++num_documents_;
}

double Vocabulary::IdfValue(int64_t df, int64_t num_documents) {
  return std::log((1.0 + static_cast<double>(num_documents)) /
                  (1.0 + static_cast<double>(df))) +
         1.0;
}

double Vocabulary::Idf(TokenId id) const {
  int64_t df = (id >= 0 && id < size()) ? doc_freq_[id] : 0;
  return IdfValue(df, num_documents_);
}

double Vocabulary::IdfOf(std::string_view token) const {
  return Idf(Lookup(token));
}

int64_t Vocabulary::DocumentFrequency(TokenId id) const {
  if (id < 0 || id >= size()) return 0;
  return doc_freq_[id];
}

}  // namespace webtab
