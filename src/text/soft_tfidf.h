#ifndef WEBTAB_TEXT_SOFT_TFIDF_H_
#define WEBTAB_TEXT_SOFT_TFIDF_H_

#include <string_view>

#include "text/vocabulary.h"

namespace webtab {

/// Soft-TFIDF of Bilenko et al. [2]: TF-IDF cosine where tokens match
/// "softly" — two tokens count as equal when their Jaro-Winkler similarity
/// exceeds `threshold` (default 0.9), weighted by that similarity. Catches
/// near-miss spellings ("Einstien") that the hard cosine scores at 0.
double SoftTfIdfSimilarity(std::string_view a, std::string_view b,
                           Vocabulary* vocab, double threshold = 0.9);

}  // namespace webtab

#endif  // WEBTAB_TEXT_SOFT_TFIDF_H_
