#ifndef WEBTAB_TEXT_SOFT_TFIDF_H_
#define WEBTAB_TEXT_SOFT_TFIDF_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/vocabulary.h"

namespace webtab {

/// One token with its L2-normalized TF-IDF weight — the unit soft-TFIDF
/// scores over. Exposed so SimilarityScratch can build the weights once
/// per distinct string and reuse them across every pairing; both entry
/// points below share one implementation, so scores are bit-identical.
struct SoftWeightedToken {
  std::string text;
  double weight;
};

/// Tokenizes `text` and computes L2-normalized TF-IDF weights, sorted by
/// token text (the scoring order soft-TFIDF is defined over here).
std::vector<SoftWeightedToken> SoftTfIdfWeights(std::string_view text,
                                                Vocabulary* vocab);

/// Scores two prepared weight vectors. Returns 1 when both are empty,
/// 0 when exactly one is.
double SoftTfIdfFromWeights(const std::vector<SoftWeightedToken>& a,
                            const std::vector<SoftWeightedToken>& b,
                            double threshold = 0.9);

/// Soft-TFIDF of Bilenko et al. [2]: TF-IDF cosine where tokens match
/// "softly" — two tokens count as equal when their Jaro-Winkler similarity
/// exceeds `threshold` (default 0.9), weighted by that similarity. Catches
/// near-miss spellings ("Einstien") that the hard cosine scores at 0.
double SoftTfIdfSimilarity(std::string_view a, std::string_view b,
                           Vocabulary* vocab, double threshold = 0.9);

}  // namespace webtab

#endif  // WEBTAB_TEXT_SOFT_TFIDF_H_
