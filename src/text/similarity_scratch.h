#ifndef WEBTAB_TEXT_SIMILARITY_SCRATCH_H_
#define WEBTAB_TEXT_SIMILARITY_SCRATCH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/soft_tfidf.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace webtab {

/// Reusable memoizing scratch for the f1/f2 text-similarity bundle
/// (§4.2.1/4.2.2): TF-IDF cosine, Jaccard, Dice, soft-TFIDF and exact
/// normalized match. Each distinct string is *prepared* once —
/// tokenized, TF-IDF weighted, normalized — and each distinct
/// (string, string) pair is scored once; repeats are O(1) lookups.
/// Web-table cells repeat heavily within a column and catalog lemmas
/// repeat across every row that considers the entity, so preparing and
/// pairing by distinct string removes the dominant redundancy of
/// feature materialization. Values are bit-identical to the direct
/// similarity calls (the measures are computed by the same underlying
/// implementations on identically-constructed inputs).
///
/// Memory is bounded: when either cache exceeds its cap the scratch
/// drops everything and bumps `epoch()`, signalling holders of prepared
/// ids (FeatureComputer's f1/f2 memos) to drop theirs too. Not
/// thread-safe; one per worker, like the Vocabulary it interns into.
class SimilarityScratch {
 public:
  struct Options {
    size_t max_prepared;
    size_t max_pairs;
    // Explicit constructor (not default member initializers) so the
    // struct is usable as a default argument below under GCC.
    Options() : max_prepared(size_t{1} << 18), max_pairs(size_t{1} << 20) {}
  };

  /// `vocab` must outlive the scratch; preparation interns query tokens
  /// exactly like the direct TfIdfCosine / SoftTfIdfSimilarity calls.
  explicit SimilarityScratch(Vocabulary* vocab,
                             Options options = Options());

  SimilarityScratch(const SimilarityScratch&) = delete;
  SimilarityScratch& operator=(const SimilarityScratch&) = delete;

  /// Clears all caches when over budget. Call between evaluations, not
  /// between Prepare and Measures (ids are stable only within an epoch).
  void MaybeCompact();

  /// Incremented on every compaction; prepared ids from older epochs
  /// are invalid.
  int64_t epoch() const { return epoch_; }

  /// Interns `text`, preparing it on first sight. The id is stable
  /// until the next compaction.
  int32_t Prepare(std::string_view text);

  /// Measure order within the bundle (matching the f1/f2 layout).
  static constexpr int kCosine = 0;
  static constexpr int kJaccard = 1;
  static constexpr int kDice = 2;
  static constexpr int kSoftTfIdf = 3;
  static constexpr int kExact = 4;
  static constexpr int kNumMeasures = 5;

  /// The similarity bundle for the prepared pair (a, b), memoized.
  const std::array<double, kNumMeasures>& Measures(int32_t a, int32_t b);

  size_t num_prepared() const { return prepared_.size(); }
  size_t num_pairs() const { return pairs_.size(); }
  size_t num_jw_pairs() const { return jw_memo_.size(); }

 private:
  struct PreparedText {
    std::string normalized;
    std::vector<std::string> unique_tokens;  // Sorted distinct tokens.
    TfIdfVector tfidf;
    std::vector<SoftWeightedToken> soft;
    /// Interned token ids parallel to `soft`, keying the Jaro-Winkler
    /// pair memo. Tokens intern by exact normalized text, so id equality
    /// is exactly the `wa.text == wb.text` fast path of
    /// SoftTfIdfFromWeights.
    std::vector<int32_t> soft_ids;
  };

  /// Heterogeneous string hashing so Prepare never copies on a hit.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };

  /// Interns one soft token text, assigning a dense id on first sight.
  int32_t InternSoftToken(const std::string& token);

  /// Soft-TFIDF over prepared weights with the token-pair Jaro-Winkler
  /// memo: structurally the SoftTfIdfFromWeights loop, with each
  /// distinct (token, token) JW computed once per epoch instead of once
  /// per (string, string) pairing. Bit-identical to the direct call —
  /// JaroWinkler is deterministic, ids stand in for exact text equality,
  /// and the accumulation order is unchanged.
  double SoftTfIdfMemoized(const PreparedText& pa, const PreparedText& pb);

  Vocabulary* vocab_;
  Options options_;
  int64_t epoch_ = 0;
  std::unordered_map<std::string, int32_t, StringHash, std::equal_to<>>
      id_of_text_;
  std::vector<PreparedText> prepared_;
  std::unordered_map<uint64_t, std::array<double, kNumMeasures>> pairs_;
  /// Distinct soft-token texts -> dense ids, and the (id, id) -> JW memo.
  /// Column batches repeat tokens far more than whole cell strings, so
  /// the memo collapses the quadratic JW inner loop across pairings.
  std::unordered_map<std::string, int32_t, StringHash, std::equal_to<>>
      soft_token_id_;
  std::unordered_map<uint64_t, double> jw_memo_;
};

}  // namespace webtab

#endif  // WEBTAB_TEXT_SIMILARITY_SCRATCH_H_
