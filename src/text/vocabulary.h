#ifndef WEBTAB_TEXT_VOCABULARY_H_
#define WEBTAB_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace webtab {

using TokenId = int32_t;
inline constexpr TokenId kInvalidToken = -1;

/// Interns tokens and tracks document frequencies over a corpus of short
/// "documents" (lemmas, cells, headers). IDF values back the TF-IDF cosine
/// of §4.2.1 and the specificity features of §4.2.3.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Reconstructs a vocabulary from serialized statistics: token texts in
  /// id order, per-token document frequencies, and the document count.
  /// The result is statistically identical to the instance that was
  /// serialized (same ids, same IDF values).
  static Vocabulary FromParts(std::vector<std::string> texts,
                              std::vector<int64_t> doc_freq,
                              int64_t num_documents);

  /// Interns `token`, creating an id if unseen.
  TokenId Intern(std::string_view token);

  /// Returns the id or kInvalidToken if unseen. Does not modify state.
  TokenId Lookup(std::string_view token) const;

  const std::string& TokenText(TokenId id) const;

  /// Registers one document's distinct tokens for document-frequency
  /// accounting. Call once per document while building the corpus stats.
  void AddDocument(const std::vector<std::string>& tokens);

  /// Smoothed inverse document frequency: log((1+N)/(1+df)) + 1.
  /// Unknown tokens get the maximum IDF (df = 0).
  double Idf(TokenId id) const;
  double IdfOf(std::string_view token) const;

  /// The IDF formula itself, shared with the zero-copy snapshot
  /// vocabulary so both backends compute bit-identical values.
  static double IdfValue(int64_t df, int64_t num_documents);

  int64_t num_documents() const { return num_documents_; }
  int64_t size() const { return static_cast<int64_t>(texts_.size()); }
  int64_t DocumentFrequency(TokenId id) const;

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<std::string> texts_;
  std::vector<int64_t> doc_freq_;
  int64_t num_documents_ = 0;
};

}  // namespace webtab

#endif  // WEBTAB_TEXT_VOCABULARY_H_
