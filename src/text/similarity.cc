#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {
std::unordered_set<std::string> TokenSet(std::string_view s) {
  std::unordered_set<std::string> out;
  for (auto& t : Tokenize(s)) out.insert(std::move(t));
  return out;
}

size_t IntersectionSize(const std::unordered_set<std::string>& a,
                        const std::unordered_set<std::string>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t n = 0;
  for (const auto& t : small) n += large.count(t);
  return n;
}
}  // namespace

double JaccardSimilarity(std::string_view a, std::string_view b) {
  auto sa = TokenSet(a);
  auto sb = TokenSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  size_t inter = IntersectionSize(sa, sb);
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSimilarity(std::string_view a, std::string_view b) {
  auto sa = TokenSet(a);
  auto sb = TokenSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  size_t inter = IntersectionSize(sa, sb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size());
}

double EditSimilarity(std::string_view a, std::string_view b) {
  std::string na = NormalizeText(a);
  std::string nb = NormalizeText(b);
  if (na.empty() && nb.empty()) return 1.0;
  if (na.empty() || nb.empty()) return 0.0;
  // Two-row Levenshtein.
  std::vector<int> prev(nb.size() + 1);
  std::vector<int> cur(nb.size() + 1);
  for (size_t j = 0; j <= nb.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= na.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= nb.size(); ++j) {
      int sub = prev[j - 1] + (na[i - 1] != nb[j - 1] ? 1 : 0);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  double dist = prev[nb.size()];
  double max_len = static_cast<double>(std::max(na.size(), nb.size()));
  return 1.0 - dist / max_len;
}

double JaroWinkler(std::string_view a_raw, std::string_view b_raw) {
  std::string a = NormalizeText(a_raw);
  std::string b = NormalizeText(b_raw);
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  int la = static_cast<int>(a.size());
  int lb = static_cast<int>(b.size());
  int window = std::max(la, lb) / 2 - 1;
  if (window < 0) window = 0;
  std::vector<bool> matched_a(la, false);
  std::vector<bool> matched_b(lb, false);
  int matches = 0;
  for (int i = 0; i < la; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = true;
        matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = matches;
  double jaro = (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
  // Winkler prefix boost.
  int prefix = 0;
  for (int i = 0; i < std::min({la, lb, 4}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double TfIdfCosine(std::string_view a, std::string_view b,
                   Vocabulary* vocab) {
  return TfIdfVector::Make(a, vocab).Cosine(TfIdfVector::Make(b, vocab));
}

bool ExactNormalizedMatch(std::string_view a, std::string_view b) {
  return NormalizeText(a) == NormalizeText(b);
}

double TokenContainment(std::string_view a, std::string_view b) {
  auto sa = TokenSet(a);
  if (sa.empty()) return 0.0;
  auto sb = TokenSet(b);
  size_t hits = 0;
  for (const auto& t : sa) hits += sb.count(t);
  return static_cast<double>(hits) / static_cast<double>(sa.size());
}

}  // namespace webtab
