#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace webtab {

std::vector<std::string> Tokenize(std::string_view text) {
  // Thin wrapper over the buffer-reusing variant so the tokenization
  // rules live in one loop (the search kernel's memoized text matching
  // depends on the two staying bit-identical).
  std::vector<std::string> tokens;
  tokens.resize(TokenizeInto(text, &tokens));
  return tokens;
}

std::string NormalizeText(std::string_view text) {
  std::string out;
  NormalizeTextInto(text, &out);
  return out;
}

void NormalizeTextInto(std::string_view text, std::string* out) {
  // Equivalent to Join(Tokenize(text), " ") without the token vector:
  // emit a separating space before every token after the first.
  out->clear();
  bool in_token = false;
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      if (!in_token && !out->empty()) out->push_back(' ');
      in_token = true;
      out->push_back(static_cast<char>(std::tolower(u)));
    } else {
      in_token = false;
    }
  }
}

size_t TokenizeInto(std::string_view text, std::vector<std::string>* out) {
  size_t count = 0;
  auto slot = [&]() -> std::string& {
    if (count == out->size()) out->emplace_back();
    return (*out)[count];
  };
  bool in_token = false;
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      std::string& token = slot();
      if (!in_token) token.clear();
      in_token = true;
      token.push_back(static_cast<char>(std::tolower(u)));
    } else if (in_token) {
      in_token = false;
      ++count;
    }
  }
  if (in_token) ++count;
  return count;
}

}  // namespace webtab
