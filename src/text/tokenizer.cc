#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace webtab {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      current += static_cast<char>(std::tolower(u));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string NormalizeText(std::string_view text) {
  return Join(Tokenize(text), " ");
}

}  // namespace webtab
