#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "text/tokenizer.h"

namespace webtab {

TfIdfVector TfIdfVector::Make(std::string_view text, Vocabulary* vocab) {
  TfIdfVector v;
  std::map<TokenId, double> weights;
  for (const std::string& token : Tokenize(text)) {
    TokenId id = vocab->Intern(token);
    weights[id] += 1.0;  // Raw term frequency.
  }
  double norm_sq = 0.0;
  for (auto& [id, w] : weights) {
    w *= vocab->Idf(id);
    norm_sq += w * w;
  }
  if (norm_sq > 0.0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    v.entries_.reserve(weights.size());
    for (const auto& [id, w] : weights) v.entries_.emplace_back(id, w * inv);
  }
  return v;
}

double TfIdfVector::Cosine(const TfIdfVector& other) const {
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    TokenId a = entries_[i].first;
    TokenId b = other.entries_[j].first;
    if (a == b) {
      dot += entries_[i].second * other.entries_[j].second;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::clamp(dot, 0.0, 1.0);
}

}  // namespace webtab
