#include "text/soft_tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace webtab {

std::vector<SoftWeightedToken> SoftTfIdfWeights(std::string_view text,
                                                Vocabulary* vocab) {
  std::map<std::string, double> tf;
  for (const std::string& t : Tokenize(text)) tf[t] += 1.0;
  std::vector<SoftWeightedToken> out;
  double norm_sq = 0.0;
  for (auto& [tok, f] : tf) {
    double w = f * vocab->Idf(vocab->Intern(tok));
    out.push_back({tok, w});
    norm_sq += w * w;
  }
  if (norm_sq > 0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& wt : out) wt.weight *= inv;
  }
  return out;
}

double SoftTfIdfFromWeights(const std::vector<SoftWeightedToken>& a,
                            const std::vector<SoftWeightedToken>& b,
                            double threshold) {
  if (a.empty() || b.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  double score = 0.0;
  for (const auto& wa : a) {
    double best_sim = 0.0;
    double best_wb = 0.0;
    for (const auto& wb : b) {
      double sim = wa.text == wb.text ? 1.0 : JaroWinkler(wa.text, wb.text);
      if (sim > best_sim) {
        best_sim = sim;
        best_wb = wb.weight;
      }
    }
    if (best_sim >= threshold) score += best_sim * wa.weight * best_wb;
  }
  return std::clamp(score, 0.0, 1.0);
}

double SoftTfIdfSimilarity(std::string_view a, std::string_view b,
                           Vocabulary* vocab, double threshold) {
  return SoftTfIdfFromWeights(SoftTfIdfWeights(a, vocab),
                              SoftTfIdfWeights(b, vocab), threshold);
}

}  // namespace webtab
