#include "text/soft_tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {
struct WeightedToken {
  std::string text;
  double weight;  // L2-normalized TF-IDF weight.
};

std::vector<WeightedToken> WeightedTokens(std::string_view text,
                                          Vocabulary* vocab) {
  std::map<std::string, double> tf;
  for (const std::string& t : Tokenize(text)) tf[t] += 1.0;
  std::vector<WeightedToken> out;
  double norm_sq = 0.0;
  for (auto& [tok, f] : tf) {
    double w = f * vocab->Idf(vocab->Intern(tok));
    out.push_back({tok, w});
    norm_sq += w * w;
  }
  if (norm_sq > 0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& wt : out) wt.weight *= inv;
  }
  return out;
}
}  // namespace

double SoftTfIdfSimilarity(std::string_view a, std::string_view b,
                           Vocabulary* vocab, double threshold) {
  auto ta = WeightedTokens(a, vocab);
  auto tb = WeightedTokens(b, vocab);
  if (ta.empty() || tb.empty()) return ta.empty() && tb.empty() ? 1.0 : 0.0;
  double score = 0.0;
  for (const auto& wa : ta) {
    double best_sim = 0.0;
    double best_wb = 0.0;
    for (const auto& wb : tb) {
      double sim = wa.text == wb.text ? 1.0 : JaroWinkler(wa.text, wb.text);
      if (sim > best_sim) {
        best_sim = sim;
        best_wb = wb.weight;
      }
    }
    if (best_sim >= threshold) score += best_sim * wa.weight * best_wb;
  }
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace webtab
