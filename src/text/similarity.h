#ifndef WEBTAB_TEXT_SIMILARITY_H_
#define WEBTAB_TEXT_SIMILARITY_H_

#include <string_view>
#include <vector>

#include "text/vocabulary.h"

namespace webtab {

/// All measures return values in [0,1], are symmetric, and give 1 on
/// identical normalized inputs. They operate on the shared tokenizer's
/// output, so "A. Einstein" vs "a einstein" compare equal.

/// Token-set Jaccard: |A∩B| / |A∪B|.
double JaccardSimilarity(std::string_view a, std::string_view b);

/// Token-set Dice: 2|A∩B| / (|A|+|B|).
double DiceSimilarity(std::string_view a, std::string_view b);

/// Character-level similarity 1 - Levenshtein(a,b)/max(|a|,|b|) computed on
/// normalized text.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity on normalized text (prefix scale 0.1, max
/// prefix 4) — the classic short-string matcher used inside soft-TFIDF.
double JaroWinkler(std::string_view a, std::string_view b);

/// TF-IDF cosine using vocabulary statistics (wrapper over TfIdfVector).
double TfIdfCosine(std::string_view a, std::string_view b, Vocabulary* vocab);

/// True when the normalized forms are identical.
bool ExactNormalizedMatch(std::string_view a, std::string_view b);

/// Token containment: fraction of a's tokens present in b.
double TokenContainment(std::string_view a, std::string_view b);

}  // namespace webtab

#endif  // WEBTAB_TEXT_SIMILARITY_H_
