#include "text/similarity_scratch.h"

#include <algorithm>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace webtab {

namespace {

/// The soft-TFIDF match threshold — must equal the default of
/// SoftTfIdfFromWeights, which the memoized path replicates.
constexpr double kSoftThreshold = 0.9;

}  // namespace

SimilarityScratch::SimilarityScratch(Vocabulary* vocab, Options options)
    : vocab_(vocab), options_(options) {}

void SimilarityScratch::MaybeCompact() {
  if (prepared_.size() <= options_.max_prepared &&
      pairs_.size() <= options_.max_pairs &&
      jw_memo_.size() <= options_.max_pairs) {
    return;
  }
  id_of_text_.clear();
  prepared_.clear();
  pairs_.clear();
  soft_token_id_.clear();
  jw_memo_.clear();
  ++epoch_;
}

int32_t SimilarityScratch::Prepare(std::string_view text) {
  auto it = id_of_text_.find(text);
  if (it != id_of_text_.end()) return it->second;

  PreparedText p;
  // The TF-IDF vector is built first so query tokens intern in Tokenize
  // order — the same vocabulary evolution as the streaming path, where
  // TfIdfCosine ran before the other measures. Later builders re-intern
  // the same tokens, which is a no-op.
  p.tfidf = TfIdfVector::Make(text, vocab_);
  p.normalized = NormalizeText(text);
  p.unique_tokens = Tokenize(text);
  std::sort(p.unique_tokens.begin(), p.unique_tokens.end());
  p.unique_tokens.erase(
      std::unique(p.unique_tokens.begin(), p.unique_tokens.end()),
      p.unique_tokens.end());
  p.soft = SoftTfIdfWeights(text, vocab_);
  p.soft_ids.reserve(p.soft.size());
  for (const SoftWeightedToken& wt : p.soft) {
    p.soft_ids.push_back(InternSoftToken(wt.text));
  }

  const int32_t id = static_cast<int32_t>(prepared_.size());
  prepared_.push_back(std::move(p));
  id_of_text_.emplace(std::string(text), id);
  return id;
}

const std::array<double, SimilarityScratch::kNumMeasures>&
SimilarityScratch::Measures(int32_t a, int32_t b) {
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a))
                        << 32) |
                       static_cast<uint32_t>(b);
  auto it = pairs_.find(key);
  if (it != pairs_.end()) return it->second;

  const PreparedText& pa = prepared_[a];
  const PreparedText& pb = prepared_[b];
  std::array<double, kNumMeasures> m{};
  m[kCosine] = pa.tfidf.Cosine(pb.tfidf);

  // Token-set measures from the sorted distinct tokens; the counts are
  // integers, so the resulting doubles match the hash-set originals.
  const size_t na = pa.unique_tokens.size();
  const size_t nb = pb.unique_tokens.size();
  if (na == 0 && nb == 0) {
    m[kJaccard] = 1.0;
    m[kDice] = 1.0;
  } else if (na != 0 && nb != 0) {
    size_t inter = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < na && j < nb) {
      const int cmp = pa.unique_tokens[i].compare(pb.unique_tokens[j]);
      if (cmp == 0) {
        ++inter;
        ++i;
        ++j;
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
    m[kJaccard] = static_cast<double>(inter) /
                  static_cast<double>(na + nb - inter);
    m[kDice] =
        2.0 * static_cast<double>(inter) / static_cast<double>(na + nb);
  }

  m[kSoftTfIdf] = SoftTfIdfMemoized(pa, pb);
  m[kExact] = pa.normalized == pb.normalized ? 1.0 : 0.0;
  return pairs_.emplace(key, m).first->second;
}

int32_t SimilarityScratch::InternSoftToken(const std::string& token) {
  auto it = soft_token_id_.find(token);
  if (it != soft_token_id_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(soft_token_id_.size());
  soft_token_id_.emplace(token, id);
  return id;
}

double SimilarityScratch::SoftTfIdfMemoized(const PreparedText& pa,
                                            const PreparedText& pb) {
  const std::vector<SoftWeightedToken>& a = pa.soft;
  const std::vector<SoftWeightedToken>& b = pb.soft;
  if (a.empty() || b.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  double score = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const int32_t ida = pa.soft_ids[i];
    double best_sim = 0.0;
    double best_wb = 0.0;
    for (size_t j = 0; j < b.size(); ++j) {
      const int32_t idb = pb.soft_ids[j];
      double sim;
      if (ida == idb) {
        sim = 1.0;
      } else {
        // Ordered key: no reliance on JaroWinkler being exactly
        // symmetric at the bit level.
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(ida)) << 32) |
            static_cast<uint32_t>(idb);
        auto it = jw_memo_.find(key);
        if (it != jw_memo_.end()) {
          sim = it->second;
        } else {
          sim = JaroWinkler(a[i].text, b[j].text);
          jw_memo_.emplace(key, sim);
        }
      }
      if (sim > best_sim) {
        best_sim = sim;
        best_wb = b[j].weight;
      }
    }
    if (best_sim >= kSoftThreshold) score += best_sim * a[i].weight * best_wb;
  }
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace webtab
