#ifndef WEBTAB_TEXT_TFIDF_H_
#define WEBTAB_TEXT_TFIDF_H_

#include <string_view>
#include <utility>
#include <vector>

#include "text/vocabulary.h"

namespace webtab {

/// Sparse L2-normalized TF-IDF vector over interned tokens, sorted by
/// TokenId for linear-time dot products.
class TfIdfVector {
 public:
  TfIdfVector() = default;

  /// Builds the vector for `text` using the vocabulary's IDF statistics.
  /// Unseen tokens are interned with df=0 (max IDF).
  static TfIdfVector Make(std::string_view text, Vocabulary* vocab);

  /// Cosine similarity in [0,1]; 0 when either vector is empty.
  double Cosine(const TfIdfVector& other) const;

  bool empty() const { return entries_.empty(); }
  const std::vector<std::pair<TokenId, double>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<TokenId, double>> entries_;  // (id, weight), sorted.
};

}  // namespace webtab

#endif  // WEBTAB_TEXT_TFIDF_H_
