#ifndef WEBTAB_TEXT_TOKENIZER_H_
#define WEBTAB_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace webtab {

/// Splits text into lowercase alphanumeric tokens. Punctuation separates
/// tokens; digits are kept ("2008" is a token). This is the single
/// normalization used for cell text, headers and catalog lemmas, so that
/// index probes and similarity measures agree.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenize + rejoin with single spaces; canonical normalized form.
std::string NormalizeText(std::string_view text);

/// Allocation-reusing variants for hot loops (the search kernel calls
/// these once per distinct cell string). Outputs are bit-identical to
/// NormalizeText/Tokenize; the caller-owned buffers keep their capacity
/// across calls so steady state performs no allocations.
void NormalizeTextInto(std::string_view text, std::string* out);

/// Tokenizes into `out`[0..return), reusing each element's capacity.
/// Elements past the returned count hold stale data; callers must treat
/// the vector as sized by the return value.
size_t TokenizeInto(std::string_view text, std::vector<std::string>* out);

}  // namespace webtab

#endif  // WEBTAB_TEXT_TOKENIZER_H_
