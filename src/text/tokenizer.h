#ifndef WEBTAB_TEXT_TOKENIZER_H_
#define WEBTAB_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace webtab {

/// Splits text into lowercase alphanumeric tokens. Punctuation separates
/// tokens; digits are kept ("2008" is a token). This is the single
/// normalization used for cell text, headers and catalog lemmas, so that
/// index probes and similarity measures agree.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenize + rejoin with single spaces; canonical normalized form.
std::string NormalizeText(std::string_view text);

}  // namespace webtab

#endif  // WEBTAB_TEXT_TOKENIZER_H_
