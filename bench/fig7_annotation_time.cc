// Regenerates Figure 7: time to annotate a stream of web tables, plus the
// §6.1.2 cost breakdown (paper: 0.7 s/table average on 250k tables, ~80%
// in lemma probes + text similarity, <1% in inference).
#include <algorithm>
#include <iostream>

#include "annotate/corpus_annotator.h"
#include "bench_util.h"
#include "synth/corpus_generator.h"

using namespace webtab;         // NOLINT(build/namespaces)
using namespace webtab::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  int64_t seed = 42;
  int64_t num_tables = 2000;
  int64_t threads = 1;
  FlagSet flags;
  flags.AddInt("seed", &seed, "world seed");
  flags.AddInt("tables", &num_tables, "number of tables to annotate");
  flags.AddInt("threads", &threads, "worker threads (1 = inline)");
  WEBTAB_CHECK_OK(flags.Parse(argc, argv));

  World world = GenerateWorld(DefaultWorldSpec(seed));
  LemmaIndex index(&world.catalog);

  CorpusSpec spec;
  spec.seed = seed + 5;
  spec.num_tables = static_cast<int>(num_tables);
  spec.min_rows = 5;
  spec.max_rows = 60;
  std::vector<Table> tables;
  for (const LabeledTable& lt : GenerateCorpus(world, spec)) {
    tables.push_back(lt.table);
  }

  CorpusAnnotatorOptions options;
  options.num_threads = static_cast<int>(threads);
  CorpusTimingStats stats;
  std::vector<AnnotatedTable> annotated = AnnotateCorpusParallel(
      &world.catalog, &index, options, tables, &stats);
  (void)annotated;

  std::cout << "=== Figure 7: Time spent annotating tables ===\n";
  std::cout << "tables annotated:   " << stats.per_table_millis.size()
            << "\n";
  std::cout << "worker threads:     " << options.num_threads << "\n";
  std::cout << "total cpu time:     "
            << TablePrinter::Num(stats.total_seconds, 2) << " s\n";
  std::cout << "wall time:          "
            << TablePrinter::Num(stats.wall_seconds, 2) << " s\n";
  std::cout << "mean per table:     "
            << TablePrinter::Num(stats.MeanMillisPerTable(), 2) << " ms\n";
  if (stats.per_table_millis.empty()) {
    std::cout << "(no tables annotated)\n";
    return 0;
  }
  std::vector<double> sorted = stats.per_table_millis;
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&](double p) {
    return sorted[static_cast<size_t>(p * (sorted.size() - 1))];
  };
  std::cout << "p50/p90/p99/max ms: " << TablePrinter::Num(pct(0.5), 2)
            << " / " << TablePrinter::Num(pct(0.9), 2) << " / "
            << TablePrinter::Num(pct(0.99), 2) << " / "
            << TablePrinter::Num(sorted.back(), 2) << "\n";
  std::cout << "throughput:         "
            << TablePrinter::Num(
                   stats.per_table_millis.size() / stats.wall_seconds, 1)
            << " tables/s\n\n";

  std::cout << "=== §6.1.2 cost breakdown ===\n";
  std::cout << "candidate generation (index probes):  "
            << Pct(stats.candidate_seconds / stats.total_seconds) << "%\n";
  std::cout << "potential materialization (text sim): "
            << Pct(stats.graph_seconds / stats.total_seconds) << "%\n";
  std::cout << "inference (message passing):          "
            << Pct(stats.InferenceFraction()) << "%\n";
  std::cout << "probe+similarity combined:            "
            << Pct(stats.ProbeFraction()) << "%\n";
  std::cout << "\nPaper: ~80% lemma probing + similarity, <1% inference "
               "(0.7 s/table on the authors' 2010 testbed).\n\n";

  // Time series in coarse buckets (the figure's scatter, summarized).
  std::cout << "=== Per-table time series (bucketed means, ms) ===\n";
  const int kBuckets = 10;
  TablePrinter series({"Tables", "Mean ms"});
  size_t per = stats.per_table_millis.size() / kBuckets;
  for (int b = 0; b < kBuckets && per > 0; ++b) {
    double sum = 0.0;
    for (size_t i = b * per; i < (b + 1) * per; ++i) {
      sum += stats.per_table_millis[i];
    }
    series.AddRow({std::to_string(b * per) + "-" +
                       std::to_string((b + 1) * per),
                   TablePrinter::Num(sum / per, 2)});
  }
  series.Print(std::cout);
  return 0;
}
