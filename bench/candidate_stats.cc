// Regenerates the §6.1.1 ambiguity statistics: "the typical number of
// entities between which the algorithms had to choose for each cell was
// around 7-8 ... the typical number of types per column was in the
// hundreds" (capped here by CandidateOptions).
#include <iostream>

#include "bench_util.h"
#include "model/label_space.h"
#include "synth/corpus_generator.h"

using namespace webtab;         // NOLINT(build/namespaces)
using namespace webtab::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  int64_t seed = 42;
  int64_t num_tables = 300;
  int64_t max_types = 0;  // 0 = library default cap.
  FlagSet flags;
  flags.AddInt("seed", &seed, "world seed");
  flags.AddInt("tables", &num_tables, "tables to sample");
  flags.AddInt("max_types", &max_types, "type cap override (0=default)");
  WEBTAB_CHECK_OK(flags.Parse(argc, argv));

  World world = GenerateWorld(DefaultWorldSpec(seed));
  LemmaIndex index(&world.catalog);
  ClosureCache closure(&world.catalog);
  CandidateOptions options;
  if (max_types > 0) {
    options.max_types_per_column = static_cast<int>(max_types);
  }

  CorpusSpec spec;
  spec.seed = seed + 17;
  spec.num_tables = static_cast<int>(num_tables);
  double entity_sum = 0, type_sum = 0, rel_sum = 0;
  int64_t cells = 0, cols = 0, pairs = 0;
  int64_t empty_cells = 0;
  for (const LabeledTable& lt : GenerateCorpus(world, spec)) {
    TableCandidates cands =
        GenerateCandidates(lt.table, index, &closure, options);
    for (int r = 0; r < lt.table.rows(); ++r) {
      for (int c = 0; c < lt.table.cols(); ++c) {
        if (cands.cells[r][c].empty()) {
          ++empty_cells;
        } else {
          entity_sum += static_cast<double>(cands.cells[r][c].size());
        }
        ++cells;
      }
    }
    for (const auto& types : cands.column_types) {
      type_sum += static_cast<double>(types.size());
      ++cols;
    }
    for (const auto& [pair, rels] : cands.relations) {
      (void)pair;
      rel_sum += static_cast<double>(rels.size());
      ++pairs;
    }
  }

  std::cout << "=== Candidate-set statistics (§6.1.1 regime) ===\n";
  std::cout << "cells sampled:                 " << cells << "\n";
  std::cout << "mean entities per non-empty cell: "
            << TablePrinter::Num(entity_sum / (cells - empty_cells), 2)
            << "  (paper: ~7-8)\n";
  std::cout << "cells with no candidates:      "
            << Pct(static_cast<double>(empty_cells) / cells)
            << "% (numeric/unknown)\n";
  std::cout << "mean candidate types per column: "
            << TablePrinter::Num(type_sum / cols, 2) << "  (cap "
            << options.max_types_per_column
            << "; paper: hundreds, uncapped)\n";
  std::cout << "mean relations per column pair:  "
            << TablePrinter::Num(pairs ? rel_sum / pairs : 0.0, 2) << "\n";
  std::cout << "column pairs with candidates:    " << pairs << "\n";
  return 0;
}
