// BP kernel micro-benchmark: structured (sparse/implicit) factors +
// zero-allocation kernel vs dense tables, on relation-enabled synthetic
// tables (>= 20 rows, 3-column joins included). Emits JSON so future PRs
// can track the trajectory in BENCH_*.json. Also counts heap allocations
// performed inside RunBeliefPropagation via a global operator new hook.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/timer.h"
#include "index/candidates.h"
#include "index/lemma_index.h"
#include "inference/belief_propagation.h"
#include "inference/table_graph.h"
#include "model/label_space.h"
#include "synth/corpus_generator.h"
#include "synth/world_generator.h"

namespace {
std::atomic<int64_t> g_allocations{0};
std::atomic<bool> g_counting{false};
}  // namespace

void* operator new(size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

using namespace webtab;  // NOLINT(build/namespaces)

namespace {

struct RepStats {
  double build_ms = 0.0;
  double bp_ms = 0.0;
  int64_t factor_bytes = 0;
  int64_t bp_allocations = 0;  // Steady-state, with a reused workspace.
  int64_t factor_updates = 0;
  int64_t factor_skips = 0;
};

/// Times graph build + BP over `reps` sweeps of the prepared label
/// spaces, reusing one workspace (steady-state allocation behavior).
RepStats RunRep(const std::vector<Table>& tables,
                const std::vector<TableLabelSpace>& spaces,
                FeatureComputer* features, FactorRepChoice rep, int reps,
                std::vector<double>* scores) {
  RepStats stats;
  TableGraphOptions options;
  options.factor_rep = rep;
  // Build once for memory accounting and score checks.
  std::vector<TableGraph> graphs;
  graphs.reserve(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    graphs.push_back(BuildTableGraph(tables[i], spaces[i], features,
                                     Weights::Default(), options));
    stats.factor_bytes += graphs.back().graph.FactorMemoryBytes();
  }
  // Graph build timing.
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    for (size_t i = 0; i < tables.size(); ++i) {
      BuildTableGraph(tables[i], spaces[i], features, Weights::Default(),
                      options);
    }
  }
  stats.build_ms = timer.ElapsedMillis() / reps;

  // BP timing with a persistent workspace; first pass warms it up.
  BpWorkspace workspace;
  scores->clear();
  for (const TableGraph& graph : graphs) {
    BpResult result =
        RunBeliefPropagation(graph.graph, BpOptions(), &workspace);
    scores->push_back(result.score);
    stats.factor_updates += result.factor_updates;
    stats.factor_skips += result.factor_skips;
  }
  g_allocations.store(0);
  g_counting.store(true);
  timer.Restart();
  for (int r = 0; r < reps; ++r) {
    for (const TableGraph& graph : graphs) {
      RunBeliefPropagation(graph.graph, BpOptions(), &workspace);
    }
  }
  stats.bp_ms = timer.ElapsedMillis() / reps;
  g_counting.store(false);
  stats.bp_allocations = g_allocations.load() / reps;
  return stats;
}

std::string Json(const RepStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"build_ms\": %.3f, \"bp_ms\": %.3f, "
                "\"factor_bytes\": %lld, \"bp_allocations\": %lld, "
                "\"factor_updates\": %lld, \"factor_skips\": %lld}",
                s.build_ms, s.bp_ms,
                static_cast<long long>(s.factor_bytes),
                static_cast<long long>(s.bp_allocations),
                static_cast<long long>(s.factor_updates),
                static_cast<long long>(s.factor_skips));
  return buf;
}

}  // namespace

/// One benchmark configuration: candidate depth shapes the factor
/// domains (the paper's Figure 7 claim concerns the coupling cost
/// |B|·|E1|·|E2|, which grows with entity candidate depth).
struct BenchConfig {
  const char* name;
  int max_entities_per_cell;
  double min_entity_score;
};

std::string RunConfig(const BenchConfig& config, const World& world,
                      const LemmaIndex& index, uint64_t seed,
                      int num_tables, int min_rows, int reps) {
  ClosureCache closure(&world.catalog);
  FeatureComputer features(&closure, index.vocabulary());

  CorpusSpec spec;
  spec.seed = seed + 11;
  spec.num_tables = num_tables;
  spec.min_rows = min_rows;
  spec.max_rows = min_rows + 20;
  spec.join_table_prob = 1.0;  // 3-column, two-relation tables.
  spec.numeric_col_prob = 0.0;

  CandidateOptions copts;
  copts.max_entities_per_cell = config.max_entities_per_cell;
  copts.min_entity_score = config.min_entity_score;

  std::vector<Table> tables;
  std::vector<TableLabelSpace> spaces;
  for (const LabeledTable& lt : GenerateCorpus(world, spec)) {
    TableCandidates cands =
        GenerateCandidates(lt.table, index, &closure, copts);
    spaces.push_back(TableLabelSpace::Build(lt.table, cands));
    tables.push_back(lt.table);
  }

  std::vector<double> dense_scores, structured_scores;
  RepStats dense = RunRep(tables, spaces, &features, FactorRepChoice::kDense,
                          reps, &dense_scores);
  RepStats structured =
      RunRep(tables, spaces, &features, FactorRepChoice::kStructured, reps,
             &structured_scores);

  // Identical decodes are covered by tests; assert score agreement here
  // so the bench itself cannot silently compare different answers.
  bool scores_match = dense_scores.size() == structured_scores.size();
  for (size_t i = 0; scores_match && i < dense_scores.size(); ++i) {
    scores_match = std::abs(dense_scores[i] - structured_scores[i]) < 1e-6;
  }
  WEBTAB_CHECK(scores_match) << "dense and structured BP scores diverged";

  const double bp_speedup =
      structured.bp_ms > 0 ? dense.bp_ms / structured.bp_ms : 0.0;
  const double build_speedup =
      structured.build_ms > 0 ? dense.build_ms / structured.build_ms : 0.0;
  const double mem_ratio =
      structured.factor_bytes > 0
          ? static_cast<double>(dense.factor_bytes) / structured.factor_bytes
          : 0.0;

  std::string json = std::string("    \"") + config.name +
                     "\": {\n"
                     "      \"tables\": " + std::to_string(tables.size()) +
                     ",\n"
                     "      \"max_entities_per_cell\": " +
                     std::to_string(config.max_entities_per_cell) +
                     ",\n"
                     "      \"dense\": " + Json(dense) + ",\n"
                     "      \"structured\": " + Json(structured) + ",\n";
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "      \"bp_speedup\": %.2f,\n"
                "      \"build_speedup\": %.2f,\n"
                "      \"factor_memory_ratio\": %.2f\n    }",
                bp_speedup, build_speedup, mem_ratio);
  json += tail;
  return json;
}

int main(int argc, char** argv) {
  int64_t seed = 42;
  int64_t num_tables = 10;
  int64_t min_rows = 24;
  int64_t reps = 10;
  std::string out = "BENCH_bp_kernel.json";
  FlagSet flags;
  flags.AddInt("seed", &seed, "world seed");
  flags.AddInt("tables", &num_tables, "number of tables");
  flags.AddInt("min_rows", &min_rows, "minimum rows per table");
  flags.AddInt("reps", &reps, "timing repetitions");
  flags.AddString("out", &out, "JSON output path (empty = stdout only)");
  WEBTAB_CHECK_OK(flags.Parse(argc, argv));

  WorldSpec wspec;
  wspec.seed = static_cast<uint64_t>(seed);
  World world = GenerateWorld(wspec);
  LemmaIndex index(&world.catalog);

  // Two candidate regimes: the paper's default depth (§6.1.1, ~8 per
  // cell) and the relation-heavy stress regime with deep candidate
  // lists, where the |B|·|E1|·|E2| coupling dominates inference.
  const BenchConfig configs[] = {
      {"default_candidates", 8, 0.15},
      {"relation_heavy", 24, 0.05},
  };
  std::string json = "{\n  \"bench\": \"bp_kernel\",\n  \"configs\": {\n";
  for (size_t i = 0; i < 2; ++i) {
    json += RunConfig(configs[i], world, index,
                      static_cast<uint64_t>(seed),
                      static_cast<int>(num_tables),
                      static_cast<int>(min_rows), static_cast<int>(reps));
    json += i + 1 < 2 ? ",\n" : "\n";
  }
  json += "  }\n}\n";

  std::cout << json;
  if (!out.empty()) {
    std::ofstream f(out);
    f << json;
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
